"""Sinkhorn-hybrid accuracy/speed frontier — the approximation tier's
acceptance benchmark, writing ``benchmarks/BENCH_sinkhorn_hybrid.json``.

Instances are SND-style reduced transportation problems (Theorem 4):
supplier/consumer bins are changed-user sets sampled from a powerlaw
configuration graph, costs are shortest-path distances between them, at
side lengths 10x-100x beyond the reduced instances the exact tiers see in
the tier-1 suites (their ``auto`` territory tops out at 2 048 cells; the
largest instance here is 640 000).

Two measurements per scale:

1. **Scaling table.** Exact LP and SSP against the hybrid tier at its
   production defaults (the ones ``solver="auto"`` dispatches to above
   ``AUTO_HYBRID_CELLS``). Records wall time, relative error vs the exact
   optimum, screened support density, and the certified
   ``screen_error_bound``. The acceptance gate — >= 5x speedup over the
   *best* exact solver at <= 1% relative error on the largest instance —
   is asserted in full mode (``--quick`` keeps the same shape with looser
   thresholds so CI stays under a minute).
2. **Frontier sweep.** epsilon/support_k settings spanning the tolerance
   tiers of ``tests/flow/test_solver_equivalence.py``, showing how the
   certified bound and the realised error tighten as the screen spends
   more time (the data behind the tuning guidance in README.md).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.flow import TransportationProblem, solve_transportation
from repro.flow.sinkhorn_hybrid import (
    last_hybrid_info,
    solve_transportation_sinkhorn_hybrid,
)
from repro.graph.generators import powerlaw_configuration_graph
from repro.shortestpath.dijkstra import multi_source_distances

JSON_PATH = Path(__file__).parent / "BENCH_sinkhorn_hybrid.json"

#: Side lengths of the square reduced instances (cells = side**2); the
#: graph has 4x as many nodes as the instance has bins per side.
FULL = {"sides": (200, 400, 800), "frontier_side": 400, "min_speedup": 5.0, "max_rel_error": 0.01}
QUICK = {"sides": (100, 200), "frontier_side": 200, "min_speedup": 2.0, "max_rel_error": 0.01}

#: (epsilon, support_k) settings for the frontier sweep — the same
#: operating points the tolerance-tier property suite certifies.
FRONTIER = ((0.1, 4), (0.05, "auto"), (0.02, 8), (0.005, 16))


def snd_style_instance(side: int, seed: int) -> TransportationProblem:
    """A Theorem-4-shaped reduced instance from a powerlaw graph.

    Costs are multi-source shortest-path distances from *side* supplier
    nodes to *side* consumer nodes (disconnected pairs get twice the
    finite diameter), shifted by +1 so the exact optimum is strictly
    positive and relative error is well defined.
    """
    graph = powerlaw_configuration_graph(4 * side, -2.3, k_min=2, seed=seed)
    rng = np.random.default_rng(seed)
    suppliers = rng.choice(graph.num_nodes, side, replace=False)
    consumers = rng.choice(graph.num_nodes, side, replace=False)
    costs = multi_source_distances(graph, suppliers)[:, consumers]
    finite = np.isfinite(costs)
    if not finite.all():
        costs[~finite] = (costs[finite].max() if finite.any() else 1.0) * 2.0
    costs = costs + 1.0
    supplies = rng.integers(1, 10, side).astype(float)
    demands = rng.integers(1, 10, side).astype(float)
    demands *= supplies.sum() / demands.sum()
    return TransportationProblem(supplies, demands, costs)


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    cfg = QUICK if quick else FULL

    # --- scaling table: exact tiers vs hybrid defaults ---------------- #
    scaling = []
    for side in cfg["sides"]:
        problem = snd_style_instance(side, seed=0)
        lp_plan, t_lp = _timed(solve_transportation, problem, method="lp")
        ssp_plan, t_ssp = _timed(solve_transportation, problem, method="ssp")
        assert abs(lp_plan.cost - ssp_plan.cost) <= 1e-6 * max(1.0, lp_plan.cost)
        exact_cost = lp_plan.cost
        best_exact = "lp" if t_lp <= t_ssp else "ssp"
        t_best = min(t_lp, t_ssp)

        hybrid_plan, t_hybrid = _timed(
            solve_transportation, problem, method="sinkhorn-hybrid"
        )
        hybrid_plan.validate(problem)
        info = last_hybrid_info()
        rel_error = (hybrid_plan.cost - exact_cost) / exact_cost
        assert rel_error >= -1e-9, "hybrid cost fell below the exact optimum"
        scaling.append(
            {
                "side": side,
                "cells": side * side,
                "exact": {
                    "lp_ms": round(t_lp * 1e3, 1),
                    "ssp_ms": round(t_ssp * 1e3, 1),
                    "best": best_exact,
                    "best_ms": round(t_best * 1e3, 1),
                    "cost": exact_cost,
                },
                "hybrid": {
                    "ms": round(t_hybrid * 1e3, 1),
                    "cost": hybrid_plan.cost,
                    "rel_error": max(0.0, rel_error),
                    "speedup_vs_best_exact": round(t_best / t_hybrid, 2),
                    "support_density": round(info.support_density, 5),
                    "screen_error_bound": info.screen_error_bound,
                    "epsilon": info.epsilon,
                    "support_k": info.support_k,
                },
            }
        )

    largest = scaling[-1]
    acceptance = {
        "largest_side": largest["side"],
        "speedup": largest["hybrid"]["speedup_vs_best_exact"],
        "rel_error": largest["hybrid"]["rel_error"],
        "min_speedup": cfg["min_speedup"],
        "max_rel_error": cfg["max_rel_error"],
    }
    acceptance["pass"] = (
        acceptance["speedup"] >= cfg["min_speedup"]
        and acceptance["rel_error"] <= cfg["max_rel_error"]
    )
    assert acceptance["pass"], (
        f"acceptance gate failed on side={largest['side']}: "
        f"{acceptance['speedup']}x at rel_error={acceptance['rel_error']:.2e} "
        f"(need >= {cfg['min_speedup']}x at <= {cfg['max_rel_error']:.0%})"
    )

    # --- frontier sweep at a mid scale -------------------------------- #
    problem = snd_style_instance(cfg["frontier_side"], seed=0)
    row = next(r for r in scaling if r["side"] == cfg["frontier_side"])
    exact_cost, t_best = row["exact"]["cost"], row["exact"]["best_ms"] / 1e3
    frontier = []
    for epsilon, support_k in FRONTIER:
        plan, t = _timed(
            solve_transportation_sinkhorn_hybrid,
            problem,
            epsilon=epsilon,
            support_k=support_k,
        )
        plan.validate(problem)
        info = last_hybrid_info()
        rel = max(0.0, (plan.cost - exact_cost) / exact_cost)
        if np.isfinite(info.screen_error_bound):
            assert rel <= info.screen_error_bound + 1e-9, (
                "certified bound violated on the frontier sweep"
            )
        frontier.append(
            {
                "epsilon": epsilon,
                "support_k": info.support_k,
                "ms": round(t * 1e3, 1),
                "rel_error": rel,
                "screen_error_bound": info.screen_error_bound,
                "support_density": round(info.support_density, 5),
                "speedup_vs_best_exact": round(t_best / t, 2),
            }
        )

    results = {
        "quick": quick,
        "workload": {
            "generator": "powerlaw -2.3 configuration model, SPD costs (Theorem 4 shape)",
            "sides": list(cfg["sides"]),
            "largest_cells": largest["cells"],
        },
        "scaling": scaling,
        "frontier": {"side": cfg["frontier_side"], "settings": frontier},
        "acceptance": acceptance,
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        [
            f"{r['side']}x{r['side']}",
            r["exact"]["best"],
            r["exact"]["best_ms"],
            r["hybrid"]["ms"],
            r["hybrid"]["speedup_vs_best_exact"],
            f"{r['hybrid']['rel_error']:.1e}",
            f"{r['hybrid']['support_density']:.3f}",
        ]
        for r in scaling
    ]
    print_table(
        "Sinkhorn-hybrid vs best exact tier" + (" (quick)" if quick else ""),
        ["instance", "best exact", "exact ms", "hybrid ms", "speedup", "rel err", "density"],
        rows,
        verbose=verbose,
    )
    frontier_rows = [
        [
            f"eps={f['epsilon']}, k={f['support_k']}",
            f["ms"],
            f"{f['rel_error']:.1e}",
            f"{f['screen_error_bound']:.1e}",
            f"{f['support_density']:.3f}",
        ]
        for f in frontier
    ]
    print_table(
        f"Frontier sweep at {cfg['frontier_side']}x{cfg['frontier_side']}",
        ["setting", "ms", "rel err", "cert bound", "density"],
        frontier_rows,
        verbose=verbose,
    )

    record(
        "sinkhorn_hybrid",
        "speedup_vs_best_exact",
        acceptance["speedup"],
        side=largest["side"],
        quick=quick,
    )
    record(
        "sinkhorn_hybrid",
        "rel_error",
        acceptance["rel_error"],
        side=largest["side"],
        quick=quick,
    )
    return results


def test_sinkhorn_hybrid_bench(benchmark):
    results = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    assert results["acceptance"]["pass"]
    # The certified bound held on every frontier setting (asserted inside),
    # and the screen really is sparse at scale.
    largest = results["scaling"][-1]
    assert largest["hybrid"]["support_density"] < 0.25


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale workload (same assertions)"
    )
    args = parser.parse_args()
    run_experiment(verbose=True, quick=args.quick)
