"""Ablation — bank allocation strategies (§4's design space).

Compares the three bank layouts the paper sketches (one global bank ≈ EMDα;
one bank per bin; one bank per cluster of bins) plus bank multiplicity, on
value sensitivity and computation time. The cluster strategy should retain
the Fig. 5-style discrimination the global bank loses, at a fraction of the
per-bin cost.
"""

from __future__ import annotations

import time


from common import print_table, record
from repro.datasets.synthetic import giant_component_powerlaw
from repro.opinions.dynamics import evolve_state, random_transition, seed_state
from repro.snd import SND, allocate_banks


def build_scene(n: int = 2_000, seed: int = 4):
    graph = giant_component_powerlaw(n, -2.3, k_min=1, seed=seed)
    base = seed_state(graph, 120, seed=seed + 1)
    # Structure-driven vs random follow-up states with matched volume.
    propagated = base
    for _ in range(3):
        propagated = evolve_state(
            graph, propagated, p_nbr=0.8, p_ext=0.0, candidate_fraction=0.2,
            seed=seed + 2,
        )
    volume = propagated.n_active - base.n_active
    scattered = random_transition(graph, base, volume, seed=seed + 3)
    return graph, base, propagated, scattered


def run_experiment(verbose: bool = True) -> dict:
    graph, base, propagated, scattered = build_scene()
    layouts = {
        "global (EMDα-like)": dict(strategy="global", hop_cost=1.0, gamma_scale=0.5),
        "cluster x8": dict(strategy="cluster", n_clusters=8, hop_cost=1.0, gamma_scale=0.5),
        "cluster x24": dict(strategy="cluster", n_clusters=24, hop_cost=1.0, gamma_scale=0.5),
        "cluster x24, 2 banks": dict(
            strategy="cluster", n_clusters=24, n_banks=2, hop_cost=1.0, gamma_scale=0.5
        ),
        "per-bin": dict(strategy="per-bin", hop_cost=1.0, gamma_scale=0.5),
    }
    rows = []
    out = {}
    for name, kwargs in layouts.items():
        banks = allocate_banks(graph, seed=0, **kwargs)
        snd = SND(graph, banks=banks)
        start = time.perf_counter()
        d_prop = snd.distance(base, propagated)
        d_rand = snd.distance(base, scattered)
        elapsed = time.perf_counter() - start
        # Discrimination ratio: how much more expensive random placement is.
        ratio = d_rand / d_prop if d_prop > 0 else float("inf")
        rows.append([name, banks.n_clusters * banks.n_banks, round(d_prop, 1),
                     round(d_rand, 1), round(ratio, 3), round(elapsed, 3)])
        out[name] = {"ratio": ratio, "seconds": elapsed}
        record("ablation_banks", "discrimination_ratio", ratio, layout=name)
    print_table(
        f"Bank-allocation ablation (n={graph.num_nodes}, "
        f"volume={propagated.n_active - base.n_active})",
        ["layout", "#banks", "d(propagated)", "d(random)", "ratio", "sec (2 calls)"],
        rows,
        verbose=verbose,
    )
    return out


def test_cluster_banks_discriminate(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    # Cluster banks must rank random placement as farther...
    assert out["cluster x24"]["ratio"] > 1.02
    # ...and more sharply than the single global bank does.
    assert out["cluster x24"]["ratio"] >= out["global (EMDα-like)"]["ratio"] - 1e-9


if __name__ == "__main__":
    run_experiment()
