"""Bake-off — SND vs scalar polarization measures, head to head.

Runs :func:`repro.analysis.bakeoff.run_bakeoff`: anomaly ROC (AUC and
TPR@FPR<=0.3, the §6.2 protocol) and prediction accuracy (§6.3 protocol)
for SND against the scalar literature baselines (esp, disagreement,
bimodality — see :mod:`repro.analysis.baselines`) and hamming, over two
synthetic k-pole regimes (bipolar and tripolar voting dynamics) and the
simulated political-Twitter pipeline.

Writes the full result tree to ``BENCH_bakeoff.json`` (refreshed by the
CI bake-off job with ``--quick``). The headline the harness exists to
check: scalar measures are competitive on bipolar workloads but lose
information — and rank — once ``k > 2`` forces them onto one axis.
"""

from __future__ import annotations

import json
from pathlib import Path

from common import print_table, record
from repro.analysis.bakeoff import (
    DEFAULT_MEASURES,
    default_regimes,
    run_bakeoff,
)

JSON_PATH = Path(__file__).parent / "BENCH_bakeoff.json"

FULL = dict(
    n_nodes=400,
    n_states=16,
    twitter_users=None,  # paper-scale default of the Twitter pipeline
    n_targets=10,
    n_repeats=3,
    n_assignments=40,
)
QUICK = dict(
    n_nodes=150,
    n_states=10,
    twitter_users=100,
    n_targets=6,
    n_repeats=2,
    n_assignments=12,
)


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    cfg = QUICK if quick else FULL
    regimes = default_regimes(n_nodes=cfg["n_nodes"], n_states=cfg["n_states"])
    results = run_bakeoff(
        regimes=regimes,
        include_twitter=True,
        twitter_users=cfg["twitter_users"],
        n_targets=cfg["n_targets"],
        window=3,
        n_repeats=cfg["n_repeats"],
        n_assignments=cfg["n_assignments"],
        seed=7,
    )
    results["config"] = {"quick": quick, **cfg}

    rows = []
    for regime_name, entry in results["regimes"].items():
        for measure in results["measures"]:
            anomaly = entry["anomaly"][measure]
            prediction = entry["prediction"][measure]
            rows.append(
                [
                    regime_name,
                    measure,
                    anomaly["auc"],
                    anomaly["tpr_at_fpr_0.3"],
                    prediction["accuracy_mean"],
                    prediction["accuracy_std"],
                ]
            )
            record(
                "bakeoff",
                "auc",
                anomaly["auc"],
                regime=regime_name,
                measure=measure,
            )
            record(
                "bakeoff",
                "accuracy",
                prediction["accuracy_mean"],
                regime=regime_name,
                measure=measure,
            )
    print_table(
        "Bake-off — SND vs scalar polarization measures "
        f"({'quick' if quick else 'full'} tier)",
        ["regime", "measure", "AUC", "TPR@0.3", "acc %", "± %"],
        rows,
        verbose=verbose,
    )

    JSON_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if verbose:
        print(f"wrote {JSON_PATH}")
    return results


def test_bakeoff(benchmark):
    outputs = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    # Coverage contract: SND plus >= 2 scalar baselines, >= 2 synthetic
    # regimes (one of them genuinely multipolar) plus the Twitter leg,
    # each scored on both anomaly ROC and prediction.
    assert "snd" in outputs["measures"]
    assert len(set(outputs["measures"]) & {"esp", "disagreement", "bimodality"}) >= 2
    regimes = outputs["regimes"]
    assert {"bipolar-burst", "tripolar-drift", "twitter"} <= set(regimes)
    assert regimes["tripolar-drift"]["n_poles"] >= 3
    for entry in regimes.values():
        for measure in outputs["measures"]:
            assert 0.0 <= entry["anomaly"][measure]["auc"] <= 1.0
            assert 0.0 <= entry["anomaly"][measure]["tpr_at_fpr_0.3"] <= 1.0
            assert 0.0 <= entry["prediction"][measure]["accuracy_mean"] <= 100.0
    assert JSON_PATH.exists()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI tier: smaller regimes, fewer prediction repeats",
    )
    args = parser.parse_args()
    run_experiment(quick=args.quick)
