"""Pytest wiring for the benchmark suite."""

import sys
from pathlib import Path

# Bench modules import each other / common.py by module name.
sys.path.insert(0, str(Path(__file__).parent))
