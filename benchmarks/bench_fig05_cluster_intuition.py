"""Fig. 5 — EMD* distinguishes propagated from randomly placed extra mass.

Three histograms over a two-cluster bridge graph: G1 fills cluster C1; G2
adds mass to C2 right behind the bridges ("propagated"); G3 adds the same
mass at random C2 positions. The paper's claim (§4):

* EMD*(G1, G2) < EMD*(G1, G3)      — only EMD* ranks by plausibility;
* EMDα(G1, G2) = EMDα(G1, G3)      — single global bank is position-blind;
* EMD̂(G1, G2) = EMD̂(G1, G3)       — ditto (and equals EMDα, Thm. 2);
* EMD(G1, G2) = EMD(G1, G3) = 0    — classic EMD ignores the mismatch.
"""

from __future__ import annotations

import numpy as np

from common import print_table, record
from repro.emd import emd, emd_alpha, emd_hat, emd_star
from repro.graph.generators import two_cluster_graph
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState
from repro.snd.direct import dense_ground_distance
from repro.snd.ground import GroundDistanceConfig


def build_instance(cluster_size: int = 16, seed: int = 5):
    graph, labels, bridges = two_cluster_graph(
        cluster_size, p_in=0.3, n_bridges=3, seed=seed
    )
    n = graph.num_nodes
    config = GroundDistanceConfig(model=ModelAgnostic(), max_cost=16)
    dense = dense_ground_distance(graph, NetworkState.neutral(n), 1, config=config)

    c1 = np.flatnonzero(labels == 0)
    c2 = np.flatnonzero(labels == 1)
    rng = np.random.default_rng(seed)

    g1 = np.zeros(n)
    g1[c1] = 1.0
    g2 = g1.copy()
    bridge_targets = [v for _, v in bridges]  # C2 endpoints of the bridges
    g2[bridge_targets] = 2.0  # propagated: right behind the bridges
    g3 = g1.copy()
    far = rng.choice(
        np.setdiff1d(c2, np.asarray(bridge_targets)),
        size=len(bridge_targets),
        replace=False,
    )
    g3[far] = 2.0  # same extra mass, random placement
    clusters = [c1, c2]
    return dense, clusters, g1, g2, g3


def run_experiment(verbose: bool = True) -> dict:
    dense, clusters, g1, g2, g3 = build_instance()
    values = {
        "emd_star": (
            emd_star(g1, g2, dense, clusters),
            emd_star(g1, g3, dense, clusters),
        ),
        "emd_alpha": (emd_alpha(g1, g2, dense), emd_alpha(g1, g3, dense)),
        "emd_hat": (emd_hat(g1, g2, dense), emd_hat(g1, g3, dense)),
        "emd": (emd(g1, g2, dense), emd(g1, g3, dense)),
    }
    rows = []
    for name, (near, far) in values.items():
        verdict = "G2 closer" if near < far - 1e-9 else (
            "equidistant" if abs(near - far) < 1e-6 else "G3 closer")
        rows.append([name, near, far, verdict])
        record("fig5", f"{name}_near", near)
        record("fig5", f"{name}_far", far)
    print_table(
        "Fig. 5 — propagated (G2) vs random (G3) extra mass",
        ["measure", "d(G1,G2)", "d(G1,G3)", "verdict"],
        rows,
        verbose=verbose,
    )
    ok = (
        values["emd_star"][0] < values["emd_star"][1]
        and abs(values["emd_alpha"][0] - values["emd_alpha"][1]) < 1e-6
        and abs(values["emd_hat"][0] - values["emd_hat"][1]) < 1e-6
        and abs(values["emd"][0]) < 1e-9
    )
    if verbose:
        print(f"paper shape reproduced: {ok}")
    return {"values": values, "shape_ok": ok}


def test_fig5_shape(benchmark):
    result = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert result["shape_ok"]
    near, far = result["values"]["emd_star"]
    assert near < far


def test_fig5_emd_star_core(benchmark):
    """Micro-benchmark: one EMD* evaluation on the Fig. 5 instance."""
    dense, clusters, g1, g2, _ = build_instance()
    value = benchmark(lambda: emd_star(g1, g2, dense, clusters))
    assert value >= 0


if __name__ == "__main__":
    run_experiment()
