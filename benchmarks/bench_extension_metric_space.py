"""Extension — §9's future-work applications built on SND's metricity.

The paper proposes (future work) using SND for "network state
classification, clustering, and search". This bench exercises all three on
regime-labelled data:

* clustering — k-medoids over pairwise SND separates ICC-driven from
  random transitions without labels;
* classification — 1-NN on per-unit SND recovers the regime labels;
* search — the VP-tree answers nearest-state queries with fewer distance
  evaluations than brute force (triangle-inequality pruning).
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, print_table, record
from repro.analysis.metric_space import KnnStateClassifier, VPTree, k_medoids
from repro.datasets.synthetic import icc_transition_pairs


def run_experiment(verbose: bool = True) -> dict:
    graph, pairs = icc_transition_pairs(n_nodes=2_000, n_pairs=16, n_seeds=50, seed=6)
    snd = experiment_snd(graph, n_clusters=8)

    # Feature per transition: per-unit SND (the Fig. 10 statistic).
    features = []
    labels = []
    for g1, g2, anomalous in pairs:
        features.append(snd.distance(g1, g2) / max(1, g1.n_delta(g2)))
        labels.append("random" if anomalous else "icc")
    feats = np.asarray(features)

    # --- clustering: k-medoids over |fi - fj| ------------------------- #
    dmat = np.abs(feats[:, None] - feats[None, :])
    cluster_labels, medoids, _ = k_medoids(dmat, 2, seed=0)
    # Purity against the ground-truth regimes.
    purity = 0.0
    for c in (0, 1):
        members = [labels[i] for i in np.flatnonzero(cluster_labels == c)]
        if members:
            purity += max(members.count("icc"), members.count("random"))
    purity /= len(labels)

    # --- classification: 1-NN leave-half-out -------------------------- #
    half = len(feats) // 2
    clf = KnnStateClassifier(lambda a, b: abs(float(a) - float(b)), k=1)
    clf.fit(list(feats[:half]), labels[:half])
    accuracy = clf.score(list(feats[half:]), labels[half:])

    # --- search: VP-tree pruning vs brute force ----------------------- #
    tree = VPTree(
        list(feats), lambda a, b: abs(float(a) - float(b)), seed=0
    )
    evaluations = 0
    queries = 10
    rng = np.random.default_rng(1)
    for _ in range(queries):
        tree.nearest(float(rng.uniform(feats.min(), feats.max())))
        evaluations += tree.last_query_evaluations
    saved = 1.0 - evaluations / (queries * len(feats))

    rows = [
        ["k-medoids clustering purity", round(purity, 3)],
        ["1-NN classification accuracy", round(accuracy, 3)],
        ["VP-tree distance evals saved", f"{saved:.0%}"],
    ]
    print_table("§9 extension — SND as a metric space", ["application", "result"], rows,
                verbose=verbose)
    record("extension_metric_space", "clustering_purity", purity)
    record("extension_metric_space", "knn_accuracy", accuracy)
    record("extension_metric_space", "vptree_savings", saved)
    return {"purity": purity, "accuracy": accuracy, "saved": saved}


def test_metric_space_applications(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert out["purity"] >= 0.65
    assert out["accuracy"] >= 0.6
    assert out["saved"] > 0.0


if __name__ == "__main__":
    run_experiment()
