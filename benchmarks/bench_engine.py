"""Persistent-engine benchmark — pool persistence + incremental extension.

Measures the two levers PR 3 adds over the PR-2 batch layer, writing
``benchmarks/BENCH_engine.json``:

1. **Persistent vs per-call pool.** ``R`` repeated sweeps of the same
   series through (a) the batch wrapper with ``jobs=J`` — the PR-2 path,
   which launches a fresh process pool (and re-pickles the SND instance)
   on every call — and (b) one long-lived :class:`~repro.snd.SNDEngine`
   whose workers attach once to the shared-memory state matrix
   (``pool_starts == 1`` is asserted). Also records ``jobs="auto"``
   (which resolves to serial on single-CPU hosts, so the engine is never
   slower than serial there) against the serial sweep.
2. **Incremental vs from-scratch corpus extension.** Appending ``k``
   states to an ``N``-state :class:`~repro.snd.Corpus` must solve exactly
   ``k·N + k·(k-1)/2`` fresh pairs (counter-asserted through the
   :class:`~repro.snd.TransitionCache`) and produce a matrix bit-identical
   to the from-scratch ``(N+k)``-state sweep.

The engine's unified cache-hierarchy counters
(:meth:`~repro.snd.CacheManager.stats`) are embedded in the JSON.
``--quick`` shrinks the workload for CI (same assertions, smaller graph).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.snd import SND, Corpus, SNDEngine

JSON_PATH = Path(__file__).parent / "BENCH_engine.json"

#: Full scale mirrors the CLI ``generate`` defaults (the acceptance
#: workload of BENCH_batch_series); quick scale keeps CI under a minute.
FULL = {"n_nodes": 2000, "n_states": 12, "n_seeds": 100, "corpus_base": 8, "k": 2, "sweeps": 3}
QUICK = {"n_nodes": 400, "n_states": 8, "n_seeds": 30, "corpus_base": 6, "k": 2, "sweeps": 3}


def _dataset(cfg):
    graph = powerlaw_configuration_graph(cfg["n_nodes"], -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        cfg["n_states"],
        n_seeds=cfg["n_seeds"],
        p_nbr=0.10,
        p_ext=0.01,
        candidate_fraction=0.05,
        seed=0,
    )
    return graph, series


def _snd(graph) -> SND:
    return SND(graph, n_clusters=24, seed=0)


def _distinct_states(series, count):
    """The first *count* series states, nudged until pairwise-distinct.

    The transition cache is content-keyed, so duplicate states would let
    the incremental extension answer some "new" pairs from the cache —
    legitimate reuse, but it would blur the exact ``k·N + k·(k-1)/2``
    counter assertion this benchmark exists to make.
    """
    states, seen = [], set()
    for s in list(series)[:count]:
        user = 0
        while s.values.tobytes() in seen:
            s = s.with_opinions([user], 1 if s[user] != 1 else -1)
            user += 1
        seen.add(s.values.tobytes())
        states.append(s)
    return states


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    cfg = QUICK if quick else FULL
    graph, series = _dataset(cfg)
    jobs = max(2, min(4, os.cpu_count() or 1))
    sweeps = cfg["sweeps"]

    snd = _snd(graph)
    snd.distance(series[0], series[1])  # warm imports / module caches

    # --- serial baseline (one sweep) --------------------------------- #
    t0 = time.perf_counter()
    v_serial = snd.evaluate_series(series)
    t_serial = time.perf_counter() - t0

    # --- PR-2 per-call pool: R sweeps, one pool launch per sweep ----- #
    snd_percall = _snd(graph)
    snd_percall.distance(series[0], series[1])
    t0 = time.perf_counter()
    for _ in range(sweeps):
        v_percall = snd_percall.evaluate_series(series, jobs=jobs)
    t_percall = time.perf_counter() - t0

    # --- persistent engine: R sweeps, one pool launch total ---------- #
    with SNDEngine(_snd(graph), jobs=jobs, executor="process") as engine:
        engine.snd.distance(series[0], series[1])
        t0 = time.perf_counter()
        for _ in range(sweeps):
            v_persistent = engine.evaluate_series(series)
        t_persistent = time.perf_counter() - t0
        pool_starts = engine.pool_starts
        engine_cache_stats = engine.stats()["caches"]
    assert pool_starts == 1, f"persistent pool launched {pool_starts} times"

    # --- jobs="auto": serial on 1-CPU hosts, pooled otherwise -------- #
    with SNDEngine(_snd(graph), jobs="auto") as engine_auto:
        engine_auto.snd.distance(series[0], series[1])
        t0 = time.perf_counter()
        v_auto = engine_auto.evaluate_series(series)
        t_auto = time.perf_counter() - t0
        auto_jobs = engine_auto.jobs

    for name, v in (("percall", v_percall), ("persistent", v_persistent), ("auto", v_auto)):
        diff = float(np.max(np.abs(v - v_serial)))
        assert diff <= 1e-9, f"{name} sweep deviates from serial ({diff})"

    # --- corpus: incremental extension vs from scratch --------------- #
    base_n, k = cfg["corpus_base"], cfg["k"]
    states = _distinct_states(series, base_n + k)
    snd_scratch = _snd(graph)
    t0 = time.perf_counter()
    m_scratch = snd_scratch.pairwise_matrix(states)
    t_scratch = time.perf_counter() - t0

    with SNDEngine(_snd(graph), jobs=None) as corpus_engine:
        corpus = Corpus(corpus_engine, states[:base_n])  # untimed priming
        before = corpus_engine.caches.transitions.fresh
        t0 = time.perf_counter()
        m_incremental = corpus.extend(states[base_n:])
        t_incremental = time.perf_counter() - t0
        pairs_solved = corpus_engine.caches.transitions.fresh - before
        corpus_cache_stats = corpus_engine.stats()["caches"]
    pairs_expected = k * base_n + k * (k - 1) // 2
    assert pairs_solved == pairs_expected, (
        f"extension solved {pairs_solved} pairs, expected {pairs_expected}"
    )
    assert np.array_equal(m_incremental, m_scratch), (
        "incremental corpus matrix deviates from the from-scratch sweep"
    )

    results = {
        "quick": quick,
        "workload": {
            "n_nodes": graph.num_nodes,
            "n_edges": graph.num_edges,
            "n_states": len(series),
            "generator": "powerlaw -2.3 configuration model",
        },
        "host": {"cpu_count": os.cpu_count(), "jobs": jobs, "auto_jobs": auto_jobs},
        "series": {
            "sweeps": sweeps,
            "timings_ms": {
                "serial_one_sweep": round(t_serial * 1e3, 2),
                "percall_pool_total": round(t_percall * 1e3, 2),
                "persistent_pool_total": round(t_persistent * 1e3, 2),
                "engine_auto_one_sweep": round(t_auto * 1e3, 2),
            },
            "pool_starts": {"percall": sweeps, "persistent": 1},
            "persistent_speedup_vs_percall": round(t_percall / t_persistent, 3),
            "engine_auto_vs_serial": round(t_serial / t_auto, 3),
        },
        "corpus": {
            "n_base": base_n,
            "k_appended": k,
            "from_scratch_ms": round(t_scratch * 1e3, 2),
            "incremental_ms": round(t_incremental * 1e3, 2),
            "incremental_speedup": round(t_scratch / t_incremental, 3),
            "pairs_solved_incremental": int(pairs_solved),
            "pairs_expected": int(pairs_expected),
            "pairs_from_scratch": (base_n + k) * (base_n + k - 1) // 2,
            "bit_identical": True,
        },
        # Two vantage points on the unified hierarchy: the parallel engine
        # (parent-side caches idle — workers keep private hierarchies) and
        # the serial corpus engine (every counter live).
        "cache_stats": {
            "persistent_engine": engine_cache_stats,
            "corpus_engine": corpus_cache_stats,
        },
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["serial (1 sweep)", results["series"]["timings_ms"]["serial_one_sweep"], "-"],
        [
            f"per-call pool, jobs={jobs} ({sweeps} sweeps, {sweeps} launches)",
            results["series"]["timings_ms"]["percall_pool_total"],
            1.0,
        ],
        [
            f"persistent engine, jobs={jobs} ({sweeps} sweeps, 1 launch)",
            results["series"]["timings_ms"]["persistent_pool_total"],
            results["series"]["persistent_speedup_vs_percall"],
        ],
        [
            f"engine jobs=auto (-> {auto_jobs})",
            results["series"]["timings_ms"]["engine_auto_one_sweep"],
            "-",
        ],
        [
            f"corpus from scratch (N+k = {base_n + k})",
            results["corpus"]["from_scratch_ms"],
            "-",
        ],
        [
            f"corpus incremental extend (k = {k})",
            results["corpus"]["incremental_ms"],
            results["corpus"]["incremental_speedup"],
        ],
    ]
    print_table(
        f"Persistent engine on n={graph.num_nodes}, T={len(series)}"
        + (" (quick)" if quick else ""),
        ["path", "ms", "speedup"],
        rows,
        verbose=verbose,
    )
    if verbose and (os.cpu_count() or 1) < 2:
        print(
            "note: single-CPU host — pooled rows cannot beat serial here; "
            "jobs='auto' resolves to serial by design"
        )

    record(
        "engine",
        "persistent_speedup_vs_percall",
        results["series"]["persistent_speedup_vs_percall"],
        jobs=jobs,
    )
    record(
        "engine",
        "incremental_speedup",
        results["corpus"]["incremental_speedup"],
        n_base=base_n,
        k=k,
    )
    return results


def test_engine_bench(benchmark):
    results = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    corpus = results["corpus"]
    assert corpus["pairs_solved_incremental"] == corpus["pairs_expected"]
    assert corpus["bit_identical"]
    # Solving only the new pairs must beat re-solving all of them.
    assert corpus["incremental_speedup"] > 1.0
    # The persistent pool skips R-1 pool launches; allow generous noise
    # margin but it must not be meaningfully slower than per-call pools.
    assert results["series"]["persistent_speedup_vs_percall"] >= 0.8


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale workload (same assertions)"
    )
    args = parser.parse_args()
    run_experiment(verbose=True, quick=args.quick)
