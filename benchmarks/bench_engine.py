"""Persistent-engine benchmark — pool persistence + incremental extension.

Measures the two levers PR 3 adds over the PR-2 batch layer, writing
``benchmarks/BENCH_engine.json``:

1. **Persistent vs per-call pool.** ``R`` repeated sweeps of the same
   series through (a) the batch wrapper with ``jobs=J`` — the PR-2 path,
   which launches a fresh process pool (and re-pickles the SND instance)
   on every call — and (b) one long-lived :class:`~repro.snd.SNDEngine`
   whose workers attach once to the shared-memory state matrix
   (``pool_starts == 1`` is asserted). Also records ``jobs="auto"``
   (which resolves to serial on single-CPU hosts, so the engine is never
   slower than serial there) against the serial sweep.
2. **Incremental vs from-scratch corpus extension.** Appending ``k``
   states to an ``N``-state :class:`~repro.snd.Corpus` must solve exactly
   ``k·N + k·(k-1)/2`` fresh pairs (counter-asserted through the
   :class:`~repro.snd.TransitionCache`) and produce a matrix bit-identical
   to the from-scratch ``(N+k)``-state sweep.
3. **Warm-started network simplex.** A flare-return series (baseline
   state, recurring flare perturbations around it — the paper's
   stationary-background regime) swept with ``solver="network-simplex"``
   twice: cold (``use_basis_cache=False``) and warm (the engine threads
   its :class:`~repro.snd.cache.BasisCache` into every term). Pivots per
   solve come from :data:`repro.flow.network_simplex.SIMPLEX_METRICS`
   snapshot deltas (engines run serially so the counters stay
   in-process); the warm sweep must cut them by >= 2x on both the
   windowed sweep and a corpus append, with values identical to 1e-9.

The engine's unified cache-hierarchy counters
(:meth:`~repro.snd.CacheManager.stats`) are embedded in the JSON.
``--quick`` shrinks the workload for CI (same assertions, smaller graph).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.flow.network_simplex import SIMPLEX_METRICS
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.opinions.state import NetworkState, StateSeries
from repro.snd import SND, Corpus, SNDEngine

JSON_PATH = Path(__file__).parent / "BENCH_engine.json"

#: Full scale mirrors the CLI ``generate`` defaults (the acceptance
#: workload of BENCH_batch_series); quick scale keeps CI under a minute.
FULL = {
    "n_nodes": 2000, "n_states": 12, "n_seeds": 100, "corpus_base": 8, "k": 2,
    "sweeps": 3,
    "flare": {"n_base": 100, "n_dropped": 20, "n_core": 15, "n_drift": 2,
              "n_flares": 10, "corpus_base": 6, "corpus_ext": 3},
}
QUICK = {
    "n_nodes": 400, "n_states": 8, "n_seeds": 30, "corpus_base": 6, "k": 2,
    "sweeps": 3,
    "flare": {"n_base": 30, "n_dropped": 5, "n_core": 6, "n_drift": 1,
              "n_flares": 8, "corpus_base": 5, "corpus_ext": 2},
}


def _dataset(cfg):
    graph = powerlaw_configuration_graph(cfg["n_nodes"], -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        cfg["n_states"],
        n_seeds=cfg["n_seeds"],
        p_nbr=0.10,
        p_ext=0.01,
        candidate_fraction=0.05,
        seed=0,
    )
    return graph, series


def _snd(graph) -> SND:
    return SND(graph, n_clusters=24, seed=0)


def _distinct_states(series, count):
    """The first *count* series states, nudged until pairwise-distinct.

    The transition cache is content-keyed, so duplicate states would let
    the incremental extension answer some "new" pairs from the cache —
    legitimate reuse, but it would blur the exact ``k·N + k·(k-1)/2``
    counter assertion this benchmark exists to make.
    """
    states, seen = [], set()
    for s in list(series)[:count]:
        user = 0
        while s.values.tobytes() in seen:
            s = s.with_opinions([user], 1 if s[user] != 1 else -1)
            user += 1
        seen.add(s.values.tobytes())
        states.append(s)
    return states


def _flare_states(graph, fc, seed=1):
    """Baseline state plus recurring flare perturbations around it.

    Each flare silences a fixed slice of baseline adopters, ignites a
    fixed core, and adds a per-flare drifting fringe — so consecutive
    reduced instances (Lemma 2 cancels the common mass) share most of
    their surplus labels. That is the temporal-locality regime the basis
    cache exists for: exact hits on recurring transitions, reverse hits
    on the opposite term order, supplier hits across the drifting fringe.
    """
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    nodes = rng.permutation(n)
    nb, nc, nd = fc["n_base"], fc["n_core"], fc["n_drift"]
    base_pos = sorted(nodes[:nb].tolist())
    base_neg = sorted(nodes[nb:2 * nb].tolist())
    dropped = set(base_pos[:fc["n_dropped"]])
    core_pos = sorted(nodes[2 * nb:2 * nb + nc].tolist())
    core_neg = sorted(nodes[2 * nb + nc:2 * nb + 2 * nc].tolist())
    drift = nodes[2 * nb + 2 * nc:].tolist()

    baseline = NetworkState.from_active_sets(
        n, positive=base_pos, negative=base_neg
    )

    def flare(t):
        lo = 2 * nd * t
        return NetworkState.from_active_sets(
            n,
            positive=[u for u in base_pos if u not in dropped]
            + core_pos + drift[lo:lo + nd],
            negative=base_neg + core_neg + drift[lo + nd:lo + 2 * nd],
        )

    return baseline, [flare(t) for t in range(fc["n_flares"])]


def _pivot_stats(before, after):
    d = {
        k: after[k] - before[k]
        for k in ("solves", "cold_solves", "warm_solves", "cold_pivots",
                  "warm_pivots")
    }
    d["pivots_per_solve"] = round(
        (d["cold_pivots"] + d["warm_pivots"]) / max(d["solves"], 1), 3
    )
    return d


def _network_simplex_section(graph, cfg, verbose):
    """Cold vs warm network-simplex sweeps; returns (results, table rows)."""
    fc = cfg["flare"]
    baseline, flares = _flare_states(graph, fc)
    series = StateSeries(
        [baseline] + [s for f in flares for s in (f, baseline)]
    )
    nb_corpus = fc["corpus_base"] + fc["corpus_ext"]
    corpus_states = ([baseline] + flares)[:nb_corpus]
    base_states = corpus_states[:fc["corpus_base"]]
    ext_states = corpus_states[fc["corpus_base"]:]

    def ns_engine(use_basis):
        snd = SND(graph, n_clusters=24, seed=0, solver="network-simplex")
        # Serial on purpose: SIMPLEX_METRICS is process-local, so pool
        # workers would accumulate pivots out of the parent's sight.
        return SNDEngine(snd, jobs=None, use_basis_cache=use_basis)

    def sweep(use_basis):
        SIMPLEX_METRICS.reset()
        with ns_engine(use_basis) as engine:
            before = SIMPLEX_METRICS.snapshot()
            t0 = time.perf_counter()
            values = engine.evaluate_series(series)
            dt = time.perf_counter() - t0
            stats = _pivot_stats(before, SIMPLEX_METRICS.snapshot())
            bases = engine.stats()["caches"]["bases"]
        return values, dt, stats, bases

    def append(use_basis):
        SIMPLEX_METRICS.reset()
        with ns_engine(use_basis) as engine:
            corpus = Corpus(engine, base_states)  # untimed priming
            before = SIMPLEX_METRICS.snapshot()
            t0 = time.perf_counter()
            matrix = corpus.extend(ext_states)
            dt = time.perf_counter() - t0
            stats = _pivot_stats(before, SIMPLEX_METRICS.snapshot())
            bases = engine.stats()["caches"]["bases"]
        return matrix, dt, stats, bases

    v_cold, t_cold, sweep_cold, _ = sweep(False)
    v_warm, t_warm, sweep_warm, sweep_bases = sweep("auto")
    assert np.allclose(v_cold, v_warm, atol=1e-9), (
        "warm-started sweep deviates from the cold network-simplex sweep"
    )
    m_cold, ta_cold, app_cold, _ = append(False)
    m_warm, ta_warm, app_warm, app_bases = append("auto")
    assert np.allclose(m_cold, m_warm, atol=1e-9), (
        "warm-started corpus append deviates from the cold sweep"
    )

    def reduction(cold, warm):
        return round(cold["pivots_per_solve"] / max(warm["pivots_per_solve"], 1e-12), 3)

    results = {
        "solver": "network-simplex",
        "windowed_sweep": {
            "n_transitions": len(series) - 1,
            "cold": sweep_cold, "warm": sweep_warm,
            "cold_ms": round(t_cold * 1e3, 2),
            "warm_ms": round(t_warm * 1e3, 2),
            "pivot_reduction": reduction(sweep_cold, sweep_warm),
            "wall_speedup": round(t_cold / t_warm, 3),
            "basis_cache": sweep_bases,
        },
        "corpus_append": {
            "n_base": fc["corpus_base"], "k_appended": fc["corpus_ext"],
            "cold": app_cold, "warm": app_warm,
            "cold_ms": round(ta_cold * 1e3, 2),
            "warm_ms": round(ta_warm * 1e3, 2),
            "pivot_reduction": reduction(app_cold, app_warm),
            "wall_speedup": round(ta_cold / ta_warm, 3),
            "basis_cache": app_bases,
        },
    }
    for name in ("windowed_sweep", "corpus_append"):
        section = results[name]
        assert section["pivot_reduction"] >= 2.0, (
            f"warm start cut {name} pivots/solve only "
            f"{section['pivot_reduction']}x (need >= 2x)"
        )
        assert section["wall_speedup"] >= 0.8, (
            f"warm start slowed the {name} wall clock down "
            f"({section['wall_speedup']}x)"
        )
    rows = [
        [
            f"NS windowed sweep cold ({sweep_cold['pivots_per_solve']} pivots/solve)",
            results["windowed_sweep"]["cold_ms"], "-",
        ],
        [
            f"NS windowed sweep warm ({sweep_warm['pivots_per_solve']} pivots/solve)",
            results["windowed_sweep"]["warm_ms"],
            results["windowed_sweep"]["wall_speedup"],
        ],
        [
            f"NS corpus append cold ({app_cold['pivots_per_solve']} pivots/solve)",
            results["corpus_append"]["cold_ms"], "-",
        ],
        [
            f"NS corpus append warm ({app_warm['pivots_per_solve']} pivots/solve)",
            results["corpus_append"]["warm_ms"],
            results["corpus_append"]["wall_speedup"],
        ],
    ]
    return results, rows


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    cfg = QUICK if quick else FULL
    graph, series = _dataset(cfg)
    jobs = max(2, min(4, os.cpu_count() or 1))
    sweeps = cfg["sweeps"]

    snd = _snd(graph)
    snd.distance(series[0], series[1])  # warm imports / module caches

    # --- serial baseline (one sweep) --------------------------------- #
    t0 = time.perf_counter()
    v_serial = snd.evaluate_series(series)
    t_serial = time.perf_counter() - t0

    # --- PR-2 per-call pool: R sweeps, one pool launch per sweep ----- #
    snd_percall = _snd(graph)
    snd_percall.distance(series[0], series[1])
    t0 = time.perf_counter()
    for _ in range(sweeps):
        v_percall = snd_percall.evaluate_series(series, jobs=jobs)
    t_percall = time.perf_counter() - t0

    # --- persistent engine: R sweeps, one pool launch total ---------- #
    with SNDEngine(_snd(graph), jobs=jobs, executor="process") as engine:
        engine.snd.distance(series[0], series[1])
        t0 = time.perf_counter()
        for _ in range(sweeps):
            v_persistent = engine.evaluate_series(series)
        t_persistent = time.perf_counter() - t0
        pool_starts = engine.pool_starts
        engine_cache_stats = engine.stats()["caches"]
    assert pool_starts == 1, f"persistent pool launched {pool_starts} times"

    # --- jobs="auto": serial on 1-CPU hosts, pooled otherwise -------- #
    with SNDEngine(_snd(graph), jobs="auto") as engine_auto:
        engine_auto.snd.distance(series[0], series[1])
        t0 = time.perf_counter()
        v_auto = engine_auto.evaluate_series(series)
        t_auto = time.perf_counter() - t0
        auto_jobs = engine_auto.jobs

    for name, v in (("percall", v_percall), ("persistent", v_persistent), ("auto", v_auto)):
        diff = float(np.max(np.abs(v - v_serial)))
        assert diff <= 1e-9, f"{name} sweep deviates from serial ({diff})"

    # --- corpus: incremental extension vs from scratch --------------- #
    base_n, k = cfg["corpus_base"], cfg["k"]
    states = _distinct_states(series, base_n + k)
    snd_scratch = _snd(graph)
    t0 = time.perf_counter()
    m_scratch = snd_scratch.pairwise_matrix(states)
    t_scratch = time.perf_counter() - t0

    with SNDEngine(_snd(graph), jobs=None) as corpus_engine:
        corpus = Corpus(corpus_engine, states[:base_n])  # untimed priming
        before = corpus_engine.caches.transitions.fresh
        t0 = time.perf_counter()
        m_incremental = corpus.extend(states[base_n:])
        t_incremental = time.perf_counter() - t0
        pairs_solved = corpus_engine.caches.transitions.fresh - before
        corpus_cache_stats = corpus_engine.stats()["caches"]
    pairs_expected = k * base_n + k * (k - 1) // 2
    assert pairs_solved == pairs_expected, (
        f"extension solved {pairs_solved} pairs, expected {pairs_expected}"
    )
    assert np.array_equal(m_incremental, m_scratch), (
        "incremental corpus matrix deviates from the from-scratch sweep"
    )

    # --- warm-started network simplex: cold vs warm pivots ----------- #
    ns_results, ns_rows = _network_simplex_section(graph, cfg, verbose)

    results = {
        "quick": quick,
        "workload": {
            "n_nodes": graph.num_nodes,
            "n_edges": graph.num_edges,
            "n_states": len(series),
            "generator": "powerlaw -2.3 configuration model",
        },
        "host": {"cpu_count": os.cpu_count(), "jobs": jobs, "auto_jobs": auto_jobs},
        "series": {
            "sweeps": sweeps,
            "timings_ms": {
                "serial_one_sweep": round(t_serial * 1e3, 2),
                "percall_pool_total": round(t_percall * 1e3, 2),
                "persistent_pool_total": round(t_persistent * 1e3, 2),
                "engine_auto_one_sweep": round(t_auto * 1e3, 2),
            },
            "pool_starts": {"percall": sweeps, "persistent": 1},
            "persistent_speedup_vs_percall": round(t_percall / t_persistent, 3),
            "engine_auto_vs_serial": round(t_serial / t_auto, 3),
        },
        "corpus": {
            "n_base": base_n,
            "k_appended": k,
            "from_scratch_ms": round(t_scratch * 1e3, 2),
            "incremental_ms": round(t_incremental * 1e3, 2),
            "incremental_speedup": round(t_scratch / t_incremental, 3),
            "pairs_solved_incremental": int(pairs_solved),
            "pairs_expected": int(pairs_expected),
            "pairs_from_scratch": (base_n + k) * (base_n + k - 1) // 2,
            "bit_identical": True,
        },
        "network_simplex": ns_results,
        # Two vantage points on the unified hierarchy: the parallel engine
        # (parent-side caches idle — workers keep private hierarchies) and
        # the serial corpus engine (every counter live).
        "cache_stats": {
            "persistent_engine": engine_cache_stats,
            "corpus_engine": corpus_cache_stats,
        },
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["serial (1 sweep)", results["series"]["timings_ms"]["serial_one_sweep"], "-"],
        [
            f"per-call pool, jobs={jobs} ({sweeps} sweeps, {sweeps} launches)",
            results["series"]["timings_ms"]["percall_pool_total"],
            1.0,
        ],
        [
            f"persistent engine, jobs={jobs} ({sweeps} sweeps, 1 launch)",
            results["series"]["timings_ms"]["persistent_pool_total"],
            results["series"]["persistent_speedup_vs_percall"],
        ],
        [
            f"engine jobs=auto (-> {auto_jobs})",
            results["series"]["timings_ms"]["engine_auto_one_sweep"],
            "-",
        ],
        [
            f"corpus from scratch (N+k = {base_n + k})",
            results["corpus"]["from_scratch_ms"],
            "-",
        ],
        [
            f"corpus incremental extend (k = {k})",
            results["corpus"]["incremental_ms"],
            results["corpus"]["incremental_speedup"],
        ],
        *ns_rows,
    ]
    print_table(
        f"Persistent engine on n={graph.num_nodes}, T={len(series)}"
        + (" (quick)" if quick else ""),
        ["path", "ms", "speedup"],
        rows,
        verbose=verbose,
    )
    if verbose and (os.cpu_count() or 1) < 2:
        print(
            "note: single-CPU host — pooled rows cannot beat serial here; "
            "jobs='auto' resolves to serial by design"
        )

    record(
        "engine",
        "persistent_speedup_vs_percall",
        results["series"]["persistent_speedup_vs_percall"],
        jobs=jobs,
    )
    record(
        "engine",
        "incremental_speedup",
        results["corpus"]["incremental_speedup"],
        n_base=base_n,
        k=k,
    )
    record(
        "engine",
        "ns_warm_pivot_reduction",
        results["network_simplex"]["windowed_sweep"]["pivot_reduction"],
        n_transitions=results["network_simplex"]["windowed_sweep"]["n_transitions"],
    )
    return results


def test_engine_bench(benchmark):
    results = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    corpus = results["corpus"]
    assert corpus["pairs_solved_incremental"] == corpus["pairs_expected"]
    assert corpus["bit_identical"]
    # Solving only the new pairs must beat re-solving all of them.
    assert corpus["incremental_speedup"] > 1.0
    # The persistent pool skips R-1 pool launches; allow generous noise
    # margin but it must not be meaningfully slower than per-call pools.
    assert results["series"]["persistent_speedup_vs_percall"] >= 0.8
    # Warm-started network simplex: the basis cache must cut pivots per
    # solve by >= 2x on both temporal-locality workloads (the run itself
    # also asserts this plus the no-wall-clock-regression bound).
    ns = results["network_simplex"]
    assert ns["windowed_sweep"]["pivot_reduction"] >= 2.0
    assert ns["corpus_append"]["pivot_reduction"] >= 2.0
    assert ns["windowed_sweep"]["warm"]["warm_solves"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale workload (same assertions)"
    )
    args = parser.parse_args()
    run_experiment(verbose=True, quick=args.quick)
