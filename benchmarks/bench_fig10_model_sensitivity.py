"""Fig. 10 — SND separates ICC-normal from random transitions; ℓ1 cannot.

§6.4: pairs <G1, G2> where normal transitions follow the Independent
Cascade with Competition model and anomalous ones activate the same number
of users uniformly at random. Plotting the distances against n∆ (users who
changed), SND cleanly separates the two transition classes while ℓ1 is a
function of n∆ alone.

We quantify "separation" as the AUC of each measure's value (after
regressing out n∆ via the per-unit value d / n∆) for classifying
anomalous transitions.
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, paper_scale, print_table, record
from repro.analysis.roc import roc_auc
from repro.datasets.synthetic import icc_transition_pairs
from repro.distances.vector import l1_distance


def run_experiment(verbose: bool = True) -> dict:
    n_pairs = 40 if paper_scale() else 24
    graph, pairs = icc_transition_pairs(n_pairs=n_pairs, seed=10)
    snd = experiment_snd(graph, n_clusters=12)

    rows = []
    n_deltas, snd_vals, l1_vals, labels = [], [], [], []
    for g1, g2, is_anomalous in pairs:
        nd = g1.n_delta(g2)
        snd_v = snd.distance(g1, g2)
        l1_v = l1_distance(g1, g2)
        n_deltas.append(nd)
        snd_vals.append(snd_v)
        l1_vals.append(l1_v)
        labels.append(is_anomalous)
        rows.append([nd, round(snd_v, 1), l1_v, "anomalous" if is_anomalous else "normal"])
    rows.sort(key=lambda r: r[0])
    print_table(
        f"Fig. 10 — distances vs n∆ over {len(pairs)} transitions "
        f"(n={graph.num_nodes})",
        ["n∆", "SND", "l1", "transition"],
        rows,
        verbose=verbose,
    )

    nd_arr = np.asarray(n_deltas, dtype=float)
    labels_arr = np.asarray(labels)
    # Per-unit values remove the trivial n∆ dependence both measures share.
    snd_per_unit = np.asarray(snd_vals) / np.maximum(nd_arr, 1)
    l1_per_unit = np.asarray(l1_vals) / np.maximum(nd_arr, 1)
    snd_auc = roc_auc(snd_per_unit, labels_arr)
    l1_auc = roc_auc(l1_per_unit, labels_arr)
    record("fig10", "snd_separation_auc", snd_auc)
    record("fig10", "l1_separation_auc", l1_auc)
    if verbose:
        print(f"\nseparation AUC (per-unit value): SND={snd_auc:.3f}  l1={l1_auc:.3f}")
        print("paper: SND clearly separates anomalous transitions; l1 is "
              "determined by n∆ and cannot")
    return {"snd_auc": snd_auc, "l1_auc": l1_auc}


def test_fig10_snd_separates(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert out["snd_auc"] >= 0.9  # clean separation
    assert out["snd_auc"] > out["l1_auc"] + 0.2


if __name__ == "__main__":
    run_experiment()
