"""Batch-series engine benchmark — seed loop vs cached vs parallel.

Times the same 20-state series sweep (the CLI ``generate`` defaults:
n = 2000 power-law graph, 100 seed users) through four evaluators:

* ``seed_loop`` — the pre-batch-engine path: one ``SND.distance`` call per
  adjacent pair, rebuilding ``4·(T-1)`` ground-cost arrays;
* ``cached`` — ``SND.evaluate_series`` serial: a shared
  :class:`~repro.snd.batch.GroundCostCache` cuts builds to ``2·(T-1)+2``;
* ``parallel`` — ``evaluate_series(jobs=N)``: process fan-out over
  contiguous transition chunks (wall-clock gains require > 1 CPU; the
  JSON records the host's core count so numbers are interpretable);
* ``cached_lp`` — the cached engine with ``solver="lp"`` (HiGHS): the
  pure-Python SSP solver dominates this workload's profile, so this row
  shows what the batched sweep achieves with the fast solver. Its max
  deviation from the seed loop is recorded (well inside the 1e-9
  identity budget; typically ~1e-12).

Every row's values are checked against the seed loop before timings are
reported. Results go to ``benchmarks/BENCH_batch_series.json`` (see
``benchmarks/README.md``) and, best-effort, to ``results.sqlite``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.snd import SND, GroundCostCache

JSON_PATH = Path(__file__).parent / "BENCH_batch_series.json"

#: The CLI ``generate`` defaults (see repro.cli) — the acceptance workload.
N_NODES = 2000
N_STATES = 20
N_SEEDS = 100


def _dataset():
    graph = powerlaw_configuration_graph(N_NODES, -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        N_STATES,
        n_seeds=N_SEEDS,
        p_nbr=0.10,
        p_ext=0.01,
        candidate_fraction=0.05,
        seed=0,
    )
    return graph, series


def _snd(graph, **kwargs) -> SND:
    return SND(graph, n_clusters=24, seed=0, **kwargs)


def _time(fn, *, repeats: int = 3):
    """Best-of-*repeats* wall time and the last return value."""
    best, value = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, np.asarray(value, dtype=np.float64)


def run_experiment(verbose: bool = True) -> dict:
    graph, series = _dataset()
    snd = _snd(graph)
    jobs = max(2, min(4, os.cpu_count() or 1))

    snd.distance(series[0], series[1])  # warm module caches / imports

    t_seed, v_seed = _time(
        lambda: [snd.distance(a, b) for a, b in series.transitions()]
    )

    def cached_run():
        cache = GroundCostCache()
        out = snd.evaluate_series(series, cache=cache)
        cached_run.builds = cache.builds
        return out

    t_cached, v_cached = _time(cached_run)

    t_parallel, v_parallel = _time(
        lambda: snd.evaluate_series(series, jobs=jobs, cache=GroundCostCache())
    )

    snd_lp = _snd(graph, solver="lp")
    snd_lp.distance(series[0], series[1])
    t_lp, v_lp = _time(
        lambda: snd_lp.evaluate_series(series, cache=GroundCostCache())
    )

    def diff(v):
        return float(np.max(np.abs(v - v_seed))) if v_seed.size else 0.0

    for name, v in (("cached", v_cached), ("parallel", v_parallel), ("lp", v_lp)):
        assert diff(v) <= 1e-9, f"{name} path deviates from the seed loop"

    naive_builds = 4 * (len(series) - 1)
    results = {
        "workload": {
            "n_nodes": graph.num_nodes,
            "n_edges": graph.num_edges,
            "n_states": len(series),
            "generator": "CLI generate defaults (powerlaw -2.3, 100 seeds)",
        },
        "host": {"cpu_count": os.cpu_count(), "jobs": jobs},
        "ground_cost_builds": {
            "seed_loop": naive_builds,
            "cached": int(cached_run.builds),
            "bound": 2 * (len(series) - 1) + 2,
        },
        "timings_ms": {
            "seed_loop": round(t_seed * 1e3, 2),
            "cached": round(t_cached * 1e3, 2),
            "parallel": round(t_parallel * 1e3, 2),
            "cached_lp": round(t_lp * 1e3, 2),
        },
        "speedup_vs_seed": {
            "cached": round(t_seed / t_cached, 3),
            "parallel": round(t_seed / t_parallel, 3),
            "cached_lp": round(t_seed / t_lp, 3),
        },
        "max_abs_diff_vs_seed": {
            "cached": diff(v_cached),
            "parallel": diff(v_parallel),
            "cached_lp": diff(v_lp),
        },
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["seed loop", results["timings_ms"]["seed_loop"], 1.0, naive_builds],
        [
            "cached",
            results["timings_ms"]["cached"],
            results["speedup_vs_seed"]["cached"],
            int(cached_run.builds),
        ],
        [
            f"parallel (jobs={jobs})",
            results["timings_ms"]["parallel"],
            results["speedup_vs_seed"]["parallel"],
            "-",
        ],
        [
            "cached + lp solver",
            results["timings_ms"]["cached_lp"],
            results["speedup_vs_seed"]["cached_lp"],
            int(cached_run.builds),
        ],
    ]
    print_table(
        f"Batch series engine on n={graph.num_nodes}, T={len(series)}",
        ["path", "ms", "speedup", "cost builds"],
        rows,
        verbose=verbose,
    )
    if verbose and (os.cpu_count() or 1) < 2:
        print("note: single-CPU host — the parallel row cannot beat serial here")

    for path, speed in results["speedup_vs_seed"].items():
        record("batch_series", "speedup", speed, path=path)
    return results


def test_batch_engine_exact(benchmark):
    results = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert max(results["max_abs_diff_vs_seed"].values()) <= 1e-9
    bound = results["ground_cost_builds"]["bound"]
    assert results["ground_cost_builds"]["cached"] <= bound


def test_cached_series_sweep(benchmark):
    """Micro-benchmark: the cached serial sweep on the acceptance workload."""
    graph, series = _dataset()
    snd = _snd(graph)
    snd.distance(series[0], series[1])
    benchmark(lambda: snd.evaluate_series(series, cache=GroundCostCache()))
