"""Batch-series engine benchmark — seed loop vs cached vs vectorised/auto.

Times the same 20-state series sweep (the CLI ``generate`` defaults:
n = 2000 power-law graph, 100 seed users) through six evaluators:

* ``seed_loop`` — the pre-batch-engine path: one ``SND.distance`` call per
  adjacent pair, rebuilding ``4·(T-1)`` ground-cost arrays;
* ``cached_heap`` — ``SND.evaluate_series`` serial with the SSP solver
  pinned to the PR-1 heap Dijkstra kernel: the **PR-1 baseline** the
  vectorised kernel is measured against;
* ``cached`` — ``SND.evaluate_series`` serial with the default vectorised
  SSP kernel (heap-free CSR Dijkstra);
* ``cached_auto`` — the cached engine with ``solver="auto"``: per reduced
  instance the policy picks simplex / vectorised ssp / HiGHS lp by size
  (see :func:`repro.flow.select_transport_method`);
* ``parallel`` — ``evaluate_series(jobs=N)``: process fan-out over
  contiguous transition chunks (wall-clock gains require > 1 CPU; the
  JSON records the host's core count so numbers are interpretable);
* ``window_resweep`` — a second windowed sweep over the same series
  through the instance :class:`~repro.snd.batch.TransitionCache`: every
  transition is answered from the cache, the sliding-window reuse lever.

Every row's values are checked against the seed loop before timings are
reported (the engine's bit-identity contract; the max deviation per row is
recorded). Results go to ``benchmarks/BENCH_batch_series.json`` (see
``benchmarks/README.md``) and, best-effort, to ``results.sqlite``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.snd import SND, GroundCostCache

JSON_PATH = Path(__file__).parent / "BENCH_batch_series.json"

#: The CLI ``generate`` defaults (see repro.cli) — the acceptance workload.
N_NODES = 2000
N_STATES = 20
N_SEEDS = 100

#: The acceptance bar: the vectorised-ssp / auto cached sweep must beat the
#: PR-1 heap-kernel cached sweep by at least this factor.
TARGET_SPEEDUP = 1.5


def _dataset():
    graph = powerlaw_configuration_graph(N_NODES, -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        N_STATES,
        n_seeds=N_SEEDS,
        p_nbr=0.10,
        p_ext=0.01,
        candidate_fraction=0.05,
        seed=0,
    )
    return graph, series


def _snd(graph, **kwargs) -> SND:
    return SND(graph, n_clusters=24, seed=0, **kwargs)


def _time(fn, *, repeats: int = 3):
    """Best-of-*repeats* wall time and the last return value."""
    best, value = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, np.asarray(value, dtype=np.float64)


@contextmanager
def _heap_kernel():
    """Pin the reduced-problem SSP solves to the PR-1 heap Dijkstra kernel."""
    import repro.snd.fast as fast_mod

    orig = fast_mod.solve_mcf_ssp
    fast_mod.solve_mcf_ssp = lambda problem: orig(problem, kernel="heap")
    try:
        yield
    finally:
        fast_mod.solve_mcf_ssp = orig


def run_experiment(verbose: bool = True) -> dict:
    graph, series = _dataset()
    snd = _snd(graph)
    jobs = max(2, min(4, os.cpu_count() or 1))

    snd.distance(series[0], series[1])  # warm module caches / imports

    t_seed, v_seed = _time(
        lambda: [snd.distance(a, b) for a, b in series.transitions()]
    )

    with _heap_kernel():
        t_heap, v_heap = _time(
            lambda: snd.evaluate_series(series, cache=GroundCostCache())
        )

    def cached_run():
        cache = GroundCostCache()
        out = snd.evaluate_series(series, cache=cache)
        cached_run.builds = cache.builds
        return out

    t_cached, v_cached = _time(cached_run)

    t_parallel, v_parallel = _time(
        lambda: snd.evaluate_series(series, jobs=jobs, cache=GroundCostCache())
    )

    snd_auto = _snd(graph, solver="auto")
    snd_auto.distance(series[0], series[1])
    t_auto, v_auto = _time(
        lambda: snd_auto.evaluate_series(series, cache=GroundCostCache())
    )

    # Sliding-window reuse: one priming sweep fills the transition cache,
    # the timed re-sweep answers every transition from it.
    snd_win = _snd(graph)
    snd_win.evaluate_series(series, window=10)
    fresh_after_priming = snd_win.transition_cache.fresh
    t_window, v_window = _time(lambda: snd_win.evaluate_series(series, window=10))

    def diff(v):
        return float(np.max(np.abs(v - v_seed))) if v_seed.size else 0.0

    diffs = {
        "cached_heap": diff(v_heap),
        "cached": diff(v_cached),
        "parallel": diff(v_parallel),
        "cached_auto": diff(v_auto),
        "window_resweep": diff(v_window),
    }
    for name, d in diffs.items():
        assert d <= 1e-9, f"{name} path deviates from the seed loop ({d})"
    assert fresh_after_priming == len(series) - 1, "window mode re-solved transitions"
    assert snd_win.transition_cache.fresh == fresh_after_priming, (
        "the timed window re-sweep should answer every transition from cache"
    )

    naive_builds = 4 * (len(series) - 1)
    results = {
        "workload": {
            "n_nodes": graph.num_nodes,
            "n_edges": graph.num_edges,
            "n_states": len(series),
            "generator": "CLI generate defaults (powerlaw -2.3, 100 seeds)",
        },
        "host": {"cpu_count": os.cpu_count(), "jobs": jobs},
        "ground_cost_builds": {
            "seed_loop": naive_builds,
            "cached": int(cached_run.builds),
            "bound": 2 * (len(series) - 1) + 2,
        },
        "timings_ms": {
            "seed_loop": round(t_seed * 1e3, 2),
            "cached_heap": round(t_heap * 1e3, 2),
            "cached": round(t_cached * 1e3, 2),
            "parallel": round(t_parallel * 1e3, 2),
            "cached_auto": round(t_auto * 1e3, 2),
            "window_resweep": round(t_window * 1e3, 2),
        },
        "speedup_vs_pr1_heap_baseline": {
            "cached": round(t_heap / t_cached, 3),
            "cached_auto": round(t_heap / t_auto, 3),
            "window_resweep": round(t_heap / t_window, 3),
        },
        "speedup_vs_seed": {
            "cached": round(t_seed / t_cached, 3),
            "parallel": round(t_seed / t_parallel, 3),
            "cached_auto": round(t_seed / t_auto, 3),
        },
        "max_abs_diff_vs_seed": diffs,
        "window": {
            "window_states": 10,
            "fresh_transitions_first_sweep": int(fresh_after_priming),
            "fresh_transitions_resweep": 0,
        },
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["seed loop (vector kernel)", results["timings_ms"]["seed_loop"], "-", naive_builds],
        [
            "cached + heap kernel (PR-1)",
            results["timings_ms"]["cached_heap"],
            1.0,
            int(cached_run.builds),
        ],
        [
            "cached (vector kernel)",
            results["timings_ms"]["cached"],
            results["speedup_vs_pr1_heap_baseline"]["cached"],
            int(cached_run.builds),
        ],
        [
            "cached + solver=auto",
            results["timings_ms"]["cached_auto"],
            results["speedup_vs_pr1_heap_baseline"]["cached_auto"],
            int(cached_run.builds),
        ],
        [
            f"parallel (jobs={jobs})",
            results["timings_ms"]["parallel"],
            round(t_heap / t_parallel, 3),
            "-",
        ],
        [
            "windowed re-sweep (cached transitions)",
            results["timings_ms"]["window_resweep"],
            results["speedup_vs_pr1_heap_baseline"]["window_resweep"],
            "-",
        ],
    ]
    print_table(
        f"Batch series engine on n={graph.num_nodes}, T={len(series)}",
        ["path", "ms", "speedup vs PR-1", "cost builds"],
        rows,
        verbose=verbose,
    )
    if verbose and (os.cpu_count() or 1) < 2:
        print("note: single-CPU host — the parallel row cannot beat serial here")

    for path, speed in results["speedup_vs_pr1_heap_baseline"].items():
        record("batch_series", "speedup_vs_pr1", speed, path=path)
    for path, speed in results["speedup_vs_seed"].items():
        record("batch_series", "speedup", speed, path=path)
    return results


def test_batch_engine_exact(benchmark):
    results = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert max(results["max_abs_diff_vs_seed"].values()) <= 1e-9
    bound = results["ground_cost_builds"]["bound"]
    assert results["ground_cost_builds"]["cached"] <= bound
    best = max(
        results["speedup_vs_pr1_heap_baseline"]["cached"],
        results["speedup_vs_pr1_heap_baseline"]["cached_auto"],
    )
    assert best >= TARGET_SPEEDUP, (
        f"vectorised/auto sweep only {best}x vs the PR-1 heap baseline"
    )


def test_cached_series_sweep(benchmark):
    """Micro-benchmark: the cached serial sweep on the acceptance workload."""
    graph, series = _dataset()
    snd = _snd(graph)
    snd.distance(series[0], series[1])
    benchmark(lambda: snd.evaluate_series(series, cache=GroundCostCache()))
