"""Ablation — exact solvers for the reduced transportation problem.

The Theorem 4 pipeline can hand the reduced min-cost-flow instance to three
exact solvers: successive shortest paths (default), Goldberg–Tarjan cost
scaling (the paper's CS2 role), or a dense LP (HiGHS). All must agree on
the value; the interesting output is the time-vs-n∆ crossover (pure-Python
SSP wins small instances, HiGHS wins large ones).
"""

from __future__ import annotations

import time


from common import experiment_snd, print_table, record
from repro.datasets.synthetic import giant_component_powerlaw
from repro.opinions.dynamics import random_transition, seed_state

SOLVERS = ["ssp", "cost-scaling", "lp"]


def run_experiment(verbose: bool = True) -> dict:
    graph = giant_component_powerlaw(3_000, -2.3, k_min=2, seed=1)
    rows = []
    out = {}
    for n_delta in (30, 120, 300):
        base = seed_state(graph, max(60, n_delta), seed=2)
        changed = random_transition(graph, base, n_delta, seed=3)
        values = {}
        times = {}
        for solver in SOLVERS:
            snd = experiment_snd(graph, n_clusters=12, solver=solver)
            start = time.perf_counter()
            values[solver] = snd.distance(base, changed)
            times[solver] = time.perf_counter() - start
            record("ablation_solvers", "seconds", times[solver],
                   solver=solver, n_delta=n_delta)
        agree = max(values.values()) - min(values.values()) <= 1e-5 * max(
            1.0, max(values.values())
        )
        rows.append(
            [n_delta]
            + [round(times[s], 3) for s in SOLVERS]
            + ["yes" if agree else "NO"]
        )
        out[n_delta] = {"times": times, "agree": agree}
    print_table(
        f"Reduced-problem solver ablation (n={graph.num_nodes})",
        ["n∆"] + [f"{s} (s)" for s in SOLVERS] + ["values agree"],
        rows,
        verbose=verbose,
    )
    return out


def test_solvers_agree(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert all(entry["agree"] for entry in out.values())


if __name__ == "__main__":
    run_experiment()
