"""Fig. 12 — SND computation time vs the number of changed users n∆.

Paper: n = 20k fixed, n∆ grows to 10k; the reduced method's cost grows
with n∆ (the n∆ single-source shortest paths plus the n∆-sized
transportation problem dominate).
"""

from __future__ import annotations

import time

from common import experiment_snd, paper_scale, print_table, record
from repro.datasets.synthetic import giant_component_powerlaw
from repro.opinions.dynamics import random_transition, seed_state


def run_experiment(verbose: bool = True) -> dict:
    if paper_scale():
        n = 20_000
        deltas = [250, 500, 1_000, 2_000, 4_000, 10_000]
    else:
        n = 4_000
        deltas = [25, 50, 100, 200, 400, 800]

    graph = giant_component_powerlaw(n, -2.3, k_min=2, seed=0)
    snd = experiment_snd(graph, n_clusters=16, solver="lp")

    # Warm-up (one-time scipy/HiGHS import costs).
    warm = seed_state(graph, 50, seed=7)
    snd.distance(warm, random_transition(graph, warm, 10, seed=8))

    rows = []
    times = {}
    for n_delta in deltas:
        base = seed_state(graph, max(50, n_delta), seed=1)
        changed = random_transition(graph, base, n_delta, seed=2)
        actual_delta = base.n_delta(changed)
        start = time.perf_counter()
        snd.distance(base, changed)
        elapsed = time.perf_counter() - start
        times[actual_delta] = elapsed
        rows.append([actual_delta, round(elapsed, 3)])
        record("fig12", "seconds", elapsed, n=graph.num_nodes, n_delta=actual_delta)
    print_table(
        f"Fig. 12 — time (s) computing SND, n={graph.num_nodes} fixed",
        ["n∆", "seconds"],
        rows,
        verbose=verbose,
    )
    if verbose:
        print("paper: time grows with n∆ (Dijkstra count + reduced "
              "transportation problem size)")
    return times


def test_fig12_monotone_growth(benchmark):
    times = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    deltas = sorted(times)
    # Large n∆ must cost more than small n∆ (allowing local noise).
    assert times[deltas[-1]] > times[deltas[0]]


if __name__ == "__main__":
    run_experiment()
