"""Ablation — Dijkstra heap choice and shortest-path engine.

Theorem 4's complexity bound uses a radix/Fibonacci-heap Dijkstra; the
paper's released implementation used a binary heap (§6.5) and noted it
"scales slightly worse than guaranteed but still very well". We time all
three of our heaps (binary, radix, pairing) plus the vectorised scipy
engine on the same workload and verify identical distances.
"""

from __future__ import annotations

import time

import numpy as np

from common import print_table, record
from repro.datasets.synthetic import giant_component_powerlaw
from repro.shortestpath.dijkstra import multi_source_distances
from repro.utils.rng import as_rng

HEAPS = ["binary", "radix", "pairing"]


def run_experiment(verbose: bool = True) -> dict:
    graph = giant_component_powerlaw(3_000, -2.3, k_min=2, seed=2)
    rng = as_rng(5)
    weights = rng.integers(1, 10, graph.num_edges).astype(np.float64)
    sources = rng.choice(graph.num_nodes, size=24, replace=False)

    rows = []
    out = {}
    reference = None
    for heap in HEAPS:
        start = time.perf_counter()
        dist = multi_source_distances(
            graph, sources, weights=weights, engine="python", heap=heap
        )
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = dist
        agree = np.allclose(dist, reference)
        rows.append([f"python/{heap}", round(elapsed, 3), "yes" if agree else "NO"])
        out[heap] = {"seconds": elapsed, "agree": agree}
        record("ablation_heaps", "seconds", elapsed, engine=f"python/{heap}")

    start = time.perf_counter()
    dist = multi_source_distances(graph, sources, weights=weights, engine="scipy")
    elapsed = time.perf_counter() - start
    agree = np.allclose(dist, reference)
    rows.append(["scipy", round(elapsed, 3), "yes" if agree else "NO"])
    out["scipy"] = {"seconds": elapsed, "agree": agree}
    record("ablation_heaps", "seconds", elapsed, engine="scipy")

    print_table(
        f"Dijkstra heap/engine ablation "
        f"(n={graph.num_nodes}, m={graph.num_edges}, {len(sources)} sources)",
        ["engine/heap", "seconds", "distances agree"],
        rows,
        verbose=verbose,
    )
    return out


def test_heaps_agree_and_scipy_fastest(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert all(entry["agree"] for entry in out.values())
    slowest_python = max(out[h]["seconds"] for h in HEAPS)
    assert out["scipy"]["seconds"] < slowest_python


def test_binary_heap_dijkstra_micro(benchmark):
    graph = giant_component_powerlaw(1_500, -2.3, k_min=2, seed=3)
    rng = as_rng(1)
    weights = rng.integers(1, 10, graph.num_edges).astype(np.float64)
    benchmark(
        lambda: multi_source_distances(
            graph, [0], weights=weights, engine="python", heap="binary"
        )
    )


if __name__ == "__main__":
    run_experiment()
