"""Fig. 8 — ROC curves for anomaly detection over a long state series.

Paper headline (§6.2): at false-positive rates up to 0.3, SND reaches a
true-positive rate of 0.83 while the next best measure (hamming) reaches
only 0.4; SND dominates the whole ROC spectrum. We reproduce the ordering
(SND > hamming > walk-dist / quad-form) and report TPR@FPR<=0.3 and AUC
per measure.
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, print_table, record, series_scores
from repro.analysis.roc import roc_auc, tpr_at_fpr
from repro.datasets.synthetic import Fig8Config, fig8_dataset
from repro.distances import DistanceContext, default_registry

PAPER_TPR = {"snd": 0.83, "hamming": 0.40, "walk-dist": 0.30, "quad-form": 0.30}


def run_experiment(verbose: bool = True) -> dict:
    cfg = Fig8Config()
    graph, series = fig8_dataset(cfg)
    labels_full = np.array(
        [series.labels[t + 1] == "anomalous" for t in range(len(series) - 1)]
    )
    labels = labels_full[cfg.burn_in :]

    registry = default_registry()
    context = DistanceContext(graph=graph, snd=experiment_snd(graph))
    counts = series.activation_counts()

    rows = []
    outputs = {}
    for name in ["snd", "hamming", "walk-dist", "quad-form"]:
        distances = registry.series(name, series, context)
        _, scores = series_scores(distances, counts, burn_in=cfg.burn_in)
        tpr = tpr_at_fpr(scores, labels, 0.3)
        auc = roc_auc(scores, labels)
        rows.append([name, PAPER_TPR.get(name, float("nan")), tpr, auc])
        outputs[name] = {"tpr_at_0.3": tpr, "auc": auc}
        record("fig8", "tpr_at_0.3", tpr, measure=name)
        record("fig8", "auc", auc, measure=name)
    print_table(
        f"Fig. 8 — anomaly-detection ROC (n={graph.num_nodes}, "
        f"{len(series)} states, {int(labels.sum())} anomalies)",
        ["measure", "paper TPR@0.3", "measured TPR@0.3", "measured AUC"],
        rows,
        verbose=verbose,
    )
    return outputs


def test_fig8_snd_wins(benchmark):
    outputs = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    # The paper's shape: SND dominates every baseline on both statistics.
    assert outputs["snd"]["tpr_at_0.3"] >= outputs["hamming"]["tpr_at_0.3"]
    assert outputs["snd"]["auc"] >= outputs["hamming"]["auc"]
    assert outputs["snd"]["auc"] > outputs["walk-dist"]["auc"]
    assert outputs["snd"]["auc"] > outputs["quad-form"]["auc"]
    assert outputs["snd"]["tpr_at_0.3"] >= 0.5


if __name__ == "__main__":
    run_experiment()
