"""Table 1 — user opinion prediction accuracy (§6.3).

Paper protocol: hide the opinions of 20 active users (balanced ±) in the
current state; extrapolate the distance of recent adjacent states to d*;
try 100 random assignments and keep the one whose induced distance is
closest to d*. Repeat 10x, report mean/std accuracy per method. Expected
shape: SND best among distance-based methods and above nhood-voting and
community-lp.

Paper numbers (synthetic | real-world): SND 74.33 | 75.63; hamming
68.44 | 68.13; quad-form 66.67 | 67.50; walk-dist 56.22 | 31.88;
nhood-voting 62.11 | 61.25; community-lp 65.25 | 56.87.
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, paper_scale, print_table, record
from repro.analysis.baselines import community_lp_predict, nhood_voting_predict
from repro.analysis.prediction import DistancePredictor, _sample_balanced_targets
from repro.datasets.synthetic import prediction_dataset
from repro.datasets.twitter import simulated_twitter_dataset
from repro.distances.quad_form import quad_form_distance
from repro.distances.vector import hamming_distance
from repro.distances.walk_dist import walk_distance
from repro.graph.clustering import label_propagation_communities
from repro.graph.laplacian import laplacian_matrix
from repro.utils.rng import as_rng

PAPER = {
    "snd": (74.33, 75.63),
    "hamming": (68.44, 68.13),
    "quad-form": (66.67, 67.50),
    "walk-dist": (56.22, 31.88),
    "nhood-voting": (62.11, 61.25),
    "community-lp": (65.25, 56.87),
}


def _distance_fns(graph):
    lap = laplacian_matrix(graph)
    snd = experiment_snd(graph, n_clusters=12)
    return {
        "snd": snd.distance,
        "hamming": hamming_distance,
        "quad-form": lambda a, b: quad_form_distance(a, b, lap),
        "walk-dist": lambda a, b: walk_distance(graph, a, b),
    }


def evaluate_dataset(graph, series, *, n_targets, n_assignments, n_repeats, window, seed):
    """Run every Table 1 method over one dataset; returns name -> (mu, sigma)."""
    results: dict[str, tuple[float, float]] = {}
    fns = _distance_fns(graph)
    for name, fn in fns.items():
        predictor = DistancePredictor(fn, n_assignments=n_assignments)
        results[name] = predictor.evaluate(
            series, n_targets=n_targets, window=window, n_repeats=n_repeats, seed=seed
        )

    # Non-distance baselines under the same trial protocol.
    rng = as_rng(seed)
    current = series[len(series) - 1]
    lp_labels = label_propagation_communities(graph, seed=0)
    for name, predict in (
        ("nhood-voting", lambda s, t, r: nhood_voting_predict(graph, s, t, seed=r)),
        (
            "community-lp",
            lambda s, t, r: community_lp_predict(graph, s, t, labels=lp_labels, seed=r),
        ),
    ):
        accs = []
        for _ in range(n_repeats):
            targets = _sample_balanced_targets(current, n_targets, rng)
            truth = current.values[targets]
            hidden = current.with_neutralized(targets)
            predicted = predict(hidden, targets, rng)
            accs.append(float(np.mean(predicted == truth)) * 100.0)
        results[name] = (float(np.mean(accs)), float(np.std(accs)))
    return results


def run_experiment(verbose: bool = True) -> dict:
    if paper_scale():
        n_targets, n_assignments, n_repeats = 20, 100, 10
    else:
        n_targets, n_assignments, n_repeats = 20, 80, 8

    graph_syn, series_syn = prediction_dataset()
    synthetic = evaluate_dataset(
        graph_syn, series_syn,
        n_targets=n_targets, n_assignments=n_assignments,
        n_repeats=n_repeats, window=3, seed=1,
    )

    # Strong homophily mirrors the political-Twitter data the paper (and
    # Conover et al.) describe: users almost exclusively follow their own
    # side. Prediction hinges on that structure; see EXPERIMENTS.md.
    twitter = simulated_twitter_dataset(homophily=0.92)
    # Predict the last *quiet* quarter: the §6.3 method assumes the recent
    # evolution was smooth, which a consensus volume shock (bin Laden, the
    # final quarter) deliberately violates.
    event_quarters = set(twitter.event_quarters)
    last_quiet = max(
        t for t in range(1, len(twitter.series)) if t not in event_quarters
    )
    realworld = evaluate_dataset(
        twitter.graph, twitter.series[: last_quiet + 1],
        n_targets=n_targets, n_assignments=n_assignments,
        n_repeats=n_repeats, window=3, seed=2,
    )

    rows = []
    for name in PAPER:
        mu_s, sd_s = synthetic[name]
        mu_r, sd_r = realworld[name]
        rows.append(
            [name, PAPER[name][0], f"{mu_s:.2f}±{sd_s:.2f}",
             PAPER[name][1], f"{mu_r:.2f}±{sd_r:.2f}"]
        )
        record("table1", "synthetic_mu", mu_s, method=name)
        record("table1", "realworld_mu", mu_r, method=name)
    print_table(
        "Table 1 — opinion prediction accuracy (%)",
        ["method", "paper syn µ", "measured syn µ±σ", "paper real µ", "measured real µ±σ"],
        rows,
        verbose=verbose,
    )
    return {"synthetic": synthetic, "realworld": realworld}


def test_table1_snd_best_distance_method(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    for dataset in ("synthetic", "realworld"):
        res = out[dataset]
        # SND leads the distance-based methods (paper's first observation).
        assert res["snd"][0] >= res["walk-dist"][0]
        assert res["snd"][0] >= res["quad-form"][0] - 5.0  # small-sample slack
        # And performs clearly above chance.
        assert res["snd"][0] > 55.0


if __name__ == "__main__":
    run_experiment()
