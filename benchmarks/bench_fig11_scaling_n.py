"""Fig. 11 — SND computation time vs network size n (fixed n∆).

Paper: n∆ = 1000 fixed, n grows to 200k; the reduced method (Theorem 4)
scales near-linearly while the direct computation through a general-purpose
LP solver (CPLEX there, HiGHS here) blows up and becomes unusable beyond a
few thousand nodes.

CI scale sweeps n in the low thousands with n∆ = 120 and caps the direct
method early (it is the point of the figure that it cannot follow).
``REPRO_SCALE=paper`` extends the sweep.
"""

from __future__ import annotations

import time


from common import experiment_snd, paper_scale, print_table, record
from repro.datasets.synthetic import giant_component_powerlaw
from repro.opinions.dynamics import random_transition, seed_state
from repro.snd import snd_direct


def _instance(n: int, n_delta: int, seed: int = 0):
    graph = giant_component_powerlaw(n, -2.3, k_min=2, seed=seed)
    base = seed_state(graph, max(n_delta, graph.num_nodes // 20), seed=seed + 1)
    changed = random_transition(graph, base, n_delta, seed=seed + 2)
    return graph, base, changed


def run_experiment(verbose: bool = True) -> dict:
    if paper_scale():
        sizes = [1_000, 5_000, 10_000, 30_000, 50_000, 90_000, 200_000]
        direct_cap = 5_000
        n_delta = 1_000
    else:
        sizes = [500, 1_000, 2_000, 4_000, 8_000]
        direct_cap = 1_000
        n_delta = 120

    # Warm-up: first scipy/HiGHS invocations pay one-time import costs.
    warm_graph, warm_a, warm_b = _instance(sizes[0], min(n_delta, 50), seed=9)
    experiment_snd(warm_graph, n_clusters=4, solver="lp").distance(warm_a, warm_b)

    rows = []
    fast_times = {}
    direct_times = {}
    for n in sizes:
        graph, base, changed = _instance(n, n_delta)
        snd = experiment_snd(graph, n_clusters=16, solver="lp")
        start = time.perf_counter()
        fast_value = snd.distance(base, changed)
        fast_t = time.perf_counter() - start
        fast_times[n] = fast_t
        record("fig11", "fast_seconds", fast_t, n=n, n_delta=n_delta)

        if n <= direct_cap:
            start = time.perf_counter()
            direct_value = snd_direct(graph, base, changed, banks=snd.banks, method="lp")
            direct_t = time.perf_counter() - start
            direct_times[n] = direct_t
            record("fig11", "direct_seconds", direct_t, n=n, n_delta=n_delta)
            agreement = abs(fast_value - direct_value) <= 1e-5 * max(1.0, direct_value)
            rows.append([graph.num_nodes, round(fast_t, 3), round(direct_t, 3),
                         round(direct_t / fast_t, 1), "yes" if agreement else "NO"])
        else:
            rows.append([graph.num_nodes, round(fast_t, 3), "—", "—", "—"])
    print_table(
        f"Fig. 11 — time (s) computing SND, n∆={n_delta} fixed",
        ["n (giant)", "reduced (Thm. 4)", "direct LP", "speedup", "values agree"],
        rows,
        verbose=verbose,
    )
    if verbose:
        growth = fast_times[sizes[-1]] / fast_times[sizes[0]]
        size_ratio = sizes[-1] / sizes[0]
        print(f"\nreduced-method growth over a {size_ratio:.0f}x size range: "
              f"{growth:.1f}x (paper: near-linear; direct method unusable early)")
    return {"fast": fast_times, "direct": direct_times}


def test_fig11_shape(benchmark):
    out = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    sizes = sorted(out["fast"])
    # Direct must be much slower than reduced wherever both ran.
    for n, direct_t in out["direct"].items():
        assert direct_t > out["fast"][n]
    # Reduced-method growth stays well below quadratic across the sweep.
    growth = out["fast"][sizes[-1]] / max(out["fast"][sizes[0]], 1e-9)
    size_ratio = sizes[-1] / sizes[0]
    assert growth < size_ratio**2


def test_fig11_single_fast_call(benchmark):
    graph, base, changed = _instance(2_000, 120)
    snd = experiment_snd(graph, n_clusters=16, solver="lp")
    value = benchmark(lambda: snd.distance(base, changed))
    assert value > 0


if __name__ == "__main__":
    run_experiment()
