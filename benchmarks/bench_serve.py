"""Serving-tier benchmark — sustained throughput under a duplicate-heavy trace.

Replays a synthetic many-client workload against a live ``repro-snd serve``
instance (:class:`~repro.serve.http.BackgroundServer` over a temporary
store), writing ``benchmarks/BENCH_serve.json``:

* **Hot-pair skew.** Each client issues ``requests_per_client`` POSTs to
  ``/distance`` over one keep-alive connection; ``hot_fraction`` of the
  trace hits a handful of hot pairs, the rest spreads over every series
  pair.  Real monitoring workloads look like this — many watchers of the
  same few transitions — and it is exactly the shape the
  :class:`~repro.snd.scheduler.PairScheduler` exists for: duplicate
  requests are answered from the transition cache or coalesced onto the
  one in-flight solve, so the engine solves each distinct pair once.
* **Counter-asserted coalescing.** After the replay, ``GET /stats`` must
  show ``solved == unique pairs requested`` and every other request
  accounted for as ``cache_answered + coalesced`` — the serving tier
  never re-solves a duplicate.
* **Latency distribution.** Per-request wall times are recorded
  client-side; the JSON reports sustained req/s plus p50/p99 latency.

``--quick`` shrinks the workload for CI (same assertions, smaller graph).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.serve import SNDService
from repro.serve.http import BackgroundServer
from repro.store import ExperimentStore

JSON_PATH = Path(__file__).parent / "BENCH_serve.json"

FULL = {
    "n_nodes": 1000,
    "n_states": 10,
    "n_seeds": 60,
    "n_clients": 8,
    "requests_per_client": 50,
    "hot_pairs": 3,
    "hot_fraction": 0.8,
}
QUICK = {
    "n_nodes": 300,
    "n_states": 6,
    "n_seeds": 20,
    "n_clients": 4,
    "requests_per_client": 25,
    "hot_pairs": 2,
    "hot_fraction": 0.8,
}


def _make_store(cfg):
    """A throwaway store with one graph + series, shaped like the CLI's
    ``generate`` output (the fixture the server would serve in prod).
    Lively dynamics (high spread probabilities) keep the states pairwise
    distinct, so every index pair is a real solve."""
    graph = powerlaw_configuration_graph(cfg["n_nodes"], -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        cfg["n_states"],
        n_seeds=cfg["n_seeds"],
        p_nbr=0.5,
        p_ext=0.3,
        candidate_fraction=0.05,
        seed=0,
    )
    path = str(Path(tempfile.mkdtemp(prefix="bench-serve-")) / "exp.sqlite")
    with ExperimentStore(path) as store:
        store.save_graph("t", graph)
        store.save_series("t", "series", series)
    return path, list(series)


def _build_trace(cfg) -> list[tuple[int, int]]:
    """The request trace: ``hot_fraction`` of requests on a few hot pairs,
    the remainder uniform over all adjacent-and-skip pairs (seeded, so the
    benchmark is reproducible run to run)."""
    n = cfg["n_states"]
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng = np.random.default_rng(0)
    hot = [all_pairs[i] for i in range(cfg["hot_pairs"])]
    total = cfg["n_clients"] * cfg["requests_per_client"]
    trace = []
    for _ in range(total):
        if rng.random() < cfg["hot_fraction"]:
            trace.append(hot[rng.integers(len(hot))])
        else:
            trace.append(all_pairs[rng.integers(len(all_pairs))])
    return trace


def _client(host, port, requests, latencies, errors) -> None:
    """One keep-alive client replaying its slice of the trace."""
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        for i, j in requests:
            body = json.dumps({"name": "t", "i": i, "j": j})
            t0 = time.perf_counter()
            conn.request(
                "POST", "/distance", body, {"Content-Type": "application/json"}
            )
            resp = conn.getresponse()
            payload = resp.read()
            latencies.append(time.perf_counter() - t0)
            if resp.status != 200:
                errors.append((resp.status, payload[:200]))
    except Exception as exc:  # pragma: no cover - surfaced by the caller
        errors.append(exc)
    finally:
        conn.close()


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    from repro.snd import TransitionCache

    cfg = QUICK if quick else FULL
    store_path, states = _make_store(cfg)
    trace = _build_trace(cfg)
    # The scheduler dedups by state *content* (TransitionCache.key), so
    # count distinct keys — with content-duplicate states this is fewer
    # than the distinct index pairs, and the assertion must track it.
    warm_pair = (0, 1)
    unique_pairs = len(
        {TransitionCache.key(states[i], states[j]) for i, j in trace + [warm_pair]}
    )
    per_client = cfg["requests_per_client"]
    slices = [
        trace[k * per_client : (k + 1) * per_client]
        for k in range(cfg["n_clients"])
    ]

    with BackgroundServer(SNDService(store_path, clusters=8)) as server:
        # Warm the shard (graph load + SND construction) outside the
        # timed window — a prod server would be long past cold start.
        conn = http.client.HTTPConnection(server.host, server.port, timeout=300)
        conn.request(
            "POST", "/distance", json.dumps({"name": "t", "i": 0, "j": 1}),
            {"Content-Type": "application/json"},
        )
        conn.getresponse().read()
        conn.close()

        latencies: list[float] = []
        errors: list = []
        threads = [
            threading.Thread(
                target=_client,
                args=(server.host, server.port, part, latencies, errors),
            )
            for part in slices
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        assert not errors, f"trace replay hit errors: {errors[:3]}"

        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        conn.request("GET", "/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()

    sched = stats["shards"]["t"]["scheduler"]
    total = len(trace) + 1  # the warm-up request also went through
    assert sched["requested"] == total
    assert sched["solved"] == unique_pairs, (
        f"served trace solved {sched['solved']} pairs, "
        f"expected the {unique_pairs} unique ones"
    )
    assert sched["cache_answered"] + sched["coalesced"] == total - unique_pairs

    lat_ms = np.asarray(sorted(latencies)) * 1e3
    results = {
        "quick": quick,
        "workload": {
            "n_nodes": cfg["n_nodes"],
            "n_states": cfg["n_states"],
            "generator": "powerlaw -2.3 configuration model",
        },
        "trace": {
            "n_clients": cfg["n_clients"],
            "requests": len(trace),
            "unique_pairs": unique_pairs,
            "hot_pairs": cfg["hot_pairs"],
            "hot_fraction": cfg["hot_fraction"],
        },
        "throughput": {
            "wall_s": round(wall, 3),
            "req_per_s": round(len(trace) / wall, 1),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 2),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 2),
        },
        "scheduler": sched,
        "cache_stats": stats["shards"]["t"].get("caches"),
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print_table(
        f"repro-snd serve on n={cfg['n_nodes']}, T={cfg['n_states']}"
        + (" (quick)" if quick else ""),
        ["metric", "value"],
        [
            [f"requests ({cfg['n_clients']} clients)", len(trace)],
            ["unique pairs", unique_pairs],
            ["solved (coalesced away the rest)", sched["solved"]],
            ["cache_answered", sched["cache_answered"]],
            ["coalesced in flight", sched["coalesced"]],
            ["sustained req/s", results["throughput"]["req_per_s"]],
            ["p50 latency (ms)", results["throughput"]["p50_ms"]],
            ["p99 latency (ms)", results["throughput"]["p99_ms"]],
        ],
        verbose=verbose,
    )
    record(
        "serve", "req_per_s", results["throughput"]["req_per_s"],
        clients=cfg["n_clients"], requests=len(trace),
    )
    record("serve", "p99_ms", results["throughput"]["p99_ms"])
    return results


def test_serve_bench(benchmark):
    results = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    sched = results["scheduler"]
    # The serving tier must never re-solve a duplicate pair.
    assert sched["solved"] == results["trace"]["unique_pairs"]
    assert sched["solved"] < sched["requested"]
    assert results["throughput"]["req_per_s"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale workload (same assertions)"
    )
    args = parser.parse_args()
    run_experiment(verbose=True, quick=args.quick)
