"""Serving-tier benchmark — sustained throughput under a duplicate-heavy trace.

Replays a synthetic many-client workload against a live ``repro-snd serve``
instance (:class:`~repro.serve.http.BackgroundServer` over a temporary
store), writing ``benchmarks/BENCH_serve.json``:

* **Hot-pair skew.** Each client issues ``requests_per_client`` POSTs to
  ``/distance`` over one keep-alive connection; ``hot_fraction`` of the
  trace hits a handful of hot pairs, the rest spreads over every series
  pair.  Real monitoring workloads look like this — many watchers of the
  same few transitions — and it is exactly the shape the
  :class:`~repro.snd.scheduler.PairScheduler` exists for: duplicate
  requests are answered from the transition cache or coalesced onto the
  one in-flight solve, so the engine solves each distinct pair once.
* **Counter-asserted coalescing.** After the replay, ``GET /stats`` must
  show ``solved == unique pairs requested`` and every other request
  accounted for as ``cache_answered + coalesced`` — the serving tier
  never re-solves a duplicate.
* **Latency distribution.** Per-request wall times are recorded
  client-side; the JSON reports sustained req/s plus p50/p99 latency.
* **Warm restart.** The trace's unique pairs are replayed cold (fresh
  server, persistence on), the server is torn down, and a brand-new
  server over the same store replays them again — asserted to finish
  with ``solved == 0`` (every answer came from the spilled transition
  cache) and reported as a cold/warm speedup.
* **Fairness.** With ``client_max_pending=1``, four greedy connections
  flood cold solves under one ``X-Client`` identity while a polite
  identity replays cache-warm pairs: the greedy identity must collect
  429s and the polite identity must see nothing but 200s.

``--quick`` shrinks the workload for CI (same assertions, smaller graph).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from common import print_table, record
from repro.graph.generators import powerlaw_configuration_graph
from repro.opinions.dynamics import generate_series
from repro.serve import EngineConfig, SNDService
from repro.serve.http import BackgroundServer
from repro.store import ExperimentStore

JSON_PATH = Path(__file__).parent / "BENCH_serve.json"

FULL = {
    "n_nodes": 1000,
    "n_states": 10,
    "n_seeds": 60,
    "n_clients": 8,
    "requests_per_client": 50,
    "hot_pairs": 3,
    "hot_fraction": 0.8,
}
QUICK = {
    "n_nodes": 300,
    "n_states": 6,
    "n_seeds": 20,
    "n_clients": 4,
    "requests_per_client": 25,
    "hot_pairs": 2,
    "hot_fraction": 0.8,
}


def _make_store(cfg):
    """A throwaway store with one graph + series, shaped like the CLI's
    ``generate`` output (the fixture the server would serve in prod).
    Lively dynamics (high spread probabilities) keep the states pairwise
    distinct, so every index pair is a real solve."""
    graph = powerlaw_configuration_graph(cfg["n_nodes"], -2.3, k_min=2, seed=0)
    series = generate_series(
        graph,
        cfg["n_states"],
        n_seeds=cfg["n_seeds"],
        p_nbr=0.5,
        p_ext=0.3,
        candidate_fraction=0.05,
        seed=0,
    )
    path = str(Path(tempfile.mkdtemp(prefix="bench-serve-")) / "exp.sqlite")
    with ExperimentStore(path) as store:
        store.save_graph("t", graph)
        store.save_series("t", "series", series)
    return path, list(series)


def _build_trace(cfg) -> list[tuple[int, int]]:
    """The request trace: ``hot_fraction`` of requests on a few hot pairs,
    the remainder uniform over all adjacent-and-skip pairs (seeded, so the
    benchmark is reproducible run to run)."""
    n = cfg["n_states"]
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng = np.random.default_rng(0)
    hot = [all_pairs[i] for i in range(cfg["hot_pairs"])]
    total = cfg["n_clients"] * cfg["requests_per_client"]
    trace = []
    for _ in range(total):
        if rng.random() < cfg["hot_fraction"]:
            trace.append(hot[rng.integers(len(hot))])
        else:
            trace.append(all_pairs[rng.integers(len(all_pairs))])
    return trace


def _client(host, port, requests, latencies, errors) -> None:
    """One keep-alive client replaying its slice of the trace."""
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        for i, j in requests:
            body = json.dumps({"name": "t", "i": i, "j": j})
            t0 = time.perf_counter()
            conn.request(
                "POST", "/v1/distance", body, {"Content-Type": "application/json"}
            )
            resp = conn.getresponse()
            payload = resp.read()
            latencies.append(time.perf_counter() - t0)
            if resp.status != 200:
                errors.append((resp.status, payload[:200]))
    except Exception as exc:  # pragma: no cover - surfaced by the caller
        errors.append(exc)
    finally:
        conn.close()


def _timed_replay(server, pairs) -> tuple[float, list]:
    """Replay *pairs* sequentially over one keep-alive connection,
    returning (wall seconds, errors)."""
    errors: list = []
    latencies: list[float] = []
    t0 = time.perf_counter()
    _client(server.host, server.port, pairs, latencies, errors)
    return time.perf_counter() - t0, errors


def _bench_warm_restart(store_path, trace, verbose) -> dict:
    """Kill-and-restart robustness: a fresh server over the same store
    answers the identical trace from the persisted transition cache with
    zero fresh solves."""
    config = EngineConfig(clusters=8, persist_transitions=True)
    unique = sorted(set(trace))
    with BackgroundServer(SNDService(store_path, config=config)) as server:
        cold_wall, errors = _timed_replay(server, unique)
        assert not errors, f"cold replay hit errors: {errors[:3]}"
    # The context exit tore the server down, flushing the cache to the
    # store's transition_cache table on the way out.
    with BackgroundServer(SNDService(store_path, config=config)) as server:
        warm_wall, errors = _timed_replay(server, unique)
        assert not errors, f"warm replay hit errors: {errors[:3]}"
        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        conn.request("GET", "/v1/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()
    shard = stats["shards"]["t"]
    sched = shard["scheduler"]
    assert sched["solved"] == 0, (
        f"warm restart re-solved {sched['solved']} pairs; the persisted "
        f"transition cache should have answered the whole trace"
    )
    assert sched["cache_answered"] == len(unique)
    assert shard["transitions_loaded"] > 0
    result = {
        "requests": len(unique),
        "cold_wall_s": round(cold_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
        "speedup": round(cold_wall / warm_wall, 1) if warm_wall > 0 else None,
        "warm_solved": sched["solved"],
        "warm_cache_answered": sched["cache_answered"],
        "transitions_loaded": shard["transitions_loaded"],
    }
    if verbose:
        print(
            f"# warm restart: {len(unique)} requests, cold {cold_wall:.3f}s "
            f"-> warm {warm_wall:.3f}s (solved=0, "
            f"{shard['transitions_loaded']} transitions loaded)"
        )
    return result


def _fairness_client(server, pairs, name, statuses) -> None:
    for i, j in pairs:
        body = json.dumps({"name": "t", "i": i, "j": j})
        conn = http.client.HTTPConnection(server.host, server.port, timeout=120)
        try:
            conn.request(
                "POST", "/v1/distance", body,
                {"Content-Type": "application/json", "X-Client": name},
            )
            resp = conn.getresponse()
            resp.read()
            statuses.append(resp.status)
        finally:
            conn.close()


def _bench_fairness(store_path, cfg, verbose) -> dict:
    """Greedy-vs-polite under per-client quotas: the greedy identity
    flooding cold solves gets rationed with 429s while the polite
    identity's requests all succeed."""
    n = cfg["n_states"]
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    polite_pairs = all_pairs[:2]
    greedy_pairs = all_pairs[2:]
    config = EngineConfig(
        clusters=8, client_max_pending=1, persist_transitions=False
    )
    service = SNDService(store_path, config=config)
    # Pre-warm the polite identity's pairs so its requests are served
    # from the transition cache while greedy floods the solver.
    for i, j in polite_pairs:
        service.distance_pair("t", i, j)
    with BackgroundServer(service) as server:
        greedy_statuses: list[int] = []
        polite_statuses: list[int] = []
        # Each thread gets a distinct slice: duplicates of an in-flight
        # pair would coalesce (consuming no quota), but concurrent
        # *distinct* pairs race for the identity's single pending slot.
        greedy_threads = [
            threading.Thread(
                target=_fairness_client,
                args=(server, greedy_pairs[k::4], "greedy", greedy_statuses),
            )
            for k in range(4)
        ]
        for t in greedy_threads:
            t.start()
        polite = threading.Thread(
            target=_fairness_client,
            args=(server, polite_pairs * 10, "polite", polite_statuses),
        )
        polite.start()
        polite.join()
        for t in greedy_threads:
            t.join()
        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        conn.request("GET", "/v1/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()
    sched = stats["shards"]["t"]["scheduler"]
    greedy_429 = sum(1 for s in greedy_statuses if s == 429)
    assert set(greedy_statuses) <= {200, 429}
    # Four threads racing distinct cold pairs on a quota of one: the
    # greedy identity must have been rationed at least once.
    assert greedy_429 > 0, "greedy client was never rationed"
    assert sched["client_rejected"] == greedy_429
    # The polite client's requests ALL succeeded despite the flood.
    assert polite_statuses and all(s == 200 for s in polite_statuses)
    result = {
        "greedy_requests": len(greedy_statuses),
        "greedy_429": greedy_429,
        "polite_requests": len(polite_statuses),
        "polite_ok": sum(1 for s in polite_statuses if s == 200),
        "client_rejected": sched["client_rejected"],
        "clients": sched["clients"],
    }
    if verbose:
        print(
            f"# fairness: greedy {greedy_429}/{len(greedy_statuses)} "
            f"rationed with 429, polite {result['polite_ok']}/"
            f"{len(polite_statuses)} all served"
        )
    return result


def run_experiment(verbose: bool = True, quick: bool = False) -> dict:
    from repro.snd import TransitionCache

    cfg = QUICK if quick else FULL
    store_path, states = _make_store(cfg)
    trace = _build_trace(cfg)
    # The scheduler dedups by state *content* (TransitionCache.key), so
    # count distinct keys — with content-duplicate states this is fewer
    # than the distinct index pairs, and the assertion must track it.
    warm_pair = (0, 1)
    unique_pairs = len(
        {TransitionCache.key(states[i], states[j]) for i, j in trace + [warm_pair]}
    )
    per_client = cfg["requests_per_client"]
    slices = [
        trace[k * per_client : (k + 1) * per_client]
        for k in range(cfg["n_clients"])
    ]

    config = EngineConfig(clusters=8, persist_transitions=False)
    with BackgroundServer(SNDService(store_path, config=config)) as server:
        # Warm the shard (graph load + SND construction) outside the
        # timed window — a prod server would be long past cold start.
        conn = http.client.HTTPConnection(server.host, server.port, timeout=300)
        conn.request(
            "POST", "/v1/distance", json.dumps({"name": "t", "i": 0, "j": 1}),
            {"Content-Type": "application/json"},
        )
        conn.getresponse().read()
        conn.close()

        latencies: list[float] = []
        errors: list = []
        threads = [
            threading.Thread(
                target=_client,
                args=(server.host, server.port, part, latencies, errors),
            )
            for part in slices
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        assert not errors, f"trace replay hit errors: {errors[:3]}"

        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        conn.request("GET", "/v1/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()

    sched = stats["shards"]["t"]["scheduler"]
    total = len(trace) + 1  # the warm-up request also went through
    assert sched["requested"] == total
    assert sched["solved"] == unique_pairs, (
        f"served trace solved {sched['solved']} pairs, "
        f"expected the {unique_pairs} unique ones"
    )
    assert sched["cache_answered"] + sched["coalesced"] == total - unique_pairs

    lat_ms = np.asarray(sorted(latencies)) * 1e3
    results = {
        "quick": quick,
        "workload": {
            "n_nodes": cfg["n_nodes"],
            "n_states": cfg["n_states"],
            "generator": "powerlaw -2.3 configuration model",
        },
        "trace": {
            "n_clients": cfg["n_clients"],
            "requests": len(trace),
            "unique_pairs": unique_pairs,
            "hot_pairs": cfg["hot_pairs"],
            "hot_fraction": cfg["hot_fraction"],
        },
        "throughput": {
            "wall_s": round(wall, 3),
            "req_per_s": round(len(trace) / wall, 1),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 2),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 2),
        },
        "scheduler": sched,
        "cache_stats": stats["shards"]["t"].get("caches"),
    }
    results["warm_restart"] = _bench_warm_restart(store_path, trace, verbose)
    results["fairness"] = _bench_fairness(store_path, cfg, verbose)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print_table(
        f"repro-snd serve on n={cfg['n_nodes']}, T={cfg['n_states']}"
        + (" (quick)" if quick else ""),
        ["metric", "value"],
        [
            [f"requests ({cfg['n_clients']} clients)", len(trace)],
            ["unique pairs", unique_pairs],
            ["solved (coalesced away the rest)", sched["solved"]],
            ["cache_answered", sched["cache_answered"]],
            ["coalesced in flight", sched["coalesced"]],
            ["sustained req/s", results["throughput"]["req_per_s"]],
            ["p50 latency (ms)", results["throughput"]["p50_ms"]],
            ["p99 latency (ms)", results["throughput"]["p99_ms"]],
            ["warm-restart speedup", results["warm_restart"]["speedup"]],
            ["greedy 429s (fairness)", results["fairness"]["greedy_429"]],
        ],
        verbose=verbose,
    )
    record(
        "serve", "req_per_s", results["throughput"]["req_per_s"],
        clients=cfg["n_clients"], requests=len(trace),
    )
    record("serve", "p99_ms", results["throughput"]["p99_ms"])
    record(
        "serve", "warm_restart_speedup", results["warm_restart"]["speedup"],
        requests=results["warm_restart"]["requests"],
    )
    return results


def test_serve_bench(benchmark):
    results = benchmark.pedantic(
        run_experiment, kwargs={"verbose": False, "quick": True}, rounds=1
    )
    sched = results["scheduler"]
    # The serving tier must never re-solve a duplicate pair.
    assert sched["solved"] == results["trace"]["unique_pairs"]
    assert sched["solved"] < sched["requested"]
    assert results["throughput"]["req_per_s"] > 0
    # Warm restart answered the replay entirely from the persisted cache.
    assert results["warm_restart"]["warm_solved"] == 0
    # Fairness: greedy rationed, polite fully served.
    assert results["fairness"]["greedy_429"] > 0
    assert results["fairness"]["polite_ok"] == results["fairness"]["polite_requests"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale workload (same assertions)"
    )
    args = parser.parse_args()
    run_experiment(verbose=True, quick=args.quick)
