"""Shared helpers for the experiment benchmarks.

Every bench module exposes ``run_experiment(verbose=True) -> dict`` (the
full paper experiment at the configured scale, printing a paper-vs-measured
table) plus pytest-benchmark ``test_*`` functions timing its core
computation. Results are appended to ``benchmarks/results.sqlite`` so that
EXPERIMENTS.md rows are regenerable.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.snd import SND, allocate_banks
from repro.store import ExperimentStore

RESULTS_DB = Path(__file__).parent / "results.sqlite"


def results_store() -> ExperimentStore:
    """The shared on-disk results store."""
    return ExperimentStore(RESULTS_DB)


def record(experiment: str, metric: str, value: float, **params) -> None:
    """Append one scalar result row (best-effort; never fails the bench)."""
    try:
        with results_store() as store:
            store.record_result(experiment, metric, float(value), params=params)
    except Exception:  # pragma: no cover - diagnostics only
        pass


def experiment_snd(graph, *, n_clusters: int = 24, gamma_scale: float = 0.5, **kwargs) -> SND:
    """The SND configuration used by the §6 experiments.

    γ is sized from hop eccentricity at the typical model-agnostic edge
    cost (1 + ... ≈ per-hop cost 1..3) scaled down for sensitivity — the §4
    guidance that γ should match intra-cluster distances, not the worst
    case (see DESIGN.md). Banks: one per cluster, balanced BFS clusters.
    """
    banks = allocate_banks(
        graph,
        n_clusters=min(n_clusters, max(2, graph.num_nodes // 8)),
        hop_cost=1.0,
        gamma_scale=gamma_scale,
        seed=0,
    )
    return SND(graph, banks=banks, **kwargs)


def print_table(title: str, headers: list[str], rows: list[list], *, verbose: bool = True) -> None:
    """Plain-text experiment table."""
    if not verbose:
        return
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def paper_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "ci").lower() == "paper"


def series_scores(distances: np.ndarray, active_counts: np.ndarray, burn_in: int = 0):
    """Normalise a distance series and score it, dropping *burn_in*."""
    from repro.analysis.anomaly import anomaly_scores, normalize_distance_series

    norm = normalize_distance_series(distances, active_counts)
    scores = anomaly_scores(norm)
    return norm, scores[burn_in:]
