"""Fig. 7 — distance spikes at simulated anomalies in a 40-state series.

Paper setup: |V| = 20k scale-free (γ = -2.3), 40 states generated with
P_nbr = 0.12 / P_ext = 0.01, anomalous states with 0.08 / 0.05 (sum
preserved). Expected shape: SND produces well-noticeable spikes exactly at
the simulated anomalies; the spike rank of SND at the true anomalies beats
the baselines.
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, print_table, record, series_scores
from repro.datasets.synthetic import Fig7Config, fig7_dataset
from repro.distances import DistanceContext, default_registry

BURN_IN = 6


def run_experiment(verbose: bool = True) -> dict:
    cfg = Fig7Config()
    graph, series = fig7_dataset(cfg)
    truth = {t - 1 for t in cfg.anomalous}  # transition index of state t

    registry = default_registry()
    context = DistanceContext(graph=graph, snd=experiment_snd(graph))
    counts = series.activation_counts()

    rows = []
    outputs = {}
    for name in ["snd", "hamming", "walk-dist", "quad-form"]:
        distances = registry.series(name, series, context)
        _, scores = series_scores(distances, counts, burn_in=BURN_IN)
        order = np.argsort(-scores) + BURN_IN
        top3 = set(order[:3].tolist())
        hits = len(top3 & truth)
        rows.append([name, sorted(top3), hits])
        outputs[name] = {"scores": scores, "hits": hits}
        record("fig7", "top3_hits", hits, measure=name)
    print_table(
        f"Fig. 7 — top-3 spike transitions (truth: {sorted(truth)}) on "
        f"n={graph.num_nodes}",
        ["measure", "top-3 spikes", "hits/3"],
        rows,
        verbose=verbose,
    )
    if verbose:
        print("paper: SND shows a well-noticeable spike per anomaly; "
              "baselines do not recognise them")
    return outputs


def test_fig7_snd_spikes(benchmark):
    outputs = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    assert outputs["snd"]["hits"] >= 2  # at least 2 of 3 anomalies in top-3


def test_fig7_single_snd_transition(benchmark):
    """Micro-benchmark: one SND evaluation on adjacent Fig. 7 states."""
    cfg = Fig7Config()
    graph, series = fig7_dataset(cfg)
    snd = experiment_snd(graph)
    a, b = series[len(series) // 2], series[len(series) // 2 + 1]
    value = benchmark(lambda: snd.distance(a, b))
    assert value >= 0


if __name__ == "__main__":
    run_experiment()
