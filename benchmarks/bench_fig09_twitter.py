"""Fig. 9 — anomaly detection on (simulated) political-Twitter data.

The paper cross-references quarterly distance spikes against Google Trends
and a political-event log, distinguishing *consensus* events (election, bin
Laden — all measures react) from *polarizing* events (Stimulus Bill, ACA —
SND disagrees upward while coordinate-wise measures stay flat). Real tweets
are unavailable; the simulated dataset injects both event types with ground
truth (see DESIGN.md §2), and this harness checks the measure-vs-event-type
reaction pattern.
"""

from __future__ import annotations

import numpy as np

from common import experiment_snd, print_table, record
from repro.analysis.anomaly import anomaly_scores, normalize_distance_series
from repro.datasets.twitter import simulated_twitter_dataset
from repro.distances import DistanceContext, default_registry

MEASURES = ["snd", "hamming", "walk-dist", "quad-form"]


def run_experiment(verbose: bool = True) -> dict:
    data = simulated_twitter_dataset()
    series = data.series
    counts = series.activation_counts()
    registry = default_registry()
    context = DistanceContext(graph=data.graph, snd=experiment_snd(data.graph, n_clusters=16))

    scores = {}
    for name in MEASURES:
        distances = registry.series(name, series, context)
        norm = normalize_distance_series(distances, counts)
        scores[name] = anomaly_scores(norm)

    # Per-quarter table with the event annotations (transition t ends at
    # state t+1, where events are injected).
    rows = []
    for t in range(len(series) - 1):
        event = data.event_quarters.get(t + 1)
        rows.append(
            [series.labels[t + 1]]
            + [round(float(scores[m][t]), 3) for m in MEASURES]
            + [f"{event.name} ({event.kind})" if event else ""]
        )
    print_table(
        f"Fig. 9 — per-quarter anomaly scores (n={data.graph.num_nodes})",
        ["quarter"] + MEASURES + ["event"],
        rows,
        verbose=verbose,
    )

    # Reaction pattern: mean score at polarizing vs consensus vs quiet
    # transitions, per measure.
    kinds = {"consensus": [], "polarizing": [], "quiet": []}
    for t in range(len(series) - 1):
        event = data.event_quarters.get(t + 1)
        kinds[event.kind if event else "quiet"].append(t)

    summary = {}
    rows = []
    for name in MEASURES:
        means = {
            kind: float(np.mean(scores[name][idx])) if idx else float("nan")
            for kind, idx in kinds.items()
        }
        # A measure "sees" polarizing events when they outscore quiet
        # transitions by a margin comparable to its consensus response.
        sees_polarizing = means["polarizing"] > means["quiet"] + 1e-9
        summary[name] = {**means, "sees_polarizing": sees_polarizing}
        rows.append(
            [name, means["consensus"], means["polarizing"], means["quiet"],
             "yes" if sees_polarizing else "no"]
        )
        record("fig9", "polarizing_minus_quiet", means["polarizing"] - means["quiet"],
               measure=name)
    print_table(
        "Fig. 9 — mean spike score by event type",
        ["measure", "consensus", "polarizing", "quiet", "sees polarizing?"],
        rows,
        verbose=verbose,
    )
    if verbose:
        print("paper: every measure reacts to consensus events (election, "
              "bin Laden); only SND disagrees upward on polarizing events "
              "(Stimulus Bill, Obama Care)")
    return summary


def test_fig9_polarizing_pattern(benchmark):
    summary = benchmark.pedantic(run_experiment, kwargs={"verbose": False}, rounds=1)
    # SND must react to polarizing events...
    assert summary["snd"]["sees_polarizing"]
    # ... more strongly (relative to quiet quarters) than hamming does.
    snd_margin = summary["snd"]["polarizing"] - summary["snd"]["quiet"]
    hamming_margin = summary["hamming"]["polarizing"] - summary["hamming"]["quiet"]
    assert snd_margin > hamming_margin


if __name__ == "__main__":
    run_experiment()
