"""Detecting anomalous quarters in a political social network.

Reproduces the paper's Fig. 9 workflow on the simulated political-Twitter
dataset: compute SND between consecutive quarterly snapshots, score each
transition with the spike statistic S_t, and cross-reference the flagged
quarters against the known event timeline. Consensus events (election)
spike every measure; polarizing events (Obama Care) spike only SND.

Run:  python examples/election_monitoring.py
"""

import numpy as np

from repro.analysis import detect_anomalies
from repro.datasets import simulated_twitter_dataset
from repro.distances import DistanceContext, default_registry
from repro.snd import SND, allocate_banks


def main() -> None:
    data = simulated_twitter_dataset(seed=2008)
    print(f"dataset: {data.graph.num_nodes} users, "
          f"{len(data.series)} quarterly snapshots, "
          f"{len(data.events)} injected events")

    banks = allocate_banks(
        data.graph, n_clusters=16, hop_cost=1.0, gamma_scale=0.5, seed=0
    )
    snd = SND(data.graph, banks=banks)
    registry = default_registry()
    context = DistanceContext(graph=data.graph, snd=snd)

    print("\ncomputing quarterly distances...")
    distances = {
        name: registry.series(name, data.series, context)
        for name in ("snd", "hamming")
    }

    print(f"\n{'quarter':14s} {'SND score':>10s} {'hamming score':>14s}  event")
    results = {
        name: detect_anomalies(d, series=data.series, top_k=3)
        for name, d in distances.items()
    }
    for t in range(len(data.series) - 1):
        event = data.event_quarters.get(t + 1)
        marker = f"  <- {event.name} ({event.kind})" if event else ""
        print(
            f"{data.series.labels[t + 1]:14s} "
            f"{results['snd'].scores[t]:10.3f} "
            f"{results['hamming'].scores[t]:14.3f}{marker}"
        )

    print("\nflagged by SND:     quarters", results["snd"].flagged.tolist())
    print("flagged by hamming: quarters", results["hamming"].flagged.tolist())

    polarizing = [e.quarter - 1 for e in data.events if e.kind == "polarizing"]
    snd_scores = results["snd"].scores
    ham_scores = results["hamming"].scores
    print(
        f"\nmean spike score at polarizing events: "
        f"SND {np.mean(snd_scores[polarizing]):+.3f} vs "
        f"hamming {np.mean(ham_scores[polarizing]):+.3f}"
    )
    print("-> polarized responses move opinions along community lines at "
          "constant volume; only the propagation-aware measure reacts.")


if __name__ == "__main__":
    main()
