"""Plugging a custom opinion-dynamics model into SND.

SND's ground distance (Eq. 2) is parameterised by an opinion model that
prices each edge for spreading a given opinion. The library ships three
(model-agnostic, competitive independent cascade, competitive linear
threshold); this example implements a fourth — a *stubborn-celebrities*
model where high-degree users are expensive to route opinions through —
and compares the resulting distances.

Run:  python examples/custom_opinion_model.py
"""

import numpy as np

from repro import SND, ModelAgnostic, NetworkState
from repro.opinions import IndependentCascadeModel, OpinionModel
from repro.opinions.models.base import check_opinion
from repro.snd import allocate_banks


class StubbornCelebrityModel(OpinionModel):
    """Spreading penalties that grow with the *receiver's* popularity.

    Celebrities (high in-degree users) are hard to persuade: the adoption
    leg of every edge into them carries an extra log-degree penalty. Edges
    between like-minded users stay cheap, adverse edges expensive — as in
    the model-agnostic default.
    """

    name = "stubborn-celebrities"

    def __init__(self, celebrity_weight: float = 2.0):
        self.celebrity_weight = float(celebrity_weight)
        self._base = ModelAgnostic()

    def spreading_penalties(self, graph, state, opinion):
        opinion = check_opinion(opinion)
        base = self._base.spreading_penalties(graph, state, opinion)
        in_degrees = graph.in_degrees().astype(float)
        stubbornness = self.celebrity_weight * np.log1p(in_degrees)
        return base + stubbornness[graph.indices]

    def supports_simulation(self):
        return False


def main() -> None:
    from repro.datasets.synthetic import giant_component_powerlaw

    graph = giant_component_powerlaw(1500, -2.3, k_min=1, seed=7)
    banks = allocate_banks(graph, n_clusters=8, hop_cost=1.0, seed=0)

    # A '+' opinion relocates from a peripheral user to a celebrity (both in
    # the giant component, so the move is realisable through the network).
    degrees = graph.in_degrees()
    celebrity = int(np.argmax(degrees))
    candidates = np.flatnonzero(degrees == 1)
    nobody = int(candidates[0]) if candidates.size else int(np.argmin(degrees))
    base = NetworkState.from_active_sets(graph.num_nodes, positive=[nobody])
    to_celebrity = NetworkState.from_active_sets(graph.num_nodes, positive=[celebrity])

    print(f"celebrity user {celebrity} (in-degree {degrees[celebrity]}), "
          f"peripheral user {nobody} (in-degree {degrees[nobody]})\n")
    for model in (ModelAgnostic(), IndependentCascadeModel(0.3), StubbornCelebrityModel()):
        snd = SND(graph, model, banks=banks)
        d = snd.distance(base, to_celebrity)
        print(f"{model.name:22s} SND(nobody -> celebrity) = {d:8.1f}")

    print("\nThe custom model prices opinion movement toward celebrities "
          "higher — same API, one method implemented.")


if __name__ == "__main__":
    main()
