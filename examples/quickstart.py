"""Quickstart: compute Social Network Distance between opinion states.

Builds a small scale-free "social network", creates three opinion states —
a base state, a plausible evolution of it (opinions spread along edges),
and an implausible one (opinions teleport to random users) — and shows that
SND ranks the plausible evolution closer, while coordinate-wise measures
cannot tell the difference.

Run:  python examples/quickstart.py
"""

from repro import SND, NetworkState
from repro.datasets.synthetic import giant_component_powerlaw
from repro.distances import hamming_distance, l1_distance
from repro.opinions import evolve_state, random_transition, seed_state
from repro.snd import allocate_banks


def main() -> None:
    # 1. A scale-free network (exponent -2.3, like the paper), restricted
    #    to its giant component.
    graph = giant_component_powerlaw(3000, -2.3, k_min=1, seed=42)
    print(f"network: {graph.num_nodes} users, {graph.num_edges} follow edges")

    # 2. A base state: 100 early adopters, half "+" and half "-".
    base = seed_state(graph, 100, seed=1)
    print(f"base state: {base.n_positive} positive, {base.n_negative} negative users")

    # 3a. Plausible evolution: neutral users adopt opinions from neighbors.
    plausible = base
    for _ in range(3):
        plausible = evolve_state(
            graph, plausible, p_nbr=0.6, p_ext=0.0, candidate_fraction=0.1, seed=2
        )
    n_new = plausible.n_active - base.n_active

    # 3b. Implausible change: the same number of users activate at random.
    implausible = random_transition(graph, base, n_new, seed=3)

    # 4. SND knows which evolution respects the network structure. Bank
    #    ground distances are sized to typical intra-cluster path costs
    #    (hop_cost / gamma_scale), per the paper's guidance in Section 4.
    banks = allocate_banks(graph, n_clusters=16, hop_cost=1.0, gamma_scale=0.5, seed=0)
    snd = SND(graph, banks=banks)
    d_plausible = snd.distance(base, plausible)
    d_implausible = snd.distance(base, implausible)
    print(f"\nSND(base -> plausible)   = {d_plausible:10.1f}")
    print(f"SND(base -> implausible) = {d_implausible:10.1f}")
    print(f"SND ratio: {d_implausible / d_plausible:.2f}x "
          "(structure-ignoring change costs more)")

    # 5. Coordinate-wise measures see only the number of changed users.
    print(f"\nhamming: plausible={hamming_distance(base, plausible):.0f}  "
          f"implausible={hamming_distance(base, implausible):.0f}  (identical)")
    print(f"l1:      plausible={l1_distance(base, plausible):.0f}  "
          f"implausible={l1_distance(base, implausible):.0f}  (identical)")


if __name__ == "__main__":
    main()
