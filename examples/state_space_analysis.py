"""Treating network states as points in a metric space (§9).

Because SND is a distance measure, a time series of network states becomes
a point cloud: we can cluster snapshots into regimes, classify new
snapshots, and answer "which past state does today most resemble?" queries
efficiently. This example runs all three on a series containing two
evolution regimes.

Run:  python examples/state_space_analysis.py
"""

import numpy as np

from repro.analysis.metric_space import (
    KnnStateClassifier,
    VPTree,
    k_medoids,
    state_distance_matrix,
)
from repro.datasets.synthetic import giant_component_powerlaw
from repro.opinions import evolve_state, random_transition, seed_state
from repro.snd import SND, allocate_banks


def main() -> None:
    graph = giant_component_powerlaw(3000, -2.3, seed=5)
    banks = allocate_banks(graph, n_clusters=8, hop_cost=1.0, gamma_scale=0.5, seed=0)
    snd = SND(graph, banks=banks)

    # Build transitions under two regimes: organic spread vs random noise.
    rng = np.random.default_rng(0)
    transitions, labels = [], []
    for k in range(12):
        base = seed_state(graph, 80, seed=int(rng.integers(1e6)))
        if k % 2 == 0:
            after = evolve_state(graph, base, p_nbr=0.8, p_ext=0.0,
                                 candidate_fraction=0.2, seed=int(rng.integers(1e6)))
            labels.append("organic")
        else:
            after = random_transition(graph, base, 40, seed=int(rng.integers(1e6)))
            labels.append("random")
        transitions.append((base, after))

    # Each transition becomes a point: its per-unit SND.
    feats = [
        snd.distance(a, b) / max(1, a.n_delta(b)) for a, b in transitions
    ]
    print("per-unit SND by regime:")
    for regime in ("organic", "random"):
        values = [f for f, l in zip(feats, labels) if l == regime]
        print(f"  {regime:8s} mean={np.mean(values):7.2f}  (n={len(values)})")

    scalar = lambda a, b: abs(float(a) - float(b))  # noqa: E731

    # 1. Clustering: recover the two regimes without labels.
    dmat = state_distance_matrix(feats, scalar)
    cluster_labels, medoids, _ = k_medoids(dmat, 2, seed=0)

    # 1b. The same machinery over raw states: snd.pairwise_matrix evaluates
    # the upper triangle only, with ground costs cached per state.
    after_states = [b for _, b in transitions[:6]]
    state_dmat = state_distance_matrix(after_states, snd, jobs=4)
    state_clusters, _, _ = k_medoids(state_dmat, 2, seed=0)
    print(f"state-level k-medoids over SND matrix: {state_clusters.tolist()}")
    print(f"\nk-medoids clusters: {cluster_labels.tolist()}")
    print(f"true regimes:       "
          f"{[0 if l == 'organic' else 1 for l in labels]}  (up to renaming)")

    # 2. Classification: label a fresh transition.
    clf = KnnStateClassifier(scalar, k=3).fit(feats, labels)
    fresh_base = seed_state(graph, 80, seed=99)
    fresh_after = random_transition(graph, fresh_base, 40, seed=100)
    fresh_feat = snd.distance(fresh_base, fresh_after) / max(
        1, fresh_base.n_delta(fresh_after)
    )
    print(f"\nfresh random transition classified as: {clf.predict(fresh_feat)!r}")

    # 3. Search: nearest historical transition, with pruning.
    tree = VPTree(feats, scalar, seed=0)
    idx, dist = tree.nearest(fresh_feat)
    print(f"most similar past transition: #{idx} ({labels[idx]}), "
          f"|Δ per-unit SND| = {dist:.2f}, "
          f"{tree.last_query_evaluations}/{len(feats)} distances evaluated")


if __name__ == "__main__":
    main()
