"""Predicting hidden user opinions from network evolution (§6.3).

Some users haven't tweeted this quarter — what do they think? The paper's
method extrapolates the network's recent "evolution speed" (distance between
consecutive snapshots) and picks the opinion assignment for the silent
users that keeps the current snapshot on trend.

Run:  python examples/opinion_prediction.py
"""

import numpy as np

from repro.analysis import DistancePredictor
from repro.analysis.baselines import nhood_voting_predict
from repro.datasets import prediction_dataset
from repro.distances import hamming_distance
from repro.snd import SND, allocate_banks


def main() -> None:
    graph, series = prediction_dataset(seed=12)
    print(f"network: {graph.num_nodes} users; series of {len(series)} states")
    current = series[len(series) - 1]
    recent = series[len(series) - 4 : len(series) - 1]

    # Hide 20 active users (balanced between + and -), per the paper.
    rng = np.random.default_rng(0)
    pos = rng.choice(current.users_with(1), size=10, replace=False)
    neg = rng.choice(current.users_with(-1), size=10, replace=False)
    targets = np.concatenate([pos, neg])
    truth = current.values[targets]
    hidden = current.with_neutralized(targets)
    print(f"hidden the opinions of {targets.size} users")

    # SND-based prediction.
    banks = allocate_banks(graph, n_clusters=12, hop_cost=1.0, gamma_scale=0.5, seed=0)
    snd = SND(graph, banks=banks)
    predictor = DistancePredictor(snd.distance, n_assignments=100, extrapolation="mean")
    outcome = predictor.predict(recent, hidden, targets, seed=1)
    print(f"\nSND-based prediction:")
    print(f"  extrapolated on-trend distance d* = {outcome.estimated_distance:.1f}")
    print(f"  best assignment's distance        = {outcome.achieved_distance:.1f}")
    print(f"  accuracy: {outcome.accuracy(truth) * 100:.0f}%")

    # Hamming-based prediction (same machinery, blind distance).
    outcome_h = DistancePredictor(
        hamming_distance, n_assignments=100, extrapolation="mean"
    ).predict(
        recent, hidden, targets, seed=1
    )
    print(f"hamming-based accuracy: {outcome_h.accuracy(truth) * 100:.0f}%")

    # Egonet-level baseline.
    votes = nhood_voting_predict(graph, hidden, targets, seed=2)
    print(f"nhood-voting accuracy:  {np.mean(votes == truth) * 100:.0f}%")


if __name__ == "__main__":
    main()
