"""Unit tests for the sinkhorn-hybrid solver's building blocks.

The cross-solver *accuracy* properties (tolerance tiers, certificates,
upper-bound vs exact) live in ``test_solver_equivalence.py``; this file
pins the mechanics: the ε-scaling schedule, support-k resolution, top-k
screening mask, northwest-corner feasibility repair, small-instance exact
delegation, the restricted-solve backends, the diagnostics surface
(``last_hybrid_info`` / ``HYBRID_METRICS``), and the ``method="auto"``
threshold boundaries including the new hybrid branch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FlowError, ValidationError
from repro.flow import (
    AUTO_HYBRID_CELLS,
    AUTO_SIMPLEX_CELLS,
    AUTO_SSP_CELLS,
    TransportationProblem,
    select_transport_method,
    solve_transportation,
    solve_transportation_lp,
)
from repro.flow.sinkhorn_hybrid import (
    HYBRID_METRICS,
    HybridMetrics,
    HybridSolveInfo,
    SMALL_EXACT_CELLS,
    _northwest_corner_cells,
    _solve_support_ssp,
    epsilon_schedule,
    last_hybrid_info,
    resolve_support_k,
    screen_support,
    solve_transportation_sinkhorn_hybrid,
)


def random_balanced(rng, n, m, *, cost_hi=20):
    supplies = rng.integers(1, 12, n).astype(float)
    demands = rng.integers(1, 12, m).astype(float)
    demands *= supplies.sum() / demands.sum()
    costs = rng.integers(0, cost_hi, (n, m)).astype(float)
    return TransportationProblem(supplies, demands, costs)


# --------------------------------------------------------------------- #
# ε-scaling schedule
# --------------------------------------------------------------------- #


class TestEpsilonSchedule:
    def test_ends_exactly_at_epsilon(self):
        sched = epsilon_schedule(0.013)
        assert sched[-1] == 0.013

    def test_strictly_decreasing_from_start(self):
        sched = epsilon_schedule(0.01, start=1.0, factor=0.25)
        assert sched[0] == 1.0
        assert all(a > b for a, b in zip(sched, sched[1:]))

    def test_epsilon_at_start_is_single_stage(self):
        assert epsilon_schedule(1.0, start=1.0) == [1.0]

    def test_epsilon_above_start(self):
        # Degenerate but legal: one stage at the requested ε.
        assert epsilon_schedule(2.0, start=1.0) == [2.0]

    def test_bad_epsilon(self):
        with pytest.raises(FlowError):
            epsilon_schedule(0.0)

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 2.0])
    def test_bad_factor(self, factor):
        with pytest.raises(ValidationError):
            epsilon_schedule(0.1, factor=factor)


# --------------------------------------------------------------------- #
# support_k resolution
# --------------------------------------------------------------------- #


class TestResolveSupportK:
    def test_explicit_passthrough(self):
        assert resolve_support_k(7, 100, 100) == 7

    def test_auto_grows_logarithmically(self):
        small = resolve_support_k("auto", 50, 50)
        large = resolve_support_k("auto", 5000, 5000)
        assert small >= 5
        assert small < large < 40  # log-scale, not linear

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "bogus", None])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValidationError):
            resolve_support_k(bad, 10, 10)


# --------------------------------------------------------------------- #
# screening mask + feasibility repair
# --------------------------------------------------------------------- #


class TestScreenSupport:
    def test_row_and_column_coverage(self, rng):
        log_plan = rng.normal(size=(30, 40))
        k = 4
        mask = screen_support(log_plan, k)
        assert mask.sum(axis=1).min() >= k  # every row keeps >= k cells
        assert mask.sum(axis=0).min() >= k  # every column too
        assert mask.sum() <= k * (30 + 40)  # union stays sparse

    def test_keeps_the_largest_cells(self, rng):
        log_plan = rng.normal(size=(12, 12))
        mask = screen_support(log_plan, 3)
        # The single largest entry of each row must survive.
        top = np.argmax(log_plan, axis=1)
        assert mask[np.arange(12), top].all()

    def test_masks_nested_in_k(self, rng):
        log_plan = rng.normal(size=(25, 18))
        m_small = screen_support(log_plan, 2)
        m_large = screen_support(log_plan, 6)
        assert not (m_small & ~m_large).any()  # monotone: support grows with k

    def test_k_at_least_dims_keeps_everything(self, rng):
        log_plan = rng.normal(size=(6, 9))
        assert screen_support(log_plan, 9).all()


class TestNorthwestRepair:
    def test_cell_count_bound(self, rng):
        a = rng.integers(1, 10, 17).astype(float)
        b = rng.integers(1, 10, 23).astype(float)
        b *= a.sum() / b.sum()
        rows, cols = _northwest_corner_cells(a, b)
        assert rows.size <= 17 + 23 - 1

    def test_nw_cells_alone_are_feasible(self, rng):
        """The NW chain is a basic feasible solution: the restricted
        problem on *only* those cells must already admit exact marginals —
        the property that makes the repair a feasibility guarantee."""
        a = rng.integers(1, 10, 9).astype(float)
        b = rng.integers(1, 10, 12).astype(float)
        b *= a.sum() / b.sum()
        d = rng.integers(0, 20, (9, 12)).astype(float)
        rows, cols = _northwest_corner_cells(a, b)
        plan = _solve_support_ssp(a, b, d, rows, cols)
        assert np.allclose(plan.sum(axis=1), a, atol=1e-9)
        assert np.allclose(plan.sum(axis=0), b, atol=1e-9)

    def test_aggressive_screen_still_feasible(self, rng):
        """k=1 prunes far below feasibility on its own; the repair step
        must still produce a valid plan."""
        problem = random_balanced(rng, 70, 70)
        plan = solve_transportation_sinkhorn_hybrid(
            problem, support_k=1, epsilon=0.3, max_iter=100
        )
        plan.validate(problem)
        info = last_hybrid_info()
        assert info.screened
        assert info.support_density < 0.15


# --------------------------------------------------------------------- #
# exact delegation + restricted-solve backends
# --------------------------------------------------------------------- #


class TestDelegationAndBackends:
    def test_small_instance_matches_exact(self, rng):
        problem = random_balanced(rng, 12, 15)  # 180 cells << SMALL_EXACT_CELLS
        hybrid = solve_transportation_sinkhorn_hybrid(problem)
        exact = solve_transportation_lp(problem)
        assert hybrid.cost == pytest.approx(exact.cost, abs=1e-9 * max(1.0, exact.cost))
        info = last_hybrid_info()
        assert not info.screened
        assert info.support_density == 1.0
        assert info.screen_error_bound == 0.0

    def test_large_k_disables_screening(self, rng):
        problem = random_balanced(rng, 70, 70)  # 4900 cells > SMALL_EXACT_CELLS
        hybrid = solve_transportation_sinkhorn_hybrid(problem, support_k=70)
        exact = solve_transportation_lp(problem)
        assert hybrid.cost == pytest.approx(exact.cost, abs=1e-9 * max(1.0, exact.cost))
        assert not last_hybrid_info().screened

    @pytest.mark.parametrize("backend", ["ssp", "lp"])
    def test_backends_agree_when_screened(self, rng, backend):
        seed = int(rng.integers(0, 2**32))
        problem = random_balanced(np.random.default_rng(seed), 70, 70)
        plan = solve_transportation_sinkhorn_hybrid(
            problem, support_k=8, epsilon=0.02, exact_backend=backend
        )
        plan.validate(problem)
        assert last_hybrid_info().exact_backend == backend
        # Same screen (deterministic) -> same restricted optimum.
        other = "lp" if backend == "ssp" else "ssp"
        ref = solve_transportation_sinkhorn_hybrid(
            problem, support_k=8, epsilon=0.02, exact_backend=other
        )
        assert plan.cost == pytest.approx(ref.cost, abs=1e-7 * max(1.0, ref.cost))

    def test_bad_backend(self, rng):
        with pytest.raises(ValidationError):
            solve_transportation_sinkhorn_hybrid(
                random_balanced(rng, 4, 4), exact_backend="cplex"
            )

    def test_bad_epsilon(self, rng):
        with pytest.raises(FlowError):
            solve_transportation_sinkhorn_hybrid(
                random_balanced(rng, 4, 4), epsilon=-1.0
            )


class TestDegenerateInstances:
    def test_zero_total_mass(self):
        problem = TransportationProblem(np.zeros(3), np.zeros(2), np.ones((3, 2)))
        plan = solve_transportation_sinkhorn_hybrid(problem)
        assert plan.cost == 0.0
        assert plan.flows.shape == (3, 2)

    def test_unbalanced_partial_transport(self, rng):
        supplies = rng.integers(1, 10, 8).astype(float)
        demands = rng.integers(1, 10, 5).astype(float)
        costs = rng.integers(0, 15, (8, 5)).astype(float)
        problem = TransportationProblem(supplies, demands, costs)
        plan = solve_transportation_sinkhorn_hybrid(problem)
        plan.validate(problem)  # partial-transport marginal semantics
        exact = solve_transportation_lp(problem)
        assert plan.cost == pytest.approx(exact.cost, abs=1e-9 * max(1.0, exact.cost))

    def test_zero_mass_bins_screened_instance(self, rng):
        """Empty rows/columns survive the balancing step; the screen must
        restrict to positive-mass bins and still return a full-shape
        feasible plan."""
        problem = random_balanced(rng, 80, 80)
        supplies = problem.supplies.copy()
        demands = problem.demands.copy()
        supplies[::7] = 0.0
        demands *= supplies.sum() / demands.sum()
        problem = TransportationProblem(supplies, demands, problem.costs)
        plan = solve_transportation_sinkhorn_hybrid(problem, epsilon=0.05)
        plan.validate(problem)
        assert plan.flows.shape == (80, 80)
        assert np.all(plan.flows[::7] == 0.0)


# --------------------------------------------------------------------- #
# diagnostics
# --------------------------------------------------------------------- #


class TestDiagnostics:
    def test_last_hybrid_info_fields(self, rng):
        problem = random_balanced(rng, 70, 70)
        plan = solve_transportation_sinkhorn_hybrid(problem, epsilon=0.05, support_k=6)
        info = last_hybrid_info()
        assert info.screened
        assert info.n_cells == 70 * 70
        assert 0 < info.support_cells < info.n_cells
        assert info.support_density == pytest.approx(
            info.support_cells / info.n_cells
        )
        assert info.support_k == 6
        assert info.epsilon == 0.05
        assert info.sinkhorn_iterations > 0
        assert info.cost == plan.cost
        assert np.isfinite(info.screen_error_bound)
        assert info.screen_error_bound >= 0.0

    def test_global_metrics_accumulate(self, rng):
        before = HYBRID_METRICS.snapshot()
        solve_transportation_sinkhorn_hybrid(random_balanced(rng, 70, 70))
        solve_transportation_sinkhorn_hybrid(random_balanced(rng, 5, 5))
        after = HYBRID_METRICS.snapshot()
        assert after["solves"] == before["solves"] + 2
        assert after["screened_solves"] == before["screened_solves"] + 1

    def test_metrics_snapshot_shape(self, rng):
        metrics = HybridMetrics()
        metrics.record(
            HybridSolveInfo(
                n_cells=100, support_cells=25, support_density=0.25,
                screen_error_bound=0.1, screened=True,
            )
        )
        metrics.record(HybridSolveInfo(screened=False))
        snap = metrics.snapshot()
        assert snap["solves"] == 2
        assert snap["screened_solves"] == 1
        assert snap["support_density"] == pytest.approx(0.25)
        assert snap["last_support_density"] == pytest.approx(0.25)
        assert snap["max_screen_error_bound"] == pytest.approx(0.1)
        metrics.reset()
        assert metrics.snapshot()["solves"] == 0

    def test_infinite_bound_not_folded_into_max(self):
        metrics = HybridMetrics()
        metrics.record(
            HybridSolveInfo(
                n_cells=4, support_cells=4, screen_error_bound=float("inf"),
                screened=True,
            )
        )
        snap = metrics.snapshot()
        assert snap["max_screen_error_bound"] == 0.0  # inf = "uncertified"
        assert snap["last_screen_error_bound"] == float("inf")  # but last is honest


# --------------------------------------------------------------------- #
# method="auto" threshold boundaries (parameterized, both sides of each)
# --------------------------------------------------------------------- #


def _shape_with_cells(cells: int) -> tuple[int, int]:
    """An (n, m) whose product is exactly *cells* and reasonably square."""
    n = int(np.sqrt(cells))
    while cells % n:
        n -= 1
    return n, cells // n


class TestAutoSelectionBoundaries:
    @pytest.mark.parametrize(
        "cells,expected",
        [
            (AUTO_SIMPLEX_CELLS, "simplex"),      # at the cutoff: small tier
            (AUTO_SIMPLEX_CELLS + 1, "ssp"),      # one past: next tier
            (AUTO_SSP_CELLS, "ssp"),
            (AUTO_SSP_CELLS + 1, "lp"),
            (AUTO_HYBRID_CELLS, "lp"),            # exact up to the threshold
            (AUTO_HYBRID_CELLS + 1, "sinkhorn-hybrid"),
        ],
    )
    def test_each_cutoff_both_sides(self, cells, expected):
        n, m = _shape_with_cells(cells)
        assert n * m == cells
        assert select_transport_method(n, m) == expected

    def test_hybrid_cells_none_keeps_auto_exact(self):
        n, m = _shape_with_cells(AUTO_HYBRID_CELLS + 1)
        assert select_transport_method(n, m, hybrid_cells=None) == "lp"
        huge = select_transport_method(10_000, 10_000, hybrid_cells=None)
        assert huge == "lp"

    def test_hybrid_cells_override_moves_threshold(self):
        assert select_transport_method(80, 80, hybrid_cells=6_000) == "sinkhorn-hybrid"
        assert select_transport_method(80, 80, hybrid_cells=6_400) == "lp"

    def test_hybrid_threshold_above_small_exact_floor(self):
        """auto never routes an instance to the hybrid that the hybrid
        would immediately delegate back to an exact solver."""
        assert AUTO_HYBRID_CELLS > SMALL_EXACT_CELLS

    def test_degenerate_shapes(self):
        assert select_transport_method(0, 10) == "simplex"
        assert select_transport_method(1, 1) == "simplex"

    def test_solve_transportation_dispatches_hybrid(self, rng):
        problem = random_balanced(rng, 10, 10)
        via_registry = solve_transportation(problem, method="sinkhorn-hybrid")
        exact = solve_transportation_lp(problem)
        assert via_registry.cost == pytest.approx(exact.cost, abs=1e-9)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValidationError, match="sinkhorn-hybrid"):
            solve_transportation(random_balanced(rng, 3, 3), method="sinkhorn")
