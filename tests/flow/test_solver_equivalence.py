"""Cross-solver equivalence harness (property tests).

Randomized balanced transportation and min-cost-flow instances —
parametrized over size, density (fraction of cheaply-connected pairs),
integer vs float costs, and degenerate supplies (zero bins, tie-heavy
costs) — are solved by every exact solver in the library:

* ``solve_transportation_ssp`` under all three Dijkstra kernels
  (``heap`` / ``vector`` / ``argmin``),
* ``solve_transportation_simplex`` (MODI),
* ``solve_transportation_lp`` (HiGHS reference),
* ``solve_mcf_cost_scaling`` (on the bipartite MCF form; integer
  instances only),

asserting all optimal costs agree within ``1e-9`` (relative to the cost
scale) and that **every returned plan** satisfies the feasibility and
reduced-cost optimality invariants: flow conservation, capacity bounds,
and the absence of a negative-cost cycle in the residual/exchange graph
(the complementary-slackness certificate).

A small smoke subset runs in tier-1; the full matrix is marked
``@pytest.mark.slow`` and runs in CI's property-suite job (``--runslow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import (
    MinCostFlowProblem,
    TransportationProblem,
    solve_mcf_cost_scaling,
    solve_mcf_ssp,
    solve_transportation,
    solve_transportation_lp,
    solve_transportation_simplex,
    solve_transportation_ssp,
)

#: Cross-solver agreement budget (absolute, costs are O(1e3) at most).
AGREE_TOL = 1e-9
#: Slack for invariant checks on plans returned by the float LP solver.
FEAS_TOL = 1e-6

SSP_KERNELS = ("heap", "vector", "argmin")


# --------------------------------------------------------------------- #
# Instance generators
# --------------------------------------------------------------------- #


def make_transportation(
    rng: np.random.Generator,
    n: int,
    m: int,
    *,
    integer_costs: bool = True,
    density: float = 1.0,
    degenerate: bool = False,
) -> TransportationProblem:
    """A random *balanced* transportation instance.

    ``density`` is the fraction of supplier/consumer pairs with a cheap
    cost; the rest get a large uniform cost, modelling effectively
    disconnected pairs. ``degenerate`` zeroes random bins and flattens
    costs onto a coarse grid so solvers face ties and empty rows/columns.
    """
    supplies = rng.integers(0, 12, n).astype(np.float64)
    demands = rng.integers(0, 12, m).astype(np.float64)
    if degenerate:
        supplies[rng.random(n) < 0.4] = 0.0
        demands[rng.random(m) < 0.4] = 0.0
    gap = supplies.sum() - demands.sum()
    if gap > 0:
        demands[-1] += gap
    elif gap < 0:
        supplies[-1] += -gap
    if integer_costs:
        costs = rng.integers(0, 20, (n, m)).astype(np.float64)
    else:
        costs = np.round(rng.random((n, m)) * 20.0, 6)
    if density < 1.0:
        costs = np.where(rng.random((n, m)) < density, costs, 1000.0)
    if degenerate:
        costs = np.floor(costs / 4.0) * 4.0
    return TransportationProblem(supplies, demands, costs)


def transportation_as_mcf(problem: TransportationProblem) -> MinCostFlowProblem:
    """The bipartite MCF form of a balanced transportation instance
    (integer costs/supplies), for the cost-scaling solver."""
    n, m = problem.n_suppliers, problem.n_consumers
    mcf = MinCostFlowProblem(n + m)
    cap = float(np.ceil(problem.total_supply)) + 1.0
    mcf.supply[:n] = problem.supplies
    mcf.supply[n:] = -problem.demands
    mcf.add_edges(
        np.repeat(np.arange(n), m),
        n + np.tile(np.arange(m), n),
        np.full(n * m, cap),
        problem.costs.ravel(),
    )
    return mcf


def make_mcf(
    rng: np.random.Generator, n: int, n_arcs: int, *, integer: bool = True
) -> MinCostFlowProblem:
    """A random balanced MCF instance, feasible by construction (every
    source has a high-cost backbone arc to the sink)."""
    mcf = MinCostFlowProblem(n)
    n_sources = max(1, n // 4)
    supply = rng.integers(1, 6, n_sources).astype(np.float64)
    mcf.supply[:n_sources] = supply
    mcf.supply[n - 1] = -supply.sum()
    total = float(supply.sum())
    mcf.add_edges(
        np.arange(n_sources),
        np.full(n_sources, n - 1),
        np.full(n_sources, total),
        np.full(n_sources, 100.0),
    )
    tails = rng.integers(0, n, n_arcs)
    heads = rng.integers(0, n, n_arcs)
    keep = tails != heads
    caps = rng.integers(1, 9, int(keep.sum())).astype(np.float64)
    if integer:
        costs = rng.integers(0, 30, int(keep.sum())).astype(np.float64)
    else:
        costs = np.round(rng.random(int(keep.sum())) * 30.0, 6)
    mcf.add_edges(tails[keep], heads[keep], caps, costs)
    return mcf


# --------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------- #


def _assert_no_negative_cycle(
    n_nodes: int,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    *,
    tol: float,
    label: str,
) -> None:
    """Bellman–Ford convergence check: valid potentials exist (no negative
    residual cycle) iff relaxation reaches a fixed point within n rounds."""
    if len(tails) == 0:
        return
    dist = np.zeros(n_nodes)
    for _ in range(n_nodes + 1):
        alt = dist[tails] + weights
        new = dist.copy()
        np.minimum.at(new, heads, alt)
        if np.all(dist - new <= tol):
            return
        dist = new
    pytest.fail(f"{label}: residual graph has a negative cycle — plan not optimal")


def assert_transportation_plan_optimal(
    problem: TransportationProblem, plan, *, label: str
) -> None:
    """Feasibility + reduced-cost optimality of a transportation plan."""
    plan.validate(problem)  # shape, non-negativity, marginals, moved mass
    n, m = problem.n_suppliers, problem.n_consumers
    if n == 0 or m == 0 or problem.moved_mass <= 0.0:
        return
    scale = max(1.0, float(problem.costs.max()))
    flows = plan.flows
    # Exchange graph: i -> j at c_ij always (f_ij can grow), j -> i at
    # -c_ij where f_ij > 0 (it can shrink). Optimal iff no negative cycle.
    fwd_tails = np.repeat(np.arange(n), m)
    fwd_heads = n + np.tile(np.arange(m), n)
    fwd_costs = problem.costs.ravel()
    back = flows.ravel() > FEAS_TOL
    tails = np.concatenate([fwd_tails, fwd_heads[back]])
    heads = np.concatenate([fwd_heads, fwd_tails[back]])
    weights = np.concatenate([fwd_costs, -fwd_costs[back]])
    _assert_no_negative_cycle(
        n + m, tails, heads, weights, tol=FEAS_TOL * scale, label=label
    )


def assert_mcf_solution_optimal(mcf: MinCostFlowProblem, flows, *, label: str) -> None:
    """Conservation, capacity bounds, and reduced-cost optimality of a
    min-cost-flow solution."""
    tails, heads, caps, costs = mcf.arrays()
    flows = np.asarray(flows, dtype=np.float64)
    scale = max(1.0, float(np.abs(mcf.supply).sum()))
    assert flows.min() >= -FEAS_TOL * scale, f"{label}: negative arc flow"
    assert np.all(flows <= caps + FEAS_TOL * scale), f"{label}: capacity violated"
    outflow = np.bincount(tails, weights=flows, minlength=mcf.n_nodes)
    inflow = np.bincount(heads, weights=flows, minlength=mcf.n_nodes)
    imbalance = np.abs(outflow - inflow - mcf.supply)
    assert imbalance.max() <= FEAS_TOL * scale, (
        f"{label}: flow conservation violated by {imbalance.max()}"
    )
    cost_scale = max(1.0, float(np.abs(costs).max()) if len(costs) else 1.0)
    usable_fwd = flows < caps - FEAS_TOL
    usable_bwd = flows > FEAS_TOL
    res_tails = np.concatenate([tails[usable_fwd], heads[usable_bwd]])
    res_heads = np.concatenate([heads[usable_fwd], tails[usable_bwd]])
    res_costs = np.concatenate([costs[usable_fwd], -costs[usable_bwd]])
    _assert_no_negative_cycle(
        mcf.n_nodes, res_tails, res_heads, res_costs,
        tol=FEAS_TOL * cost_scale, label=label,
    )


def check_transportation_instance(problem: TransportationProblem) -> None:
    """Solve with every applicable solver; assert agreement + invariants."""
    plans = {}
    for kernel in SSP_KERNELS:
        plans[f"ssp-{kernel}"] = solve_transportation_ssp(problem, kernel=kernel)
    plans["simplex"] = solve_transportation_simplex(problem)
    plans["lp"] = solve_transportation_lp(problem)
    plans["auto"] = solve_transportation(problem, method="auto")

    integral = bool(
        np.allclose(problem.costs, np.round(problem.costs))
        and np.allclose(problem.supplies, np.round(problem.supplies))
        and np.allclose(problem.demands, np.round(problem.demands))
    )
    cs_cost = None
    if integral:
        cs_solution = solve_mcf_cost_scaling(transportation_as_mcf(problem))
        cs_cost = cs_solution.cost

    reference = plans["lp"].cost
    scale = max(1.0, abs(reference))
    for name, plan in plans.items():
        assert plan.cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"{name} disagrees with lp_reference: {plan.cost} vs {reference}"
        )
        assert_transportation_plan_optimal(problem, plan, label=name)
    if cs_cost is not None:
        assert cs_cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"cost-scaling disagrees with lp_reference: {cs_cost} vs {reference}"
        )


def check_mcf_instance(mcf_factory) -> None:
    """Solve a (re-buildable) MCF instance with every kernel + solver."""
    solutions = {}
    for kernel in SSP_KERNELS:
        solutions[f"ssp-{kernel}"] = (mcf := mcf_factory(), solve_mcf_ssp(mcf, kernel=kernel))
    probe = mcf_factory()
    _, _, caps, costs = probe.arrays()
    integral = bool(
        np.allclose(costs, np.round(costs))
        and np.allclose(caps, np.round(caps))
        and np.allclose(probe.supply, np.round(probe.supply))
    )
    if integral:
        solutions["cost-scaling"] = (mcf := mcf_factory(), solve_mcf_cost_scaling(mcf))

    reference = solutions["ssp-heap"][1].cost
    scale = max(1.0, abs(reference))
    for name, (mcf, solution) in solutions.items():
        assert solution.cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"{name} disagrees with ssp-heap: {solution.cost} vs {reference}"
        )
        assert_mcf_solution_optimal(mcf, solution.flows, label=name)


# --------------------------------------------------------------------- #
# Tier-1 smoke subset
# --------------------------------------------------------------------- #


class TestEquivalenceSmoke:
    @pytest.mark.parametrize("n,m", [(1, 1), (3, 4), (6, 6)])
    def test_transportation_small(self, rng, n, m):
        check_transportation_instance(make_transportation(rng, n, m))

    def test_transportation_degenerate(self, rng):
        check_transportation_instance(
            make_transportation(rng, 5, 5, degenerate=True)
        )

    def test_transportation_float_costs(self, rng):
        check_transportation_instance(
            make_transportation(rng, 4, 6, integer_costs=False)
        )

    def test_mcf_small(self, rng):
        seed = int(rng.integers(0, 2**32))
        check_mcf_instance(
            lambda: make_mcf(np.random.default_rng(seed), 10, 25)
        )

    def test_all_zero_mass(self):
        problem = TransportationProblem(np.zeros(3), np.zeros(2), np.ones((3, 2)))
        check_transportation_instance(problem)

    def test_auto_kernel_policy(self, monkeypatch):
        import repro.flow.ssp as ssp_mod
        from repro.flow import select_mcf_kernel

        # With scipy importable the vector kernel wins on every measured
        # shape; without it the heap loop is kept.
        assert select_mcf_kernel(50, 100) == "vector"
        assert select_mcf_kernel(100_000, 200_000) == "vector"
        monkeypatch.setattr(ssp_mod, "_sp_dijkstra", None)
        assert select_mcf_kernel(50, 100) == "heap"


# --------------------------------------------------------------------- #
# Full property matrix (CI property-suite job)
# --------------------------------------------------------------------- #


@pytest.mark.slow
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("n,m", [(2, 2), (3, 7), (6, 6), (9, 5), (12, 12), (16, 16)])
    @pytest.mark.parametrize("density", [1.0, 0.4])
    @pytest.mark.parametrize("integer_costs", [True, False])
    @pytest.mark.parametrize("degenerate", [False, True])
    def test_transportation_matrix(self, rng, n, m, density, integer_costs, degenerate):
        problem = make_transportation(
            rng, n, m,
            integer_costs=integer_costs, density=density, degenerate=degenerate,
        )
        check_transportation_instance(problem)

    @pytest.mark.parametrize("n,n_arcs", [(8, 20), (16, 40), (16, 120), (32, 90), (48, 300)])
    @pytest.mark.parametrize("integer", [True, False])
    def test_mcf_matrix(self, rng, n, n_arcs, integer):
        seed = int(rng.integers(0, 2**32))
        check_mcf_instance(
            lambda: make_mcf(np.random.default_rng(seed), n, n_arcs, integer=integer)
        )

    @pytest.mark.parametrize("trial", range(10))
    def test_unbalanced_partial_transport(self, rng, trial):
        """Unbalanced instances: the solvers move min(supply, demand) mass
        and still agree (the EMD partial-transport semantics)."""
        n, m = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        supplies = rng.integers(0, 12, n).astype(np.float64)
        demands = rng.integers(0, 12, m).astype(np.float64)
        costs = rng.integers(0, 20, (n, m)).astype(np.float64)
        problem = TransportationProblem(supplies, demands, costs)
        plans = {
            f"ssp-{kernel}": solve_transportation_ssp(problem, kernel=kernel)
            for kernel in SSP_KERNELS
        }
        plans["simplex"] = solve_transportation_simplex(problem)
        plans["lp"] = solve_transportation_lp(problem)
        reference = plans["lp"].cost
        scale = max(1.0, abs(reference))
        for name, plan in plans.items():
            assert plan.cost == pytest.approx(reference, abs=AGREE_TOL * scale), name
            plan.validate(problem)
