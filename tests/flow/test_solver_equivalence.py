"""Cross-solver equivalence harness (property tests).

Randomized balanced transportation and min-cost-flow instances —
parametrized over size, density (fraction of cheaply-connected pairs),
integer vs float costs, and degenerate supplies (zero bins, tie-heavy
costs) — are solved by every exact solver in the library:

* ``solve_transportation_ssp`` under all three Dijkstra kernels
  (``heap`` / ``vector`` / ``argmin``),
* ``solve_transportation_simplex`` (MODI),
* ``solve_transportation_network_simplex`` (warm-startable sparse
  simplex — solved cold *and* re-solved warm from its own optimal basis,
  asserting the warm result is bitwise identical on fully integral
  instances and within ``AGREE_TOL`` otherwise),
* ``solve_transportation_lp`` (HiGHS reference),
* ``solve_mcf_cost_scaling`` (on the bipartite MCF form; integer
  instances only),

asserting all optimal costs agree within ``1e-9`` (relative to the cost
scale) and that **every returned plan** satisfies the feasibility and
reduced-cost optimality invariants: flow conservation, capacity bounds,
and the absence of a negative-cost cycle in the residual/exchange graph
(the complementary-slackness certificate).

The **tolerance-tiered hybrid harness** at the bottom extends the same
idea to the approximate ``"sinkhorn-hybrid"`` tier: exact solvers must
agree to ``AGREE_TOL``; the hybrid must return a *feasible* plan whose
cost (a) upper-bounds the exact optimum, (b) stays within a stated
relative-error budget that is a function of ``(ε, k)`` and **monotone in
both** (the tier table itself is asserted monotone), and (c) never
exceeds its own per-solve certificate ``screen_error_bound``.

A small smoke subset runs in tier-1; the full matrix is marked
``@pytest.mark.slow`` and runs in CI's property-suite job (``--runslow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import (
    MinCostFlowProblem,
    TransportationProblem,
    solve_mcf_cost_scaling,
    solve_mcf_ssp,
    solve_transportation,
    solve_transportation_lp,
    solve_transportation_network_simplex,
    solve_transportation_simplex,
    solve_transportation_ssp,
)
from repro.flow.sinkhorn_hybrid import (
    last_hybrid_info,
    solve_transportation_sinkhorn_hybrid,
)

#: Cross-solver agreement budget (absolute, costs are O(1e3) at most).
AGREE_TOL = 1e-9
#: Slack for invariant checks on plans returned by the float LP solver.
FEAS_TOL = 1e-6

SSP_KERNELS = ("heap", "vector", "argmin")

#: The hybrid tier table: ``(epsilon, support_k) -> relative-error
#: budget``. Budgets were calibrated on randomized 70x70..120x80 instances
#: (worst observed error x a 2-5x safety margin; see benchmarks/README.md)
#: and are MONOTONE in both knobs — tightening ε or raising k never
#: loosens the budget. ``test_tier_table_monotone`` asserts that shape
#: programmatically, so the table cannot silently regress.
HYBRID_ERROR_TIERS = (
    # (epsilon, support_k, rel-error budget)
    (0.5, 2, 2.5),       # coarse screen: error can exceed the optimum itself
    (0.1, 4, 0.10),
    (0.05, 6, 0.02),
    (0.02, 8, 0.005),
    (0.005, 16, 0.001),
)


# --------------------------------------------------------------------- #
# Instance generators
# --------------------------------------------------------------------- #


def make_transportation(
    rng: np.random.Generator,
    n: int,
    m: int,
    *,
    integer_costs: bool = True,
    density: float = 1.0,
    degenerate: bool = False,
) -> TransportationProblem:
    """A random *balanced* transportation instance.

    ``density`` is the fraction of supplier/consumer pairs with a cheap
    cost; the rest get a large uniform cost, modelling effectively
    disconnected pairs. ``degenerate`` zeroes random bins and flattens
    costs onto a coarse grid so solvers face ties and empty rows/columns.
    """
    supplies = rng.integers(0, 12, n).astype(np.float64)
    demands = rng.integers(0, 12, m).astype(np.float64)
    if degenerate:
        supplies[rng.random(n) < 0.4] = 0.0
        demands[rng.random(m) < 0.4] = 0.0
    gap = supplies.sum() - demands.sum()
    if gap > 0:
        demands[-1] += gap
    elif gap < 0:
        supplies[-1] += -gap
    if integer_costs:
        costs = rng.integers(0, 20, (n, m)).astype(np.float64)
    else:
        costs = np.round(rng.random((n, m)) * 20.0, 6)
    if density < 1.0:
        costs = np.where(rng.random((n, m)) < density, costs, 1000.0)
    if degenerate:
        costs = np.floor(costs / 4.0) * 4.0
    return TransportationProblem(supplies, demands, costs)


def transportation_as_mcf(problem: TransportationProblem) -> MinCostFlowProblem:
    """The bipartite MCF form of a balanced transportation instance
    (integer costs/supplies), for the cost-scaling solver."""
    n, m = problem.n_suppliers, problem.n_consumers
    mcf = MinCostFlowProblem(n + m)
    cap = float(np.ceil(problem.total_supply)) + 1.0
    mcf.supply[:n] = problem.supplies
    mcf.supply[n:] = -problem.demands
    mcf.add_edges(
        np.repeat(np.arange(n), m),
        n + np.tile(np.arange(m), n),
        np.full(n * m, cap),
        problem.costs.ravel(),
    )
    return mcf


def make_mcf(
    rng: np.random.Generator, n: int, n_arcs: int, *, integer: bool = True
) -> MinCostFlowProblem:
    """A random balanced MCF instance, feasible by construction (every
    source has a high-cost backbone arc to the sink)."""
    mcf = MinCostFlowProblem(n)
    n_sources = max(1, n // 4)
    supply = rng.integers(1, 6, n_sources).astype(np.float64)
    mcf.supply[:n_sources] = supply
    mcf.supply[n - 1] = -supply.sum()
    total = float(supply.sum())
    mcf.add_edges(
        np.arange(n_sources),
        np.full(n_sources, n - 1),
        np.full(n_sources, total),
        np.full(n_sources, 100.0),
    )
    tails = rng.integers(0, n, n_arcs)
    heads = rng.integers(0, n, n_arcs)
    keep = tails != heads
    caps = rng.integers(1, 9, int(keep.sum())).astype(np.float64)
    if integer:
        costs = rng.integers(0, 30, int(keep.sum())).astype(np.float64)
    else:
        costs = np.round(rng.random(int(keep.sum())) * 30.0, 6)
    mcf.add_edges(tails[keep], heads[keep], caps, costs)
    return mcf


# --------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------- #


def _assert_no_negative_cycle(
    n_nodes: int,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    *,
    tol: float,
    label: str,
) -> None:
    """Bellman–Ford convergence check: valid potentials exist (no negative
    residual cycle) iff relaxation reaches a fixed point within n rounds."""
    if len(tails) == 0:
        return
    dist = np.zeros(n_nodes)
    for _ in range(n_nodes + 1):
        alt = dist[tails] + weights
        new = dist.copy()
        np.minimum.at(new, heads, alt)
        if np.all(dist - new <= tol):
            return
        dist = new
    pytest.fail(f"{label}: residual graph has a negative cycle — plan not optimal")


def assert_transportation_plan_optimal(
    problem: TransportationProblem, plan, *, label: str
) -> None:
    """Feasibility + reduced-cost optimality of a transportation plan."""
    plan.validate(problem)  # shape, non-negativity, marginals, moved mass
    n, m = problem.n_suppliers, problem.n_consumers
    if n == 0 or m == 0 or problem.moved_mass <= 0.0:
        return
    scale = max(1.0, float(problem.costs.max()))
    flows = plan.flows
    # Exchange graph: i -> j at c_ij always (f_ij can grow), j -> i at
    # -c_ij where f_ij > 0 (it can shrink). Optimal iff no negative cycle.
    fwd_tails = np.repeat(np.arange(n), m)
    fwd_heads = n + np.tile(np.arange(m), n)
    fwd_costs = problem.costs.ravel()
    back = flows.ravel() > FEAS_TOL
    tails = np.concatenate([fwd_tails, fwd_heads[back]])
    heads = np.concatenate([fwd_heads, fwd_tails[back]])
    weights = np.concatenate([fwd_costs, -fwd_costs[back]])
    _assert_no_negative_cycle(
        n + m, tails, heads, weights, tol=FEAS_TOL * scale, label=label
    )


def assert_mcf_solution_optimal(mcf: MinCostFlowProblem, flows, *, label: str) -> None:
    """Conservation, capacity bounds, and reduced-cost optimality of a
    min-cost-flow solution."""
    tails, heads, caps, costs = mcf.arrays()
    flows = np.asarray(flows, dtype=np.float64)
    scale = max(1.0, float(np.abs(mcf.supply).sum()))
    assert flows.min() >= -FEAS_TOL * scale, f"{label}: negative arc flow"
    assert np.all(flows <= caps + FEAS_TOL * scale), f"{label}: capacity violated"
    outflow = np.bincount(tails, weights=flows, minlength=mcf.n_nodes)
    inflow = np.bincount(heads, weights=flows, minlength=mcf.n_nodes)
    imbalance = np.abs(outflow - inflow - mcf.supply)
    assert imbalance.max() <= FEAS_TOL * scale, (
        f"{label}: flow conservation violated by {imbalance.max()}"
    )
    cost_scale = max(1.0, float(np.abs(costs).max()) if len(costs) else 1.0)
    usable_fwd = flows < caps - FEAS_TOL
    usable_bwd = flows > FEAS_TOL
    res_tails = np.concatenate([tails[usable_fwd], heads[usable_bwd]])
    res_heads = np.concatenate([heads[usable_fwd], tails[usable_bwd]])
    res_costs = np.concatenate([costs[usable_fwd], -costs[usable_bwd]])
    _assert_no_negative_cycle(
        mcf.n_nodes, res_tails, res_heads, res_costs,
        tol=FEAS_TOL * cost_scale, label=label,
    )


def check_transportation_instance(problem: TransportationProblem) -> None:
    """Solve with every applicable solver; assert agreement + invariants."""
    plans = {}
    for kernel in SSP_KERNELS:
        plans[f"ssp-{kernel}"] = solve_transportation_ssp(problem, kernel=kernel)
    plans["simplex"] = solve_transportation_simplex(problem)
    plans["lp"] = solve_transportation_lp(problem)
    plans["auto"] = solve_transportation(problem, method="auto")
    ns_cold, ns_basis = solve_transportation_network_simplex(
        problem, return_basis=True
    )
    plans["network-simplex"] = ns_cold

    integral = bool(
        np.allclose(problem.costs, np.round(problem.costs))
        and np.allclose(problem.supplies, np.round(problem.supplies))
        and np.allclose(problem.demands, np.round(problem.demands))
    )
    cs_cost = None
    if integral:
        cs_solution = solve_mcf_cost_scaling(transportation_as_mcf(problem))
        cs_cost = cs_solution.cost

    reference = plans["lp"].cost
    scale = max(1.0, abs(reference))
    for name, plan in plans.items():
        assert plan.cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"{name} disagrees with lp_reference: {plan.cost} vs {reference}"
        )
        assert_transportation_plan_optimal(problem, plan, label=name)
    if cs_cost is not None:
        assert cs_cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"cost-scaling disagrees with lp_reference: {cs_cost} vs {reference}"
        )

    # Warm-vs-cold exactness: re-solving from the cold solve's own optimal
    # basis only changes the *starting tree*, never the optimum. Fully
    # integral instances must reproduce the cold plan bitwise (all simplex
    # arithmetic stays on integers); float instances agree to AGREE_TOL.
    ns_warm = solve_transportation_network_simplex(problem, basis=ns_basis)
    if integral:
        assert ns_warm.cost == ns_cold.cost, "warm NS cost not bitwise equal"
        assert np.array_equal(ns_warm.flows, ns_cold.flows), (
            "warm NS plan not bitwise equal on integral instance"
        )
    else:
        assert ns_warm.cost == pytest.approx(ns_cold.cost, abs=AGREE_TOL * scale)
        assert_transportation_plan_optimal(problem, ns_warm, label="ns-warm")


def check_mcf_instance(mcf_factory) -> None:
    """Solve a (re-buildable) MCF instance with every kernel + solver."""
    solutions = {}
    for kernel in SSP_KERNELS:
        solutions[f"ssp-{kernel}"] = (mcf := mcf_factory(), solve_mcf_ssp(mcf, kernel=kernel))
    probe = mcf_factory()
    _, _, caps, costs = probe.arrays()
    integral = bool(
        np.allclose(costs, np.round(costs))
        and np.allclose(caps, np.round(caps))
        and np.allclose(probe.supply, np.round(probe.supply))
    )
    if integral:
        solutions["cost-scaling"] = (mcf := mcf_factory(), solve_mcf_cost_scaling(mcf))

    reference = solutions["ssp-heap"][1].cost
    scale = max(1.0, abs(reference))
    for name, (mcf, solution) in solutions.items():
        assert solution.cost == pytest.approx(reference, abs=AGREE_TOL * scale), (
            f"{name} disagrees with ssp-heap: {solution.cost} vs {reference}"
        )
        assert_mcf_solution_optimal(mcf, solution.flows, label=name)


# --------------------------------------------------------------------- #
# Tier-1 smoke subset
# --------------------------------------------------------------------- #


class TestEquivalenceSmoke:
    @pytest.mark.parametrize("n,m", [(1, 1), (3, 4), (6, 6)])
    def test_transportation_small(self, rng, n, m):
        check_transportation_instance(make_transportation(rng, n, m))

    def test_transportation_degenerate(self, rng):
        check_transportation_instance(
            make_transportation(rng, 5, 5, degenerate=True)
        )

    def test_transportation_float_costs(self, rng):
        check_transportation_instance(
            make_transportation(rng, 4, 6, integer_costs=False)
        )

    def test_mcf_small(self, rng):
        seed = int(rng.integers(0, 2**32))
        check_mcf_instance(
            lambda: make_mcf(np.random.default_rng(seed), 10, 25)
        )

    def test_all_zero_mass(self):
        problem = TransportationProblem(np.zeros(3), np.zeros(2), np.ones((3, 2)))
        check_transportation_instance(problem)

    def test_auto_kernel_policy(self, monkeypatch):
        import repro.flow.ssp as ssp_mod
        from repro.flow import select_mcf_kernel

        # With scipy importable the vector kernel wins on every measured
        # shape; without it the heap loop is kept.
        assert select_mcf_kernel(50, 100) == "vector"
        assert select_mcf_kernel(100_000, 200_000) == "vector"
        monkeypatch.setattr(ssp_mod, "_sp_dijkstra", None)
        assert select_mcf_kernel(50, 100) == "heap"


# --------------------------------------------------------------------- #
# Full property matrix (CI property-suite job)
# --------------------------------------------------------------------- #


@pytest.mark.slow
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("n,m", [(2, 2), (3, 7), (6, 6), (9, 5), (12, 12), (16, 16)])
    @pytest.mark.parametrize("density", [1.0, 0.4])
    @pytest.mark.parametrize("integer_costs", [True, False])
    @pytest.mark.parametrize("degenerate", [False, True])
    def test_transportation_matrix(self, rng, n, m, density, integer_costs, degenerate):
        problem = make_transportation(
            rng, n, m,
            integer_costs=integer_costs, density=density, degenerate=degenerate,
        )
        check_transportation_instance(problem)

    @pytest.mark.parametrize("n,n_arcs", [(8, 20), (16, 40), (16, 120), (32, 90), (48, 300)])
    @pytest.mark.parametrize("integer", [True, False])
    def test_mcf_matrix(self, rng, n, n_arcs, integer):
        seed = int(rng.integers(0, 2**32))
        check_mcf_instance(
            lambda: make_mcf(np.random.default_rng(seed), n, n_arcs, integer=integer)
        )

    @pytest.mark.parametrize("trial", range(10))
    def test_unbalanced_partial_transport(self, rng, trial):
        """Unbalanced instances: the solvers move min(supply, demand) mass
        and still agree (the EMD partial-transport semantics)."""
        n, m = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        supplies = rng.integers(0, 12, n).astype(np.float64)
        demands = rng.integers(0, 12, m).astype(np.float64)
        costs = rng.integers(0, 20, (n, m)).astype(np.float64)
        problem = TransportationProblem(supplies, demands, costs)
        plans = {
            f"ssp-{kernel}": solve_transportation_ssp(problem, kernel=kernel)
            for kernel in SSP_KERNELS
        }
        plans["simplex"] = solve_transportation_simplex(problem)
        plans["lp"] = solve_transportation_lp(problem)
        reference = plans["lp"].cost
        scale = max(1.0, abs(reference))
        for name, plan in plans.items():
            assert plan.cost == pytest.approx(reference, abs=AGREE_TOL * scale), name
            plan.validate(problem)


# --------------------------------------------------------------------- #
# Tolerance-tiered hybrid harness
# --------------------------------------------------------------------- #


def make_screened_transportation(
    rng: np.random.Generator,
    n: int,
    m: int,
    *,
    tie_heavy: bool = False,
    integer_costs: bool = True,
) -> TransportationProblem:
    """A balanced instance big enough that the hybrid actually screens
    (``n*m > SMALL_EXACT_CELLS``) with strictly positive costs, so the
    optimum is bounded away from zero and relative error is well-defined."""
    supplies = rng.integers(1, 12, n).astype(np.float64)
    demands = rng.integers(1, 12, m).astype(np.float64)
    demands *= supplies.sum() / demands.sum()
    if integer_costs:
        costs = rng.integers(1, 21, (n, m)).astype(np.float64)
    else:
        costs = 1.0 + np.round(rng.random((n, m)) * 19.0, 6)
    if tie_heavy:
        costs = np.maximum(1.0, np.floor(costs / 4.0) * 4.0)
    return TransportationProblem(supplies, demands, costs)


def check_hybrid_tier(
    problem: TransportationProblem,
    *,
    epsilon: float,
    support_k: int,
    budget: float,
) -> None:
    """One hybrid solve against the exact optimum: feasibility, the
    upper-bound property, the tier's relative-error budget, and the
    per-solve certificate."""
    exact = solve_transportation_lp(problem).cost
    plan = solve_transportation_sinkhorn_hybrid(
        problem, epsilon=epsilon, support_k=support_k
    )
    label = f"hybrid(eps={epsilon}, k={support_k})"
    # Feasible plan with the full partial-transport marginal semantics.
    assert_transportation_plan_optimal_on_support(problem, plan, label=label)
    # Exact-on-a-restriction => a true upper bound on the optimum.
    scale = max(1.0, abs(exact))
    assert plan.cost >= exact - AGREE_TOL * scale, (
        f"{label}: cost {plan.cost} fell below exact optimum {exact}"
    )
    # The tier's stated relative-error budget.
    rel = (plan.cost - exact) / exact
    assert rel <= budget, (
        f"{label}: relative error {rel:.3e} exceeds tier budget {budget}"
    )
    # The certificate: actual error never exceeds the reported bound
    # ((C - OPT)/OPT <= (C - LB)/LB whenever LB <= OPT <= C).
    info = last_hybrid_info()
    assert info is not None and info.screened, f"{label}: expected a screened solve"
    if np.isfinite(info.screen_error_bound):
        assert rel <= info.screen_error_bound + 1e-9, (
            f"{label}: error {rel:.3e} exceeds its own certificate "
            f"{info.screen_error_bound:.3e}"
        )


def assert_transportation_plan_optimal_on_support(problem, plan, *, label):
    """Feasibility-only variant of :func:`assert_transportation_plan_optimal`:
    the hybrid plan is optimal on its *support*, not on the full cell set,
    so the full exchange-graph negative-cycle check does not apply."""
    plan.validate(problem)
    assert plan.flows.min() >= -FEAS_TOL, f"{label}: negative flow"


class TestHybridTiersSmoke:
    """Tier-1 subset: one screened instance, the two mid tiers."""

    @pytest.mark.parametrize(
        "epsilon,support_k,budget",
        [t for t in HYBRID_ERROR_TIERS if t[0] in (0.05, 0.02)],
    )
    def test_mid_tiers(self, rng, epsilon, support_k, budget):
        problem = make_screened_transportation(rng, 70, 70)
        check_hybrid_tier(
            problem, epsilon=epsilon, support_k=support_k, budget=budget
        )

    def test_tier_table_monotone(self):
        """The budget function is monotone in BOTH knobs: any tier with
        smaller-or-equal ε and larger-or-equal k must have a
        smaller-or-equal budget."""
        for e1, k1, b1 in HYBRID_ERROR_TIERS:
            for e2, k2, b2 in HYBRID_ERROR_TIERS:
                if e2 <= e1 and k2 >= k1:
                    assert b2 <= b1, (
                        f"tier table not monotone: ({e1},{k1})->{b1} vs "
                        f"({e2},{k2})->{b2}"
                    )
        # And it is strictly ordered along the published tier sequence.
        budgets = [b for _, _, b in HYBRID_ERROR_TIERS]
        assert budgets == sorted(budgets, reverse=True)

    def test_tiers_tighten_in_practice(self, rng):
        """Observed error is (weakly) better at the tightest tier than at
        the loosest — the behavioural counterpart of the table shape."""
        problem = make_screened_transportation(rng, 70, 70)
        exact = solve_transportation_lp(problem).cost
        loose = solve_transportation_sinkhorn_hybrid(
            problem, epsilon=0.5, support_k=2
        ).cost
        tight = solve_transportation_sinkhorn_hybrid(
            problem, epsilon=0.005, support_k=16
        ).cost
        assert abs(tight - exact) <= abs(loose - exact) + AGREE_TOL * exact


@pytest.mark.slow
class TestHybridTierMatrix:
    """Full randomized matrix: every tier x instance family (CI
    property-suite job, ``--runslow``)."""

    @pytest.mark.parametrize("epsilon,support_k,budget", HYBRID_ERROR_TIERS)
    @pytest.mark.parametrize("n,m", [(70, 70), (64, 90), (120, 80)])
    @pytest.mark.parametrize("tie_heavy", [False, True])
    def test_tier_matrix(self, rng, n, m, epsilon, support_k, budget, tie_heavy):
        problem = make_screened_transportation(rng, n, m, tie_heavy=tie_heavy)
        check_hybrid_tier(
            problem, epsilon=epsilon, support_k=support_k, budget=budget
        )

    @pytest.mark.parametrize("trial", range(4))
    def test_float_costs(self, rng, trial):
        problem = make_screened_transportation(rng, 80, 70, integer_costs=False)
        check_hybrid_tier(problem, epsilon=0.02, support_k=8, budget=0.005)

    @pytest.mark.parametrize("trial", range(3))
    def test_unbalanced_screened(self, rng, trial):
        """Unbalanced screened instances: the dummy row/column is folded
        into the support and partial-transport semantics hold."""
        supplies = rng.integers(1, 12, 75).astype(np.float64)
        demands = rng.integers(1, 12, 70).astype(np.float64)
        costs = rng.integers(1, 21, (75, 70)).astype(np.float64)
        problem = TransportationProblem(supplies, demands, costs)
        exact = solve_transportation_lp(problem).cost
        plan = solve_transportation_sinkhorn_hybrid(
            problem, epsilon=0.02, support_k=8
        )
        plan.validate(problem)
        scale = max(1.0, abs(exact))
        assert plan.cost >= exact - AGREE_TOL * scale
        assert (plan.cost - exact) / max(exact, 1.0) <= 0.005

    def test_upper_bound_never_violated_across_seeds(self, rng):
        """Cost >= exact on a stream of fresh instances — the invariant
        that makes the hybrid safe wherever an upper bound is assumed."""
        for _ in range(6):
            seed = int(rng.integers(0, 2**32))
            problem = make_screened_transportation(
                np.random.default_rng(seed), 70, 70
            )
            exact = solve_transportation_lp(problem).cost
            cost = solve_transportation_sinkhorn_hybrid(
                problem, epsilon=0.1, support_k=4
            ).cost
            assert cost >= exact - AGREE_TOL * max(1.0, exact), f"seed={seed}"
