"""The warm-startable sparse network simplex (unit + property tests).

Covers the tier's three contracts:

* **Cold correctness** — agreement with the HiGHS LP reference on random,
  degenerate, unbalanced, and float-cost instances (the heavier
  cross-solver matrix lives in ``test_solver_equivalence.py``, which the
  network simplex also joins).
* **Warm exactness** — a warm basis is a *hint*: any cell set (its own
  optimum, a nearby instance's optimum, a transposed basis, garbage) may
  be passed and the result is the exact optimum; bitwise identical to the
  cold solve on fully integral instances. Warm starts from the instance's
  own optimal basis take zero pivots, and perturbed-instance warm starts
  take measurably fewer pivots than cold — the temporal-locality claim,
  counter-asserted rather than assumed.
* **Anti-cycling** — Cunningham's strongly feasible basis rule must
  terminate on tie-heavy integer costs with many zero bins (the classic
  cycling regime for naive pivot rules); regression-tested across seeds.

Plus the shared basis helpers (:class:`TransportBasis`, ``repair_basis``,
``validate_basis``), the sparse support entry point the sinkhorn-hybrid
tier consumes, and the :data:`SIMPLEX_METRICS` counter surface that
``engine.stats()`` / BENCH_engine.json report.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.flow import TransportationProblem, solve_transportation_lp
from repro.flow.basis import TransportBasis, repair_basis, validate_basis
from repro.flow.network_simplex import (
    SIMPLEX_METRICS,
    last_network_simplex_info,
    solve_support_network_simplex,
    solve_transportation_network_simplex,
)
from repro.flow.transport_simplex import solve_transportation_simplex

from test_solver_equivalence import (
    AGREE_TOL,
    assert_transportation_plan_optimal,
    make_transportation,
)


def _agree(plan, problem, label):
    exact = solve_transportation_lp(problem).cost
    scale = max(1.0, abs(exact))
    assert plan.cost == pytest.approx(exact, abs=AGREE_TOL * scale), label
    assert_transportation_plan_optimal(problem, plan, label=label)


def make_nondegenerate(rng, n, m):
    """A balanced instance with continuous masses and costs: the optimal
    basis is nondegenerate (no zero-flow basis arc) almost surely, which is
    the regime where warm-starting from an instance's *own* optimal basis
    provably takes zero pivots (a degenerate optimum drops its zero-flow
    arcs during warm rebuild and pays a few pivots to swap the artificial
    anchors back out — still exact, just not pivot-free)."""
    supplies = rng.random(n) + 0.5
    demands = rng.random(m) + 0.5
    demands *= supplies.sum() / demands.sum()
    costs = rng.random((n, m)) * 20.0
    return TransportationProblem(supplies, demands, costs)


# --------------------------------------------------------------------- #
# Basis helpers
# --------------------------------------------------------------------- #


class TestTransportBasis:
    def test_roundtrip_and_len(self):
        basis = TransportBasis(rows=[0, 1, 2], cols=[1, 0, 2])
        assert len(basis) == 3
        assert basis.cells() == [(0, 1), (1, 0), (2, 2)]
        assert basis.rows.dtype == np.int64

    def test_immutable(self):
        basis = TransportBasis(rows=[0, 1], cols=[1, 0])
        with pytest.raises(ValueError):
            basis.rows[0] = 5

    def test_nbytes_exact(self):
        basis = TransportBasis(rows=np.arange(7), cols=np.arange(7))
        assert basis.nbytes == 2 * 7 * 8  # two int64 vectors

    def test_transpose(self):
        basis = TransportBasis(rows=[0, 2], cols=[1, 3])
        t = basis.transpose()
        assert t.cells() == [(1, 0), (3, 2)]
        assert t.transpose().cells() == basis.cells()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransportBasis(rows=[0, 1], cols=[1])

    def test_repair_completes_spanning_tree(self):
        cells: set[tuple[int, int]] = {(0, 0), (2, 1)}
        repair_basis(cells, 4, 3)
        assert validate_basis(cells, 4, 3)
        assert len(cells) == 4 + 3 - 1

    def test_validate_rejects_cycles_and_bad_counts(self):
        assert not validate_basis([(0, 0), (0, 1)], 2, 2)  # too few
        # Right count but contains a cycle (0,0),(0,1),(1,0),(1,1) over 3x2.
        assert not validate_basis([(0, 0), (0, 1), (1, 0), (1, 1)], 3, 2)
        assert not validate_basis([(0, 0), (0, 5), (1, 0)], 2, 2)  # out of range
        assert validate_basis([(0, 0), (0, 1), (1, 1)], 2, 2)


# --------------------------------------------------------------------- #
# Cold correctness
# --------------------------------------------------------------------- #


class TestColdSolve:
    @pytest.mark.parametrize("n,m", [(1, 1), (2, 5), (6, 6), (9, 4), (14, 14)])
    def test_matches_lp(self, rng, n, m):
        problem = make_transportation(rng, n, m)
        plan = solve_transportation_network_simplex(problem)
        _agree(plan, problem, f"ns-cold-{n}x{m}")

    def test_float_costs(self, rng):
        problem = make_transportation(rng, 7, 9, integer_costs=False)
        _agree(solve_transportation_network_simplex(problem), problem, "ns-float")

    def test_degenerate_bins(self, rng):
        problem = make_transportation(rng, 8, 8, degenerate=True)
        _agree(solve_transportation_network_simplex(problem), problem, "ns-degen")

    def test_unbalanced_partial_transport(self, rng):
        supplies = rng.integers(0, 12, 6).astype(np.float64)
        demands = rng.integers(0, 12, 9).astype(np.float64)
        costs = rng.integers(0, 20, (6, 9)).astype(np.float64)
        problem = TransportationProblem(supplies, demands, costs)
        plan = solve_transportation_network_simplex(problem)
        exact = solve_transportation_lp(problem).cost
        assert plan.cost == pytest.approx(exact, abs=AGREE_TOL * max(1.0, exact))
        plan.validate(problem)

    def test_zero_mass(self):
        problem = TransportationProblem(np.zeros(3), np.zeros(2), np.ones((3, 2)))
        plan = solve_transportation_network_simplex(problem)
        assert plan.cost == 0.0
        assert not plan.flows.any()

    @pytest.mark.parametrize("seed", range(6))
    def test_tie_heavy_degenerate_terminates(self, seed):
        """Cycling regression: tie-heavy integer costs on a coarse grid with
        many zero bins is the classic stalling regime for naive leaving-arc
        rules. The strongly-feasible rule must terminate (within the pivot
        budget) and still hit the LP optimum."""
        gen = np.random.default_rng(1000 + seed)
        problem = make_transportation(gen, 12, 12, degenerate=True)
        # Flatten further: only three distinct cost values remain.
        problem = TransportationProblem(
            problem.supplies, problem.demands, np.floor(problem.costs / 8.0) * 8.0
        )
        plan = solve_transportation_network_simplex(problem)
        _agree(plan, problem, f"ns-ties-{seed}")


# --------------------------------------------------------------------- #
# Warm starts
# --------------------------------------------------------------------- #


class TestWarmStart:
    def test_own_basis_zero_pivots(self, rng):
        problem = make_nondegenerate(rng, 10, 10)
        cold, basis = solve_transportation_network_simplex(problem, return_basis=True)
        warm = solve_transportation_network_simplex(problem, basis=basis)
        info = last_network_simplex_info()
        assert info is not None and info.warm
        assert info.pivots == 0, "re-solving from the optimal basis must not pivot"
        assert info.warm_arcs_used == len(basis)
        np.testing.assert_allclose(warm.flows, cold.flows, atol=1e-9)
        assert warm.cost == pytest.approx(cold.cost, abs=AGREE_TOL * max(1.0, cold.cost))

    def test_own_basis_bitwise_on_integral(self, rng):
        """Integral instance (possibly degenerate): the warm solve may pivot
        to retire artificial anchors, but all arithmetic stays on integers,
        so the result is *bitwise* the cold plan."""
        problem = make_transportation(rng, 10, 10)
        cold, basis = solve_transportation_network_simplex(problem, return_basis=True)
        warm = solve_transportation_network_simplex(problem, basis=basis)
        assert last_network_simplex_info().warm
        assert warm.cost == cold.cost
        assert np.array_equal(warm.flows, cold.flows)

    def test_perturbed_instance_fewer_pivots(self, rng):
        base = make_transportation(rng, 24, 24)
        _, basis = solve_transportation_network_simplex(base, return_basis=True)
        # Shift a few units of supply between bins (stay balanced).
        supplies = base.supplies.copy()
        donors = np.nonzero(supplies >= 2)[0]
        supplies[donors[0]] -= 2
        supplies[donors[-1]] += 2
        perturbed = TransportationProblem(supplies, base.demands, base.costs)
        cold = solve_transportation_network_simplex(perturbed)
        cold_pivots = last_network_simplex_info().pivots
        warm = solve_transportation_network_simplex(perturbed, basis=basis)
        warm_pivots = last_network_simplex_info().pivots
        assert warm.cost == pytest.approx(cold.cost, abs=AGREE_TOL * max(1.0, cold.cost))
        assert warm_pivots < cold_pivots, (
            f"warm start did not save pivots: {warm_pivots} vs {cold_pivots}"
        )
        _agree(warm, perturbed, "ns-warm-perturbed")

    def test_garbage_basis_is_safe(self, rng):
        """The basis is a *hint*: arbitrary, even out-of-range, cells must
        never change the optimum."""
        problem = make_transportation(rng, 8, 8)
        exact = solve_transportation_network_simplex(problem).cost
        garbage = TransportBasis(
            rows=rng.integers(-3, 12, 30), cols=rng.integers(-3, 12, 30)
        )
        warm = solve_transportation_network_simplex(problem, basis=garbage)
        assert warm.cost == pytest.approx(exact, abs=AGREE_TOL * max(1.0, exact))
        _agree(warm, problem, "ns-garbage-basis")

    def test_transposed_basis_warms_reversed_instance(self, rng):
        problem = make_transportation(rng, 12, 9)
        _, basis = solve_transportation_network_simplex(problem, return_basis=True)
        reversed_problem = TransportationProblem(
            problem.demands, problem.supplies, problem.costs.T.copy()
        )
        cold = solve_transportation_network_simplex(reversed_problem)
        warm = solve_transportation_network_simplex(
            reversed_problem, basis=basis.transpose()
        )
        info = last_network_simplex_info()
        assert info.warm and info.warm_arcs_used > 0
        assert warm.cost == cold.cost  # integral instance: bitwise

    def test_modi_basis_warms_network_simplex(self, rng):
        """Satellite contract: the MODI solver's exported basis is a valid
        warm start for the sparse backend (shared representation)."""
        problem = make_transportation(rng, 9, 9)
        modi_plan, modi_basis = solve_transportation_simplex(
            problem, return_basis=True
        )
        assert validate_basis(
            modi_basis.cells(), problem.n_suppliers, problem.n_consumers
        )
        warm = solve_transportation_network_simplex(problem, basis=modi_basis)
        info = last_network_simplex_info()
        assert info.warm and info.warm_arcs_used > 0
        assert warm.cost == pytest.approx(
            modi_plan.cost, abs=AGREE_TOL * max(1.0, modi_plan.cost)
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("trial", range(8))
    def test_warm_exactness_property(self, rng, trial):
        """Warm == cold across random instance families and random hints
        drawn from *other* instances' optima. A foreign hint changes the
        pivot path, so with cost ties the solver may land on an alternate
        optimal vertex — the exactness contract is therefore on the
        *optimum* (bitwise cost on integral instances, where every sum is
        exact integer arithmetic) plus full plan optimality, while
        plan-level bitwise identity is asserted on own-basis warm starts
        (see ``test_own_basis_bitwise_on_integral`` and the equivalence
        harness), where every warm pivot is provably degenerate."""
        n, m = int(rng.integers(2, 16)), int(rng.integers(2, 16))
        integer_costs = bool(rng.integers(0, 2))
        problem = make_transportation(rng, n, m, integer_costs=integer_costs)
        other = make_transportation(rng, n, m, integer_costs=integer_costs)
        _, hint = solve_transportation_network_simplex(other, return_basis=True)
        cold = solve_transportation_network_simplex(problem)
        warm = solve_transportation_network_simplex(problem, basis=hint)
        if integer_costs:
            assert warm.cost == cold.cost, "integral warm cost not bitwise equal"
        else:
            scale = max(1.0, abs(cold.cost))
            assert warm.cost == pytest.approx(cold.cost, abs=AGREE_TOL * scale)
        _agree(warm, problem, f"ns-foreign-hint-{trial}")


# --------------------------------------------------------------------- #
# Sparse support entry point (the sinkhorn-hybrid consumer)
# --------------------------------------------------------------------- #


class TestSupportSolve:
    def _dense_support(self, n, m):
        rows = np.repeat(np.arange(n), m)
        cols = np.tile(np.arange(m), n)
        return rows, cols

    def test_full_support_matches_dense(self, rng):
        problem = make_transportation(rng, 7, 7)
        # Strictly positive bins so the balanced support solve applies.
        a = problem.supplies + 1.0
        b = problem.demands + 1.0
        b *= a.sum() / b.sum()
        d = problem.costs
        rows, cols = self._dense_support(7, 7)
        plan = solve_support_network_simplex(a, b, d, rows, cols)
        dense = solve_transportation_lp(TransportationProblem(a, b, d))
        assert float((plan * d).sum()) == pytest.approx(
            dense.cost, abs=AGREE_TOL * max(1.0, dense.cost)
        )
        np.testing.assert_allclose(plan.sum(axis=1), a, atol=1e-9)
        np.testing.assert_allclose(plan.sum(axis=0), b, atol=1e-9)

    def test_restricted_support_warm_cells(self, rng):
        n = m = 8
        # Continuous masses: the optimal support basis is nondegenerate
        # almost surely, so the own-cells warm start is pivot-free.
        a = rng.random(n) + 0.5
        b = rng.random(m) + 0.5
        b *= a.sum() / b.sum()
        d = rng.random((n, m)) * 20.0
        # A feasible sparse support: full row 0 + full column 0 + randoms.
        mask = np.zeros((n, m), dtype=bool)
        mask[0, :] = True
        mask[:, 0] = True
        mask[rng.random((n, m)) < 0.4] = True
        rows, cols = np.nonzero(mask)
        plan_cold, cells = solve_support_network_simplex(
            a, b, d, rows, cols, return_cells=True
        )
        plan_warm = solve_support_network_simplex(
            a, b, d, rows, cols, warm_cells=cells
        )
        warm_pivots = last_network_simplex_info().pivots
        assert warm_pivots == 0
        np.testing.assert_allclose(plan_warm, plan_cold, atol=1e-9)
        # Off-support cells never receive flow.
        assert not plan_cold[~mask].any()

    def test_infeasible_support_raises(self):
        # Two suppliers, two consumers, but the support only reaches
        # consumer 0 — consumer 1's demand cannot be met.
        a = np.array([2.0, 2.0])
        b = np.array([1.0, 3.0])
        d = np.ones((2, 2))
        rows = np.array([0, 1])
        cols = np.array([0, 0])
        with pytest.raises(FlowError, match="infeasible"):
            solve_support_network_simplex(a, b, d, rows, cols)


# --------------------------------------------------------------------- #
# Diagnostics
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_counters_split_cold_and_warm(self, rng):
        problem = make_nondegenerate(rng, 10, 10)
        SIMPLEX_METRICS.reset()
        _, basis = solve_transportation_network_simplex(problem, return_basis=True)
        solve_transportation_network_simplex(problem, basis=basis)
        snap = SIMPLEX_METRICS.snapshot()
        assert snap["solves"] == 2
        assert snap["cold_solves"] == 1 and snap["warm_solves"] == 1
        assert snap["warm_pivots_per_solve"] == 0.0
        assert snap["cold_pivots"] == snap["cold_pivots_per_solve"]
        assert snap["last_pivots"] == 0
        SIMPLEX_METRICS.reset()
        assert SIMPLEX_METRICS.snapshot()["solves"] == 0

    def test_last_info_fields(self, rng):
        problem = make_transportation(rng, 6, 5)
        _, basis = solve_transportation_network_simplex(problem, return_basis=True)
        info = last_network_simplex_info()
        assert (info.n_suppliers, info.n_consumers) == (6, 5)
        assert not info.warm and info.warm_arcs_given == 0
        solve_transportation_network_simplex(problem, basis=basis)
        info = last_network_simplex_info()
        assert info.warm and info.warm_arcs_given == len(basis)
        assert info.warm_arcs_used <= info.warm_arcs_given

    def test_basis_survives_pickle(self, rng):
        """Bases cross the process boundary via worker caches; the arrays
        must survive a pickle round-trip intact (and stay read-only)."""
        problem = make_transportation(rng, 5, 5)
        _, basis = solve_transportation_network_simplex(problem, return_basis=True)
        clone = pickle.loads(pickle.dumps(basis))
        assert clone.cells() == basis.cells()
        warm = solve_transportation_network_simplex(problem, basis=clone)
        info = last_network_simplex_info()
        assert info.warm and info.pivots == 0
        assert warm.cost == pytest.approx(
            solve_transportation_lp(problem).cost, abs=AGREE_TOL
        )
