"""Tests for the Sinkhorn approximate transportation solver."""

import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.flow import TransportationProblem, solve_transportation_lp
from repro.flow.sinkhorn import solve_transportation_sinkhorn


def random_problem(seed, n=5, m=5, balanced=True):
    rng = np.random.default_rng(seed)
    supplies = rng.integers(1, 10, n).astype(float)
    demands = rng.integers(1, 10, m).astype(float)
    if balanced:
        demands = demands * (supplies.sum() / demands.sum())
    costs = rng.integers(1, 15, (n, m)).astype(float)
    return TransportationProblem(supplies, demands, costs)


class TestSinkhorn:
    @pytest.mark.parametrize("seed", range(4))
    def test_upper_bounds_exact_within_margin(self, seed):
        problem = random_problem(seed)
        exact = solve_transportation_lp(problem).cost
        approx = solve_transportation_sinkhorn(problem, epsilon=0.02).cost
        assert approx >= exact - 1e-6  # upper bound (regularised optimum)
        assert approx <= exact * 1.15 + 1e-6  # but close

    def test_tightens_with_smaller_epsilon(self):
        problem = random_problem(7)
        exact = solve_transportation_lp(problem).cost
        loose = solve_transportation_sinkhorn(problem, epsilon=0.5).cost
        tight = solve_transportation_sinkhorn(problem, epsilon=0.01).cost
        assert abs(tight - exact) <= abs(loose - exact) + 1e-9

    def test_marginals_respected(self):
        problem = random_problem(3)
        plan = solve_transportation_sinkhorn(problem, epsilon=0.05)
        assert np.allclose(plan.flows.sum(axis=1), problem.supplies, atol=1e-4)
        assert np.allclose(plan.flows.sum(axis=0), problem.demands, atol=1e-4)

    def test_unbalanced_problem_handled(self):
        problem = TransportationProblem(
            np.array([5.0, 3.0]), np.array([4.0]), np.array([[2.0], [1.0]])
        )
        plan = solve_transportation_sinkhorn(problem, epsilon=0.02)
        exact = solve_transportation_lp(problem).cost
        assert plan.cost == pytest.approx(exact, rel=0.15)

    def test_zero_mass(self):
        problem = TransportationProblem(np.zeros(2), np.zeros(2), np.ones((2, 2)))
        assert solve_transportation_sinkhorn(problem).cost == 0.0

    def test_empty_bins_tolerated(self):
        problem = TransportationProblem(
            np.array([0.0, 4.0]), np.array([4.0, 0.0]), np.arange(4.0).reshape(2, 2)
        )
        plan = solve_transportation_sinkhorn(problem, epsilon=0.02)
        exact = solve_transportation_lp(problem).cost
        assert plan.cost == pytest.approx(exact, rel=0.1)

    def test_bad_epsilon(self):
        with pytest.raises(FlowError):
            solve_transportation_sinkhorn(random_problem(0), epsilon=0.0)
