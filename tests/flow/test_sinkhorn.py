"""Tests for the Sinkhorn approximate transportation solver.

The regression class at the bottom pins the degenerate-instance contract:
whatever the instance (single supplier/consumer, all-equal costs,
zero-mass bins surviving the balancing step) and whatever the iteration
budget, the returned plan satisfies the marginals to float precision (the
kernel is rounded onto the feasible polytope) and its cost upper-bounds
the exact optimum. Before the rounding step landed, tight ``max_iter``
budgets could return infeasible kernels whose cost fell *below* the
optimum — silently corrupting any consumer treating Sinkhorn as an upper
bound.
"""

import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.flow import TransportationProblem, solve_transportation_lp
from repro.flow.sinkhorn import (
    round_to_marginals,
    solve_transportation_sinkhorn,
)


def random_problem(rng, n=5, m=5, balanced=True):
    supplies = rng.integers(1, 10, n).astype(float)
    demands = rng.integers(1, 10, m).astype(float)
    if balanced:
        demands = demands * (supplies.sum() / demands.sum())
    costs = rng.integers(1, 15, (n, m)).astype(float)
    return TransportationProblem(supplies, demands, costs)


def child_rng(rng):
    return np.random.default_rng(int(rng.integers(0, 2**32)))


class TestSinkhorn:
    @pytest.mark.parametrize("trial", range(4))
    def test_upper_bounds_exact_within_margin(self, rng, trial):
        problem = random_problem(child_rng(rng))
        exact = solve_transportation_lp(problem).cost
        approx = solve_transportation_sinkhorn(problem, epsilon=0.02).cost
        assert approx >= exact - 1e-6  # upper bound (regularised optimum)
        assert approx <= exact * 1.15 + 1e-6  # but close

    def test_tightens_with_smaller_epsilon(self, rng):
        problem = random_problem(rng)
        exact = solve_transportation_lp(problem).cost
        loose = solve_transportation_sinkhorn(problem, epsilon=0.5).cost
        tight = solve_transportation_sinkhorn(problem, epsilon=0.01).cost
        assert abs(tight - exact) <= abs(loose - exact) + 1e-9

    def test_marginals_respected(self, rng):
        problem = random_problem(rng)
        plan = solve_transportation_sinkhorn(problem, epsilon=0.05)
        assert np.allclose(plan.flows.sum(axis=1), problem.supplies, atol=1e-9)
        assert np.allclose(plan.flows.sum(axis=0), problem.demands, atol=1e-9)

    def test_unbalanced_problem_handled(self):
        problem = TransportationProblem(
            np.array([5.0, 3.0]), np.array([4.0]), np.array([[2.0], [1.0]])
        )
        plan = solve_transportation_sinkhorn(problem, epsilon=0.02)
        exact = solve_transportation_lp(problem).cost
        assert plan.cost == pytest.approx(exact, rel=0.15)

    def test_zero_mass(self):
        problem = TransportationProblem(np.zeros(2), np.zeros(2), np.ones((2, 2)))
        assert solve_transportation_sinkhorn(problem).cost == 0.0

    def test_empty_bins_tolerated(self, rng):
        problem = TransportationProblem(
            np.array([0.0, 4.0]), np.array([4.0, 0.0]), np.arange(4.0).reshape(2, 2)
        )
        plan = solve_transportation_sinkhorn(problem, epsilon=0.02)
        exact = solve_transportation_lp(problem).cost
        assert plan.cost == pytest.approx(exact, rel=0.1)

    def test_bad_epsilon(self, rng):
        with pytest.raises(FlowError):
            solve_transportation_sinkhorn(random_problem(rng), epsilon=0.0)


class TestRoundToMarginals:
    def test_projects_arbitrary_plan(self, rng):
        a = rng.integers(1, 10, 6).astype(float)
        b = rng.integers(1, 10, 8).astype(float)
        b *= a.sum() / b.sum()
        messy = rng.random((6, 8)) * 3.0  # wildly infeasible
        fixed = round_to_marginals(messy, a, b)
        assert fixed.min() >= 0.0
        assert np.allclose(fixed.sum(axis=1), a, atol=1e-9)
        assert np.allclose(fixed.sum(axis=0), b, atol=1e-9)

    def test_feasible_plan_unchanged(self, rng):
        a = np.array([2.0, 3.0])
        b = np.array([1.0, 4.0])
        plan = np.array([[1.0, 1.0], [0.0, 3.0]])
        assert np.allclose(round_to_marginals(plan, a, b), plan)

    def test_zero_rows_handled(self):
        a = np.array([0.0, 5.0])
        b = np.array([2.0, 3.0])
        plan = np.array([[1.0, 1.0], [1.0, 1.0]])
        fixed = round_to_marginals(plan, a, b)
        assert np.allclose(fixed.sum(axis=1), a, atol=1e-9)
        assert np.allclose(fixed.sum(axis=0), b, atol=1e-9)
        assert np.all(fixed[0] == 0.0)


class TestDegenerateRegressions:
    """Pin the feasibility + upper-bound contract on degenerate instances
    and starved iteration budgets (the historical failure modes)."""

    def assert_contract(self, problem, **kwargs):
        plan = solve_transportation_sinkhorn(problem, **kwargs)
        exact = solve_transportation_lp(problem).cost
        # Marginal feasibility: shape, non-negativity, moved mass (the
        # rounded plan hits the marginals to float precision).
        plan.validate(problem)
        # Cost is a true upper bound on the exact optimum.
        scale = max(1.0, abs(exact))
        assert plan.cost >= exact - 1e-9 * scale, (
            f"sinkhorn cost {plan.cost} fell below exact optimum {exact}"
        )
        return plan, exact

    def test_single_supplier(self, rng):
        problem = TransportationProblem(
            np.array([10.0]),
            rng.integers(1, 5, 4).astype(float),
            rng.integers(1, 9, (1, 4)).astype(float),
        )
        self.assert_contract(problem)

    def test_single_consumer(self, rng):
        problem = TransportationProblem(
            rng.integers(1, 5, 4).astype(float),
            np.array([30.0]),
            rng.integers(1, 9, (4, 1)).astype(float),
        )
        self.assert_contract(problem)

    def test_single_cell(self):
        problem = TransportationProblem(
            np.array([3.0]), np.array([3.0]), np.array([[7.0]])
        )
        plan, exact = self.assert_contract(problem)
        assert plan.cost == pytest.approx(21.0, abs=1e-9)

    def test_all_equal_costs(self, rng):
        """Flat cost surface: every plan is optimal; the kernel is uniform
        and the rounded plan must still hit the marginals exactly."""
        n, m = 5, 7
        supplies = rng.integers(1, 8, n).astype(float)
        demands = rng.integers(1, 8, m).astype(float)
        demands *= supplies.sum() / demands.sum()
        problem = TransportationProblem(supplies, demands, np.full((n, m), 3.0))
        plan, exact = self.assert_contract(problem)
        assert plan.cost == pytest.approx(3.0 * supplies.sum(), abs=1e-6)

    def test_all_zero_costs(self, rng):
        problem = TransportationProblem(
            np.array([2.0, 3.0]), np.array([5.0]), np.zeros((2, 1))
        )
        plan, _ = self.assert_contract(problem)
        assert plan.cost == pytest.approx(0.0, abs=1e-12)

    def test_zero_mass_rows_after_balancing(self, rng):
        """Zero-supply bins plus the balancing dummy: the solver must
        restrict to positive-mass bins, then re-embed a full-shape plan."""
        supplies = rng.integers(1, 8, 6).astype(float)
        supplies[[1, 4]] = 0.0
        demands = rng.integers(1, 8, 5).astype(float)  # unbalanced -> dummy
        costs = rng.integers(1, 12, (6, 5)).astype(float)
        problem = TransportationProblem(supplies, demands, costs)
        plan, _ = self.assert_contract(problem)
        assert np.all(plan.flows[[1, 4], :] == 0.0)
        assert plan.flows.shape == (6, 5)

    @pytest.mark.parametrize("max_iter", [1, 3, 10])
    def test_starved_iteration_budget_still_feasible(self, rng, max_iter):
        """The historical bug: with max_iter below the convergence horizon
        the unrounded kernel violates the marginals and its cost can fall
        below the optimum. Post-rounding, feasibility and the upper bound
        hold for ANY budget."""
        problem = random_problem(child_rng(rng), n=6, m=6)
        plan = solve_transportation_sinkhorn(
            problem, epsilon=0.02, max_iter=max_iter
        )
        exact = solve_transportation_lp(problem).cost
        plan.validate(problem)
        assert np.allclose(plan.flows.sum(axis=1), problem.supplies, atol=1e-9)
        assert np.allclose(plan.flows.sum(axis=0), problem.demands, atol=1e-9)
        assert plan.cost >= exact - 1e-9 * max(1.0, exact)

    def test_tiny_epsilon_numerically_stable(self, rng):
        """Aggressive regularisation (near-exact regime): log-domain
        iterations must not overflow and the plan must stay feasible."""
        problem = random_problem(child_rng(rng), n=4, m=4)
        plan = solve_transportation_sinkhorn(problem, epsilon=0.001)
        exact = solve_transportation_lp(problem).cost
        plan.validate(problem)
        assert np.isfinite(plan.cost)
        assert plan.cost >= exact - 1e-9 * max(1.0, exact)
        assert plan.cost == pytest.approx(exact, rel=0.02)
