"""Transportation/min-cost-flow solver tests: hand cases, feasibility,
cross-solver agreement (including hypothesis-driven random instances)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleFlowError, ValidationError
from repro.flow import (
    MinCostFlowProblem,
    TransportationProblem,
    solve_mcf_cost_scaling,
    solve_mcf_ssp,
    solve_transportation,
    solve_transportation_lp,
    solve_transportation_simplex,
    solve_transportation_ssp,
)


def simple_problem() -> TransportationProblem:
    return TransportationProblem(
        supplies=np.array([3.0, 2.0]),
        demands=np.array([2.0, 3.0]),
        costs=np.array([[1.0, 4.0], [5.0, 2.0]]),
    )


class TestProblemModel:
    def test_balance_detection(self):
        assert simple_problem().is_balanced
        p = TransportationProblem(np.array([3.0]), np.array([1.0]), np.array([[1.0]]))
        assert not p.is_balanced
        assert p.moved_mass == 1.0

    def test_balanced_form_adds_dummy_consumer(self):
        p = TransportationProblem(np.array([5.0]), np.array([2.0]), np.array([[3.0]]))
        balanced, dummy_c, dummy_s = p.balanced_form()
        assert dummy_c and not dummy_s
        assert balanced.is_balanced
        assert balanced.costs[0, 1] == 0.0

    def test_balanced_form_adds_dummy_supplier(self):
        p = TransportationProblem(np.array([1.0]), np.array([4.0]), np.array([[3.0]]))
        balanced, dummy_c, dummy_s = p.balanced_form()
        assert dummy_s and not dummy_c

    def test_negative_supply_rejected(self):
        with pytest.raises(ValidationError):
            TransportationProblem(np.array([-1.0]), np.array([1.0]), np.array([[1.0]]))

    def test_cost_shape_checked(self):
        with pytest.raises(ValidationError):
            TransportationProblem(np.array([1.0]), np.array([1.0]), np.eye(2))


@pytest.mark.parametrize("method", ["ssp", "simplex", "lp"])
class TestTransportationSolvers:
    def test_known_optimum(self, method):
        # Optimal: 2 units 0->0 (cost 2), 1 unit 0->1 (4), 2 units 1->1 (4).
        plan = solve_transportation(simple_problem(), method=method)
        assert plan.cost == pytest.approx(10.0)
        plan.validate(simple_problem())

    def test_identity_costs_zero(self, method):
        p = TransportationProblem(
            np.array([1.0, 2.0]), np.array([1.0, 2.0]), np.array([[0.0, 9.0], [9.0, 0.0]])
        )
        plan = solve_transportation(p, method=method)
        assert plan.cost == pytest.approx(0.0)

    def test_unbalanced_moves_min_mass(self, method):
        p = TransportationProblem(
            np.array([5.0, 5.0]), np.array([3.0]), np.array([[2.0], [1.0]])
        )
        plan = solve_transportation(p, method=method)
        assert plan.moved_mass == pytest.approx(3.0)
        assert plan.cost == pytest.approx(3.0)  # all from the cheap supplier

    def test_single_cell(self, method):
        p = TransportationProblem(np.array([4.0]), np.array([4.0]), np.array([[2.5]]))
        plan = solve_transportation(p, method=method)
        assert plan.cost == pytest.approx(10.0)

    def test_zero_mass(self, method):
        p = TransportationProblem(np.zeros(2), np.zeros(3), np.ones((2, 3)))
        plan = solve_transportation(p, method=method)
        assert plan.cost == 0.0


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 7)), int(rng.integers(2, 7))
        supplies = rng.integers(0, 10, n).astype(float)
        demands = rng.integers(0, 10, m).astype(float)
        costs = rng.integers(0, 15, (n, m)).astype(float)
        p = TransportationProblem(supplies, demands, costs)
        ssp = solve_transportation_ssp(p)
        simplex = solve_transportation_simplex(p)
        lp = solve_transportation_lp(p)
        assert ssp.cost == pytest.approx(lp.cost, abs=1e-6)
        assert simplex.cost == pytest.approx(lp.cost, abs=1e-6)
        ssp.validate(p)
        simplex.validate(p)
        lp.validate(p)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=5),
        m=st.integers(min_value=1, max_value=5),
    )
    def test_hypothesis_instances(self, data, n, m):
        supplies = np.array(
            data.draw(st.lists(st.integers(0, 12), min_size=n, max_size=n)), dtype=float
        )
        demands = np.array(
            data.draw(st.lists(st.integers(0, 12), min_size=m, max_size=m)), dtype=float
        )
        costs = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 9), min_size=m, max_size=m),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
        p = TransportationProblem(supplies, demands, costs)
        ssp = solve_transportation_ssp(p)
        lp = solve_transportation_lp(p)
        assert ssp.cost == pytest.approx(lp.cost, abs=1e-6)
        ssp.validate(p)


class TestMinCostFlow:
    def build_path_problem(self):
        # 0 -> 1 -> 2, send 2 units from 0 to 2.
        mcf = MinCostFlowProblem(3)
        mcf.add_edge(0, 1, 5, 2)
        mcf.add_edge(1, 2, 5, 3)
        mcf.set_supply(0, 2)
        mcf.set_supply(2, -2)
        return mcf

    def test_ssp_path(self):
        sol = solve_mcf_ssp(self.build_path_problem())
        assert sol.cost == pytest.approx(10.0)
        assert sol.flows.tolist() == [2.0, 2.0]

    def test_cost_scaling_path(self):
        sol = solve_mcf_cost_scaling(self.build_path_problem())
        assert sol.cost == pytest.approx(10.0)

    def test_parallel_routes_pick_cheap(self):
        mcf = MinCostFlowProblem(4)
        mcf.add_edge(0, 1, 10, 1)
        mcf.add_edge(1, 3, 10, 1)
        mcf.add_edge(0, 2, 10, 5)
        mcf.add_edge(2, 3, 10, 5)
        mcf.set_supply(0, 3)
        mcf.set_supply(3, -3)
        sol = solve_mcf_ssp(mcf)
        assert sol.cost == pytest.approx(6.0)

    def test_capacity_forces_split(self):
        # The cheap route is capped at 2 units, forcing 2 more onto the
        # expensive one: cost = 2 * (1 + 1) + 2 * (5 + 5).
        ssp = solve_mcf_ssp(self._rebuild_capacity_problem())
        scaling = solve_mcf_cost_scaling(self._rebuild_capacity_problem())
        assert ssp.cost == pytest.approx(2 * 2 + 2 * 10)
        assert scaling.cost == pytest.approx(ssp.cost)

    @staticmethod
    def _rebuild_capacity_problem():
        mcf = MinCostFlowProblem(4)
        mcf.add_edge(0, 1, 2, 1)
        mcf.add_edge(1, 3, 2, 1)
        mcf.add_edge(0, 2, 10, 5)
        mcf.add_edge(2, 3, 10, 5)
        mcf.set_supply(0, 4)
        mcf.set_supply(3, -4)
        return mcf

    def test_infeasible_disconnected(self):
        mcf = MinCostFlowProblem(2)
        mcf.set_supply(0, 1)
        mcf.set_supply(1, -1)
        with pytest.raises(InfeasibleFlowError):
            solve_mcf_ssp(mcf)

    def test_unbalanced_rejected(self):
        mcf = MinCostFlowProblem(2)
        mcf.add_edge(0, 1, 1, 1)
        mcf.set_supply(0, 2)
        mcf.set_supply(1, -1)
        with pytest.raises(Exception):
            solve_mcf_ssp(mcf)

    def test_cost_scaling_requires_integers(self):
        mcf = MinCostFlowProblem(2)
        mcf.add_edge(0, 1, 1.0, 1.5)
        mcf.set_supply(0, 1)
        mcf.set_supply(1, -1)
        with pytest.raises(ValidationError):
            solve_mcf_cost_scaling(mcf)

    @pytest.mark.parametrize("seed", range(5))
    def test_ssp_vs_cost_scaling_random(self, seed):
        rng = np.random.default_rng(seed + 100)
        n = 8
        mcf_a = MinCostFlowProblem(n)
        mcf_b = MinCostFlowProblem(n)
        # Random bipartite-ish instance with guaranteed feasibility via a
        # high-cost backbone.
        supply = rng.integers(1, 5, 3)
        for i, s in enumerate(supply):
            mcf_a.set_supply(i, float(s))
            mcf_b.set_supply(i, float(s))
        total = float(supply.sum())
        mcf_a.set_supply(n - 1, -total)
        mcf_b.set_supply(n - 1, -total)
        for i in range(3):
            mcf_a.add_edge(i, n - 1, total, 50)
            mcf_b.add_edge(i, n - 1, total, 50)
        for _ in range(12):
            u, v = rng.integers(0, n, 2)
            if u == v:
                continue
            cap = float(rng.integers(1, 8))
            cost = float(rng.integers(0, 20))
            mcf_a.add_edge(int(u), int(v), cap, cost)
            mcf_b.add_edge(int(u), int(v), cap, cost)
        a = solve_mcf_ssp(mcf_a)
        b = solve_mcf_cost_scaling(mcf_b)
        assert a.cost == pytest.approx(b.cost, abs=1e-6)
