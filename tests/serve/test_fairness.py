"""Scheduler fairness over real sockets: a greedy client saturating its
per-identity quota gets HTTP 429 while a polite client's requests keep
flowing — counter-asserted via /v1/stats and /v1/metrics."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve import EngineConfig, SNDService
from repro.serve.http import BackgroundServer


@pytest.fixture
def store_path(tmp_path):
    path = str(tmp_path / "exp.sqlite")
    rc = main(
        [
            "generate",
            "--nodes", "60",
            "--states", "6",
            "--seeds", "8",
            "--seed", "3",
            "--store", path,
            "--name", "t",
        ]
    )
    assert rc == 0
    return path


def _post(server, payload, client=None, priority=None, timeout=60):
    url = f"http://{server.host}:{server.port}/v1/distance"
    headers = {}
    if client is not None:
        headers["X-Client"] = client
    if priority is not None:
        headers["X-Priority"] = priority
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST", headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read().decode()) if path != "/v1/metrics" else resp.read().decode()


class TestGreedyVersusPolite:
    def test_greedy_rejected_while_polite_flows(self, store_path):
        config = EngineConfig(
            clusters=2, client_max_pending=1, persist_transitions=False
        )
        service = SNDService(store_path, config=config)
        # Pre-warm the polite client's pairs anonymously so its requests
        # are cache-answered (no quota consumed, no solver needed) even
        # while the solver below is held hostage.
        service.distance_pair("t", 2, 3)
        service.distance_pair("t", 3, 4)

        engine = service.shard("t").engine()
        solve_started = threading.Event()
        hold = threading.Event()
        original = engine._solve_pairs_local

        def slow_solve(states, pairs):
            solve_started.set()
            hold.wait(timeout=60)
            return original(states, pairs)

        engine._solve_pairs_local = slow_solve

        with BackgroundServer(service) as server:
            greedy_first: list = []

            def greedy_blocking():
                greedy_first.append(
                    _post(server, {"name": "t", "i": 0, "j": 1}, client="greedy")
                )

            t = threading.Thread(target=greedy_blocking)
            t.start()
            try:
                assert solve_started.wait(timeout=60)
                # greedy's whole quota (1 pending pair) is now in flight:
                # further distinct pairs from the same identity fail fast.
                status, body = _post(
                    server, {"name": "t", "i": 0, "j": 2}, client="greedy"
                )
                assert status == 429
                assert body["error"]["code"] == "client_quota_exceeded"
                assert "quota" in body["error"]["message"]
                status, _body = _post(
                    server, {"name": "t", "i": 0, "j": 3}, client="greedy"
                )
                assert status == 429
                # ...while the polite client's requests ALL succeed, served
                # from the warm transition cache with no scheduler slot.
                for i, j in ((2, 3), (3, 4)):
                    status, body = _post(
                        server, {"name": "t", "i": i, "j": j}, client="polite"
                    )
                    assert status == 200
                    assert body["distance"] >= 0
            finally:
                hold.set()
                t.join(timeout=120)

            # greedy's original request was never harmed — only rationed.
            assert greedy_first and greedy_first[0][0] == 200

            stats = _get(server, "/v1/stats")
            sched = stats["shards"]["t"]["scheduler"]
            assert sched["client_rejected"] == 2
            assert sched["clients"]["greedy"]["rejected"] == 2
            assert sched["clients"]["greedy"]["solved"] == 1
            assert sched["clients"]["greedy"]["pending"] == 0
            polite = sched["clients"]["polite"]
            assert polite["rejected"] == 0
            assert polite["cache_answered"] == 2

            metrics = _get(server, "/v1/metrics")
            assert (
                'snd_http_requests_total{route="/distance",status="429"} 2'
                in metrics
            )
            assert (
                'snd_client_rejected_total{client="greedy",graph="t"} 2'
                in metrics
            )

    def test_high_priority_widens_quota(self, store_path):
        """The same saturation pattern at priority=high admits a second
        pair where priority=normal would 429 (quota 1 -> 2)."""
        config = EngineConfig(
            clusters=2, client_max_pending=1, persist_transitions=False
        )
        service = SNDService(store_path, config=config)
        engine = service.shard("t").engine()
        solve_started = threading.Event()
        hold = threading.Event()
        original = engine._solve_pairs_local

        def slow_solve(states, pairs):
            solve_started.set()
            hold.wait(timeout=60)
            return original(states, pairs)

        engine._solve_pairs_local = slow_solve

        with BackgroundServer(service) as server:
            results: list = []

            def vip_request(i, j):
                results.append(
                    _post(server, {"name": "t", "i": i, "j": j},
                          client="vip", priority="high")
                )

            threads = [
                threading.Thread(target=vip_request, args=args)
                for args in ((0, 1), (0, 2))
            ]
            threads[0].start()
            try:
                assert solve_started.wait(timeout=60)
                # high priority doubles the quota: the second distinct
                # pair admits instead of failing fast...
                threads[1].start()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    sched = _get(server, "/v1/stats")["shards"]["t"]["scheduler"]
                    if sched["clients"].get("vip", {}).get("pending") == 2:
                        break
                    time.sleep(0.02)
                else:  # pragma: no cover - hang guard
                    pytest.fail("second vip pair never admitted")
                # ...and the third still trips the widened cap.
                status, body = _post(
                    server, {"name": "t", "i": 0, "j": 3},
                    client="vip", priority="high",
                )
                assert status == 429
                assert body["error"]["code"] == "client_quota_exceeded"
            finally:
                hold.set()
                for t in threads:
                    t.join(timeout=120)
            assert [status for status, _ in results] == [200, 200]
            sched = _get(server, "/v1/stats")["shards"]["t"]["scheduler"]
            assert sched["clients"]["vip"]["rejected"] == 1
            assert sched["clients"]["vip"]["solved"] == 2
