"""HTTP tier tests: every route, error mapping, streaming watch, and the
counter-asserted duplicate-burst coalescing guarantee over real sockets."""

import json
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import SchedulerSaturatedError
from repro.serve import EngineConfig, SNDService
from repro.serve.http import BackgroundServer


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve-http") / "exp.sqlite")
    rc = main(
        [
            "generate",
            "--nodes", "60",
            "--states", "5",
            "--seeds", "8",
            "--seed", "3",
            "--store", path,
            "--name", "t",
        ]
    )
    assert rc == 0
    main(
        [
            "corpus", "build",
            "--store", path,
            "--name", "t",
            "--corpus", "c",
            "--clusters", "2",
            "--first", "3",
        ]
    )
    return path


@pytest.fixture
def server(store_path):
    # persistence off: these tests share one module-scoped store, and a
    # warm-loaded transition cache would break the counter-asserted
    # solve/coalesce invariants (persistence has its own test module).
    config = EngineConfig(clusters=2, persist_transitions=False)
    with BackgroundServer(SNDService(store_path, config=config)) as srv:
        yield srv


def _get(server, path, timeout=30):
    url = f"http://{server.host}:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _post(server, path, payload, timeout=60, method="POST"):
    url = f"http://{server.host}:{server.port}{path}"
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server, "/v1/healthz")
        assert status == 200
        assert body == {"ok": True}

    def test_distance(self, server):
        status, body = _post(server, "/v1/distance", {"name": "t", "i": 0, "j": 1})
        assert status == 200
        assert body["distance"] >= 0

    def test_series_matches_service(self, server):
        status, body = _post(server, "/v1/series", {"name": "t"})
        assert status == 200
        expected = server.server.service.series_distances("t")
        assert np.array_equal(np.array(body["distances"]), expected)

    def test_series_non_snd_measure(self, server):
        status, body = _post(server, "/v1/series", {"name": "t", "measure": "hamming"})
        assert status == 200
        assert len(body["distances"]) == 4

    def test_matrix(self, server):
        status, body = _post(server, "/v1/matrix", {"name": "t"})
        assert status == 200
        matrix = np.array(body["matrix"])
        assert matrix.shape == (5, 5)
        assert np.array_equal(matrix, matrix.T)

    def test_corpora_listing(self, server):
        status, body = _get(server, "/v1/corpora")
        assert status == 200
        assert {"graph": "t", "corpus": "c", "n_states": 3} in body

    def test_corpus_query(self, server):
        status, body = _post(
            server, "/v1/corpus/query",
            {"name": "t", "corpus": "c", "state": 0, "k": 2},
        )
        assert status == 200
        neighbours = body["neighbours"]
        assert len(neighbours) == 2
        assert neighbours[0]["distance"] <= neighbours[1]["distance"]

    def test_stats_after_work(self, server):
        _post(server, "/v1/distance", {"name": "t", "i": 0, "j": 1})
        status, body = _get(server, "/v1/stats")
        assert status == 200
        shard = body["shards"]["t"]
        assert shard["scheduler"]["requested"] >= 1
        assert "caches" in shard

    def test_keep_alive_reuses_connection(self, server):
        # Two sequential requests over default urllib behaviour plus an
        # explicit probe that the server answers repeatedly.
        for _ in range(3):
            status, _body = _get(server, "/v1/healthz")
            assert status == 200


class TestWatchStreaming:
    def test_watch_streams_ndjson(self, server):
        url = f"http://{server.host}:{server.port}/v1/watch"
        request = urllib.request.Request(
            url, data=json.dumps({"name": "t", "window": 3}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [line for line in resp.read().decode().splitlines() if line]
        updates = [json.loads(line) for line in lines]
        # One line per state (first has no distance) + the final flush.
        assert len(updates) == 6
        distances = [u["distance"] for u in updates if u["distance"] is not None]
        assert len(distances) == 4
        assert all(d >= 0 for d in distances)
        scored = [u["scored"] for u in updates if u["scored"] is not None]
        assert len(scored) == 4
        assert all(s["flagged"] in (True, False) for s in scored)

    def test_watch_threshold(self, server):
        url = f"http://{server.host}:{server.port}/v1/watch"
        request = urllib.request.Request(
            url,
            data=json.dumps({"name": "t", "window": 3, "threshold": 1e9}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            updates = [
                json.loads(line)
                for line in resp.read().decode().splitlines()
                if line
            ]
        scored = [u["scored"] for u in updates if u["scored"] is not None]
        assert scored
        assert all(s["threshold"] == 1e9 for s in scored)
        assert not any(s["flagged"] for s in scored)


class TestErrorMapping:
    def test_unknown_route_404(self, server):
        status, body = _get(server, "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "no such route" in body["error"]["message"]

    def test_unknown_post_route_404(self, server):
        status, body = _post(server, "/nope", {})
        assert status == 404

    def test_unknown_graph_404(self, server):
        status, body = _post(server, "/v1/series", {"name": "missing"})
        assert status == 404
        assert "no graph" in body["error"]["message"]

    def test_unknown_corpus_404(self, server):
        status, body = _post(
            server, "/v1/corpus/query", {"name": "t", "corpus": "missing", "state": 0}
        )
        assert status == 404

    def test_missing_field_400(self, server):
        status, body = _post(server, "/v1/distance", {"name": "t", "i": 0})
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "missing required field 'j'" in body["error"]["message"]
        assert body["error"]["detail"] == {"field": "j"}

    def test_malformed_json_400(self, server):
        status, body = _post(server, "/v1/distance", b"{not json")
        assert status == 400

    def test_non_object_body_400(self, server):
        status, body = _post(server, "/v1/distance", b"[1, 2]")
        assert status == 400
        assert "JSON object" in body["error"]["message"]

    def test_out_of_range_index_400(self, server):
        status, body = _post(server, "/v1/distance", {"name": "t", "i": 0, "j": 99})
        assert status == 400
        assert "out of range" in body["error"]["message"]

    def test_unsupported_method_405(self, server):
        status, body = _post(server, "/v1/distance", {}, method="PUT")
        assert status == 405

    def test_saturated_scheduler_503(self, server, monkeypatch):
        def saturated(*args, **kwargs):
            raise SchedulerSaturatedError("scheduler queue full (4096 pending)")

        monkeypatch.setattr(server.server.service, "distance_pair", saturated)
        status, body = _post(server, "/v1/distance", {"name": "t", "i": 0, "j": 1})
        assert status == 503
        assert body["error"]["code"] == "saturated"
        assert "full" in body["error"]["message"]


class TestApiVersioning:
    """The /v1 prefix is canonical; unversioned paths are deprecated
    aliases that keep serving but carry a ``Deprecation: true`` header."""

    def _raw_get(self, server, path):
        url = f"http://{server.host}:{server.port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=30) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def test_versioned_route_no_deprecation_header(self, server):
        status, headers, _body = self._raw_get(server, "/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers

    def test_unversioned_alias_still_serves(self, server):
        status, headers, body = self._raw_get(server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}
        assert headers["Deprecation"] == "true"

    def test_unversioned_post_alias(self, server):
        status, body = _post(server, "/distance", {"name": "t", "i": 0, "j": 1})
        assert status == 200
        assert body["distance"] >= 0

    def test_unversioned_error_carries_deprecation(self, server):
        status, headers, body = self._raw_get(server, "/bogus")
        assert status == 404
        assert headers["Deprecation"] == "true"
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_client_identity_headers_reach_scheduler(self, server):
        url = f"http://{server.host}:{server.port}/v1/distance"
        request = urllib.request.Request(
            url,
            data=json.dumps({"name": "t", "i": 0, "j": 1}).encode(),
            method="POST",
            headers={"X-Client": "TestClient-A", "X-Priority": "high"},
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            assert resp.status == 200
        _status, stats = _get(server, "/v1/stats")
        clients = stats["shards"]["t"]["scheduler"]["clients"]
        # Identity case is preserved end to end (header values must not
        # be lowercased by the request parser).
        assert "TestClient-A" in clients
        assert clients["TestClient-A"]["requested"] == 1


class TestCoalescingOverHttp:
    def test_duplicate_pair_burst_solved_once(self, store_path):
        """N concurrent clients requesting the same pair: exactly one
        solve, everyone gets the same float — asserted via /stats."""
        n_clients = 8
        config = EngineConfig(clusters=2, persist_transitions=False)
        with BackgroundServer(SNDService(store_path, config=config)) as server:
            results: list[float] = [None] * n_clients
            errors: list[BaseException] = []
            barrier = threading.Barrier(n_clients)

            def client(idx: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    status, body = _post(
                        server, "/v1/distance", {"name": "t", "i": 0, "j": 1}
                    )
                    assert status == 200
                    results[idx] = body["distance"]
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(set(results)) == 1

            _status, stats = _get(server, "/v1/stats")
            sched = stats["shards"]["t"]["scheduler"]
            assert sched["requested"] == n_clients
            assert sched["solved"] == 1  # the counter-asserted guarantee
            assert sched["coalesced"] + sched["cache_answered"] == n_clients - 1


class TestHybridOverHttp:
    """The approximate tier exercised end-to-end over real sockets: the
    hybrid diagnostics surface in /stats, and genuine scheduler saturation
    (not a stubbed raise) maps to HTTP 503 with the rejected counter."""

    def test_hybrid_service_distance_and_stats(self, store_path):
        from repro.flow.sinkhorn_hybrid import HYBRID_METRICS

        before = HYBRID_METRICS.snapshot()["solves"]
        service = SNDService(
            store_path, config=EngineConfig(
                clusters=2, solver="sinkhorn-hybrid", persist_transitions=False
            )
        )
        with BackgroundServer(service) as server:
            # States 0 and 2 differ (0/1 are identical -> distance 0 with
            # no transportation solve, which would leave the metrics flat).
            status, body = _post(server, "/v1/distance", {"name": "t", "i": 0, "j": 2})
            assert status == 200
            assert body["distance"] > 0
            _status, stats = _get(server, "/v1/stats")
            hybrid = stats["shards"]["t"]["hybrid"]
            assert hybrid["solves"] > before
            assert 0.0 <= hybrid["last_support_density"] <= 1.0

    def test_real_saturation_maps_to_503(self, store_path, monkeypatch):
        import repro.flow as flow_mod

        real = flow_mod._TRANSPORT_SOLVERS["sinkhorn-hybrid"]
        hold = threading.Event()
        started = threading.Event()

        def throttled(problem, **kw):
            started.set()
            hold.wait(timeout=30)
            return real(problem, **kw)

        monkeypatch.setitem(
            flow_mod._TRANSPORT_SOLVERS, "sinkhorn-hybrid", throttled
        )
        service = SNDService(
            store_path,
            config=EngineConfig(
                clusters=2,
                solver="sinkhorn-hybrid",
                max_pending=1,
                persist_transitions=False,
            ),
        )
        with BackgroundServer(service) as server:
            first: list = []

            def slow_client() -> None:
                first.append(_post(server, "/v1/distance", {"name": "t", "i": 0, "j": 2}))

            t = threading.Thread(target=slow_client)
            t.start()
            assert started.wait(timeout=30)  # hybrid solve now holds the slot

            # Swap in a non-blocking submit over the same genuine path so the
            # second request observes saturation instead of queueing behind it.
            def nonblocking_distance_pair(graph_name, i, j, **_kwargs):
                shard = service.shard(graph_name)
                engine = shard.engine()
                return engine.scheduler.submit(
                    shard.series[i],
                    shard.series[j],
                    transitions=engine.caches.transitions,
                    block=False,
                )

            monkeypatch.setattr(
                service, "distance_pair", nonblocking_distance_pair
            )
            status, body = _post(server, "/v1/distance", {"name": "t", "i": 2, "j": 3})
            assert status == 503
            assert "error" in body

            hold.set()
            t.join(timeout=120)
            assert first and first[0][0] == 200

            _status, stats = _get(server, "/v1/stats")
            sched = stats["shards"]["t"]["scheduler"]
            assert sched["rejected"] == 1
            assert sched["solved"] >= 1
            assert stats["shards"]["t"]["hybrid"]["solves"] >= 1


class TestServeSubprocess:
    def test_cli_serve_end_to_end(self, store_path):
        """`repro-snd serve` as a real subprocess: parse the bound port
        from stdout, drive the API, then shut down cleanly on SIGINT."""
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "serve",
                "--store", store_path,
                "--port", "0",
                "--clusters", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1])

            class _Addr:
                host = "127.0.0.1"

            addr = _Addr()
            addr.port = port
            status, body = _get(addr, "/v1/healthz")
            assert (status, body) == (200, {"ok": True})
            status, body = _post(addr, "/v1/distance", {"name": "t", "i": 0, "j": 1})
            assert status == 200
            assert body["distance"] >= 0
            status, _stats = _get(addr, "/v1/stats")
            assert status == 200
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                out, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                proc.kill()
                raise
        assert proc.returncode == 0, err
        assert "shutting down" in out
