"""EngineConfig: validation, mapping round-trips, per-layer keyword
views, and the legacy SNDService keyword shim."""

import warnings

import pytest

from repro.exceptions import ValidationError
from repro.serve import EngineConfig, SNDService
from repro.serve.config import DEFAULT_FLUSH_INTERVAL, PRIORITY_CLASSES


class TestValidation:
    def test_defaults_validate(self):
        config = EngineConfig()
        assert config.solver == "auto"
        assert config.flush_interval == DEFAULT_FLUSH_INTERVAL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"executor": "greenlet"},
            {"priority": "urgent"},
            {"max_pending": 0},
            {"client_max_pending": 0},
            {"memory_budget": 0},
            {"flush_interval": 0},
            {"flush_interval": -1.0},
            {"hybrid_cells": 0},
            {"hybrid_cells": "sometimes"},
            {"hybrid_cells": 2.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            EngineConfig(**kwargs)

    def test_priority_classes_cover_scheduler_weights(self):
        assert set(PRIORITY_CLASSES) == {"low", "normal", "high"}


class TestMappingRoundTrip:
    def test_from_mapping_skips_none_and_unknown(self):
        config = EngineConfig.from_mapping(
            {"clusters": 4, "jobs": None, "not_a_field": 1}
        )
        assert config.clusters == 4
        assert config.jobs == "auto"  # None fell back to the default

    def test_from_mapping_strict_rejects_unknown(self):
        with pytest.raises(ValidationError):
            EngineConfig.from_mapping({"not_a_field": 1}, strict=True)

    def test_to_dict_round_trips(self):
        config = EngineConfig(clusters=3, solver="network-simplex", seed=7)
        clone = EngineConfig.from_mapping(config.to_dict())
        assert clone == config

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(clusters=5).clusters == 5
        assert config.clusters is None  # original untouched
        with pytest.raises(ValidationError):
            config.replace(max_pending=0)


class TestLayerViews:
    def test_snd_kwargs(self):
        config = EngineConfig(clusters=2, seed=9, solver="exact")
        assert config.snd_kwargs() == {
            "n_clusters": 2,
            "seed": 9,
            "solver": "exact",
        }

    def test_snd_kwargs_threads_hybrid_cells_only_when_set(self):
        assert "hybrid_cells" not in EngineConfig().snd_kwargs()
        assert EngineConfig(hybrid_cells=5000).snd_kwargs()["hybrid_cells"] == 5000
        assert EngineConfig(hybrid_cells=None).snd_kwargs()["hybrid_cells"] is None

    def test_engine_kwargs_defaults_max_pending(self):
        from repro.snd.scheduler import DEFAULT_MAX_PENDING

        kwargs = EngineConfig().engine_kwargs()
        assert kwargs["max_pending"] == DEFAULT_MAX_PENDING
        assert kwargs["client_max_pending"] is None
        assert EngineConfig(max_pending=7).engine_kwargs()["max_pending"] == 7


class TestLegacyServiceShim:
    def test_legacy_kwargs_warn_and_fold_into_config(self, tmp_path):
        from repro.store import ExperimentStore

        path = str(tmp_path / "exp.sqlite")
        ExperimentStore(path).close()
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            service = SNDService(path, clusters=3, solver="exact", jobs=2)
        with service:
            assert service.config.clusters == 3
            assert service.config.solver == "exact"
            assert service.config.jobs == 2
            # Property mirrors still answer the old surface.
            assert service.clusters == 3
            assert service.jobs == 2

    def test_config_plus_legacy_kwargs_rejected(self, tmp_path):
        from repro.store import ExperimentStore

        path = str(tmp_path / "exp.sqlite")
        ExperimentStore(path).close()
        with pytest.raises(ValidationError):
            SNDService(path, config=EngineConfig(), clusters=3)

    def test_config_only_emits_no_warning(self, tmp_path):
        from repro.store import ExperimentStore

        path = str(tmp_path / "exp.sqlite")
        ExperimentStore(path).close()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with SNDService(path, config=EngineConfig(clusters=2)) as service:
                assert service.config.clusters == 2
