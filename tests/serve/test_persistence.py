"""Transition-cache persistence: spill on close, warm start on build,
and the kill-and-restart replay guarantee (solved == 0 on the second
run), counter-asserted end to end."""

import json
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.cli import main
from repro.serve import EngineConfig, SNDService
from repro.serve.http import BackgroundServer
from repro.store import ExperimentStore


@pytest.fixture
def store_path(tmp_path):
    path = str(tmp_path / "exp.sqlite")
    rc = main(
        [
            "generate",
            "--nodes", "60",
            "--states", "5",
            "--seeds", "8",
            "--seed", "3",
            "--store", path,
            "--name", "t",
        ]
    )
    assert rc == 0
    return path


CONFIG = EngineConfig(clusters=2)
PAIRS = [(0, 1), (1, 2), (0, 3), (2, 4)]


def _replay(service):
    return [service.distance_pair("t", i, j) for i, j in PAIRS]


class TestServiceRoundTrip:
    def test_restart_answers_replay_without_solving(self, store_path):
        with SNDService(store_path, config=CONFIG) as first:
            values = _replay(first)
            stats = first.stats()["shards"]["t"]
            assert stats["scheduler"]["solved"] == len(PAIRS)
            assert stats["transitions_loaded"] == 0
        # close() flushed; a brand-new service over the same store warms
        # its transition cache and answers the identical trace with zero
        # fresh solves — the restart-robustness guarantee.
        with SNDService(store_path, config=CONFIG) as second:
            again = _replay(second)
            assert again == values  # bit-identical across restart
            stats = second.stats()["shards"]["t"]
            assert stats["scheduler"]["solved"] == 0
            assert stats["scheduler"]["cache_answered"] == len(PAIRS)
            assert stats["transitions_loaded"] >= len(PAIRS)

    def test_flush_is_incremental(self, store_path):
        with SNDService(store_path, config=CONFIG) as service:
            service.distance_pair("t", 0, 1)
            assert service.flush() > 0
            # Nothing new solved since: the dirty-state snapshot makes
            # the second flush a no-op.
            assert service.flush() == 0
            service.distance_pair("t", 1, 2)
            assert service.flush() > 0
            stats = service.stats()["shards"]["t"]
            assert stats["transitions_persisted"] > 0

    def test_persistence_disabled_writes_nothing(self, store_path):
        config = CONFIG.replace(persist_transitions=False)
        with SNDService(store_path, config=config) as service:
            _replay(service)
            assert service.flush() == 0
        with ExperimentStore(store_path) as store:
            assert store.count_transitions("t") == 0
        # ...and a warm service over the same store has nothing to load.
        with SNDService(store_path, config=CONFIG) as service:
            shard = service.shard("t")
            shard.ensure_snd()
            assert shard.stats()["transitions_loaded"] == 0

    def test_spilled_rows_survive_in_store(self, store_path):
        with SNDService(store_path, config=CONFIG) as service:
            _replay(service)
        with ExperimentStore(store_path) as store:
            n = store.count_transitions("t")
            assert n >= len(PAIRS)
            rows = store.load_transitions("t")
            assert len(rows) == n
            assert all(isinstance(v, float) for _a, _b, v in rows)


class TestRestartOverHttp:
    def _post(self, server, path, payload):
        url = f"http://{server.host}:{server.port}{path}"
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            return json.loads(resp.read().decode())

    def _stats(self, server):
        url = f"http://{server.host}:{server.port}/v1/stats"
        with urllib.request.urlopen(url, timeout=30) as resp:
            return json.loads(resp.read().decode())

    def test_kill_and_restart_replay(self, store_path):
        """Full server lifecycle: serve a trace, tear the server down,
        start a fresh one on the same store, replay — zero solves."""
        trace = [{"name": "t", "i": i, "j": j} for i, j in PAIRS]
        with BackgroundServer(SNDService(store_path, config=CONFIG)) as server:
            cold = [self._post(server, "/v1/distance", r)["distance"] for r in trace]
            assert self._stats(server)["shards"]["t"]["scheduler"]["solved"] == len(PAIRS)
        with BackgroundServer(SNDService(store_path, config=CONFIG)) as server:
            warm = [self._post(server, "/v1/distance", r)["distance"] for r in trace]
            stats = self._stats(server)["shards"]["t"]
            assert warm == cold
            assert stats["scheduler"]["solved"] == 0
            assert stats["transitions_loaded"] >= len(PAIRS)

    def test_sigterm_flushes_before_exit(self, store_path):
        """Process managers stop services with SIGTERM: the server must
        flush the transition cache on the way down, exactly like SIGINT,
        so the next process warm-starts."""
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--store", store_path, "--port", "0", "--clusters", "2",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, bufsize=1,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1])

            class _Addr:
                host = "127.0.0.1"

            server = _Addr()
            server.port = port
            cold = [
                self._post(server, "/v1/distance", {"name": "t", "i": i, "j": j})
                for i, j in PAIRS
            ]
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                out, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                proc.kill()
                raise
        assert proc.returncode == 0, err
        assert "shutting down" in out
        with ExperimentStore(store_path) as store:
            assert store.count_transitions("t") >= len(PAIRS)
        with SNDService(store_path, config=CONFIG) as service:
            warm = _replay(service)
            assert warm == [r["distance"] for r in cold]
            assert service.stats()["shards"]["t"]["scheduler"]["solved"] == 0
