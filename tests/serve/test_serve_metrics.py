"""Prometheus exposition tests: registry instruments, the stats-tree
bridge, and a real-socket scrape of /v1/metrics with counter
monotonicity across requests."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.serve import EngineConfig, SNDService
from repro.serve.http import BackgroundServer
from repro.serve.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ServeMetrics,
    render_samples,
    samples_from_stats,
)


def parse_exposition(text: str):
    """Parse exposition text into ({family: type}, {sample_line_name: value})."""
    types: dict[str, str] = {}
    values: dict[str, float] = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, family, mtype = line.split(" ", 3)
            types[family] = mtype
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        assert name_part, f"malformed sample line: {line!r}"
        values[name_part] = float(value_part)
    return types, values


class TestInstruments:
    def test_counter_requires_total_suffix(self):
        with pytest.raises(ValidationError):
            Counter("snd_things", "h")

    def test_counter_labels_and_monotonicity(self):
        c = Counter("snd_reqs_total", "h", ("route",))
        c.inc(route="/a")
        c.inc(2, route="/a")
        c.inc(route="/b")
        assert c.value(route="/a") == 3
        with pytest.raises(ValidationError):
            c.inc(-1, route="/a")
        with pytest.raises(ValidationError):
            c.inc(other="x")
        lines = render_samples(c.collect())
        assert '# TYPE snd_reqs_total counter' in lines
        assert 'snd_reqs_total{route="/a"} 3' in lines

    def test_gauge_set(self):
        g = Gauge("snd_depth", "h")
        g.set(4)
        g.set(2)
        _types, values = parse_exposition(render_samples(g.collect()))
        assert values["snd_depth"] == 2

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("snd_lat_seconds", "h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        _types, values = parse_exposition(render_samples(h.collect()))
        assert values['snd_lat_seconds_bucket{le="0.1"}'] == 1
        assert values['snd_lat_seconds_bucket{le="1"}'] == 3
        assert values['snd_lat_seconds_bucket{le="10"}'] == 4
        assert values['snd_lat_seconds_bucket{le="+Inf"}'] == 4
        assert values["snd_lat_seconds_count"] == 4
        assert values["snd_lat_seconds_sum"] == pytest.approx(6.05)

    def test_label_escaping(self):
        c = Counter("snd_esc_total", "h", ("who",))
        c.inc(who='a"b\\c\nd')
        line = render_samples(c.collect())
        assert '{who="a\\"b\\\\c\\nd"}' in line

    def test_registry_collects_in_order(self):
        reg = MetricRegistry()
        reg.counter("snd_a_total", "ha")
        reg.gauge("snd_b", "hb")
        fams = [s.family for s in reg.collect()]
        assert fams == []  # nothing observed yet -> no samples

    def test_help_and_type_emitted_once_per_family(self):
        c = Counter("snd_multi_total", "h", ("k",))
        c.inc(k="1")
        c.inc(k="2")
        text = render_samples(c.collect())
        assert text.count("# TYPE snd_multi_total counter") == 1
        assert text.count("# HELP snd_multi_total") == 1


class TestStatsBridge:
    def test_bare_engine_stats_accepted(self):
        stats = {
            "scheduler": {"requested": 5, "solved": 2, "pending": 0,
                          "clients": {"a": {"requested": 3, "pending": 1}}},
            "caches": {"transitions": {"hits": 1, "misses": 2, "size": 3},
                       "total_nbytes": 64},
            "pool_starts": 1,
        }
        _types, values = parse_exposition(
            render_samples(samples_from_stats(stats))
        )
        assert values['snd_scheduler_requested_total{graph="default"}'] == 5
        assert values['snd_client_requested_total{client="a",graph="default"}'] == 3
        assert values['snd_client_pending{client="a",graph="default"}'] == 1
        assert values['snd_cache_hits_total{cache="transitions",graph="default"}'] == 1
        assert values['snd_cache_total_nbytes{graph="default"}'] == 64
        assert values['snd_engine_pool_starts_total{graph="default"}'] == 1

    def test_measure_request_counters(self):
        stats = {
            "measures": {"snd": 4, "esp": 2},
            "shards": {},
        }
        types, values = parse_exposition(
            render_samples(samples_from_stats(stats))
        )
        assert types["snd_measure_requests_total"] == "counter"
        assert values['snd_measure_requests_total{measure="snd"}'] == 4
        assert values['snd_measure_requests_total{measure="esp"}'] == 2

    def test_solver_families_emitted_once(self):
        shard = {
            "scheduler": {"requested": 1},
            "network_simplex": {"solves": 7, "warm_solves": 3},
            "hybrid": {"solves": 2, "last_support_density": 0.5},
        }
        stats = {"shards": {"g1": shard, "g2": dict(shard)}}
        text = render_samples(samples_from_stats(stats))
        assert text.count("snd_simplex_solves_total 7") == 1
        assert text.count("snd_hybrid_solves_total 2") == 1
        # per-shard families appear for both graphs
        assert 'snd_scheduler_requested_total{graph="g1"}' in text
        assert 'snd_scheduler_requested_total{graph="g2"}' in text

    def test_route_bucket_bounds_cardinality(self):
        m = ServeMetrics()
        assert m.route_bucket("/distance") == "/distance"
        assert m.route_bucket("/../../etc/passwd") == "other"


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve-metrics") / "exp.sqlite")
    rc = main(
        [
            "generate",
            "--nodes", "60",
            "--states", "4",
            "--seeds", "8",
            "--seed", "3",
            "--store", path,
            "--name", "t",
        ]
    )
    assert rc == 0
    return path


class TestScrapeOverHttp:
    def _fetch(self, server, path):
        url = f"http://{server.host}:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read().decode("utf-8")

    def _post(self, server, path, payload):
        url = f"http://{server.host}:{server.port}{path}"
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status

    def test_metrics_endpoint_covers_all_families(self, store_path):
        config = EngineConfig(
            clusters=2, client_max_pending=8, persist_transitions=False
        )
        with BackgroundServer(SNDService(store_path, config=config)) as server:
            assert self._post(server, "/v1/distance",
                              {"name": "t", "i": 0, "j": 1}) == 200
            status, headers, text = self._fetch(server, "/v1/metrics")
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            types, values = parse_exposition(text)
            # HTTP instruments
            assert types["snd_http_requests_total"] == "counter"
            assert types["snd_http_request_duration_seconds"] == "histogram"
            assert values[
                'snd_http_requests_total{route="/distance",status="200"}'
            ] == 1
            # scheduler + caches, labelled by graph
            assert types["snd_scheduler_requested_total"] == "counter"
            assert values['snd_scheduler_requested_total{graph="t"}'] == 1
            assert types["snd_scheduler_client_max_pending"] == "gauge"
            for cache in ("ground", "rows", "transitions", "bases"):
                key = f'snd_cache_size{{cache="{cache}",graph="t"}}'
                assert key in values, key
            # solver metric families (process-global singletons)
            assert "snd_simplex_solves_total" in values
            assert "snd_hybrid_solves_total" in values
            # uptime gauge present
            assert types["snd_serve_uptime_seconds"] == "gauge"

    def test_counters_monotonic_across_scrapes(self, store_path):
        config = EngineConfig(clusters=2, persist_transitions=False)
        with BackgroundServer(SNDService(store_path, config=config)) as server:
            _s, _h, text1 = self._fetch(server, "/v1/metrics")
            _types, before = parse_exposition(text1)
            for j in (1, 2, 3):
                assert self._post(server, "/v1/distance",
                                  {"name": "t", "i": 0, "j": j}) == 200
            _s, _h, text2 = self._fetch(server, "/v1/metrics")
            _types, after = parse_exposition(text2)
            key = 'snd_http_requests_total{route="/distance",status="200"}'
            assert after[key] == before.get(key, 0) + 3
            assert after['snd_scheduler_requested_total{graph="t"}'] == 3
            # every counter is monotone non-decreasing between scrapes
            for name, value in before.items():
                if name.endswith("_total"):
                    assert after.get(name, value) >= value, name
            # histogram invariants on the live scrape
            assert (
                after['snd_http_request_duration_seconds_bucket{le="+Inf",route="/distance"}']
                == after['snd_http_request_duration_seconds_count{route="/distance"}']
            )

    def test_metrics_alias_deprecated(self, store_path):
        config = EngineConfig(clusters=2, persist_transitions=False)
        with BackgroundServer(SNDService(store_path, config=config)) as server:
            _status, headers, _text = self._fetch(server, "/metrics")
            assert headers["Deprecation"] == "true"
