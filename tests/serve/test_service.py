"""Tests for SNDService — the shared backend behind the CLI and HTTP tier."""

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import StoreError, ValidationError
from repro.serve import EngineConfig, SNDService


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "exp.sqlite")
    rc = main(
        [
            "generate",
            "--nodes", "60",
            "--states", "5",
            "--seeds", "8",
            "--seed", "3",
            "--store", path,
            "--name", "t",
        ]
    )
    assert rc == 0
    return path


@pytest.fixture
def service(store_path):
    with SNDService(store_path, config=EngineConfig(clusters=2)) as svc:
        yield svc


class TestDistances:
    def test_series_distances_match_direct_registry(self, service, store_path):
        from repro.distances import DistanceContext, default_registry
        from repro.store import ExperimentStore

        got = service.series_distances("t")
        with ExperimentStore(store_path) as store:
            graph = store.load_graph("t")
            series = store.load_series("t", "series")
        context = DistanceContext(graph=graph)
        context.ensure_snd(n_clusters=2, seed=0, solver="auto")
        expected = default_registry().series("snd", series, context)
        assert np.array_equal(got, expected)

    def test_non_snd_measure(self, service):
        values = service.series_distances("t", measure="hamming")
        assert len(values) == 4
        # Baseline measures must not force an SND instance into existence.
        assert all(v >= 0 for v in values)

    def test_matrix_symmetric_zero_diagonal(self, service):
        matrix = service.matrix("t")
        assert matrix.shape == (5, 5)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_distance_pair_bit_identical_to_series(self, service):
        series_values = service.series_distances("t")
        assert service.distance_pair("t", 0, 1) == series_values[0]
        assert service.distance_pair("t", 3, 4) == series_values[3]

    def test_measure_request_counters(self, service):
        assert service.measure_requests() == {}
        service.series_distances("t", measure="hamming")
        service.series_distances("t", measure="esp")
        service.series_distances("t", measure="esp")
        service.distance_pair("t", 0, 1)
        counts = service.measure_requests()
        assert counts == {"hamming": 1, "esp": 2, "snd": 1}
        assert service.stats()["measures"] == counts

    def test_distance_pair_out_of_range(self, service):
        with pytest.raises(ValidationError, match="out of range"):
            service.distance_pair("t", 0, 99)
        with pytest.raises(ValidationError, match="out of range"):
            service.distance_pair("t", -1, 0)

    def test_unknown_graph_raises_store_error(self, service):
        with pytest.raises(StoreError, match="no graph"):
            service.series_distances("missing")

    def test_windowed_series(self, service):
        full = service.series_distances("t")
        windowed = service.series_distances("t", window=2)
        assert len(windowed) == len(full)
        assert np.array_equal(windowed, full)  # window caps history, not values


class TestWatch:
    def test_watch_yields_scored_updates(self, service):
        # One update per state (the first carries no distance) plus the
        # detector's final flush: 5 states -> 6 updates, 4 transitions.
        updates = list(service.watch("t", window=3))
        assert len(updates) == 6
        distances = [u.distance for u in updates if u.distance is not None]
        assert len(distances) == 4
        scored = [u.scored for u in updates if u.scored is not None]
        assert len(scored) == 4  # one score per transition (lagged + flush)
        # Watch goes through the scheduler like everything else.
        assert service.shard("t").engine().scheduler.requested >= 4

    def test_watch_threshold_propagates(self, service):
        updates = list(service.watch("t", window=3, threshold=1e9))
        scored = [u.scored for u in updates if u.scored is not None]
        assert scored
        assert all(s.threshold == 1e9 for s in scored)
        assert not any(s.flagged for s in scored)


class TestCorpora:
    def test_build_extend_query_lifecycle(self, service):
        built = service.corpus_build("t", "c", first=3)
        assert built == {"corpus": "c", "n_states": 3, "pairs_solved": 3}

        extended = service.corpus_extend("t", "c", take=2)
        assert extended["old_n"] == 3
        assert extended["n_states"] == 5
        assert extended["added"] == 2

        neighbours = service.corpus_query("t", "c", 0, k=2)
        assert len(neighbours) == 2
        assert neighbours[0][1] <= neighbours[1][1]
        rows = service.list_corpora("t")
        assert ("t", "c", 5) in rows

    def test_extend_exhausted_series(self, service):
        service.corpus_build("t", "full")
        result = service.corpus_extend("t", "full")
        assert result["added"] == 0
        assert result["solved"] == 0
        assert result["n_states"] == result["old_n"] == 5
        assert result["series_states"] == 5

    def test_query_out_of_range(self, service):
        service.corpus_build("t", "q", first=2)
        with pytest.raises(ValidationError, match="out of range"):
            service.corpus_query("t", "q", 99)

    def test_query_self_distance_zero(self, service):
        service.corpus_build("t", "self")
        neighbours = service.corpus_query("t", "self", 0, k=1)
        assert neighbours[0][1] == 0.0


class TestStatsAndLifecycle:
    def test_stats_structure(self, service):
        service.distance_pair("t", 0, 1)  # forces the shard engine into being
        stats = service.stats()
        assert stats["store"] == service.store_path
        shard = stats["shards"]["t"]
        assert shard["n_states"] == 5
        assert "scheduler" in shard
        for key in ("requested", "solved", "coalesced", "cache_answered"):
            assert key in shard["scheduler"]

    def test_stats_before_engine_exists(self, service):
        # A shard loaded for a non-SND measure has no engine yet: stats
        # must still answer (with bare cache counters).
        service.series_distances("t", measure="hamming")
        shard_stats = service.stats()["shards"]["t"]
        assert shard_stats["n_states"] == 5
        assert "scheduler" not in shard_stats

    def test_cache_stats_surface(self, service):
        service.series_distances("t")
        stats = service.cache_stats("t")
        assert stats is not None
        assert "transitions" in stats

    def test_names_lists_loaded_shards(self, service):
        assert service.names() == []
        service.shard("t")
        assert service.names() == ["t"]

    def test_close_idempotent(self, store_path):
        svc = SNDService(store_path, config=EngineConfig(clusters=2))
        svc.series_distances("t")
        svc.close()
        svc.close()  # second close must be a no-op
        assert svc.names() == []


class TestJobsSpellings:
    def test_zero_jobs_means_serial_at_service_boundary(self, store_path):
        # jobs=0 is only reachable through the legacy-kwargs shim;
        # EngineConfig itself rejects it.
        with pytest.warns(DeprecationWarning):
            svc = SNDService(store_path, clusters=2, jobs=0)
        assert svc.jobs == 1

    def test_normalise_jobs(self):
        assert SNDService._normalise_jobs(0) is None
        assert SNDService._normalise_jobs(None) is None
        assert SNDService._normalise_jobs(3) == 3

    def test_engine_jobs(self):
        assert SNDService._engine_jobs(0) == 1
        assert SNDService._engine_jobs(None) is None
        assert SNDService._engine_jobs(3) == 3
