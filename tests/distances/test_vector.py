"""Tests for coordinate-wise baseline distances."""

import numpy as np
import pytest

from repro.distances.vector import (
    canberra_distance,
    chebyshev_distance,
    cosine_distance,
    hamming_distance,
    kl_divergence,
    l1_distance,
    l2_distance,
    lp_distance,
)
from repro.exceptions import ValidationError
from repro.opinions.state import NetworkState


class TestHamming:
    def test_counts_differences(self):
        assert hamming_distance([1, 0, -1], [1, 1, 1]) == 2.0

    def test_zero_for_identical(self):
        assert hamming_distance([1, 0], [1, 0]) == 0.0

    def test_accepts_states(self, tri_state):
        other = tri_state.with_opinions([0], -1)
        assert hamming_distance(tri_state, other) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            hamming_distance([1], [1, 0])


class TestLp:
    def test_l1(self):
        assert l1_distance([1, -1, 0], [0, 1, 0]) == 3.0

    def test_l2(self):
        assert l2_distance([1, 0], [0, 0]) == 1.0
        assert l2_distance([1, -1], [-1, 1]) == pytest.approx(np.sqrt(8))

    def test_lp_general(self):
        assert lp_distance([2, 0], [0, 0], order=1) == 2.0
        assert lp_distance([2, 0], [0, 0], order=3) == pytest.approx(2.0)

    def test_lp_order_validated(self):
        with pytest.raises(ValidationError):
            lp_distance([1], [0], order=0.5)

    def test_l1_vs_hamming_on_polar(self):
        # For ±1 flips l1 counts 2 per flip, hamming 1.
        a, b = [1, 1], [-1, 1]
        assert l1_distance(a, b) == 2 * hamming_distance(a, b)


class TestCosine:
    def test_parallel_zero(self):
        assert cosine_distance([1, 1, 0], [2, 2, 0]) == pytest.approx(0.0)

    def test_orthogonal_one(self):
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_opposite_two(self):
        assert cosine_distance([1, 0], [-1, 0]) == pytest.approx(2.0)

    def test_zero_vector_conventions(self):
        assert cosine_distance([0, 0], [0, 0]) == 0.0
        assert cosine_distance([0, 0], [1, 0]) == 1.0


class TestCanberraChebyshev:
    def test_canberra(self):
        assert canberra_distance([1, 0], [0, 0]) == pytest.approx(1.0)
        assert canberra_distance([1, -1], [1, 1]) == pytest.approx(1.0)

    def test_canberra_zero_terms_skipped(self):
        assert canberra_distance([0, 0], [0, 0]) == 0.0

    def test_chebyshev(self):
        assert chebyshev_distance([1, -1, 0], [1, 1, 0]) == 2.0
        assert chebyshev_distance([], []) == 0.0


class TestKl:
    def test_zero_for_identical(self):
        assert kl_divergence([1, 0, -1], [1, 0, -1]) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric(self):
        a, b = [1, 0, -1, 0], [0, 1, 0, -1]
        assert kl_divergence(a, b) == pytest.approx(kl_divergence(b, a))

    def test_positive_for_different(self):
        # Note [1, 1] vs [-1, -1] normalise to the SAME distribution (KL
        # sees shape, not level) — use a shape difference instead.
        assert kl_divergence([1, -1], [1, 1]) > 0
