"""Tests for quad-form, walk-dist, and the distance registry."""

import numpy as np
import pytest

from repro.distances.quad_form import quad_form_distance
from repro.distances.registry import DistanceContext, DistanceRegistry, default_registry
from repro.distances.walk_dist import contention_vector, walk_distance
from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.laplacian import laplacian_matrix
from repro.opinions.state import NetworkState, StateSeries


class TestQuadForm:
    def test_zero_for_identical(self):
        g = erdos_renyi_graph(10, 0.3, seed=0)
        s = NetworkState.from_active_sets(10, positive=[1])
        assert quad_form_distance(s, s, graph=g) == 0.0

    def test_counts_cut_weight(self):
        g = DiGraph.from_undirected_edges(3, [(0, 1), (1, 2)])
        a = NetworkState([1, 0, 0])
        b = NetworkState([0, 0, 0])
        # diff = [1,0,0]; x^T L x = (1-0)^2 over edge (0,1) = 1.
        assert quad_form_distance(a, b, graph=g) == pytest.approx(1.0)

    def test_structure_sensitivity(self):
        # Changing two adjacent users is "smoother" than two distant ones.
        g = DiGraph.from_undirected_edges(6, [(i, i + 1) for i in range(5)])
        base = NetworkState.neutral(6)
        adjacent = base.with_opinions([0, 1], 1)
        distant = base.with_opinions([0, 5], 1)
        lap = laplacian_matrix(g)
        assert quad_form_distance(base, adjacent, lap) < quad_form_distance(
            base, distant, lap
        )

    def test_requires_laplacian_or_graph(self):
        with pytest.raises(ValueError):
            quad_form_distance([1], [0])


class TestWalkDist:
    def test_contention_zero_without_active_neighbors(self):
        g = DiGraph(3, [(0, 1)])
        state = NetworkState([0, 1, 0])
        cnt = contention_vector(g, state)
        assert cnt[2] == 0.0  # no in-neighbors at all
        assert cnt[1] == 0.0  # in-neighbor exists but neutral

    def test_contention_measures_deviation(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, 1, -1])
        cnt = contention_vector(g, state)
        assert cnt[2] == pytest.approx(2.0)  # -1 vs mean(+1, +1)

    def test_agreeing_neighborhood_zero(self):
        g = DiGraph(2, [(0, 1)])
        state = NetworkState([1, 1])
        assert contention_vector(g, state)[1] == 0.0

    def test_walk_distance_normalised(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        a = NetworkState([1, 1, -1])
        b = NetworkState([1, 1, 1])
        # cnt(a)[2] = 2, cnt(b)[2] = 0 -> |2 - 0| / 3.
        assert walk_distance(g, a, b) == pytest.approx(2.0 / 3.0)

    def test_identical_states_zero(self):
        g = erdos_renyi_graph(12, 0.3, seed=1)
        s = NetworkState.from_active_sets(12, positive=[0, 3], negative=[5])
        assert walk_distance(g, s, s) == 0.0


class TestRegistry:
    def test_default_lineup(self):
        names = default_registry().names()
        assert names == [
            "bimodality",
            "disagreement",
            "esp",
            "hamming",
            "l1",
            "quad-form",
            "snd",
            "walk-dist",
        ]

    def test_compute_and_series(self):
        g = erdos_renyi_graph(15, 0.3, seed=2)
        registry = default_registry()
        context = DistanceContext(graph=g)
        a = NetworkState.from_active_sets(15, positive=[0])
        b = NetworkState.from_active_sets(15, positive=[0, 1])
        assert registry.compute("hamming", a, b, context) == 1.0
        series = StateSeries([a, b, a])
        values = registry.series("hamming", series, context)
        assert values.tolist() == [1.0, 1.0]

    def test_snd_uses_shared_context(self):
        g = erdos_renyi_graph(15, 0.3, seed=2)
        registry = default_registry()
        context = DistanceContext(graph=g)
        context.ensure_snd(n_clusters=2, seed=0)
        a = NetworkState.from_active_sets(15, positive=[0])
        b = NetworkState.from_active_sets(15, positive=[1])
        assert registry.compute("snd", a, b, context) > 0

    def test_unknown_measure(self):
        registry = default_registry()
        with pytest.raises(ValidationError):
            registry.get("euclidean-ish")

    def test_duplicate_registration_rejected(self):
        registry = DistanceRegistry()
        registry.register("x", lambda p, q, c: 0.0)
        with pytest.raises(ValidationError):
            registry.register("x", lambda p, q, c: 1.0)
