"""Shared fixtures: small graphs and states reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph, two_cluster_graph
from repro.opinions.state import NetworkState


@pytest.fixture
def line_graph() -> DiGraph:
    """0 -> 1 -> 2 -> 3 (directed path)."""
    return DiGraph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def diamond_graph() -> DiGraph:
    """0 -> {1, 2} -> 3 with asymmetric weights."""
    return DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], weights=[1.0, 2.0, 5.0, 1.0])


@pytest.fixture
def small_er_graph() -> DiGraph:
    """Connected-ish ER graph with 30 nodes (bidirected)."""
    return erdos_renyi_graph(30, 0.2, seed=7)


@pytest.fixture
def clustered_graph():
    """Two-cluster bridge graph (Fig. 5 topology): (graph, labels, bridges)."""
    return two_cluster_graph(12, p_in=0.4, n_bridges=2, seed=3)


@pytest.fixture
def tri_state() -> NetworkState:
    return NetworkState(np.array([1, -1, 0, 1, 0, -1, 0, 0], dtype=np.int8))
