"""Shared fixtures: small graphs, states, and the seeded ``rng`` generator.

Also registers the ``slow`` marker: long-running property suites (the
cross-solver equivalence harness, full sliding-window matrices) are marked
``@pytest.mark.slow`` and skipped unless ``--runslow`` is passed, so the
tier-1 run stays fast while CI's property-suite job runs them fully.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph, two_cluster_graph
from repro.opinions.state import NetworkState


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow (full property suites)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running property suite (runs with --runslow)"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow property suite; pass --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Seeded random generator, stable per test node id.

    Every randomized test draws from this fixture so runs are reproducible
    and two tests never share a stream; parametrized cases get distinct
    seeds because the node id includes the parameter repr. Tests needing
    several independent generators derive child seeds via
    ``np.random.default_rng(int(rng.integers(0, 2**32)))``.
    """
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)


@pytest.fixture(autouse=True)
def _global_rng_guard():
    """Fail any test that mutates numpy's *global* RNG state.

    Determinism contract: all randomness flows through the seeded ``rng``
    fixture (or generators derived from it), never through the legacy
    ``np.random.seed`` / ``np.random.rand`` global stream — a test relying
    on the global stream is order-dependent and breaks under ``-p
    no:randomly``-style reordering or parallel splits.
    """
    before = np.random.get_state()
    yield
    after = np.random.get_state()
    assert before[0] == after[0] and np.array_equal(before[1], after[1]) and (
        before[2:] == after[2:]
    ), (
        "test mutated the global numpy RNG state; draw from the seeded "
        "`rng` fixture instead of np.random.* module-level functions"
    )


@pytest.fixture
def line_graph() -> DiGraph:
    """0 -> 1 -> 2 -> 3 (directed path)."""
    return DiGraph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def diamond_graph() -> DiGraph:
    """0 -> {1, 2} -> 3 with asymmetric weights."""
    return DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], weights=[1.0, 2.0, 5.0, 1.0])


@pytest.fixture
def small_er_graph() -> DiGraph:
    """Connected-ish ER graph with 30 nodes (bidirected)."""
    return erdos_renyi_graph(30, 0.2, seed=7)


@pytest.fixture
def clustered_graph():
    """Two-cluster bridge graph (Fig. 5 topology): (graph, labels, bridges)."""
    return two_cluster_graph(12, p_in=0.4, n_bridges=2, seed=3)


@pytest.fixture
def tri_state() -> NetworkState:
    return NetworkState(np.array([1, -1, 0, 1, 0, -1, 0, 0], dtype=np.int8))
