"""Unit + property tests for all three heap implementations.

The three heaps share one interface; most tests are parametrised over all
of them. The radix heap additionally enforces monotone integer keys, which
gets its own tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heaps import HEAP_KINDS, make_heap
from repro.heaps.binary_heap import IndexedBinaryHeap
from repro.heaps.pairing_heap import PairingHeap
from repro.heaps.radix_heap import RadixHeap


def build(kind: str, capacity: int = 64, max_key: int = 10_000):
    return make_heap(kind, capacity=capacity, max_key=max_key)


@pytest.mark.parametrize("kind", HEAP_KINDS)
class TestCommonBehaviour:
    def test_push_pop_single(self, kind):
        h = build(kind)
        h.push(3, 5.0)
        assert len(h) == 1
        assert h.pop() == (3, 5.0)
        assert len(h) == 0

    def test_pops_in_key_order(self, kind):
        h = build(kind)
        keys = [7, 1, 9, 3, 5]
        for item, key in enumerate(keys):
            h.push(item, float(key))
        popped = [h.pop()[1] for _ in range(len(keys))]
        assert popped == sorted(float(k) for k in keys)

    def test_contains(self, kind):
        h = build(kind)
        h.push(2, 4.0)
        assert 2 in h
        assert 3 not in h
        h.pop()
        assert 2 not in h

    def test_decrease_key_changes_order(self, kind):
        h = build(kind)
        h.push(0, 10.0)
        h.push(1, 5.0)
        h.decrease_key(0, 1.0)
        assert h.pop()[0] == 0

    def test_decrease_key_missing_item(self, kind):
        h = build(kind)
        with pytest.raises(KeyError):
            h.decrease_key(0, 1.0)

    def test_decrease_key_refuses_increase(self, kind):
        h = build(kind)
        h.push(0, 5.0)
        with pytest.raises(ValueError):
            h.decrease_key(0, 9.0)

    def test_push_existing_item_acts_as_decrease(self, kind):
        h = build(kind)
        h.push(0, 9.0)
        h.push(0, 2.0)
        assert len(h) == 1
        assert h.pop() == (0, 2.0)

    def test_pop_empty_raises(self, kind):
        h = build(kind)
        with pytest.raises(IndexError):
            h.pop()

    def test_peek(self, kind):
        h = build(kind)
        h.push(0, 7.0)
        h.push(1, 3.0)
        assert h.peek() == (1, 3.0)
        assert len(h) == 2  # peek does not remove

    def test_peek_empty_raises(self, kind):
        h = build(kind)
        with pytest.raises(IndexError):
            h.peek()

    def test_key_of(self, kind):
        h = build(kind)
        h.push(4, 8.0)
        assert h.key_of(4) == 8.0

    def test_interleaved_push_pop(self, kind):
        h = build(kind, capacity=16)
        h.push(0, 4.0)
        h.push(1, 2.0)
        assert h.pop()[0] == 1
        h.push(2, 6.0)
        h.push(3, 5.0)
        assert h.pop()[0] == 0
        assert h.pop()[0] == 3
        assert h.pop()[0] == 2


class TestRadixSpecifics:
    def test_requires_max_key(self):
        with pytest.raises(ValueError):
            make_heap("radix", capacity=4)

    def test_rejects_key_above_bound(self):
        h = RadixHeap(4, 10)
        with pytest.raises(ValueError):
            h.push(0, 11)

    def test_rejects_non_monotone_push(self):
        h = RadixHeap(4, 100)
        h.push(0, 50)
        h.pop()
        with pytest.raises(ValueError):
            h.push(1, 10)  # below the monotone floor

    def test_monotone_sequence_ok(self):
        h = RadixHeap(8, 1000)
        h.push(0, 10)
        h.push(1, 20)
        assert h.pop() == (0, 10.0)
        h.push(2, 15)  # >= last popped: allowed
        assert h.pop() == (2, 15.0)
        assert h.pop() == (1, 20.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_heap("fibonacci", capacity=4)


class TestDijkstraLikeWorkload:
    """Simulated monotone workload, checked against a sorted reference."""

    @pytest.mark.parametrize("kind", HEAP_KINDS)
    def test_random_monotone_workload(self, rng, kind):
        capacity = 128
        h = build(kind, capacity=capacity, max_key=100_000)
        keys = {}
        floor = 0
        for item in range(capacity):
            key = floor + int(rng.integers(0, 100))
            h.push(item, float(key))
            keys[item] = key
        # Random decreases that stay above the floor.
        for item in rng.choice(capacity, size=40, replace=False):
            new_key = max(floor, keys[item] - int(rng.integers(0, 30)))
            h.decrease_key(int(item), float(new_key))
            keys[int(item)] = new_key
        popped = []
        while len(h):
            item, key = h.pop()
            popped.append(key)
            assert key == keys[item]
        assert popped == sorted(popped)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60)
)
@pytest.mark.parametrize("kind", HEAP_KINDS)
def test_heapsort_property(kind, keys):
    """Any batch of keys comes out sorted (hypothesis)."""
    h = make_heap(kind, capacity=len(keys), max_key=1001)
    for item, key in enumerate(keys):
        h.push(item, float(key))
    out = [h.pop()[1] for _ in range(len(keys))]
    assert out == sorted(float(k) for k in keys)


class TestBinaryHeapInternals:
    def test_capacity_zero(self):
        h = IndexedBinaryHeap(0)
        assert len(h) == 0

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            IndexedBinaryHeap(-1)
        with pytest.raises(ValueError):
            PairingHeap(-1)
        with pytest.raises(ValueError):
            RadixHeap(-1, 10)
