"""Tests for the utils package (validation, rng, timing)."""

import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive_int,
    check_probability,
    check_same_length,
    check_square,
    check_vector,
)


class TestValidation:
    def test_check_vector_coerces(self):
        out = check_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_check_vector_scalar_promoted(self):
        assert check_vector(5.0).shape == (1,)

    def test_check_vector_rejects_matrix(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros((2, 2)))

    def test_check_vector_length(self):
        with pytest.raises(ValidationError):
            check_vector([1, 2], length=3)

    def test_check_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)
        with pytest.raises(ValidationError):
            check_square(np.zeros((2, 3)))
        with pytest.raises(ValidationError):
            check_square(np.eye(3), size=4)

    def test_check_nonnegative(self):
        check_nonnegative(np.array([0.0, 1.0]))
        with pytest.raises(ValidationError):
            check_nonnegative(np.array([-0.1]))

    def test_check_finite(self):
        check_finite(np.array([1.0]))
        with pytest.raises(ValidationError):
            check_finite(np.array([np.inf]))
        with pytest.raises(ValidationError):
            check_finite(np.array([np.nan]))

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.1)
        with pytest.raises(ValidationError):
            check_probability(-0.1)

    def test_check_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValidationError):
            check_positive_int(0)
        with pytest.raises(ValidationError):
            check_positive_int(2.5)
        with pytest.raises(ValidationError):
            check_positive_int(True)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        with pytest.raises(ValidationError):
            check_in_range(2, 0, 1)
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0, 1, inclusive=False)

    def test_check_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ValidationError):
            check_same_length("a", [1], "b", [2, 3])


class TestRng:
    def test_as_rng_from_int_deterministic(self):
        assert as_rng(7).integers(1000) == as_rng(7).integers(1000)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_none_fresh(self):
        a, b = as_rng(None), as_rng(None)
        assert a is not b

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(42, 3)
        draws = [g.integers(10**9) for g in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_deterministic(self):
        a = [g.integers(10**9) for g in spawn_rngs(1, 2)]
        b = [g.integers(10**9) for g in spawn_rngs(1, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.measure("x"):
            pass
        with sw.measure("x"):
            pass
        assert sw.counts["x"] == 2
        assert sw.totals["x"] >= 0.0
        assert sw.mean("x") == sw.totals["x"] / 2

    def test_stopwatch_missing_label(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("nope")

    def test_stopwatch_report(self):
        sw = Stopwatch()
        with sw.measure("abc"):
            pass
        assert "abc" in sw.report()

    def test_timed_elapsed(self):
        with timed() as elapsed:
            time.sleep(0.01)
        final = elapsed()
        assert final >= 0.009
        # Frozen after exiting the context.
        time.sleep(0.005)
        assert elapsed() == final
