"""Multipolar subsystem tests: state semantics, fingerprints, the k=2
bit-identity contract across every solver, the k-pole voting generator,
the scalar polarization measures, and the bake-off harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.baselines import (
    bimodality_coefficient,
    disagreement_index,
    opinion_spectrum,
    polarization_index,
)
from repro.analysis.prediction import DistancePredictor
from repro.exceptions import PredictionError, StateError, ValidationError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.laplacian import laplacian_matrix
from repro.multipolar import (
    POLE_NEUTRAL,
    MultipolarSeries,
    MultipolarSND,
    MultipolarState,
)
from repro.opinions.dynamics import generate_series
from repro.opinions.models.multipolar_voting import (
    evolve_multipolar_state,
    generate_multipolar_series,
    seed_multipolar_state,
)
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState
from repro.snd import SND
from repro.snd.fast import SOLVER_CHOICES


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(30, 0.2, seed=3)


# --------------------------------------------------------------------- #
# State semantics
# --------------------------------------------------------------------- #


class TestState:
    def test_validation(self):
        with pytest.raises(StateError):
            MultipolarState([0, 1, 4], n_poles=3)  # pole out of range
        with pytest.raises(StateError):
            MultipolarState([0, -1], n_poles=2)
        with pytest.raises(StateError):
            MultipolarState([0, 1], n_poles=1)  # fewer than two poles
        with pytest.raises(StateError):
            MultipolarState.from_pole_sets(4, [[0], [0]])  # user in two poles

    def test_values_read_only(self):
        s = MultipolarState([1, 0, 2], n_poles=2)
        with pytest.raises(ValueError):
            s.values[0] = 2

    def test_counts_and_histograms(self):
        s = MultipolarState([1, 0, 3, 2, 3], n_poles=3)
        assert s.n_active == 4
        assert s.pole_counts().tolist() == [1, 1, 2]
        assert s.histogram(3).tolist() == [0.0, 0.0, 1.0, 0.0, 1.0]
        assert s.users_with(3).tolist() == [2, 4]

    def test_projection_one_vs_rest(self):
        s = MultipolarState([1, 0, 3, 2], n_poles=3)
        proj = s.polar_projection(1)
        assert isinstance(proj, NetworkState)
        # Pole 1 -> +1; every competing pole -> -1; neutral stays 0.
        assert proj.values.tolist() == [1, 0, -1, -1]
        assert s.polar_projection(1) is proj  # memoised

    def test_bipolar_round_trip(self):
        bip = NetworkState([1, 0, -1, 1])
        multi = MultipolarState.from_bipolar(bip)
        assert multi.values.tolist() == [1, 0, 2, 1]
        assert multi.to_bipolar() == bip
        with pytest.raises(StateError):
            MultipolarState([1, 2, 3], n_poles=3).to_bipolar()

    def test_equality_includes_pole_count(self):
        a = MultipolarState([1, 2, 0], n_poles=2)
        b = MultipolarState([1, 2, 0], n_poles=3)
        assert a != b
        assert a == MultipolarState([1, 2, 0], n_poles=2)


class TestFingerprints:
    """The content-fingerprint contract the cache hierarchy keys on."""

    def test_fingerprint_is_value_bytes(self):
        s = MultipolarState([1, 0, 3, 2], n_poles=3)
        assert s.fingerprint() == s.values.tobytes()

    @given(
        values=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_fingerprint_round_trip(self, values):
        """fingerprint -> frombuffer -> state reconstructs the original
        (stability: equal states <-> equal fingerprints)."""
        state = MultipolarState(values, n_poles=4)
        rebuilt = MultipolarState(
            np.frombuffer(state.fingerprint(), dtype=np.int8), n_poles=4
        )
        assert rebuilt == state
        assert rebuilt.fingerprint() == state.fingerprint()

    def test_mutation_free_operations_keep_fingerprint(self):
        s = MultipolarState([1, 0, 2], n_poles=2)
        before = s.fingerprint()
        s.polar_projection(1)
        s.pole_counts()
        s.histogram(2)
        assert s.fingerprint() == before

    def test_with_opinions_changes_fingerprint_not_original(self):
        s = MultipolarState([1, 0, 2], n_poles=2)
        t = s.with_opinions([1], [2])
        assert s.values.tolist() == [1, 0, 2]
        assert t.values.tolist() == [1, 2, 2]
        assert t.fingerprint() != s.fingerprint()

    def test_k2_fingerprint_matches_projection_semantics(self):
        """k=2 multipolar bytes ({0,1,2}) differ from bipolar bytes
        ({0,1,-1}) for the *same* logical state — the transition cache
        keys them separately, while ground/row/basis caches key on the
        projected bipolar states (shared with the bipolar path)."""
        bip = NetworkState([1, 0, -1])
        multi = MultipolarState.from_bipolar(bip)
        assert multi.fingerprint() != bip.values.tobytes()
        assert multi.polar_projection(1).values.tobytes() == bip.values.tobytes()


# --------------------------------------------------------------------- #
# The k=2 bit-identity contract
# --------------------------------------------------------------------- #


class TestBitIdentity:
    """MultipolarSND at k=2 IS the paper's bipolar SND — bitwise."""

    def bipolar_series(self, graph, length=6, seed=5):
        return generate_series(
            graph, length, n_seeds=8, p_nbr=0.4, p_ext=0.1, seed=seed
        )

    @pytest.mark.parametrize("solver", sorted(SOLVER_CHOICES))
    def test_pairs_bit_identical_across_solvers(self, graph, solver):
        series = self.bipolar_series(graph)
        snd_kwargs = dict(n_clusters=3, seed=0, solver=solver)
        bipolar = SND(graph, **snd_kwargs)
        multi = MultipolarSND(graph, 2, **snd_kwargs)
        for a, b in series.transitions():
            ma, mb = MultipolarState.from_bipolar(a), MultipolarState.from_bipolar(b)
            expected = bipolar.evaluate(a, b)
            got = multi.evaluate(ma, mb)
            assert got.value == expected.value  # bitwise, not approx
            assert got.terms == expected.terms  # every Eq. 3 term too

    @pytest.mark.parametrize("solver", ["ssp", "network-simplex", "auto"])
    def test_series_bit_identical(self, graph, solver):
        series = self.bipolar_series(graph, length=7, seed=9)
        snd_kwargs = dict(n_clusters=3, seed=0, solver=solver)
        expected = SND(graph, **snd_kwargs).evaluate_series(series)
        got = MultipolarSND(graph, 2, **snd_kwargs).evaluate_series(
            MultipolarSeries.from_bipolar(series)
        )
        assert np.array_equal(got, expected)

    def test_term_counters_match_bipolar(self, graph):
        """Counter-assert: the k=2 path runs exactly the bipolar pipeline —
        same supplier/consumer counts and SSSP runs per term, term for
        term."""
        series = self.bipolar_series(graph)
        a, b = series[2], series[3]
        snd_kwargs = dict(n_clusters=3, seed=0, solver="auto")
        expected = SND(graph, **snd_kwargs).evaluate(a, b)
        got = MultipolarSND(graph, 2, **snd_kwargs).evaluate(
            MultipolarState.from_bipolar(a), MultipolarState.from_bipolar(b)
        )
        assert len(got.stats) == len(expected.stats) == 4
        for ours, theirs in zip(got.stats, expected.stats):
            assert ours.n_suppliers == theirs.n_suppliers
            assert ours.n_consumers == theirs.n_consumers
            assert ours.n_sssp_runs == theirs.n_sssp_runs
            assert ours.solver == theirs.solver
            assert ours.cost == theirs.cost  # bitwise per-term cost

    def test_metric_axioms_at_k3(self, graph):
        msnd = MultipolarSND(graph, 3, n_clusters=3, seed=0)
        series = generate_multipolar_series(
            graph, 4, n_poles=3, n_seeds=8, p_nbr=0.4, p_ext=0.1, seed=1
        )
        a, b = series[1], series[2]
        assert msnd.distance(a, a) == 0.0
        assert msnd.distance(a, b) == msnd.distance(b, a)
        assert msnd.distance(a, b) > 0 or a == b

    def test_state_mismatch_rejected(self, graph):
        msnd = MultipolarSND(graph, 3, n_clusters=3, seed=0)
        with pytest.raises(StateError):
            msnd.distance(
                MultipolarState.neutral(graph.num_nodes, n_poles=2),
                MultipolarState.neutral(graph.num_nodes, n_poles=2),
            )
        with pytest.raises(StateError):
            msnd.distance(
                NetworkState.neutral(graph.num_nodes),
                NetworkState.neutral(graph.num_nodes),
            )


# --------------------------------------------------------------------- #
# Voting generator
# --------------------------------------------------------------------- #


class TestGenerator:
    def test_seed_state_splits_poles_evenly(self, graph):
        s = seed_multipolar_state(graph, 9, n_poles=3, seed=0)
        assert s.n_active == 9
        assert s.pole_counts().tolist() == [3, 3, 3]

    def test_evolution_respects_pole_range(self, graph):
        state = seed_multipolar_state(graph, 10, n_poles=4, seed=1)
        for step in range(4):
            state = evolve_multipolar_state(
                graph, state, p_nbr=0.5, p_ext=0.2, seed=step
            )
            assert state.values.min() >= POLE_NEUTRAL
            assert state.values.max() <= 4

    def test_series_labels_and_reproducibility(self, graph):
        kwargs = dict(
            n_poles=3, n_seeds=6, p_nbr=0.3, p_ext=0.05, anomalous={2}, seed=4
        )
        series = generate_multipolar_series(graph, 5, **kwargs)
        again = generate_multipolar_series(graph, 5, **kwargs)
        assert len(series) == 5
        assert series.labels == ["normal", "normal", "anomalous", "normal", "normal"]
        assert all(a == b for a, b in zip(series, again))


# --------------------------------------------------------------------- #
# Scalar polarization measures
# --------------------------------------------------------------------- #


class TestMeasures:
    def test_spectrum_bipolar_pass_through(self):
        s = NetworkState([1, 0, -1])
        assert opinion_spectrum(s).tolist() == [1.0, 0.0, -1.0]

    def test_spectrum_k2_matches_bipolar(self):
        bip = NetworkState([1, 0, -1, 1])
        multi = MultipolarState.from_bipolar(bip)
        assert np.array_equal(opinion_spectrum(multi), opinion_spectrum(bip))

    def test_spectrum_k3_equispaced(self):
        s = MultipolarState([1, 2, 3, 0], n_poles=3)
        assert opinion_spectrum(s).tolist() == [1.0, 0.0, -1.0, 0.0]

    def test_polarization_index_extremes(self):
        split = NetworkState([1, 1, -1, -1])
        consensus = NetworkState([1, 1, 1, 1])
        assert polarization_index(split) > polarization_index(consensus)
        assert polarization_index(consensus) == 0.0

    def test_disagreement_counts_cross_edges(self, graph):
        lap = laplacian_matrix(graph)
        neutral = NetworkState.neutral(graph.num_nodes)
        assert disagreement_index(neutral, lap) == 0.0

    def test_bimodality_degenerate_conventions(self):
        assert bimodality_coefficient(NetworkState([0, 0, 1])) == 0.0  # <2 active
        assert bimodality_coefficient(NetworkState([1, 1, 1])) == 0.0  # zero var
        two_camps = NetworkState([1, 1, -1, -1])
        assert bimodality_coefficient(two_camps) > 0.5

    def test_registry_exposes_baselines(self, graph):
        from repro.distances import DistanceContext, default_registry

        registry = default_registry()
        context = DistanceContext(graph=graph)
        a = NetworkState.from_active_sets(graph.num_nodes, positive=[0, 1])
        b = NetworkState.from_active_sets(graph.num_nodes, positive=[0], negative=[1])
        for name in ("esp", "disagreement", "bimodality"):
            assert registry.compute(name, a, a, context) == 0.0
            assert registry.compute(name, a, b, context) >= 0.0


# --------------------------------------------------------------------- #
# Prediction over the k-pole alphabet
# --------------------------------------------------------------------- #


class TestMultipolarPrediction:
    def test_alphabet_validation(self):
        with pytest.raises(PredictionError):
            DistancePredictor(lambda a, b: 0.0, opinion_values=[1])

    def test_predicts_over_poles(self, graph):
        series = generate_multipolar_series(
            graph, 5, n_poles=3, n_seeds=9, p_nbr=0.5, p_ext=0.15, seed=2
        )
        msnd = MultipolarSND(graph, 3, n_clusters=3, seed=0)
        predictor = DistancePredictor(
            msnd.distance, n_assignments=8, opinion_values=[1, 2, 3]
        )
        mean, std = predictor.evaluate(
            series, n_targets=3, window=3, n_repeats=2, seed=0
        )
        assert 0.0 <= mean <= 100.0
        assert std >= 0.0

    def test_bipolar_path_unchanged(self, graph):
        """opinion_values=None keeps the paper's ±1 sampling byte-for-byte
        (same RNG draws, same targets)."""
        series = generate_series(graph, 5, n_seeds=8, p_nbr=0.5, p_ext=0.1, seed=3)
        fn = lambda a, b: float(np.count_nonzero(a.values != b.values))
        default = DistancePredictor(fn, n_assignments=8)
        explicit = DistancePredictor(
            fn, n_assignments=8, opinion_values=[POSITIVE, NEGATIVE]
        )
        m1, s1 = default.evaluate(series, n_targets=4, window=3, n_repeats=2, seed=0)
        m2, s2 = explicit.evaluate(series, n_targets=4, window=3, n_repeats=2, seed=0)
        # Both protocols are valid samplers; they need not agree draw for
        # draw, but the default path must behave exactly as before the
        # alphabet generalisation (regression-guarded by the wider suite)
        # and both must return sane accuracies.
        for m, s in ((m1, s1), (m2, s2)):
            assert 0.0 <= m <= 100.0
            assert s >= 0.0


# --------------------------------------------------------------------- #
# Bake-off harness (quick smoke)
# --------------------------------------------------------------------- #


class TestBakeoff:
    def test_unknown_measure_rejected(self, graph):
        from repro.analysis.bakeoff import measure_distance_fn

        with pytest.raises(ValidationError):
            measure_distance_fn("no-such-measure", graph, 2)

    def test_run_bakeoff_structure(self):
        from repro.analysis.bakeoff import default_regimes, run_bakeoff

        regimes = default_regimes(n_nodes=120, n_states=8)
        results = run_bakeoff(
            measures=["snd", "esp", "hamming"],
            regimes=regimes,
            include_twitter=False,
            n_targets=4,
            window=3,
            n_repeats=1,
            n_assignments=6,
        )
        assert results["measures"] == ["snd", "esp", "hamming"]
        assert set(results["regimes"]) == {"bipolar-burst", "tripolar-drift"}
        for entry in results["regimes"].values():
            assert entry["n_anomalous_transitions"] >= 1
            for measure in results["measures"]:
                assert 0.0 <= entry["anomaly"][measure]["auc"] <= 1.0
                assert 0.0 <= entry["prediction"][measure]["accuracy_mean"] <= 100.0
        import json

        json.dumps(results)  # the whole tree must be JSON-serialisable
