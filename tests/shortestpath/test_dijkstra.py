"""Dijkstra correctness: hand cases, networkx oracle, engine/heap agreement."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.heaps import HEAP_KINDS
from repro.shortestpath.dijkstra import dijkstra, dijkstra_multi, multi_source_distances


class TestHandCases:
    def test_line(self, line_graph):
        assert dijkstra(line_graph, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable_is_inf(self, line_graph):
        dist = dijkstra(line_graph, 2)
        assert dist[0] == np.inf and dist[1] == np.inf
        assert dist[3] == 1

    def test_weighted_diamond(self, diamond_graph):
        # 0->1 (1), 0->2 (2), 1->3 (5), 2->3 (1): best path to 3 costs 3.
        dist = dijkstra(diamond_graph, 0)
        assert dist.tolist() == [0, 1, 2, 3]

    def test_weight_override(self, diamond_graph):
        w = np.array([1.0, 10.0, 1.0, 1.0])  # make the 0->2 route expensive
        dist = dijkstra(diamond_graph, 0, weights=w)
        assert dist[3] == 2  # via 1 now

    def test_source_out_of_range(self, line_graph):
        with pytest.raises(ValidationError):
            dijkstra(line_graph, 9)

    def test_negative_weights_rejected(self):
        g = DiGraph(2, [(0, 1)], weights=[-1.0])
        with pytest.raises(ValidationError):
            dijkstra(g, 0)

    def test_targets_early_exit_correct(self, diamond_graph):
        dist = dijkstra(diamond_graph, 0, targets=np.array([1]))
        assert dist[1] == 1.0


class TestMultiSource:
    def test_min_over_sources(self, line_graph):
        dist = dijkstra_multi(line_graph, [0, 3])
        assert dist.tolist() == [0, 1, 2, 0]

    def test_empty_sources(self, line_graph):
        dist = dijkstra_multi(line_graph, [])
        assert np.all(np.isinf(dist))


@pytest.mark.parametrize("heap", HEAP_KINDS)
class TestHeapVariants:
    def test_all_heaps_agree(self, heap, rng):
        g = erdos_renyi_graph(40, 0.15, seed=2, directed=True)
        w = np.maximum(1, np.round(rng.uniform(1, 9, g.num_edges)))
        base = dijkstra(g, 0, weights=w, heap="binary")
        assert np.allclose(dijkstra(g, 0, weights=w, heap=heap), base)

    def test_radix_requires_integers(self, heap):
        if heap != "radix":
            pytest.skip("radix-specific")
        g = DiGraph(2, [(0, 1)], weights=[1.5])
        with pytest.raises(ValidationError):
            dijkstra(g, 0, heap="radix")


class TestNetworkxOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_weighted_digraphs(self, seed):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(seed)
        g = erdos_renyi_graph(35, 0.12, seed=seed, directed=True)
        w = rng.integers(1, 20, g.num_edges).astype(np.float64)
        g = g.with_weights(w)
        ours = dijkstra(g, 0)
        theirs = nx.single_source_dijkstra_path_length(g.to_networkx(), 0)
        for v in range(g.num_nodes):
            expected = theirs.get(v, np.inf)
            assert ours[v] == pytest.approx(expected)


class TestEngines:
    @pytest.mark.parametrize("reverse", [False, True])
    def test_scipy_and_python_agree(self, rng, reverse):
        g = erdos_renyi_graph(30, 0.15, seed=5, directed=True)
        w = rng.integers(1, 9, g.num_edges).astype(np.float64)
        sources = np.array([0, 3, 7])
        a = multi_source_distances(g, sources, weights=w, engine="scipy", reverse=reverse)
        b = multi_source_distances(g, sources, weights=w, engine="python", reverse=reverse)
        assert a.shape == (3, 30)
        assert np.allclose(a, b)

    def test_reverse_semantics(self, line_graph):
        rows = multi_source_distances(line_graph, [3], engine="python", reverse=True)
        assert rows[0].tolist() == [3, 2, 1, 0]

    def test_unknown_engine(self, line_graph):
        with pytest.raises(ValidationError):
            multi_source_distances(line_graph, [0], engine="matlab")

    def test_empty_sources_matrix(self, line_graph):
        rows = multi_source_distances(line_graph, np.array([], dtype=np.int64))
        assert rows.shape == (0, 4)
