"""Bellman-Ford and Johnson all-pairs tests."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.johnson import johnson_all_pairs


class TestBellmanFord:
    def test_matches_dijkstra_on_nonnegative(self, rng):
        g = erdos_renyi_graph(30, 0.15, seed=0, directed=True)
        w = rng.integers(1, 10, g.num_edges).astype(float)
        assert np.allclose(bellman_ford(g, 0, weights=w), dijkstra(g, 0, weights=w))

    def test_negative_edges(self):
        g = DiGraph(3, [(0, 1), (1, 2), (0, 2)], weights=[4.0, -2.0, 3.0])
        dist = bellman_ford(g, 0)
        assert dist.tolist() == [0, 4, 2]

    def test_negative_cycle_detected(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)], weights=[1.0, -3.0, 1.0])
        with pytest.raises(GraphError):
            bellman_ford(g, 0)

    def test_unreachable_negative_cycle_ignored(self):
        g = DiGraph(4, [(0, 1), (2, 3), (3, 2)], weights=[1.0, -2.0, -2.0])
        dist = bellman_ford(g, 0)
        assert dist[1] == 1.0


class TestJohnson:
    def test_matches_per_source_dijkstra(self, rng):
        g = erdos_renyi_graph(20, 0.2, seed=3, directed=True)
        w = rng.integers(1, 8, g.num_edges).astype(float)
        ap = johnson_all_pairs(g, weights=w)
        for s in (0, 5, 13):
            assert np.allclose(ap[s], dijkstra(g, s, weights=w))

    def test_negative_edges_match_networkx(self):
        nx = pytest.importorskip("networkx")
        g = DiGraph(
            4,
            [(0, 1), (1, 2), (0, 2), (2, 3)],
            weights=[2.0, -1.0, 4.0, 1.0],
        )
        ours = johnson_all_pairs(g)
        paths = dict(nx.johnson(g.to_networkx(), weight="weight"))
        nxg = g.to_networkx()
        for s in range(4):
            for t in range(4):
                if t in paths.get(s, {}):
                    expected = nx.path_weight(nxg, paths[s][t], "weight")
                    assert ours[s, t] == pytest.approx(expected)
                else:
                    assert ours[s, t] == np.inf

    def test_diagonal_zero(self):
        g = erdos_renyi_graph(12, 0.3, seed=4)
        ap = johnson_all_pairs(g)
        assert np.allclose(np.diag(ap), 0.0)

    def test_empty_graph(self):
        assert johnson_all_pairs(DiGraph(0)).shape == (0, 0)
