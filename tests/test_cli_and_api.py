"""CLI smoke tests and public-API surface checks."""

import subprocess
import sys

import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_flow(self):
        """The README/docstring quickstart must actually run."""
        from repro import SND, NetworkState
        from repro.graph import powerlaw_configuration_graph

        graph = powerlaw_configuration_graph(200, -2.3, k_min=2, seed=0)
        snd = SND(graph, seed=0)
        a = NetworkState.from_active_sets(200, positive=[1, 2], negative=[3])
        b = NetworkState.from_active_sets(200, positive=[1, 5], negative=[3])
        assert snd.distance(a, b) > 0


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--nodes", "100"])
        assert args.command == "generate"
        assert args.nodes == 100

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_and_distance_roundtrip(self, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        rc = main(
            [
                "generate",
                "--nodes", "120",
                "--states", "4",
                "--seeds", "15",
                "--seed", "3",
                "--store", store_path,
                "--name", "t",
            ]
        )
        assert rc == 0
        rc = main(
            ["distance", "--store", store_path, "--name", "t", "--measure", "hamming"]
        )
        assert rc == 0

    def test_snd_distance_command(self, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        main(
            [
                "generate",
                "--nodes", "80",
                "--states", "3",
                "--seeds", "10",
                "--store", store_path,
                "--name", "t",
            ]
        )
        rc = main(
            [
                "distance",
                "--store", store_path,
                "--name", "t",
                "--measure", "snd",
                "--clusters", "2",
            ]
        )
        assert rc == 0

    def test_measure_choices_derived_from_registry(self):
        from repro.distances import default_registry

        parser = build_parser()
        for measure in default_registry().names():
            args = parser.parse_args(["distance", "--measure", measure])
            assert args.measure == measure

    def test_distance_matrix_command(self, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        main(
            [
                "generate",
                "--nodes", "80",
                "--states", "3",
                "--seeds", "10",
                "--store", store_path,
                "--name", "t",
            ]
        )
        rc = main(
            [
                "distance-matrix",
                "--store", store_path,
                "--name", "t",
                "--measure", "snd",
                "--clusters", "2",
                "--jobs", "2",
            ]
        )
        assert rc == 0

    def test_distance_matrix_output_file(self, tmp_path):
        import numpy as np

        store_path = str(tmp_path / "exp.sqlite")
        out_path = str(tmp_path / "matrix.npy")
        main(
            [
                "generate",
                "--nodes", "60",
                "--states", "3",
                "--seeds", "8",
                "--store", store_path,
                "--name", "t",
            ]
        )
        rc = main(
            [
                "distance-matrix",
                "--store", store_path,
                "--name", "t",
                "--measure", "hamming",
                "--output", out_path,
            ]
        )
        assert rc == 0
        matrix = np.load(out_path)
        assert matrix.shape == (3, 3)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--version"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert repro.__version__ in result.stdout


class TestEngineCli:
    @pytest.fixture
    def seeded_store(self, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        rc = main(
            [
                "generate",
                "--nodes", "60",
                "--states", "5",
                "--seeds", "8",
                "--store", store_path,
                "--name", "t",
            ]
        )
        assert rc == 0
        return store_path

    def test_distance_save_persists_rows(self, seeded_store):
        rc = main(
            [
                "distance",
                "--store", seeded_store,
                "--name", "t",
                "--measure", "snd",
                "--clusters", "2",
                "--save",
                "--cache-stats",
            ]
        )
        assert rc == 0
        from repro.store import ExperimentStore

        with ExperimentStore(seeded_store) as store:
            sid = store.series_id("t", "series")
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM distance_runs WHERE series_id = ?", (sid,)
            ).fetchone()
        assert rows[0] == 4  # 5 states -> 4 transitions

    def test_distance_matrix_save_creates_corpus(self, seeded_store):
        rc = main(
            [
                "distance-matrix",
                "--store", seeded_store,
                "--name", "t",
                "--measure", "snd",
                "--clusters", "2",
                "--save", "mat",
            ]
        )
        assert rc == 0
        from repro.store import ExperimentStore

        with ExperimentStore(seeded_store) as store:
            states, matrix = store.load_corpus("t", "mat")
        assert matrix.shape == (5, 5)
        assert len(states) == 5

    def test_watch_command(self, seeded_store, capsys):
        rc = main(
            [
                "watch",
                "--store", seeded_store,
                "--name", "t",
                "--clusters", "2",
                "--window", "3",
                "--cache-stats",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "transitions solved" in out
        assert "cache stats" in out

    def test_corpus_lifecycle(self, seeded_store, capsys):
        rc = main(
            [
                "corpus", "build",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
                "--first", "3",
            ]
        )
        assert rc == 0
        rc = main(
            [
                "corpus", "extend",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
                "--take", "2",
            ]
        )
        assert rc == 0
        assert "solved" in capsys.readouterr().out
        rc = main(
            [
                "corpus", "query",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
                "--state", "0",
                "-k", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "nearest corpus members" in out

    def test_corpus_extend_exhausted_series(self, seeded_store, capsys):
        main(
            [
                "corpus", "build",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
            ]
        )
        rc = main(
            [
                "corpus", "extend",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
            ]
        )
        assert rc == 0
        assert "nothing to extend" in capsys.readouterr().out

    def test_corpus_query_bad_state(self, seeded_store):
        main(
            [
                "corpus", "build",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
            ]
        )
        rc = main(
            [
                "corpus", "query",
                "--store", seeded_store,
                "--name", "t",
                "--corpus", "c",
                "--clusters", "2",
                "--state", "99",
            ]
        )
        assert rc == 1

    def test_corpus_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus"])

    def test_watch_jobs_zero_is_serial(self, seeded_store, capsys):
        # --jobs 0 documents "serial"; it must not be coerced to auto.
        rc = main(
            [
                "watch",
                "--store", seeded_store,
                "--name", "t",
                "--clusters", "2",
                "--jobs", "0",
            ]
        )
        assert rc == 0
        assert "transitions solved" in capsys.readouterr().out
