"""Tests for the SQLite experiment store."""

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState, StateSeries
from repro.store import ExperimentStore


@pytest.fixture
def store():
    with ExperimentStore(":memory:") as s:
        yield s


@pytest.fixture
def graph():
    return erdos_renyi_graph(20, 0.2, seed=0)


class TestGraphs:
    def test_roundtrip(self, store, graph):
        store.save_graph("g", graph)
        assert store.load_graph("g") == graph

    def test_missing_graph(self, store):
        with pytest.raises(StoreError):
            store.load_graph("nope")

    def test_replace(self, store, graph):
        store.save_graph("g", graph)
        other = erdos_renyi_graph(10, 0.3, seed=1)
        store.save_graph("g", other)
        assert store.load_graph("g") == other

    def test_list(self, store, graph):
        store.save_graph("a", graph)
        store.save_graph("b", graph)
        names = [name for name, *_ in store.list_graphs()]
        assert names == ["a", "b"]


class TestSeries:
    def test_roundtrip_with_labels(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries(
            [NetworkState.neutral(20), NetworkState.from_active_sets(20, positive=[1])],
            labels=["normal", "anomalous"],
        )
        store.save_series("g", "s", series)
        back = store.load_series("g", "s")
        assert len(back) == 2
        assert back.labels == ["normal", "anomalous"]
        assert back[1] == series[1]

    def test_roundtrip_without_labels(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20)])
        store.save_series("g", "s", series)
        assert store.load_series("g", "s").labels is None

    def test_series_requires_graph(self, store):
        series = StateSeries([NetworkState.neutral(5)])
        with pytest.raises(StoreError):
            store.save_series("missing", "s", series)

    def test_missing_series(self, store, graph):
        store.save_graph("g", graph)
        with pytest.raises(StoreError):
            store.load_series("g", "nope")


class TestResults:
    def test_record_and_query(self, store):
        store.record_result("fig8", "tpr_at_0.3", 0.83, params={"measure": "snd"})
        store.record_result("fig8", "tpr_at_0.3", 0.40, params={"measure": "hamming"})
        rows = store.results("fig8")
        assert len(rows) == 2
        metric, params, value = rows[0]
        assert metric == "tpr_at_0.3"
        assert params == {"measure": "snd"}
        assert value == 0.83

    def test_distance_rows(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20), NetworkState.neutral(20)])
        sid = store.save_series("g", "s", series)
        store.record_distance(sid, "snd", 0, 1, 3.5, elapsed_s=0.01)
        # No exception and queryable through raw connection:
        rows = store._conn.execute(
            "SELECT measure, value FROM distance_runs WHERE series_id = ?", (sid,)
        ).fetchall()
        assert rows == [("snd", 3.5)]

    def test_file_persistence(self, tmp_path, graph):
        path = tmp_path / "exp.sqlite"
        with ExperimentStore(path) as store:
            store.save_graph("g", graph)
        with ExperimentStore(path) as store:
            assert store.load_graph("g") == graph


class TestLabelRoundtrip:
    def test_long_labels_not_truncated(self, store, graph):
        # dtype="U64" used to clip labels beyond 64 characters on save.
        long_label = "quarter-" + "x" * 100
        store.save_graph("g", graph)
        series = StateSeries(
            [NetworkState.neutral(20), NetworkState.neutral(20)],
            labels=[long_label, "short"],
        )
        store.save_series("g", "s", series)
        back = store.load_series("g", "s")
        assert back.labels == [long_label, "short"]
        assert len(back.labels[0]) == len(long_label)

    def test_series_id(self, store, graph):
        store.save_graph("g", graph)
        sid = store.save_series("g", "s", StateSeries([NetworkState.neutral(20)]))
        assert store.series_id("g", "s") == sid
        with pytest.raises(StoreError):
            store.series_id("g", "nope")


class TestCorpora:
    def test_roundtrip(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries(
            [NetworkState.neutral(20), NetworkState.from_active_sets(20, positive=[3])]
        )
        matrix = np.array([[0.0, 1.5], [1.5, 0.0]])
        store.save_corpus("g", "c", series, matrix)
        states, back = store.load_corpus("g", "c")
        assert np.array_equal(back, matrix)
        assert len(states) == 2 and states[1] == series[1]

    def test_replace(self, store, graph):
        store.save_graph("g", graph)
        one = StateSeries([NetworkState.neutral(20)])
        store.save_corpus("g", "c", one, np.zeros((1, 1)))
        two = StateSeries([NetworkState.neutral(20), NetworkState.neutral(20)])
        store.save_corpus("g", "c", two, np.zeros((2, 2)))
        states, matrix = store.load_corpus("g", "c")
        assert len(states) == 2 and matrix.shape == (2, 2)

    def test_shape_mismatch_rejected(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20)])
        with pytest.raises(StoreError):
            store.save_corpus("g", "c", series, np.zeros((2, 2)))

    def test_requires_graph(self, store):
        series = StateSeries([NetworkState.neutral(5)])
        with pytest.raises(StoreError):
            store.save_corpus("missing", "c", series, np.zeros((1, 1)))

    def test_missing_corpus(self, store, graph):
        store.save_graph("g", graph)
        with pytest.raises(StoreError):
            store.load_corpus("g", "nope")

    def test_list_corpora(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20)])
        store.save_corpus("g", "b", series, np.zeros((1, 1)))
        store.save_corpus("g", "a", series, np.zeros((1, 1)))
        assert store.list_corpora() == [("g", "a", 1), ("g", "b", 1)]
        assert store.list_corpora("other") == []


class TestMigration:
    V1_DDL = """
    CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
    CREATE TABLE graphs (
        id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL UNIQUE,
        n_nodes INTEGER NOT NULL, n_edges INTEGER NOT NULL, blob BLOB NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    );
    CREATE TABLE state_series (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        graph_id INTEGER NOT NULL REFERENCES graphs(id) ON DELETE CASCADE,
        name TEXT NOT NULL, n_states INTEGER NOT NULL, blob BLOB NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now')),
        UNIQUE (graph_id, name)
    );
    CREATE TABLE distance_runs (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        series_id INTEGER REFERENCES state_series(id) ON DELETE CASCADE,
        measure TEXT NOT NULL, t_from INTEGER NOT NULL, t_to INTEGER NOT NULL,
        value REAL NOT NULL, elapsed_s REAL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    );
    CREATE TABLE experiment_results (
        id INTEGER PRIMARY KEY AUTOINCREMENT, experiment TEXT NOT NULL,
        metric TEXT NOT NULL, params TEXT NOT NULL DEFAULT '{}',
        value REAL NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    );
    INSERT INTO meta (key, value) VALUES ('schema_version', '1');
    """

    def test_v1_database_upgrades_in_place(self, tmp_path, graph):
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(self.V1_DDL)
        conn.commit()
        conn.close()
        with ExperimentStore(path) as store:
            assert store.schema_version == 3
            # The v2 table exists and is usable.
            store.save_graph("g", graph)
            series = StateSeries([NetworkState.neutral(20)])
            store.save_corpus("g", "c", series, np.zeros((1, 1)))
            assert store.list_corpora() == [("g", "c", 1)]

    def test_newer_schema_rejected(self, tmp_path):
        import sqlite3

        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);"
            "INSERT INTO meta (key, value) VALUES ('schema_version', '99');"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError):
            ExperimentStore(path)

    def test_fresh_database_lands_on_current_version(self, store):
        assert store.schema_version == 3


class TestTransitionCachePersistence:
    """The v3 transition_cache table: upsert semantics, ordering, and
    cascade deletion with the owning graph."""

    def test_round_trip(self, store, graph):
        store.save_graph("g", graph)
        rows = [(b"ka1", b"kb1", 0.25), (b"ka2", b"kb2", 1.5)]
        assert store.save_transitions("g", rows) == 2
        assert store.count_transitions("g") == 2
        loaded = store.load_transitions("g")
        assert sorted(loaded) == sorted(rows)
        assert all(isinstance(a, bytes) and isinstance(b, bytes)
                   for a, b, _v in loaded)

    def test_upsert_overwrites_value(self, store, graph):
        store.save_graph("g", graph)
        store.save_transitions("g", [(b"a", b"b", 1.0)])
        store.save_transitions("g", [(b"a", b"b", 2.0)])
        assert store.count_transitions("g") == 1
        assert store.load_transitions("g")[0][2] == 2.0

    def test_empty_rows_noop(self, store, graph):
        store.save_graph("g", graph)
        assert store.save_transitions("g", []) == 0
        assert store.load_transitions("g") == []

    def test_unknown_graph_rejected(self, store):
        with pytest.raises(StoreError):
            store.save_transitions("missing", [(b"a", b"b", 1.0)])
        with pytest.raises(StoreError):
            store.load_transitions("missing")

    def test_per_graph_isolation(self, store, graph):
        store.save_graph("g1", graph)
        store.save_graph("g2", graph)
        store.save_transitions("g1", [(b"a", b"b", 1.0)])
        assert store.load_transitions("g2") == []

    def test_v2_database_gains_transition_table(self, tmp_path, graph):
        """A pre-v3 store (no transition_cache table) upgrades in place
        on open and immediately accepts spills."""
        import sqlite3

        path = tmp_path / "v2.sqlite"
        with ExperimentStore(path) as store:
            store.save_graph("g", graph)
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE transition_cache")
        conn.execute(
            "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with ExperimentStore(path) as store:
            assert store.schema_version == 3
            store.save_transitions("g", [(b"a", b"b", 0.5)])
            assert store.count_transitions("g") == 1
