"""Tests for the SQLite experiment store."""

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState, StateSeries
from repro.store import ExperimentStore


@pytest.fixture
def store():
    with ExperimentStore(":memory:") as s:
        yield s


@pytest.fixture
def graph():
    return erdos_renyi_graph(20, 0.2, seed=0)


class TestGraphs:
    def test_roundtrip(self, store, graph):
        store.save_graph("g", graph)
        assert store.load_graph("g") == graph

    def test_missing_graph(self, store):
        with pytest.raises(StoreError):
            store.load_graph("nope")

    def test_replace(self, store, graph):
        store.save_graph("g", graph)
        other = erdos_renyi_graph(10, 0.3, seed=1)
        store.save_graph("g", other)
        assert store.load_graph("g") == other

    def test_list(self, store, graph):
        store.save_graph("a", graph)
        store.save_graph("b", graph)
        names = [name for name, *_ in store.list_graphs()]
        assert names == ["a", "b"]


class TestSeries:
    def test_roundtrip_with_labels(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries(
            [NetworkState.neutral(20), NetworkState.from_active_sets(20, positive=[1])],
            labels=["normal", "anomalous"],
        )
        store.save_series("g", "s", series)
        back = store.load_series("g", "s")
        assert len(back) == 2
        assert back.labels == ["normal", "anomalous"]
        assert back[1] == series[1]

    def test_roundtrip_without_labels(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20)])
        store.save_series("g", "s", series)
        assert store.load_series("g", "s").labels is None

    def test_series_requires_graph(self, store):
        series = StateSeries([NetworkState.neutral(5)])
        with pytest.raises(StoreError):
            store.save_series("missing", "s", series)

    def test_missing_series(self, store, graph):
        store.save_graph("g", graph)
        with pytest.raises(StoreError):
            store.load_series("g", "nope")


class TestResults:
    def test_record_and_query(self, store):
        store.record_result("fig8", "tpr_at_0.3", 0.83, params={"measure": "snd"})
        store.record_result("fig8", "tpr_at_0.3", 0.40, params={"measure": "hamming"})
        rows = store.results("fig8")
        assert len(rows) == 2
        metric, params, value = rows[0]
        assert metric == "tpr_at_0.3"
        assert params == {"measure": "snd"}
        assert value == 0.83

    def test_distance_rows(self, store, graph):
        store.save_graph("g", graph)
        series = StateSeries([NetworkState.neutral(20), NetworkState.neutral(20)])
        sid = store.save_series("g", "s", series)
        store.record_distance(sid, "snd", 0, 1, 3.5, elapsed_s=0.01)
        # No exception and queryable through raw connection:
        rows = store._conn.execute(
            "SELECT measure, value FROM distance_runs WHERE series_id = ?", (sid,)
        ).fetchall()
        assert rows == [("snd", 3.5)]

    def test_file_persistence(self, tmp_path, graph):
        path = tmp_path / "exp.sqlite"
        with ExperimentStore(path) as store:
            store.save_graph("g", graph)
        with ExperimentStore(path) as store:
            assert store.load_graph("g") == graph
