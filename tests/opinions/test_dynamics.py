"""Tests for the §6.1 synthetic evolution process."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.opinions.dynamics import (
    evolve_state,
    generate_series,
    random_transition,
    seed_state,
)
from repro.opinions.state import NetworkState


class TestSeedState:
    def test_counts_and_balance(self):
        g = erdos_renyi_graph(100, 0.05, seed=0)
        state = seed_state(g, 40, seed=1)
        assert state.n_active == 40
        assert abs(state.n_positive - 20) <= 1

    def test_unbalanced_seeding(self):
        g = erdos_renyi_graph(50, 0.05, seed=0)
        state = seed_state(g, 10, balance=1.0, seed=1)
        assert state.n_positive == 10
        assert state.n_negative == 0

    def test_too_many_adopters(self):
        g = star_graph(3)
        with pytest.raises(ModelError):
            seed_state(g, 10)

    def test_deterministic(self):
        g = erdos_renyi_graph(60, 0.1, seed=2)
        assert seed_state(g, 20, seed=3) == seed_state(g, 20, seed=3)


class TestEvolveState:
    def test_active_users_never_change(self):
        g = erdos_renyi_graph(80, 0.1, seed=1)
        state = seed_state(g, 30, seed=0)
        out = evolve_state(g, state, p_nbr=0.5, p_ext=0.3, seed=2)
        active = state.active_users()
        assert np.array_equal(out.values[active], state.values[active])

    def test_activation_monotone(self):
        g = erdos_renyi_graph(80, 0.1, seed=1)
        state = seed_state(g, 20, seed=0)
        out = evolve_state(g, state, p_nbr=0.3, p_ext=0.1, seed=2)
        assert out.n_active >= state.n_active

    def test_zero_probabilities_noop(self):
        g = erdos_renyi_graph(40, 0.1, seed=1)
        state = seed_state(g, 10, seed=0)
        assert evolve_state(g, state, p_nbr=0.0, p_ext=0.0, seed=2) == state

    def test_probability_sum_checked(self):
        g = star_graph(4)
        state = NetworkState.neutral(4)
        with pytest.raises(ModelError):
            evolve_state(g, state, p_nbr=0.7, p_ext=0.6)

    def test_neighbor_adoption_follows_neighborhood(self):
        # Hub with "+" opinion influencing all leaves: with p_ext = 0,
        # any activated leaf must be "+".
        g = star_graph(30)
        state = NetworkState.from_active_sets(30, positive=[0])
        out = evolve_state(g, state, p_nbr=1.0, p_ext=0.0, seed=3)
        new = np.setdiff1d(out.active_users(), state.active_users())
        assert new.size > 0
        assert np.all(out.values[new] == 1)

    def test_no_active_neighbors_stays_neutral(self):
        # Leaves influence the hub; leaves have no in-neighbors.
        g = star_graph(10, center_out=False)
        state = NetworkState.from_active_sets(10, positive=[0])  # hub active
        out = evolve_state(g, state, p_nbr=1.0, p_ext=0.0, seed=4)
        assert out == state  # hub's opinion cannot reach the leaves

    def test_external_adoption_ignores_structure(self):
        g = star_graph(10, center_out=False)
        state = NetworkState.neutral(10)
        out = evolve_state(g, state, p_nbr=0.0, p_ext=1.0, seed=5)
        assert out.n_active == 10

    def test_candidate_fraction_limits_volume(self):
        g = erdos_renyi_graph(200, 0.05, seed=1)
        state = NetworkState.neutral(200)
        out = evolve_state(
            g, state, p_nbr=0.0, p_ext=1.0, candidate_fraction=0.1, seed=6
        )
        assert out.n_active == 20


class TestGenerateSeries:
    def test_length_and_labels(self):
        g = erdos_renyi_graph(60, 0.1, seed=1)
        series = generate_series(
            g, 6, n_seeds=10, p_nbr=0.2, p_ext=0.05, anomalous={3}, seed=0
        )
        assert len(series) == 6
        assert series.labels[3] == "anomalous"
        assert series.labels[1] == "normal"

    def test_anomalous_defaults_preserve_sum(self):
        g = erdos_renyi_graph(40, 0.1, seed=1)
        series = generate_series(
            g, 4, n_seeds=5, p_nbr=0.12, p_ext=0.01, anomalous={2}, seed=0
        )
        assert len(series) == 4  # defaults computed without error

    def test_deterministic(self):
        g = erdos_renyi_graph(50, 0.1, seed=2)
        a = generate_series(g, 5, n_seeds=8, p_nbr=0.2, p_ext=0.02, seed=9)
        b = generate_series(g, 5, n_seeds=8, p_nbr=0.2, p_ext=0.02, seed=9)
        assert all(x == y for x, y in zip(a, b))


class TestRandomTransition:
    def test_exact_activation_count(self):
        g = erdos_renyi_graph(50, 0.1, seed=0)
        state = seed_state(g, 10, seed=1)
        out = random_transition(g, state, 15, seed=2)
        assert out.n_active == 25

    def test_caps_at_available_neutral(self):
        g = star_graph(5)
        state = NetworkState([1, 1, 1, 1, 0])
        out = random_transition(g, state, 10, seed=0)
        assert out.n_active == 5

    def test_preserves_existing(self):
        g = erdos_renyi_graph(30, 0.1, seed=0)
        state = seed_state(g, 10, seed=1)
        out = random_transition(g, state, 5, seed=3)
        active = state.active_users()
        assert np.array_equal(out.values[active], state.values[active])
