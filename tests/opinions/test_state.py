"""Tests for NetworkState and StateSeries."""

import numpy as np
import pytest

from repro.exceptions import StateError
from repro.opinions.state import NEGATIVE, NEUTRAL, POSITIVE, NetworkState, StateSeries


class TestConstruction:
    def test_valid_values(self):
        s = NetworkState([1, 0, -1, 0])
        assert s.n == 4
        assert s[0] == POSITIVE and s[2] == NEGATIVE and s[1] == NEUTRAL

    def test_invalid_value_rejected(self):
        with pytest.raises(StateError):
            NetworkState([0, 2, 0])

    def test_matrix_rejected(self):
        with pytest.raises(StateError):
            NetworkState(np.zeros((2, 2)))

    def test_neutral_factory(self):
        s = NetworkState.neutral(5)
        assert s.n == 5
        assert s.n_active == 0

    def test_from_active_sets(self):
        s = NetworkState.from_active_sets(6, positive=[0, 2], negative=[5])
        assert s.users_with(POSITIVE).tolist() == [0, 2]
        assert s.users_with(NEGATIVE).tolist() == [5]

    def test_from_active_sets_conflict(self):
        with pytest.raises(StateError):
            NetworkState.from_active_sets(4, positive=[1], negative=[1])

    def test_immutability(self):
        s = NetworkState([1, 0])
        with pytest.raises(ValueError):
            s.values[0] = -1


class TestCountsAndHistograms:
    def test_counts(self, tri_state):
        assert tri_state.n_positive == 2
        assert tri_state.n_negative == 2
        assert tri_state.n_active == 4

    def test_active_users(self, tri_state):
        assert tri_state.active_users().tolist() == [0, 1, 3, 5]

    def test_positive_histogram_treats_negative_as_neutral(self, tri_state):
        h = tri_state.positive_histogram()
        assert h.sum() == 2
        assert h[0] == 1.0 and h[1] == 0.0  # user 1 is negative

    def test_negative_histogram(self, tri_state):
        h = tri_state.negative_histogram()
        assert h.sum() == 2
        assert h[1] == 1.0 and h[5] == 1.0

    def test_histogram_dispatch(self, tri_state):
        assert np.array_equal(tri_state.histogram(1), tri_state.positive_histogram())
        assert np.array_equal(tri_state.histogram(-1), tri_state.negative_histogram())
        with pytest.raises(StateError):
            tri_state.histogram(0)


class TestComparisonModification:
    def test_changed_users(self):
        a = NetworkState([1, 0, -1])
        b = NetworkState([1, 1, 0])
        assert a.changed_users(b).tolist() == [1, 2]
        assert a.n_delta(b) == 2

    def test_changed_users_length_mismatch(self):
        with pytest.raises(StateError):
            NetworkState([1]).changed_users(NetworkState([1, 0]))

    def test_with_opinions_returns_new(self):
        a = NetworkState([0, 0, 0])
        b = a.with_opinions([1], 1)
        assert a.n_active == 0
        assert b[1] == 1

    def test_with_neutralized(self, tri_state):
        hidden = tri_state.with_neutralized([0, 1])
        assert hidden[0] == 0 and hidden[1] == 0
        assert hidden.n_active == tri_state.n_active - 2

    def test_equality_and_hash(self):
        a = NetworkState([1, 0])
        b = NetworkState([1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != NetworkState([0, 1])


class TestStateSeries:
    def make_series(self, rng, t=4, n=5):
        return StateSeries(
            [NetworkState(rng.choice([-1, 0, 1], n)) for _ in range(t)]
        )

    def test_length_and_iteration(self, rng):
        series = self.make_series(rng, 4)
        assert len(series) == 4
        assert sum(1 for _ in series) == 4

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(StateError):
            StateSeries([NetworkState([1]), NetworkState([1, 0])])

    def test_empty_rejected(self):
        with pytest.raises(StateError):
            StateSeries([])

    def test_label_count_checked(self):
        with pytest.raises(StateError):
            StateSeries([NetworkState([0])], labels=["a", "b"])

    def test_slicing_preserves_labels(self):
        series = StateSeries(
            [NetworkState([0]), NetworkState([1]), NetworkState([-1])],
            labels=["a", "b", "c"],
        )
        sliced = series[1:]
        assert len(sliced) == 2
        assert sliced.labels == ["b", "c"]

    def test_matrix_roundtrip(self, rng):
        series = self.make_series(rng, 3, 6)
        back = StateSeries.from_matrix(series.to_matrix())
        assert all(x == y for x, y in zip(series, back))

    def test_transitions(self, rng):
        series = self.make_series(rng, 4)
        pairs = list(series.transitions())
        assert len(pairs) == 3
        assert pairs[0][0] == series[0]

    def test_activation_counts(self):
        series = StateSeries([NetworkState([0, 0]), NetworkState([1, -1])])
        assert series.activation_counts().tolist() == [0, 2]
