"""Tests for the three opinion models: spreading penalties + simulators."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.models.independent_cascade import IndependentCascadeModel
from repro.opinions.models.linear_threshold import LinearThresholdModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState


def edge_penalty(graph, penalties, u, v):
    """Look up a per-edge penalty by endpoints."""
    lo, hi = graph.out_edge_range(u)
    row = graph.indices[lo:hi]
    pos = int(np.searchsorted(row, v))
    assert row[pos] == v
    return penalties[lo + pos]


class TestModelAgnostic:
    @pytest.fixture
    def setup(self):
        # 0 -> 1, 2 -> 1, 3 -> 1 with spreaders +, 0, - and neutral target.
        g = DiGraph(5, [(0, 1), (2, 1), (3, 1), (0, 4)])
        state = NetworkState([1, 0, 0, -1, -1])
        return g, state, ModelAgnostic(1.0, 2.0, 8.0)

    def test_friendly_neutral_adverse(self, setup):
        g, state, model = setup
        pen = model.spreading_penalties(g, state, 1)
        assert edge_penalty(g, pen, 0, 1) == 1.0  # friendly spreader
        assert edge_penalty(g, pen, 2, 1) == 2.0  # neutral spreader
        assert edge_penalty(g, pen, 3, 1) == 8.0  # adverse spreader

    def test_adverse_receiver_dominates(self, setup):
        g, state, model = setup
        pen = model.spreading_penalties(g, state, 1)
        # 0 -> 4: friendly spreader but the receiver holds "-": adverse.
        assert edge_penalty(g, pen, 0, 4) == 8.0

    def test_opinion_symmetry(self, setup):
        g, state, model = setup
        pen_neg = model.spreading_penalties(g, state, -1)
        assert edge_penalty(g, pen_neg, 3, 1) == 1.0  # "-" spreader friendly for op=-1
        assert edge_penalty(g, pen_neg, 0, 1) == 8.0  # "+" spreader adverse

    def test_ordering_enforced(self):
        with pytest.raises(ModelError):
            ModelAgnostic(3.0, 2.0, 8.0)
        with pytest.raises(ModelError):
            ModelAgnostic(1.0, 1.0, 8.0)

    def test_invalid_opinion_rejected(self, setup):
        g, state, model = setup
        with pytest.raises(ModelError):
            model.spreading_penalties(g, state, 0)

    def test_no_simulation(self, setup, rng):
        g, state, model = setup
        assert not model.supports_simulation()
        with pytest.raises(NotImplementedError):
            model.step(g, state, rng)


class TestIndependentCascade:
    def test_mutual_adopters_zero_penalty(self):
        g = DiGraph(2, [(0, 1)])
        state = NetworkState([1, 1])
        model = IndependentCascadeModel(activation_prob=0.5)
        pen = model.spreading_penalties(g, state, 1)
        assert pen[0] == pytest.approx(0.0)  # -log 1

    def test_frontier_edge_uses_probability_share(self):
        # Two active "+" users both adjacent to a neutral target at equal
        # distance: each gets p_uv / p^a(v) with p^a = sum of both.
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, 1, 0])
        eps = 1e-4
        model = IndependentCascadeModel(activation_prob=0.4, epsilon=eps)
        pen = model.spreading_penalties(g, state, 1)
        expected = -np.log((0.4 - eps) / 0.8)
        assert pen[0] == pytest.approx(expected)
        assert pen[1] == pytest.approx(expected)

    def test_farther_activator_gets_epsilon(self):
        # Edge distances: user 0 is closer to target than user 1.
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, 1, 0])
        model = IndependentCascadeModel(
            activation_prob=0.4, edge_distance=np.array([1.0, 5.0]), epsilon=1e-4
        )
        pen = model.spreading_penalties(g, state, 1)
        assert pen[1] == pytest.approx(-np.log(1e-4))

    def test_adverse_edge_epsilon(self):
        g = DiGraph(2, [(0, 1)])
        state = NetworkState([-1, 0])
        model = IndependentCascadeModel(epsilon=1e-3)
        pen = model.spreading_penalties(g, state, 1)
        assert pen[0] == pytest.approx(-np.log(1e-3))

    def test_epsilon_bounds(self):
        with pytest.raises(ModelError):
            IndependentCascadeModel(epsilon=0.0)
        with pytest.raises(ModelError):
            IndependentCascadeModel(epsilon=1.0)

    def test_bad_probability_rejected(self):
        g = DiGraph(2, [(0, 1)])
        model = IndependentCascadeModel(activation_prob=1.5)
        with pytest.raises(ModelError):
            model.spreading_penalties(g, NetworkState([1, 0]), 1)

    def test_step_activates_only_neutral(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        state = NetworkState([1, -1, 0])
        model = IndependentCascadeModel(activation_prob=1.0)
        out = model.simulate(g, state, rounds=1, seed=0)
        assert out[0] == 1 and out[1] == -1  # active users never change
        assert out[2] == 1  # deterministic: only "+" attempts

    def test_step_probability_zero_is_noop(self):
        g = erdos_renyi_graph(20, 0.2, seed=0)
        state = NetworkState.from_active_sets(20, positive=[0], negative=[1])
        model = IndependentCascadeModel(activation_prob=0.0)
        assert model.simulate(g, state, rounds=3, seed=1) == state

    def test_step_deterministic_under_seed(self):
        g = erdos_renyi_graph(30, 0.2, seed=1)
        state = NetworkState.from_active_sets(30, positive=[0, 1], negative=[2])
        model = IndependentCascadeModel(activation_prob=0.5)
        a = model.simulate(g, state, rounds=2, seed=42)
        b = model.simulate(g, state, rounds=2, seed=42)
        assert a == b

    def test_competition_tie_break(self):
        # A neutral user pulled by both sides adopts one of them.
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, -1, 0])
        model = IndependentCascadeModel(activation_prob=1.0)
        outcomes = {
            model.simulate(g, state, rounds=1, seed=s)[2] for s in range(20)
        }
        assert outcomes <= {1, -1}
        assert len(outcomes) == 2  # both opinions win sometimes


class TestLinearThreshold:
    def test_mutual_adopters_zero_penalty(self):
        g = DiGraph(2, [(0, 1)])
        state = NetworkState([1, 1])
        model = LinearThresholdModel()
        pen = model.spreading_penalties(g, state, 1)
        assert pen[0] == pytest.approx(0.0)

    def test_frontier_share(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, 1, 0])
        eps = 1e-4
        model = LinearThresholdModel(weights=1.0, thresholds=0.5, epsilon=eps)
        pen = model.spreading_penalties(g, state, 1)
        expected = -np.log((1 - eps) * 1.0 / 2.0)
        assert pen[0] == pytest.approx(expected)

    def test_below_threshold_epsilon(self):
        g = DiGraph(2, [(0, 1)])
        state = NetworkState([1, 0])
        model = LinearThresholdModel(weights=0.3, thresholds=0.9, epsilon=1e-3)
        pen = model.spreading_penalties(g, state, 1)
        assert pen[0] == pytest.approx(-np.log(1e-3))

    def test_inactive_source_epsilon(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([0, 1, 0])
        model = LinearThresholdModel(epsilon=1e-4)
        pen = model.spreading_penalties(g, state, 1)
        assert pen[0] == pytest.approx(-np.log(1e-4))

    def test_step_threshold_gate(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        state = NetworkState([1, 1, 0])
        low = LinearThresholdModel(weights=1.0, thresholds=1.5)
        high = LinearThresholdModel(weights=1.0, thresholds=5.0)
        assert low.simulate(g, state, rounds=1, seed=0)[2] == 1
        assert high.simulate(g, state, rounds=1, seed=0)[2] == 0

    def test_step_weighted_majority(self):
        # Two "+" vs one "-" in-neighbor with equal weights: "+" wins more
        # often under the probabilistic vote.
        g = DiGraph(4, [(0, 3), (1, 3), (2, 3)])
        state = NetworkState([1, 1, -1, 0])
        model = LinearThresholdModel(weights=1.0, thresholds=0.5)
        outcomes = [model.simulate(g, state, rounds=1, seed=s)[3] for s in range(60)]
        assert np.mean([o == 1 for o in outcomes]) > 0.5

    def test_bad_threshold_spec(self):
        g = DiGraph(2, [(0, 1)])
        model = LinearThresholdModel(thresholds="bogus")
        with pytest.raises(ModelError):
            model.spreading_penalties(g, NetworkState([1, 0]), 1)

    def test_random_thresholds_default_half(self):
        g = DiGraph(2, [(0, 1)])
        model = LinearThresholdModel(thresholds="random")
        theta = model._node_thresholds(g)
        assert np.allclose(theta, 0.5)
