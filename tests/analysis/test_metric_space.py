"""Tests for the §9 metric-space applications (search/clustering/knn)."""

import numpy as np
import pytest

from repro.analysis.metric_space import KnnStateClassifier, VPTree, k_medoids
from repro.exceptions import ValidationError


def euclidean(a, b):
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


class TestVPTree:
    @pytest.fixture
    def points(self, rng):
        return [rng.normal(size=4) for _ in range(60)]

    def test_matches_brute_force(self, rng, points):
        tree = VPTree(points, euclidean, seed=0)
        for _ in range(10):
            query = rng.normal(size=4)
            idx, dist = tree.nearest(query)
            brute = min(range(len(points)), key=lambda i: euclidean(query, points[i]))
            assert idx == brute
            assert dist == pytest.approx(euclidean(query, points[brute]))

    def test_pruning_beats_brute_force(self, rng, points):
        tree = VPTree(points, euclidean, seed=0)
        total = 0
        for _ in range(10):
            tree.nearest(rng.normal(size=4))
            total += tree.last_query_evaluations
        assert total < 10 * len(points)  # strictly fewer than brute force

    def test_exclude_for_leave_one_out(self, points):
        tree = VPTree(points, euclidean, seed=0)
        idx, _ = tree.nearest(points[5], exclude=5)
        assert idx != 5

    def test_member_query_returns_self(self, points):
        tree = VPTree(points, euclidean, seed=0)
        idx, dist = tree.nearest(points[7])
        assert idx == 7
        assert dist == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            VPTree([], euclidean)

    def test_single_item(self):
        tree = VPTree([np.zeros(2)], euclidean)
        idx, dist = tree.nearest(np.ones(2))
        assert idx == 0


class TestKMedoids:
    def make_blobs(self, rng):
        pts = np.vstack([
            rng.normal(0, 0.3, size=(10, 2)),
            rng.normal(5, 0.3, size=(10, 2)),
        ])
        d = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=2)
        return d

    def test_recovers_blobs(self, rng):
        d = self.make_blobs(rng)
        labels, medoids, cost = k_medoids(d, 2, seed=0)
        assert len(set(labels[:10].tolist())) == 1
        assert len(set(labels[10:].tolist())) == 1
        assert labels[0] != labels[10]
        assert cost >= 0

    def test_k_equals_n(self, rng):
        d = self.make_blobs(rng)
        labels, medoids, cost = k_medoids(d, d.shape[0], seed=0)
        assert cost == pytest.approx(0.0)

    def test_bad_k(self, rng):
        d = self.make_blobs(rng)
        with pytest.raises(ValidationError):
            k_medoids(d, 0)
        with pytest.raises(ValidationError):
            k_medoids(d, 99)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            k_medoids(np.zeros((2, 3)), 1)

    def test_deterministic(self, rng):
        d = self.make_blobs(rng)
        a = k_medoids(d, 2, seed=5)
        b = k_medoids(d, 2, seed=5)
        assert np.array_equal(a[0], b[0])


class TestKnnClassifier:
    def test_simple_separation(self):
        states = [np.array([v]) for v in (0.0, 0.1, 0.2, 5.0, 5.1, 5.2)]
        labels = ["low"] * 3 + ["high"] * 3
        clf = KnnStateClassifier(euclidean, k=3).fit(states, labels)
        assert clf.predict(np.array([0.05])) == "low"
        assert clf.predict(np.array([4.9])) == "high"
        assert clf.score(states, labels) == 1.0

    def test_unfitted_rejected(self):
        with pytest.raises(ValidationError):
            KnnStateClassifier(euclidean).predict(np.zeros(1))

    def test_misaligned_rejected(self):
        with pytest.raises(ValidationError):
            KnnStateClassifier(euclidean).fit([np.zeros(1)], ["a", "b"])

    def test_k_larger_than_train_set(self):
        clf = KnnStateClassifier(euclidean, k=10).fit([np.zeros(1)], ["only"])
        assert clf.predict(np.ones(1)) == "only"


class TestWithSnd:
    """End-to-end: SND as the metric for classification of regimes."""

    def test_classify_icc_vs_random_transitions(self):
        from repro.datasets.synthetic import icc_transition_pairs
        from repro.snd import SND, allocate_banks

        graph, pairs = icc_transition_pairs(n_nodes=600, n_pairs=10, n_seeds=30, seed=4)
        banks = allocate_banks(graph, n_clusters=8, hop_cost=1.0, gamma_scale=0.5, seed=0)
        snd = SND(graph, banks=banks)
        # Feature: per-unit SND of the transition; 1-NN on that scalar.
        feats, labels = [], []
        for g1, g2, anomalous in pairs:
            feats.append(np.array([snd.distance(g1, g2) / max(1, g1.n_delta(g2))]))
            labels.append("random" if anomalous else "icc")
        clf = KnnStateClassifier(euclidean, k=1).fit(feats[:6], labels[:6])
        assert clf.score(feats[6:], labels[6:]) >= 0.75
