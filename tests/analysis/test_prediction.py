"""Tests for the §6.3 prediction pipeline and its baselines."""

import numpy as np
import pytest

from repro.analysis.baselines import community_lp_predict, nhood_voting_predict
from repro.analysis.extrapolation import extrapolate_next
from repro.analysis.prediction import DistancePredictor
from repro.distances.vector import hamming_distance
from repro.exceptions import PredictionError
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph, star_graph
from repro.opinions.dynamics import generate_series
from repro.opinions.state import NetworkState, StateSeries


class TestExtrapolation:
    def test_linear_trend(self):
        assert extrapolate_next([1.0, 2.0, 3.0]) == pytest.approx(4.0)

    def test_linear_single_point(self):
        assert extrapolate_next([2.5]) == 2.5

    def test_mean_and_last(self):
        assert extrapolate_next([1.0, 3.0], method="mean") == 2.0
        assert extrapolate_next([1.0, 3.0], method="last") == 3.0

    def test_clamped_at_zero(self):
        assert extrapolate_next([3.0, 2.0, 1.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(PredictionError):
            extrapolate_next([])

    def test_unknown_method(self):
        with pytest.raises(PredictionError):
            extrapolate_next([1.0], method="arima")


class TestDistancePredictor:
    def make_smooth_series(self, n=40, t=5, seed=0):
        """Series where exactly one user activates '+' per step (perfectly
        smooth hamming distances), so distance-based prediction is exact."""
        rng = np.random.default_rng(seed)
        values = np.zeros(n, dtype=np.int8)
        values[:10] = 1
        values[10:14] = -1
        states = [NetworkState(values.copy())]
        for k in range(1, t):
            values[13 + k] = 1
            states.append(NetworkState(values.copy()))
        return StateSeries(states)

    def test_recovers_hidden_opinions_on_smooth_series(self):
        series = self.make_smooth_series()
        predictor = DistancePredictor(hamming_distance, n_assignments=200)
        current = series[len(series) - 1]
        targets = np.array([0, 1, 10])  # two '+' users, one '-'
        truth = current.values[targets]
        hidden = current.with_neutralized(targets)
        outcome = predictor.predict(series[:-1], hidden, targets, seed=1)
        # The best assignment makes dist(G_-1, G_0*) closest to the
        # extrapolated d* = 1; correct assignment achieves it exactly.
        assert outcome.accuracy(truth) == 1.0

    def test_needs_two_recent_states(self):
        series = self.make_smooth_series(t=2)
        predictor = DistancePredictor(hamming_distance)
        with pytest.raises(PredictionError):
            predictor.predict(series[:1], series[1], [0])

    def test_duplicate_targets_rejected(self):
        series = self.make_smooth_series()
        predictor = DistancePredictor(hamming_distance)
        with pytest.raises(PredictionError):
            predictor.predict(series[:-1], series[len(series) - 1], [0, 0])

    def test_empty_targets_rejected(self):
        series = self.make_smooth_series()
        predictor = DistancePredictor(hamming_distance)
        with pytest.raises(PredictionError):
            predictor.predict(series[:-1], series[len(series) - 1], [])

    def test_outcome_accuracy_shape_checked(self):
        series = self.make_smooth_series()
        predictor = DistancePredictor(hamming_distance, n_assignments=10)
        out = predictor.predict(series[:-1], series[len(series) - 1], [0, 1], seed=0)
        with pytest.raises(PredictionError):
            out.accuracy(np.array([1]))

    def test_evaluate_protocol(self):
        from repro.graph.generators import erdos_renyi_graph

        g = erdos_renyi_graph(80, 0.1, seed=0)
        series = generate_series(
            g, 5, n_seeds=30, p_nbr=0.3, p_ext=0.05, seed=1
        )
        predictor = DistancePredictor(hamming_distance, n_assignments=30)
        mean, std = predictor.evaluate(
            series, n_targets=8, window=3, n_repeats=3, seed=2
        )
        assert 0.0 <= mean <= 100.0
        assert std >= 0.0

    def test_deterministic_under_seed(self):
        series = self.make_smooth_series()
        predictor = DistancePredictor(hamming_distance, n_assignments=20)
        current = series[len(series) - 1]
        hidden = current.with_neutralized([0, 10])
        a = predictor.predict(series[:-1], hidden, [0, 10], seed=5)
        b = predictor.predict(series[:-1], hidden, [0, 10], seed=5)
        assert np.array_equal(a.predicted, b.predicted)


class TestNhoodVoting:
    def test_unanimous_neighborhood(self):
        g = star_graph(5)  # hub 0 influences leaves
        state = NetworkState([1, 0, 0, 0, 0])
        # Leaves see exactly one active in-neighbor: the '+' hub.
        preds = nhood_voting_predict(g, state, [1, 2, 3], seed=0)
        assert np.all(preds == 1)

    def test_no_active_neighbors_random_fallback(self):
        g = star_graph(5, center_out=False)
        state = NetworkState.neutral(5)
        preds = [int(nhood_voting_predict(g, state, [1], seed=s)[0]) for s in range(30)]
        assert set(preds) == {1, -1}

    def test_majority_bias(self):
        g = DiGraph(4, [(0, 3), (1, 3), (2, 3)])
        state = NetworkState([1, 1, -1, 0])
        preds = [
            int(nhood_voting_predict(g, state, [3], seed=s)[0]) for s in range(90)
        ]
        assert np.mean([p == 1 for p in preds]) > 0.5


class TestCommunityLp:
    def test_dominant_opinion_per_community(self):
        g, labels = planted_partition_graph([15, 15], 0.6, 0.02, seed=0)
        values = np.where(labels == 0, 1, -1).astype(np.int8)
        state = NetworkState(values)
        targets = [0, 29]
        preds = community_lp_predict(g, state, targets, seed=1)
        assert preds[0] == 1
        assert preds[1] == -1

    def test_hidden_targets_do_not_vote(self):
        g, labels = planted_partition_graph([10, 10], 0.7, 0.02, seed=1)
        # Community 0: only the target is '+', everyone else neutral ->
        # the target's own value must not leak into the tally.
        values = np.zeros(20, dtype=np.int8)
        values[0] = 1
        values[labels == 1] = -1
        state = NetworkState(values)
        preds = [
            int(community_lp_predict(g, state, [0], seed=s)[0]) for s in range(30)
        ]
        # Community 0 has no (non-target) active users: random fallback.
        assert set(preds) == {1, -1}

    def test_precomputed_labels_used(self):
        g, labels = planted_partition_graph([10, 10], 0.6, 0.05, seed=2)
        values = np.where(labels == 0, 1, -1).astype(np.int8)
        state = NetworkState(values)
        preds = community_lp_predict(g, state, [0], labels=labels, seed=0)
        assert preds[0] == 1
