"""Tests for the anomaly-score pipeline and ROC machinery."""

import numpy as np
import pytest

from repro.analysis.anomaly import (
    anomaly_scores,
    detect_anomalies,
    normalize_distance_series,
)
from repro.analysis.roc import roc_auc, roc_curve, tpr_at_fpr
from repro.exceptions import ValidationError


class TestNormalization:
    def test_scale_to_unit_max(self):
        out = normalize_distance_series(np.array([1.0, 2.0, 4.0]))
        assert out.tolist() == [0.25, 0.5, 1.0]

    def test_active_count_division(self):
        distances = np.array([10.0, 10.0])
        counts = np.array([10.0, 20.0])
        out = normalize_distance_series(distances, counts, scale=False)
        assert out.tolist() == [1.0, 0.5]

    def test_per_state_counts_accepted(self):
        distances = np.array([10.0, 10.0])
        counts = np.array([5.0, 10.0, 20.0])  # one per state
        out = normalize_distance_series(distances, counts, scale=False)
        assert out.tolist() == [1.0, 0.5]

    def test_misaligned_counts_rejected(self):
        with pytest.raises(ValidationError):
            normalize_distance_series(np.ones(3), np.ones(7))

    def test_zero_counts_safe(self):
        out = normalize_distance_series(np.array([1.0]), np.array([0.0]), scale=False)
        assert out.tolist() == [1.0]

    def test_all_zero_distances(self):
        out = normalize_distance_series(np.zeros(3))
        assert out.tolist() == [0.0, 0.0, 0.0]


class TestAnomalyScores:
    def test_spike_scores_highest(self):
        d = np.array([0.1, 0.1, 1.0, 0.1, 0.1])
        scores = anomaly_scores(d)
        assert np.argmax(scores) == 2
        assert scores[2] == pytest.approx(1.8)

    def test_flat_series_zero_scores(self):
        assert np.allclose(anomaly_scores(np.full(5, 0.3)), 0.0)

    def test_boundary_single_slope(self):
        d = np.array([1.0, 0.0, 0.0])
        scores = anomaly_scores(d)
        assert scores[0] == pytest.approx(1.0)  # only the right slope

    def test_empty(self):
        assert anomaly_scores(np.array([])).size == 0


class TestDetector:
    def test_detects_known_spikes(self, rng):
        d = 0.1 + 0.01 * rng.random(30)
        d[[7, 19]] = 1.0
        result = detect_anomalies(d)
        assert set(result.flagged.tolist()) == {7, 19}

    def test_top_k_mode(self):
        d = np.array([0.1, 0.9, 0.1, 0.8, 0.1])
        result = detect_anomalies(d, top_k=2)
        assert sorted(result.flagged.tolist()) == [1, 3]

    def test_threshold_mode(self):
        d = np.array([0.1, 0.9, 0.1])
        result = detect_anomalies(d, threshold=0.5)
        assert result.flagged.tolist() == [1]

    def test_both_modes_rejected(self):
        with pytest.raises(ValidationError):
            detect_anomalies(np.ones(4), threshold=0.5, top_k=2)

    def test_top_k_zero_flags_nothing(self):
        # Regression: the k-1 index used to wrap to -1 and report the
        # series *minimum* score as the threshold.
        d = np.array([0.1, 0.9, 0.1, 0.8, 0.1])
        result = detect_anomalies(d, top_k=0)
        assert result.flagged.size == 0
        assert result.threshold == np.inf

    def test_top_k_full_length(self):
        d = np.array([0.1, 0.9, 0.1, 0.8, 0.1])
        result = detect_anomalies(d, top_k=len(d))
        assert sorted(result.flagged.tolist()) == list(range(len(d)))
        # Threshold is the worst flagged score: everything sits at/above it.
        assert result.threshold == pytest.approx(
            float(np.min(result.scores))
        )

    def test_top_k_beyond_length(self):
        d = np.array([0.1, 0.9, 0.1, 0.8, 0.1])
        result = detect_anomalies(d, top_k=len(d) + 5)
        assert sorted(result.flagged.tolist()) == list(range(len(d)))
        assert result.threshold == pytest.approx(float(np.min(result.scores)))

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValidationError):
            detect_anomalies(np.ones(4), top_k=-1)

    def test_ranking_order(self):
        d = np.array([0.1, 0.9, 0.1, 0.5, 0.1])
        result = detect_anomalies(d)
        ranking = result.ranking()
        assert ranking[0] == 1
        assert ranking[1] == 3


class TestRoc:
    def test_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert roc_auc(scores, labels) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_ranking_half(self, rng):
        scores = rng.random(2000)
        labels = rng.random(2000) < 0.3
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_curve_anchored(self):
        fpr, tpr = roc_curve([0.5, 0.4], [1, 0])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_curve_monotone(self, rng):
        scores = rng.random(50)
        labels = rng.random(50) < 0.4
        fpr, tpr = roc_curve(scores, labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_ties_collapsed(self):
        scores = np.array([0.5, 0.5, 0.5])
        labels = np.array([1, 0, 1])
        fpr, tpr = roc_curve(scores, labels)
        # Single sweep step: (0,0) -> (1,1).
        assert len(fpr) == 3

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            roc_curve([0.1, 0.2], [1, 1])

    def test_tpr_at_fpr(self):
        scores = np.array([0.9, 0.7, 0.6, 0.2])
        labels = np.array([1, 0, 1, 0])
        # At FPR 0: TPR 0.5 (first positive ranked top).
        assert tpr_at_fpr(scores, labels, 0.0) == pytest.approx(0.5)
        assert tpr_at_fpr(scores, labels, 0.5) == pytest.approx(1.0)

    def test_tpr_at_fpr_bounds_checked(self):
        with pytest.raises(ValidationError):
            tpr_at_fpr([0.5], [1], 1.5)

    def test_agrees_with_manual_auc(self):
        scores = np.array([0.8, 0.6, 0.55, 0.54, 0.51, 0.4])
        labels = np.array([1, 1, 0, 1, 0, 0])
        # Manual AUC via pair counting (probability a positive outranks a
        # negative).
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        manual = wins / (len(pos) * len(neg))
        assert roc_auc(scores, labels) == pytest.approx(manual)


class TestStreamingDetector:
    def _push_all(self, detector, distances, counts=None):
        results = []
        for t, d in enumerate(distances):
            kwargs = {}
            if counts is not None:
                kwargs["active_count"] = counts[t]
            scored = detector.push(d, **kwargs)
            if scored is not None:
                results.append(scored)
        final = detector.finalize()
        if final is not None:
            results.append(final)
        return results

    def test_unscaled_fixed_threshold_matches_offline_exactly(self, rng):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        distances = rng.random(12)
        offline = anomaly_scores(distances)
        detector = StreamingAnomalyDetector(threshold=0.3, scale=False)
        results = self._push_all(detector, distances)
        assert [s.index for s in results] == list(range(len(distances)))
        assert np.array_equal(np.array([s.score for s in results]), offline)
        offline_flagged = np.flatnonzero(offline > 0.3)
        assert np.array_equal(detector.flagged(), offline_flagged)

    def test_active_count_normalisation_matches_offline(self, rng):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        distances = rng.random(9)
        counts = rng.integers(1, 40, size=9)
        offline = anomaly_scores(
            normalize_distance_series(distances, counts, scale=False)
        )
        detector = StreamingAnomalyDetector(threshold=0.1, scale=False)
        results = self._push_all(detector, distances, counts)
        assert np.allclose([s.score for s in results], offline, atol=1e-15)

    def test_running_max_scaling_is_causal(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        # Maximum arrives first: the running max equals the global max for
        # every scored transition, so scores match the offline pipeline.
        distances = np.array([4.0, 1.0, 3.0, 2.0])
        offline = anomaly_scores(normalize_distance_series(distances))
        detector = StreamingAnomalyDetector(threshold=10.0)
        results = self._push_all(detector, distances)
        assert np.allclose([s.score for s in results], offline, atol=1e-15)

    def test_adaptive_threshold_tracks_mean_and_std(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        detector = StreamingAnomalyDetector(scale=False)
        scores = [
            s.score for s in self._push_all(detector, [1.0, 1.0, 1.0, 9.0, 1.0])
        ]
        scores = np.array(scores)
        # The spike at index 3 dominates; the causal threshold at that
        # point is mean + 2*std of everything seen so far.
        expect = scores[:4].mean() + 2.0 * scores[:4].std()
        assert detector.results[3].threshold == pytest.approx(expect)

    def test_negative_distance_rejected(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        with pytest.raises(ValidationError):
            StreamingAnomalyDetector().push(-0.5)

    def test_empty_stream_finalize(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        detector = StreamingAnomalyDetector()
        assert detector.finalize() is None
        assert len(detector) == 0

    def test_double_finalize_is_idempotent(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        detector = StreamingAnomalyDetector(scale=False)
        detector.push(1.0)
        assert detector.finalize() is not None
        assert detector.finalize() is None
        assert len(detector.results) == 1

    def test_single_distance_scores_zero(self):
        from repro.analysis.anomaly import StreamingAnomalyDetector

        detector = StreamingAnomalyDetector(scale=False, threshold=0.0)
        assert detector.push(2.5) is None
        final = detector.finalize()
        assert final.score == 0.0 and not final.flagged
