"""Tests for the experiment dataset builders."""

import numpy as np
import pytest

from repro.datasets.events import DEFAULT_TIMELINE, QUARTER_LABELS, Event
from repro.datasets.synthetic import (
    Fig7Config,
    Fig8Config,
    fig7_dataset,
    fig8_dataset,
    icc_transition_pairs,
    prediction_dataset,
)
from repro.datasets.twitter import simulated_twitter_dataset


class TestEvents:
    def test_default_timeline_valid(self):
        kinds = {e.kind for e in DEFAULT_TIMELINE}
        assert kinds == {"consensus", "polarizing"}
        quarters = [e.quarter for e in DEFAULT_TIMELINE]
        assert len(set(quarters)) == len(quarters)
        assert max(quarters) < len(QUARTER_LABELS)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(quarter=0, name="x", kind="mixed")

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ValueError):
            Event(quarter=0, name="x", kind="consensus", intensity=0.0)


class TestFig7:
    def test_shapes_and_labels(self):
        cfg = Fig7Config(n_nodes=300, n_seeds=20, n_states=8, anomalous=(4,))
        graph, series = fig7_dataset(cfg)
        # The dataset restricts to the giant component, so the node count
        # is at most (and usually below) the configured size.
        assert 0 < graph.num_nodes <= 300
        assert len(series) == 8
        assert series.labels[4] == "anomalous"
        assert series.labels.count("anomalous") == 1

    def test_deterministic(self):
        cfg = Fig7Config(n_nodes=200, n_seeds=15, n_states=5, anomalous=(2,))
        _, a = fig7_dataset(cfg)
        _, b = fig7_dataset(cfg)
        assert all(x == y for x, y in zip(a, b))

    def test_activations_grow(self):
        cfg = Fig7Config(n_nodes=300, n_seeds=20, n_states=6, anomalous=())
        _, series = fig7_dataset(cfg)
        counts = series.activation_counts()
        assert counts[-1] >= counts[0]


class TestFig8:
    def test_anomaly_fraction(self):
        cfg = Fig8Config(n_nodes=200, n_seeds=15, n_states=30, anomaly_fraction=0.2)
        _, series = fig8_dataset(cfg)
        n_anomalous = series.labels.count("anomalous")
        assert n_anomalous == max(1, round(0.2 * 29))

    def test_first_state_never_anomalous(self):
        cfg = Fig8Config(n_nodes=150, n_seeds=10, n_states=20)
        _, series = fig8_dataset(cfg)
        assert series.labels[0] == "normal"


class TestIccPairs:
    def test_pair_structure(self):
        graph, pairs = icc_transition_pairs(n_nodes=200, n_pairs=6, n_seeds=20, seed=1)
        assert len(pairs) == 6
        normal_flags = [anom for *_, anom in pairs]
        assert normal_flags == [False, True] * 3
        for g1, g2, _ in pairs:
            assert g1.n == graph.num_nodes
            assert g2.n_active >= g1.n_active

    def test_anomalous_volume_matched(self):
        _, pairs = icc_transition_pairs(n_nodes=300, n_pairs=10, n_seeds=30, seed=2)
        normal_growth = [
            g2.n_active - g1.n_active for g1, g2, anom in pairs if not anom
        ]
        anomalous_growth = [
            g2.n_active - g1.n_active for g1, g2, anom in pairs if anom
        ]
        # Anomalous transitions are volume-matched to ICC rounds on average.
        assert np.mean(anomalous_growth) <= 3 * max(1.0, np.mean(normal_growth))


class TestPredictionDataset:
    def test_enough_active_for_targets(self):
        _, series = prediction_dataset(n_nodes=400, n_seeds=60, n_states=5, seed=0)
        final = series[len(series) - 1]
        assert final.n_positive >= 10
        assert final.n_negative >= 10


class TestTwitterDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return simulated_twitter_dataset(n_users=300, avg_degree=10, seed=11)

    def test_shapes(self, dataset):
        assert dataset.graph.num_nodes == 300
        assert len(dataset.series) == len(QUARTER_LABELS)
        assert dataset.interest.shape == (len(QUARTER_LABELS),)
        assert dataset.communities.shape == (300,)

    def test_event_quarters_indexable(self, dataset):
        for quarter, event in dataset.event_quarters.items():
            assert dataset.series.labels[quarter] is not None
            assert 0 <= quarter < len(dataset.series)

    def test_interest_spikes_at_events(self, dataset):
        event_quarters = set(dataset.event_quarters)
        quiet = [
            dataset.interest[t]
            for t in range(len(dataset.series))
            if t not in event_quarters and t > 0
        ]
        eventful = [dataset.interest[t] for t in sorted(event_quarters)]
        assert np.mean(eventful) > np.mean(quiet)

    def test_polarizing_events_follow_communities(self, dataset):
        # New activations during a polarizing quarter align with their
        # community: '+' adopters sit in community 0, '-' in community 1.
        polarizing = [e for e in dataset.events if e.kind == "polarizing"]
        assert polarizing, "timeline must include polarizing events"
        q = max(e.quarter for e in polarizing)  # highest-intensity late one
        before, after = dataset.series[q - 1], dataset.series[q]
        new = np.setdiff1d(after.active_users(), before.active_users())
        assert new.size > 0
        aligned = (
            (after.values[new] == 1) & (dataset.communities[new] == 0)
        ) | ((after.values[new] == -1) & (dataset.communities[new] == 1))
        assert aligned.mean() > 0.5

    def test_deterministic(self):
        a = simulated_twitter_dataset(n_users=150, avg_degree=8, seed=3)
        b = simulated_twitter_dataset(n_users=150, avg_degree=8, seed=3)
        assert all(x == y for x, y in zip(a.series, b.series))

    def test_homophily_in_graph(self, dataset):
        edge_arr = dataset.graph.edge_array()
        comm = dataset.communities
        same = comm[edge_arr[:, 0]] == comm[edge_arr[:, 1]]
        assert same.mean() > 0.55
