"""The central correctness invariant: the Theorem 4 reduced pipeline equals
the direct (unreduced) computation, exactly, across random instances.

This is what makes the linear-time claim meaningful — the fast path is a
lossless reduction, not an approximation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi_graph, powerlaw_configuration_graph
from repro.opinions.models.independent_cascade import IndependentCascadeModel
from repro.opinions.models.linear_threshold import LinearThresholdModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState
from repro.snd import SND, allocate_banks, snd_direct
from repro.snd.fast import FastTermStats


def random_states(rng, n, change_fraction=0.2):
    vals = rng.choice(np.array([-1, 0, 0, 1], dtype=np.int8), size=n)
    vals2 = vals.copy()
    flip = rng.choice(n, size=max(1, int(n * change_fraction)), replace=False)
    vals2[flip] = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=flip.size)
    return NetworkState(vals), NetworkState(vals2)


@pytest.mark.parametrize("strategy", ["cluster", "global", "per-bin"])
@pytest.mark.parametrize("bank_shares", ["mass", "size"])
def test_fast_equals_direct_over_strategies(strategy, bank_shares, rng):
    g = erdos_renyi_graph(25, 0.15, seed=int(rng.integers(1e6)))
    banks = allocate_banks(g, strategy=strategy, n_clusters=3, seed=0)
    a, b = random_states(rng, 25)
    fast = SND(g, banks=banks, bank_shares=bank_shares).distance(a, b)
    direct = snd_direct(g, a, b, banks=banks, bank_shares=bank_shares)
    assert fast == pytest.approx(direct, abs=1e-7)


@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: ModelAgnostic(),
        lambda: IndependentCascadeModel(activation_prob=0.4),
        lambda: LinearThresholdModel(weights=1.0, thresholds=0.5),
    ],
    ids=["agnostic", "icc", "ltc"],
)
def test_fast_equals_direct_over_models(model_factory, rng):
    g = erdos_renyi_graph(30, 0.12, seed=4, directed=True)
    banks = allocate_banks(g, n_clusters=3, seed=1)
    a, b = random_states(rng, 30)
    model = model_factory()
    fast = SND(g, model, banks=banks).distance(a, b)
    direct = snd_direct(g, a, b, model=model, banks=banks)
    assert fast == pytest.approx(direct, abs=1e-7)


def test_fast_equals_direct_multiple_banks(rng):
    g = erdos_renyi_graph(20, 0.2, seed=5)
    banks = allocate_banks(g, n_clusters=2, n_banks=3, seed=2)
    a, b = random_states(rng, 20)
    fast = SND(g, banks=banks).distance(a, b)
    direct = snd_direct(g, a, b, banks=banks)
    assert fast == pytest.approx(direct, abs=1e-7)


def test_fast_equals_direct_disconnected_graph():
    """Unreachable pairs exercise the clamp consistency between paths."""
    from repro.graph.digraph import DiGraph

    # Two components, no edges between them.
    edges = [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)]
    g = DiGraph(8, edges)  # nodes 3 and 7 fully isolated
    banks = allocate_banks(g, strategy="global", seed=0)
    a = NetworkState([1, 0, 0, 0, -1, 0, 0, 0])
    b = NetworkState([0, 1, 0, 1, 0, -1, 0, -1])
    fast = SND(g, banks=banks).distance(a, b)
    direct = snd_direct(g, a, b, banks=banks)
    assert fast == pytest.approx(direct, abs=1e-6)


def test_fast_equals_direct_extreme_mismatch():
    """One empty state: everything routes through banks."""
    g = erdos_renyi_graph(15, 0.25, seed=8)
    banks = allocate_banks(g, n_clusters=2, seed=3)
    empty = NetworkState.neutral(15)
    full = NetworkState.from_active_sets(15, positive=[0, 1, 2], negative=[5, 6])
    fast = SND(g, banks=banks).distance(empty, full)
    direct = snd_direct(g, empty, full, banks=banks)
    assert fast > 0
    assert fast == pytest.approx(direct, abs=1e-7)


def test_fast_equals_direct_cluster_bank_metric_per_bin(rng):
    """Under per-bin banks, cluster-level and nearest-member bank metrics
    coincide, so the literal Eq. 4 variant is exactly reproducible too."""
    g = erdos_renyi_graph(15, 0.25, seed=11)
    banks = allocate_banks(g, strategy="per-bin", seed=0)
    a, b = random_states(rng, 15)
    fast = SND(g, banks=banks, bank_metric="cluster").distance(a, b)
    direct = snd_direct(g, a, b, banks=banks, bank_metric="cluster")
    assert fast == pytest.approx(direct, abs=1e-7)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fast_equals_direct_property(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 40))
    g = erdos_renyi_graph(
        n, 0.15, seed=int(rng.integers(1e6)), directed=bool(rng.integers(2))
    )
    banks = allocate_banks(
        g, n_clusters=int(rng.integers(2, 5)), seed=int(rng.integers(1e6))
    )
    a, b = random_states(rng, n, change_fraction=float(rng.uniform(0.05, 0.5)))
    fast = SND(g, banks=banks).distance(a, b)
    direct = snd_direct(g, a, b, banks=banks)
    assert fast == pytest.approx(direct, abs=1e-6)


def test_stats_reflect_reduction():
    """The pipeline must touch only the changed users (Assumption 1)."""
    g = powerlaw_configuration_graph(100, -2.3, k_min=2, seed=0)
    banks = allocate_banks(g, n_clusters=3, seed=0)
    snd = SND(g, banks=banks)
    base = NetworkState.from_active_sets(100, positive=list(range(10)))
    changed = base.with_opinions([50, 51], 1)  # n_delta = 2
    result = snd.evaluate(base, changed)
    pos_stats: FastTermStats = result.stats[0]
    assert pos_stats.n_suppliers + pos_stats.n_consumers <= 2
    assert pos_stats.n_sssp_runs <= 2
    # Negative terms see no change at all.
    assert result.stats[1].cost == 0.0
