"""Tests for the PairScheduler: dedup, coalescing, backpressure, counters."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import SchedulerSaturatedError, ValidationError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState
from repro.snd import SND, SNDEngine, TransitionCache
from repro.snd.scheduler import DEFAULT_MAX_PENDING, PairScheduler


def distinct_states(n: int, count: int) -> list[NetworkState]:
    states = []
    for t in range(count):
        values = np.zeros(n, dtype=np.int8)
        values[: t + 1] = 1
        states.append(NetworkState(values))
    return states


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(30, 0.2, seed=3)


def fresh_engine(graph, **kwargs) -> SNDEngine:
    return SNDEngine(SND(graph, n_clusters=2, seed=0), jobs=None, **kwargs)


class TestEvaluateBasics:
    def test_matches_naive_loop(self, graph):
        states = distinct_states(30, 5)
        pairs = [(0, 1), (1, 2), (0, 3), (2, 4)]
        snd = SND(graph, n_clusters=2, seed=0)
        naive = [snd.distance(states[i], states[j]) for i, j in pairs]
        with fresh_engine(graph) as engine:
            values = engine.scheduler.evaluate(states, pairs)
        assert values == naive

    def test_empty_request(self, graph):
        with fresh_engine(graph) as engine:
            assert engine.scheduler.evaluate([], []) == []
            assert engine.scheduler.requested == 0

    def test_submit_single_pair(self, graph):
        states = distinct_states(30, 2)
        with fresh_engine(graph) as engine:
            value = engine.scheduler.submit(states[0], states[1])
            assert value == engine.distance(states[0], states[1])

    def test_default_max_pending(self, graph):
        with fresh_engine(graph) as engine:
            assert engine.scheduler.max_pending == DEFAULT_MAX_PENDING

    def test_bad_max_pending_rejected(self, graph):
        with pytest.raises(ValidationError):
            PairScheduler(object(), max_pending=0)

    def test_bad_jobs_override_rejected(self, graph):
        states = distinct_states(30, 2)
        with fresh_engine(graph) as engine:
            with pytest.raises(ValidationError):
                engine.scheduler.evaluate(states, [(0, 1)], jobs=0)


class TestDedupAndCoalescing:
    def test_duplicate_pairs_in_one_batch_solved_once(self, graph):
        states = distinct_states(30, 3)
        # (0,1) three times, (1,2) once.  Keys follow TransitionCache.key,
        # which is order-sensitive: (1,0) would be a distinct pair, because
        # the float summation order inside the solve differs and the
        # bit-identity contract forbids substituting one for the other.
        pairs = [(0, 1), (0, 1), (0, 1), (1, 2)]
        with fresh_engine(graph) as engine:
            sched = engine.scheduler
            values = sched.evaluate(states, pairs)
            assert sched.requested == 4
            assert sched.solved == 2  # the two unique pairs
            assert sched.coalesced == 2
            assert values[0] == values[1] == values[2]
            assert values[0] == engine.distance(states[0], states[1])

    def test_cache_answered_before_any_solve(self, graph):
        states = distinct_states(30, 3)
        transitions = TransitionCache()
        with fresh_engine(graph) as engine:
            sched = engine.scheduler
            first = sched.evaluate(states, [(0, 1), (1, 2)], transitions=transitions)
            assert sched.solved == 2
            again = sched.evaluate(states, [(0, 1), (1, 2)], transitions=transitions)
            assert again == first
            assert sched.solved == 2  # nothing new solved
            assert sched.cache_answered == 2
            # Counter semantics preserved: one cache probe per request.
            assert transitions.fresh == 2 and transitions.reused == 2

    def test_concurrent_same_pair_coalesces_to_one_solve(self, graph):
        """N threads racing on one pair trigger exactly one solve; late
        arrivals attach to the in-flight entry and get the same float."""
        states = distinct_states(30, 2)
        n_threads = 6
        with fresh_engine(graph) as engine:
            sched = engine.scheduler
            solve_started = threading.Event()
            original = engine._solve_pairs_local

            def slow_solve(sts, pairs):
                solve_started.set()
                time.sleep(0.3)  # hold the pair in flight while others arrive
                return original(sts, pairs)

            engine._solve_pairs_local = slow_solve
            transitions = engine.caches.transitions
            results: list[float] = [None] * n_threads
            errors: list[BaseException] = []

            def client(idx: int) -> None:
                try:
                    if idx > 0:
                        solve_started.wait(timeout=10)
                    results[idx] = sched.submit(
                        states[0], states[1], transitions=transitions
                    )
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert sched.solved == 1  # THE counter-asserted guarantee
            assert sched.requested == n_threads
            # Every non-solving thread either coalesced onto the in-flight
            # solve or (if it arrived after publication) hit the cache.
            assert sched.coalesced + sched.cache_answered == n_threads - 1
            assert sched.coalesced >= 1
            assert len(set(results)) == 1
            engine._solve_pairs_local = original

    def test_coalesced_waiters_see_solver_error(self, graph):
        states = distinct_states(30, 2)
        with fresh_engine(graph) as engine:
            sched = engine.scheduler
            started = threading.Event()

            def boom(sts, pairs):
                started.set()
                time.sleep(0.2)
                raise RuntimeError("solver exploded")

            engine._solve_pairs_local = boom
            outcomes: list[str] = []

            def client(wait_for_start: bool) -> None:
                try:
                    if wait_for_start:
                        started.wait(timeout=10)
                    sched.submit(states[0], states[1])
                    outcomes.append("ok")
                except RuntimeError:
                    outcomes.append("error")

            threads = [
                threading.Thread(target=client, args=(w,)) for w in (False, True, True)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert outcomes == ["error", "error", "error"]
            # The failed entry must not wedge the queue.
            assert sched.pending == 0
            assert sched._inflight == {}


class TestBackpressure:
    def test_bounded_queue_slicewise_admission(self, graph):
        """More distinct pairs than max_pending still complete — owners
        break out of admission to solve (freeing room) instead of
        hold-and-waiting."""
        states = distinct_states(30, 6)
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]  # 15 > 2
        with fresh_engine(graph, max_pending=2) as engine:
            sched = engine.scheduler
            values = sched.evaluate(states, pairs)
            assert len(values) == 15
            assert sched.solved == 15
            assert sched.peak_pending <= 2
            assert sched.pending == 0

    def test_nonblocking_rejection_when_full(self, graph):
        states = distinct_states(30, 4)
        with fresh_engine(graph, max_pending=1) as engine:
            sched = engine.scheduler
            hold = threading.Event()
            started = threading.Event()
            original = engine._solve_pairs_local

            def stalled(sts, pairs):
                started.set()
                hold.wait(timeout=10)
                return original(sts, pairs)

            engine._solve_pairs_local = stalled
            t = threading.Thread(
                target=lambda: sched.evaluate(states, [(0, 1)])
            )
            t.start()
            assert started.wait(timeout=10)
            with pytest.raises(SchedulerSaturatedError):
                sched.evaluate(states, [(2, 3)], block=False)
            assert sched.rejected == 1
            hold.set()
            t.join(timeout=30)
            assert sched.pending == 0

    def test_timeout_rejection_when_full(self, graph):
        states = distinct_states(30, 4)
        with fresh_engine(graph, max_pending=1) as engine:
            sched = engine.scheduler
            hold = threading.Event()
            started = threading.Event()
            original = engine._solve_pairs_local

            def stalled(sts, pairs):
                started.set()
                hold.wait(timeout=10)
                return original(sts, pairs)

            engine._solve_pairs_local = stalled
            t = threading.Thread(
                target=lambda: sched.evaluate(states, [(0, 1)])
            )
            t.start()
            assert started.wait(timeout=10)
            with pytest.raises(SchedulerSaturatedError):
                sched.evaluate(states, [(2, 3)], timeout=0.05)
            hold.set()
            t.join(timeout=30)

    def test_blocking_admission_resumes(self, graph):
        states = distinct_states(30, 4)
        with fresh_engine(graph, max_pending=1) as engine:
            sched = engine.scheduler
            hold = threading.Event()
            started = threading.Event()
            original = engine._solve_pairs_local

            def stalled(sts, pairs):
                if not started.is_set():
                    started.set()
                    hold.wait(timeout=10)
                return original(sts, pairs)

            engine._solve_pairs_local = stalled
            t = threading.Thread(target=lambda: sched.evaluate(states, [(0, 1)]))
            t.start()
            assert started.wait(timeout=10)
            releaser = threading.Timer(0.2, hold.set)
            releaser.start()
            # Blocks until the stalled solve publishes, then proceeds.
            values = sched.evaluate(states, [(2, 3)])
            assert len(values) == 1
            t.join(timeout=30)
            releaser.join()


class TestStats:
    def test_stats_keys_and_engine_embedding(self, graph):
        states = distinct_states(30, 3)
        with fresh_engine(graph) as engine:
            engine.scheduler.evaluate(states, [(0, 1), (0, 1)])
            stats = engine.scheduler.stats()
            for key in (
                "requested",
                "cache_answered",
                "coalesced",
                "solved",
                "batches",
                "rejected",
                "pending",
                "peak_pending",
                "max_pending",
            ):
                assert key in stats
            assert stats["requested"] == 2
            assert stats["solved"] == 1
            assert stats["coalesced"] == 1
            assert engine.stats()["scheduler"] == stats


def hybrid_engine(graph, **kwargs) -> SNDEngine:
    return SNDEngine(
        SND(graph, n_clusters=2, seed=0, solver="sinkhorn-hybrid"),
        jobs=None,
        **kwargs,
    )


def throttle_hybrid(monkeypatch, *, delay=0.0, hold=None, started=None):
    """Wrap the registered sinkhorn-hybrid solver so every reduced solve
    is slow (or blocks on *hold*), simulating large-instance latency while
    keeping values exact. Patching the registry entry throttles the real
    solve path (emd_star_term_fast -> solve_transportation), not a stub."""
    import repro.flow as flow_mod

    real = flow_mod._TRANSPORT_SOLVERS["sinkhorn-hybrid"]

    def throttled(problem, **kw):
        if started is not None:
            started.set()
        if hold is not None:
            hold.wait(timeout=30)
        if delay:
            time.sleep(delay)
        return real(problem, **kw)

    monkeypatch.setitem(flow_mod._TRANSPORT_SOLVERS, "sinkhorn-hybrid", throttled)
    return real


class TestThrottledHybridSolves:
    """Satellite: slow *approximate* solves must neither break coalescing
    nor dodge backpressure — the scheduler guarantees are solver-agnostic."""

    def test_concurrent_same_pair_still_one_solve(self, graph, monkeypatch):
        states = distinct_states(30, 2)
        reference = SND(graph, n_clusters=2, seed=0, solver="sinkhorn-hybrid").distance(
            states[0], states[1]
        )
        started = threading.Event()
        throttle_hybrid(monkeypatch, delay=0.1, started=started)
        n_threads = 5
        with hybrid_engine(graph) as engine:
            sched = engine.scheduler
            transitions = engine.caches.transitions
            results: list[float] = [None] * n_threads
            errors: list[BaseException] = []

            def client(idx: int) -> None:
                try:
                    if idx > 0:
                        started.wait(timeout=10)
                    results[idx] = sched.submit(
                        states[0], states[1], transitions=transitions
                    )
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert sched.solved == 1  # one slow hybrid solve, N answers
            assert sched.requested == n_threads
            assert sched.coalesced + sched.cache_answered == n_threads - 1
            assert len(set(results)) == 1
            assert results[0] == reference  # throttling never changes values

    def test_saturated_scheduler_raises_with_counters(self, graph, monkeypatch):
        states = distinct_states(30, 4)
        hold = threading.Event()
        started = threading.Event()
        throttle_hybrid(monkeypatch, hold=hold, started=started)
        with hybrid_engine(graph, max_pending=1) as engine:
            sched = engine.scheduler
            t = threading.Thread(target=lambda: sched.evaluate(states, [(0, 1)]))
            t.start()
            assert started.wait(timeout=10)  # hybrid solve now in flight
            with pytest.raises(SchedulerSaturatedError):
                sched.evaluate(states, [(2, 3)], block=False)
            assert sched.rejected == 1
            assert sched.pending == 1  # the stalled hybrid pair
            hold.set()
            t.join(timeout=60)
            assert sched.pending == 0
            stats = sched.stats()
            assert stats["rejected"] == 1
            assert stats["solved"] == 1

    def test_engine_stats_embed_hybrid_block(self, graph):
        from repro.flow.sinkhorn_hybrid import HYBRID_METRICS

        states = distinct_states(30, 2)
        before = HYBRID_METRICS.snapshot()["solves"]
        with hybrid_engine(graph) as engine:
            engine.scheduler.evaluate(states, [(0, 1)])
            stats = engine.stats()
            assert "hybrid" in stats
            for key in (
                "solves",
                "screened_solves",
                "support_density",
                "last_support_density",
                "last_screen_error_bound",
                "max_screen_error_bound",
            ):
                assert key in stats["hybrid"]
            # The pair's reduced solves all went through the hybrid tier.
            assert stats["hybrid"]["solves"] > before


class TestClientFairness:
    """Per-client identity accounting, priority-scaled quotas, and the
    fail-fast ClientSaturatedError path."""

    def test_quota_disabled_by_default(self, graph):
        with fresh_engine(graph) as engine:
            assert engine.scheduler.client_max_pending is None
            assert engine.scheduler.client_quota("normal") is None

    def test_priority_scales_quota(self, graph):
        from repro.snd.scheduler import PRIORITY_WEIGHTS

        with fresh_engine(graph, client_max_pending=4) as engine:
            sched = engine.scheduler
            assert sched.client_quota("normal") == 4
            assert sched.client_quota("high") == int(4 * PRIORITY_WEIGHTS["high"])
            assert sched.client_quota("low") == 2

    def test_quota_floor_is_one(self, graph):
        with fresh_engine(graph, client_max_pending=1) as engine:
            # 1 * 0.5 truncates to 0 -> clamped so every client can
            # always make progress.
            assert engine.scheduler.client_quota("low") == 1

    def test_unknown_priority_rejected(self, graph):
        states = distinct_states(30, 2)
        with fresh_engine(graph) as engine:
            with pytest.raises(ValidationError):
                engine.scheduler.submit(states[0], states[1], priority="urgent")

    def test_bad_client_max_pending_rejected(self):
        with pytest.raises(ValidationError):
            PairScheduler(object(), client_max_pending=0)

    def test_per_client_counters(self, graph):
        states = distinct_states(30, 3)
        with fresh_engine(graph) as engine:
            sched = engine.scheduler
            sched.evaluate(states, [(0, 1), (1, 2)], client="alice")
            sched.evaluate(states, [(0, 1)], client="bob",
                           transitions=None)
            stats = sched.stats()
            assert stats["clients"]["alice"]["requested"] == 2
            assert stats["clients"]["alice"]["solved"] == 2
            assert stats["clients"]["alice"]["pending"] == 0
            assert stats["clients"]["bob"]["requested"] == 1

    def test_anonymous_requests_exempt_from_quota(self, graph):
        states = distinct_states(30, 4)
        pairs = [(0, 1), (1, 2), (2, 3)]
        with fresh_engine(graph, client_max_pending=1) as engine:
            # No client identity: the per-client cap never applies.
            values = engine.scheduler.evaluate(states, pairs)
            assert len(values) == 3
            assert engine.scheduler.client_rejected == 0

    def test_greedy_client_hits_429_path_while_other_flows(self, graph):
        """One client saturates its quota while a solve is held in
        flight; its next distinct pair fails fast with
        ClientSaturatedError, the other client's request still admits."""
        from repro.exceptions import ClientSaturatedError

        states = distinct_states(30, 6)
        with fresh_engine(graph, client_max_pending=1) as engine:
            sched = engine.scheduler
            solve_started = threading.Event()
            hold = threading.Event()
            original = engine._solve_pairs_local

            def slow_solve(sts, pairs):
                solve_started.set()
                hold.wait(timeout=30)
                return original(sts, pairs)

            engine._solve_pairs_local = slow_solve
            first: list[float] = []

            def greedy_first():
                first.append(
                    sched.submit(states[0], states[1], client="greedy")
                )

            t = threading.Thread(target=greedy_first)
            t.start()
            try:
                assert solve_started.wait(timeout=30)
                # greedy now holds its whole quota (1 pending pair): a
                # distinct second pair fails fast, it does not queue.
                with pytest.raises(ClientSaturatedError):
                    sched.submit(
                        states[2], states[3], client="greedy", block=False
                    )
            finally:
                hold.set()
                t.join(timeout=60)
            # A different identity was never rationed: its request admits
            # and solves normally.
            polite = sched.submit(states[4], states[5], client="polite")
            assert polite >= 0
            stats = sched.stats()
            assert stats["client_rejected"] == 1
            assert stats["clients"]["greedy"]["rejected"] == 1
            assert stats["clients"]["greedy"]["solved"] == 1
            assert stats["clients"]["polite"]["rejected"] == 0
            assert first and first[0] >= 0

    def test_coalesced_duplicates_do_not_consume_quota(self, graph):
        """Duplicates of an in-flight pair attach to the existing entry,
        so a client replaying one hot pair never trips its own quota."""
        states = distinct_states(30, 2)
        with fresh_engine(graph, client_max_pending=1) as engine:
            sched = engine.scheduler
            values = sched.evaluate(
                states, [(0, 1), (0, 1), (0, 1)], client="replayer"
            )
            assert len(set(values)) == 1
            assert sched.client_rejected == 0
            assert sched.stats()["clients"]["replayer"]["requested"] == 3
