"""Semantic invariances of SND beyond fast==direct.

These pin down properties a user of the measure relies on implicitly:
polarity symmetry (relabelling "+" <-> "-" globally cannot change the
distance), locality (distant unchanged users do not affect the value),
and monotone response to the γ sensitivity knob.
"""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState
from repro.snd import SND, allocate_banks
from repro.snd.banks import BankAllocation


def flip(state: NetworkState) -> NetworkState:
    """Global polarity relabelling."""
    return NetworkState((-state.values).astype(np.int8))


class TestPolaritySymmetry:
    @pytest.mark.parametrize("seed", range(4))
    def test_global_flip_invariance(self, seed):
        """SND(a, b) == SND(flip(a), flip(b)): the two polarities are
        treated identically by construction (Eq. 3 sums both)."""
        rng = np.random.default_rng(seed)
        n = 25
        g = erdos_renyi_graph(n, 0.2, seed=seed)
        banks = allocate_banks(g, n_clusters=3, seed=0)
        snd = SND(g, banks=banks)
        a = NetworkState(rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n))
        b = NetworkState(rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n))
        assert snd.distance(a, b) == pytest.approx(
            snd.distance(flip(a), flip(b)), abs=1e-9
        )

    def test_single_polarity_equals_mirror(self):
        g = erdos_renyi_graph(20, 0.25, seed=1)
        banks = allocate_banks(g, n_clusters=2, seed=0)
        snd = SND(g, banks=banks)
        a_pos = NetworkState.from_active_sets(20, positive=[0, 1])
        b_pos = NetworkState.from_active_sets(20, positive=[2, 3])
        a_neg = NetworkState.from_active_sets(20, negative=[0, 1])
        b_neg = NetworkState.from_active_sets(20, negative=[2, 3])
        assert snd.distance(a_pos, b_pos) == pytest.approx(
            snd.distance(a_neg, b_neg), abs=1e-9
        )


class TestLocality:
    def test_far_unchanged_users_do_not_matter(self):
        """Adding identical opinion mass to both states in a disconnected
        region leaves the distance unchanged (Lemmas 1-2 in action)."""
        # Component A: nodes 0-9 (ring); component B: nodes 10-19 (ring).
        edges = [(i, (i + 1) % 10) for i in range(10)]
        edges += [(10 + i, 10 + (i + 1) % 10) for i in range(10)]
        g = DiGraph.from_undirected_edges(20, edges)
        banks = allocate_banks(g, strategy="per-bin", seed=0)
        snd = SND(g, banks=banks)
        a = NetworkState.from_active_sets(20, positive=[0])
        b = NetworkState.from_active_sets(20, positive=[1])
        base = snd.distance(a, b)
        # Same comparison with identical extra '-' mass parked far away.
        a2 = a.with_opinions([15, 16], -1)
        b2 = b.with_opinions([15, 16], -1)
        assert snd.distance(a2, b2) == pytest.approx(base, abs=1e-9)

    def test_value_independent_of_inactive_relabeling(self):
        """Changed-user identities matter, unchanged neutral ones don't:
        evaluating on a graph with extra isolated neutral nodes shifts
        nothing but the bank normalisation (checked with per-bin banks,
        whose capacities don't depend on cluster sizes)."""
        g_small = DiGraph.from_undirected_edges(6, [(i, i + 1) for i in range(5)])
        g_big = DiGraph.from_undirected_edges(9, [(i, i + 1) for i in range(5)])
        banks_small = allocate_banks(g_small, strategy="per-bin", gamma=2.0)
        banks_big = allocate_banks(g_big, strategy="per-bin", gamma=2.0)
        a_small = NetworkState.from_active_sets(6, positive=[0, 2])
        b_small = NetworkState.from_active_sets(6, positive=[1, 2])
        a_big = NetworkState.from_active_sets(9, positive=[0, 2])
        b_big = NetworkState.from_active_sets(9, positive=[1, 2])
        d_small = SND(g_small, banks=banks_small).distance(a_small, b_small)
        d_big = SND(g_big, banks=banks_big).distance(a_big, b_big)
        assert d_small == pytest.approx(d_big, abs=1e-9)


class TestGammaResponse:
    def test_mismatch_cost_monotone_in_gamma(self):
        """Pure activations route through banks, so scaling γ up scales the
        distance up (monotonicity of the sensitivity knob)."""
        g = erdos_renyi_graph(20, 0.25, seed=2)
        base_banks = allocate_banks(g, n_clusters=2, hop_cost=1.0, seed=0)
        a = NetworkState.from_active_sets(20, positive=[0])
        b = NetworkState.from_active_sets(20, positive=[0, 5, 7])
        values = []
        for scale in (0.5, 1.0, 2.0):
            banks = BankAllocation(
                clusters=base_banks.clusters,
                gammas=tuple(np.asarray(gam) * scale for gam in base_banks.gammas),
                n_banks=1,
            )
            values.append(SND(g, banks=banks).distance(a, b))
        assert values[0] < values[1] < values[2]

    def test_equal_mass_insensitive_to_gamma(self):
        """With equal totals no bank is used; γ must not matter."""
        g = erdos_renyi_graph(20, 0.25, seed=3)
        base_banks = allocate_banks(g, n_clusters=2, hop_cost=1.0, seed=0)
        a = NetworkState.from_active_sets(20, positive=[0, 1])
        b = NetworkState.from_active_sets(20, positive=[2, 3])
        values = []
        for scale in (0.5, 2.0):
            banks = BankAllocation(
                clusters=base_banks.clusters,
                gammas=tuple(np.asarray(gam) * scale for gam in base_banks.gammas),
                n_banks=1,
            )
            values.append(SND(g, banks=banks).distance(a, b))
        assert values[0] == pytest.approx(values[1], abs=1e-9)


class TestSeriesBehaviour:
    def test_triangle_inequality_with_size_shares(self, rng):
        """SND with size-proportional bank shares inherits EMD*'s metric
        triangle inequality (random triples)."""
        n = 20
        g = erdos_renyi_graph(n, 0.25, seed=4)
        banks = allocate_banks(g, n_clusters=2, seed=0)
        snd = SND(g, banks=banks, bank_shares="size")
        for _ in range(6):
            states = [
                NetworkState(rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n))
                for _ in range(3)
            ]
            ab = snd.distance(states[0], states[1])
            bc = snd.distance(states[1], states[2])
            ac = snd.distance(states[0], states[2])
            # NOTE: Eq. 3 rebuilds the ground distance from each pair's own
            # states, so even the size-share variant is only approximately
            # triangle-consistent across pairs; allow a 5% slack.
            assert ac <= (ab + bc) * 1.05 + 1e-9
