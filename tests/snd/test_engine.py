"""Tests for the persistent engine, the incremental corpus, and streaming."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState, StateSeries
from repro.snd import SND, Corpus, SNDEngine, TransitionCache
from repro.snd.cache import CacheManager, GroundCostCache
from repro.snd.engine import resolve_jobs


def random_series(n: int, length: int, rng: np.random.Generator) -> StateSeries:
    values = np.zeros(n, dtype=np.int8)
    states = []
    for _ in range(length):
        values = values.copy()
        idx = rng.integers(0, n, size=max(2, n // 10))
        values[idx] = rng.integers(-1, 2, size=idx.size)
        states.append(NetworkState(values))
    return StateSeries(states)


def distinct_states(n: int, count: int) -> list[NetworkState]:
    """Pairwise-distinct states (state t has users ``0..t`` positive) so
    transition-cache counters count pairs, not content duplicates."""
    states = []
    for t in range(count):
        values = np.zeros(n, dtype=np.int8)
        values[: t + 1] = 1
        states.append(NetworkState(values))
    return states


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 0.15, seed=7)


@pytest.fixture(scope="module")
def snd(graph):
    return SND(graph, n_clusters=3, seed=0)


def fresh_snd(graph):
    return SND(graph, n_clusters=3, seed=0)


class TestResolveJobs:
    def test_serial_spellings(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_auto_bounded(self, monkeypatch):
        import repro.snd.scheduler as scheduler_mod

        monkeypatch.setattr(scheduler_mod.os, "cpu_count", lambda: 1)
        assert resolve_jobs("auto") == 1  # never a pool on 1 CPU
        monkeypatch.setattr(scheduler_mod.os, "cpu_count", lambda: 16)
        assert resolve_jobs("auto") == 4

    @pytest.mark.parametrize("bad", [0, -2, -1000])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValidationError, match=str(bad)):
            resolve_jobs(bad)

    @pytest.mark.parametrize("bad", ["fast", "", "2", 2.5, True, [1]])
    def test_non_integer_rejected(self, bad):
        # Each rejection names the offending value in the message.
        with pytest.raises(ValidationError, match="got"):
            resolve_jobs(bad)


class TestEngineSeries:
    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_matches_naive_loop(self, graph, snd, rng, executor):
        series = random_series(40, 7, rng)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        with SNDEngine(fresh_snd(graph), jobs=2, executor=executor) as engine:
            assert np.array_equal(engine.evaluate_series(series), naive)

    def test_serial_engine(self, graph, snd, rng):
        series = random_series(40, 6, rng)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            assert np.array_equal(engine.evaluate_series(series), naive)

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_pool_persists_across_calls(self, graph, rng, executor):
        series = random_series(40, 6, rng)
        with SNDEngine(fresh_snd(graph), jobs=2, executor=executor) as engine:
            first = engine.evaluate_series(series)
            second = engine.evaluate_series(series)
            third = engine.pairwise_matrix(list(series)[:4])
            assert engine.pool_starts == 1  # one launch serves every call
            assert np.array_equal(first, second)
            assert third.shape == (4, 4)

    def test_pool_restarts_when_outgrown(self, graph, rng):
        small = random_series(40, 4, rng)
        with SNDEngine(fresh_snd(graph), jobs=2) as engine:
            engine.evaluate_series(small)
            starts = engine.pool_starts
            capacity = engine.stats()["capacity"]
            big = random_series(40, capacity + 5, rng)
            reference = fresh_snd(graph).evaluate_series(big)
            assert np.array_equal(engine.evaluate_series(big), reference)
            assert engine.pool_starts == starts + 1

    def test_window_and_transitions(self, graph, rng):
        series = random_series(40, 7, rng)
        scratch = fresh_snd(graph).evaluate_series(series)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            windowed = engine.evaluate_series(series, window=3)
            assert np.array_equal(scratch, windowed)
            assert engine.caches.transitions.fresh == len(series) - 1
            # Re-sweep answers everything from the engine's hierarchy.
            again = engine.evaluate_series(
                series, transitions=engine.caches.transitions
            )
            assert np.array_equal(scratch, again)
            assert engine.caches.transitions.fresh == len(series) - 1

    def test_engine_shares_snd_cache_hierarchy(self, graph, rng):
        snd = fresh_snd(graph)
        series = random_series(40, 5, rng)
        with SNDEngine(snd, jobs=None) as engine:
            assert engine.caches is snd.caches
            engine.evaluate_series(series)
            assert snd.ground_cache.builds > 0

    def test_closed_engine_rejects_pool_use(self, graph, rng):
        engine = SNDEngine(fresh_snd(graph), jobs=2)
        series = random_series(40, 5, rng)
        engine.evaluate_series(series)
        engine.close()
        with pytest.raises(ValidationError):
            engine.evaluate_series(series)

    def test_stats_surface(self, graph, rng):
        with SNDEngine(fresh_snd(graph), jobs=2) as engine:
            engine.evaluate_series(random_series(40, 5, rng))
            stats = engine.stats()
            assert stats["jobs"] == 2 and stats["executor"] == "process"
            assert stats["pool_starts"] == 1 and stats["pool_alive"]
            assert "ground" in stats["caches"]

    def test_bad_executor_rejected(self, graph):
        with pytest.raises(ValidationError):
            SNDEngine(fresh_snd(graph), executor="gpu")


class TestEnginePairwise:
    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_matches_batch_wrapper(self, graph, snd, rng, executor):
        states = list(random_series(40, 5, rng))
        reference = snd.pairwise_matrix(states)
        with SNDEngine(fresh_snd(graph), jobs=2, executor=executor) as engine:
            assert np.array_equal(engine.pairwise_matrix(states), reference)

    def test_transitions_skip_solved_pairs(self, graph):
        states = distinct_states(40, 5)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            cache = TransitionCache()
            first = engine.pairwise_matrix(states, transitions=cache)
            assert cache.fresh == 10  # 5*4/2 pairs
            second = engine.pairwise_matrix(states, transitions=cache)
            assert cache.fresh == 10  # nothing re-solved
            assert np.array_equal(first, second)

    def test_trivial_sizes(self, graph):
        with SNDEngine(fresh_snd(graph), jobs=2) as engine:
            assert engine.pairwise_matrix([]).shape == (0, 0)
            one = engine.pairwise_matrix([NetworkState.neutral(40)])
            assert one.shape == (1, 1) and one[0, 0] == 0.0


class TestCorpusIncremental:
    """The acceptance contract: ``Corpus.extend`` is bit-identical to a
    from-scratch matrix while solving only the new transitions."""

    @pytest.mark.parametrize("executor", ["process", "thread"])
    @pytest.mark.parametrize("k", [1, 3])
    def test_extend_bit_identical_and_minimal(self, graph, executor, k):
        states = distinct_states(40, 6 + k)
        scratch = fresh_snd(graph).pairwise_matrix(states)
        with SNDEngine(fresh_snd(graph), jobs=2, executor=executor) as engine:
            corpus = Corpus(engine, states[:6])
            before = engine.caches.transitions.fresh
            extended = corpus.extend(states[6:])
            solved = engine.caches.transitions.fresh - before
            assert solved == k * 6 + k * (k - 1) // 2  # only the new pairs
            assert np.array_equal(extended, scratch)  # bit-identical

    @pytest.mark.parametrize("k", [1, 3])
    def test_extend_under_cache_pressure(self, graph, k):
        # A one-entry ground cache forces constant rebuilds; the matrix
        # and the solved-pair counter must both survive.
        states = distinct_states(40, 5 + k)
        scratch = fresh_snd(graph).pairwise_matrix(states)
        snd = fresh_snd(graph)
        caches = CacheManager(ground=GroundCostCache(maxsize=1))
        with SNDEngine(snd, jobs=None, caches=caches) as engine:
            corpus = Corpus(engine, states[:5])
            before = engine.caches.transitions.fresh
            extended = corpus.extend(states[5:])
            assert engine.caches.transitions.fresh - before == k * 5 + k * (k - 1) // 2
            assert np.array_equal(extended, scratch)

    def test_extend_grows_undersized_transition_cache(self, graph):
        # With a cache smaller than the pair count, LRU eviction during
        # seeding used to chase the probe order and re-solve every old
        # pair; extend() must grow the cache to fit all pairs first.
        states = distinct_states(40, 8)
        caches = CacheManager(transition_size=2)
        with SNDEngine(fresh_snd(graph), jobs=None, caches=caches) as engine:
            corpus = Corpus(engine, states[:6])
            before = engine.caches.transitions.fresh
            corpus.extend(states[6:])
            assert engine.caches.transitions.fresh - before == 2 * 6 + 1
            assert engine.caches.transitions.maxsize >= 8 * 7 // 2

    def test_repeated_appends(self, graph):
        states = distinct_states(40, 7)
        scratch = fresh_snd(graph).pairwise_matrix(states)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states[:4])
            for state in states[4:]:
                n_before = len(corpus)
                before = engine.caches.transitions.fresh
                corpus.append(state)
                assert engine.caches.transitions.fresh - before == n_before
            assert np.array_equal(corpus.matrix, scratch)

    def test_empty_extend_is_noop(self, graph):
        states = distinct_states(40, 3)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states)
            before = engine.caches.transitions.fresh
            matrix = corpus.extend([])
            assert engine.caches.transitions.fresh == before
            assert matrix.shape == (3, 3)

    def test_accepts_bare_snd(self, graph):
        corpus = Corpus(fresh_snd(graph), distinct_states(40, 3))
        assert isinstance(corpus.engine, SNDEngine)
        assert corpus.matrix.shape == (3, 3)
        corpus.engine.close()

    def test_query_nearest(self, graph):
        states = distinct_states(40, 5)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states)
            hits = corpus.query(states[2], k=2)
            assert hits[0] == (2, 0.0)  # itself, at distance zero
            assert len(hits) == 2
            with pytest.raises(ValidationError):
                corpus.query(states[0], k=0)

    def test_query_empty_corpus(self, graph):
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            with pytest.raises(ValidationError):
                Corpus(engine).query(NetworkState.neutral(40))

    def test_save_load_roundtrip(self, graph):
        from repro.store import ExperimentStore

        states = distinct_states(40, 4)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states)
            with ExperimentStore(":memory:") as store:
                store.save_graph("g", graph)
                corpus.save(store, "g", "c")
                loaded = Corpus.load(store, engine, "g", "c")
            assert np.array_equal(loaded.matrix, corpus.matrix)
            assert all(a == b for a, b in zip(loaded.states, corpus.states))
            # Extension of the rehydrated corpus stays minimal: the stored
            # matrix reseeds the transition cache.
            fresh_engine_cache = engine.caches.transitions.fresh
            loaded.extend(distinct_states(40, 5)[4:])
            assert engine.caches.transitions.fresh - fresh_engine_cache == 4

    @pytest.mark.slow
    @pytest.mark.parametrize("executor", ["process", "thread"])
    @pytest.mark.parametrize("k", [1, 3])
    def test_extend_matrix_property(self, graph, rng, executor, k):
        """Randomised extension property across executors and pressure."""
        series = random_series(40, 6 + k, rng)
        states = list(series)
        scratch = fresh_snd(graph).pairwise_matrix(states)
        caches = CacheManager(ground=GroundCostCache(maxsize=2))
        with SNDEngine(fresh_snd(graph), jobs=2, executor=executor, caches=caches) as engine:
            corpus = Corpus(engine, states[:6])
            extended = corpus.extend(states[6:])
            assert np.array_equal(extended, scratch)


class TestStreaming:
    def test_stream_distances_match_series(self, graph, rng):
        series = random_series(40, 7, rng)
        reference = fresh_snd(graph).evaluate_series(series)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            updates = list(engine.stream(series, window=4))
        distances = [u.distance for u in updates if u.distance is not None]
        assert np.array_equal(np.array(distances), reference)
        # T state updates plus one final flush.
        assert len(updates) == len(series) + 1

    def test_stream_reuses_transition_cache(self, graph):
        states = distinct_states(40, 6)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            list(engine.stream(states))
            assert engine.caches.transitions.fresh == 5
            list(engine.stream(states))  # replay: all from cache
            assert engine.caches.transitions.fresh == 5

    def test_stream_window_bounds_recent_series(self, graph, rng):
        series = random_series(40, 8, rng)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            updates = list(engine.stream(series, window=3))
        for update in updates:
            assert update.window_distances.size <= 2  # window-1 distances

    def test_scores_lag_one_state(self, graph, rng):
        series = random_series(40, 6, rng)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            updates = list(engine.stream(series))
        # First two states carry no score; state t >= 2 scores t-2.
        assert updates[0].scored is None and updates[1].scored is None
        for t in range(2, len(series)):
            assert updates[t].scored is not None
            assert updates[t].scored.index == t - 2
        assert updates[-1].scored is not None  # the flush update

    def test_stream_scores_equal_offline_detector(self, graph, rng):
        from repro.analysis.anomaly import (
            StreamingAnomalyDetector,
            anomaly_scores,
            normalize_distance_series,
        )

        series = random_series(40, 8, rng)
        reference = fresh_snd(graph).evaluate_series(series)
        counts = series.activation_counts()
        offline = anomaly_scores(
            normalize_distance_series(reference, counts, scale=False)
        )
        detector = StreamingAnomalyDetector(threshold=0.5, scale=False)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            list(engine.stream(series, detector=detector))
        assert np.allclose(detector.scores(), offline, atol=1e-12)

    def test_empty_and_single_state_streams(self, graph):
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            assert list(engine.stream([])) == []
            only = list(engine.stream([NetworkState.neutral(40)]))
            assert len(only) == 1
            assert only[0].distance is None and only[0].scored is None

    def test_bad_window_rejected(self, graph):
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            with pytest.raises(ValidationError):
                list(engine.stream([NetworkState.neutral(40)], window=1))


class TestMetricSpaceConsumers:
    def test_state_distance_matrix_accepts_corpus(self, graph):
        from repro.analysis.metric_space import state_distance_matrix

        states = distinct_states(40, 4)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states)
            solved = engine.caches.transitions.fresh
            matrix = state_distance_matrix(states, corpus)
            assert engine.caches.transitions.fresh == solved  # no recompute
            assert np.array_equal(matrix, corpus.matrix)

    def test_state_distance_matrix_accepts_engine(self, graph, snd, rng):
        from repro.analysis.metric_space import state_distance_matrix

        states = list(random_series(40, 4, rng))
        reference = snd.pairwise_matrix(states)
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            assert np.array_equal(state_distance_matrix(states, engine), reference)

    def test_corpus_with_other_items_falls_back_to_engine(self, graph):
        from repro.analysis.metric_space import state_distance_matrix

        states = distinct_states(40, 5)
        reference = fresh_snd(graph).pairwise_matrix(states[1:])
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            corpus = Corpus(engine, states[:3])
            matrix = state_distance_matrix(states[1:], corpus)
            assert np.array_equal(matrix, reference)


class TestCloseIdempotent:
    """close() must be safe to call twice, after __del__, and at exit."""

    def test_double_close(self, graph):
        engine = SNDEngine(fresh_snd(graph), jobs=None)
        engine.close()
        engine.close()  # must not raise

    def test_context_exit_after_explicit_close(self, graph):
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            engine.close()
        # __exit__ ran close() again — reaching here without raising is the test

    def test_del_after_close(self, graph):
        engine = SNDEngine(fresh_snd(graph), jobs=None)
        engine.close()
        engine.__del__()  # must not raise

    def test_double_close_with_live_pool_releases_shm(self, graph, rng):
        series = random_series(40, 4, rng)
        engine = SNDEngine(fresh_snd(graph), jobs=2)
        engine.evaluate_series(series)  # force pool + shm creation
        shm = engine._shm
        engine.close()
        assert engine._shm is None and engine._pool is None
        if shm is not None:
            # The segment is actually gone: re-attaching must fail.
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=shm.name)
        engine.close()
        engine.__del__()

    def test_del_on_partially_constructed_engine(self, graph):
        # __del__ after a failed __init__ sees missing attributes.
        engine = SNDEngine.__new__(SNDEngine)
        engine.__del__()  # must not raise

    def test_closed_engine_still_rejects_pool_use(self, graph, rng):
        series = random_series(40, 4, rng)
        engine = SNDEngine(fresh_snd(graph), jobs=2)
        engine.close()
        engine.close()
        with pytest.raises(ValidationError):
            engine._ensure_process_pool(list(series))


class TestConcurrentEngine:
    """Hammer one engine from many threads with overlapping pairs."""

    def test_threads_bit_identical_and_coalesced(self, graph):
        import threading

        states = distinct_states(40, 8)
        all_pairs = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        serial_snd = fresh_snd(graph)
        expected = {
            (i, j): serial_snd.distance(states[i], states[j]) for i, j in all_pairs
        }
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            sched = engine.scheduler
            transitions = engine.caches.transitions
            # 6 threads, each sweeping an overlapping slice of the pairs
            # (every pair is requested by at least two threads).
            slices = [all_pairs[k::3] + all_pairs[(k + 1) % 3 :: 3] for k in range(6)]
            results: dict[int, list[float]] = {}
            errors: list[BaseException] = []

            def client(idx: int) -> None:
                try:
                    results[idx] = sched.evaluate(
                        states, slices[idx], transitions=transitions
                    )
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            for idx, pairs in enumerate(slices):
                assert results[idx] == [expected[p] for p in pairs], idx
            # Duplicates across threads were answered by cache/coalescing:
            # each unique pair was solved exactly once.
            assert sched.solved == len(all_pairs)
            assert sched.requested == sum(len(s) for s in slices)
            assert (
                sched.cache_answered + sched.coalesced
                == sched.requested - sched.solved
            )

    def test_threads_through_public_entry_points(self, graph, rng):
        import threading

        series = StateSeries(distinct_states(40, 6))
        serial_snd = fresh_snd(graph)
        expected_series = np.array(
            [serial_snd.distance(a, b) for a, b in series.transitions()]
        )
        expected_matrix = serial_snd.pairwise_matrix(list(series))
        with SNDEngine(fresh_snd(graph), jobs=None) as engine:
            out: dict[str, object] = {}
            errors: list[BaseException] = []

            def run(name, fn):
                try:
                    out[name] = fn()
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=run, args=(f"s{k}", lambda: engine.evaluate_series(series))
                )
                for k in range(3)
            ] + [
                threading.Thread(
                    target=run,
                    args=(f"m{k}", lambda: engine.pairwise_matrix(list(series))),
                )
                for k in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            for k in range(3):
                assert np.array_equal(out[f"s{k}"], expected_series)
            for k in range(2):
                assert np.array_equal(out[f"m{k}"], expected_matrix)


class TestWarmStartedEngine:
    """The basis-cache layer: solver-gated activation, counter-asserted
    temporal locality, warm-vs-cold bit-identity, and append-only slots."""

    def constant_adopter_series(self, n: int, length: int) -> StateSeries:
        """States with a *constant* number of +1 and -1 adopters: every
        reduced transportation instance is balanced with integer masses,
        so network-simplex arithmetic stays fully integral and warm solves
        are bitwise identical to cold ones. Most adopters persist across
        states (one per camp drifts), giving consecutive instances the
        overlapping node-label sets that basis remapping feeds on — the
        paper's stationary-background regime."""
        states = []
        for t in range(length):
            values = np.zeros(n, dtype=np.int8)
            values[[0, 3, (6 + t) % n]] = 1
            values[[20, (25 + t) % n]] = -1
            states.append(NetworkState(values))
        return StateSeries(states)

    def ns_snd(self, graph):
        return SND(graph, n_clusters=3, seed=0, solver="network-simplex")

    def test_activation_policy(self, graph):
        assert SNDEngine(self.ns_snd(graph), jobs=None)._basis_cache() is not None
        # solver="auto" is warm-capable by default: its basis-aware
        # selection routes cached-basis instances to the network simplex.
        auto = SND(graph, n_clusters=3, seed=0, solver="auto")
        assert SNDEngine(auto, jobs=None)._basis_cache() is not None
        # Pure ssp never consumes a basis, so the store stays off.
        assert SNDEngine(fresh_snd(graph), jobs=None)._basis_cache() is None
        hybrid = SND(graph, n_clusters=3, seed=0, solver="sinkhorn-hybrid")
        assert SNDEngine(hybrid, jobs=None)._basis_cache() is None  # auto: warm-exact only
        assert (
            SNDEngine(hybrid, jobs=None, use_basis_cache=True)._basis_cache()
            is not None
        )
        assert (
            SNDEngine(self.ns_snd(graph), jobs=None, use_basis_cache=False)
            ._basis_cache()
            is None
        )
        stats = SNDEngine(self.ns_snd(graph), jobs=None).stats()
        assert stats["basis_cache_active"]
        assert "network_simplex" in stats and "slot_writes" in stats

    def test_bad_use_basis_cache_rejected(self, graph):
        with pytest.raises(ValidationError, match="use_basis_cache"):
            SNDEngine(fresh_snd(graph), use_basis_cache="always")

    def test_window_shift_of_one_hits_warm_start(self, graph):
        """The headline locality counter-assert: after sweeping a window,
        sweeping the window shifted by one state answers all but one
        transition from the transition cache and solves the single new
        transition with *warm* network-simplex solves (supplier-channel
        basis hits), pivoting less than the cold sweep did per solve."""
        from repro.flow.network_simplex import SIMPLEX_METRICS

        series = self.constant_adopter_series(40, 7)
        with SNDEngine(self.ns_snd(graph), jobs=None) as engine:
            SIMPLEX_METRICS.reset()
            engine.evaluate_series(series[:6], transitions=engine.caches.transitions)
            cold = SIMPLEX_METRICS.snapshot()
            assert cold["cold_solves"] > 0
            hits_before = engine.caches.bases.stats()["hits"]
            SIMPLEX_METRICS.reset()
            engine.evaluate_series(series[1:7], transitions=engine.caches.transitions)
            warm = SIMPLEX_METRICS.snapshot()
            bases = engine.caches.bases.stats()
        # Exactly one new transition was solved; its reverse terms (3/4)
        # are always warmed by terms 1/2 of the same pair (reverse
        # channel), while the forward terms depend on label overlap with
        # the previous window step — common-mass cancellation keeps only
        # the *moving* adopters in a reduced instance, so forward overlap
        # is workload-dependent (the corpus/flare benchmarks exercise it).
        assert warm["solves"] == 4  # one transition, four terms
        assert warm["warm_solves"] >= 2
        assert warm["warm_solves"] >= warm["cold_solves"]
        assert bases["hits"] > hits_before
        assert bases["supplier_hits"] + bases["reverse_hits"] + bases["exact_hits"] > 0
        assert warm["warm_pivots_per_solve"] < max(
            cold["cold_pivots_per_solve"], 1.0
        )

    def rotating_adopter_series(self, n: int, length: int) -> StateSeries:
        """Adopter camps that rotate by 10 positions per state: consecutive
        states share only 2 of 12 adopters per camp, so common-mass
        cancellation leaves ~10x10 reduced instances — past the auto
        policy's tiny-instance simplex floor, where basis-aware routing
        actually changes the solver choice."""
        states = []
        for t in range(length):
            values = np.zeros(n, dtype=np.int8)
            values[(np.arange(12) + t * 10) % n] = 1
            values[(np.arange(12) + 20 + t * 10) % n] = -1
            states.append(NetworkState(values))
        return StateSeries(states)

    def test_auto_solver_warm_starts_without_opt_in(self, graph):
        """Satellite counter-assert: under plain ``solver="auto"`` (no
        ``warm_basis`` opt-in anywhere) the engine's basis cache is active
        and the auto policy routes the mid-size reduced instances to the
        network simplex, whose reverse-channel hits warm-start the second
        direction of every pair — visible in the pivots-per-solve
        counters of ``engine.stats()``."""
        from repro.flow.network_simplex import SIMPLEX_METRICS

        series = self.rotating_adopter_series(40, 4)
        auto = SND(graph, n_clusters=3, seed=0, solver="auto")
        with SNDEngine(auto, jobs=None) as engine:
            SIMPLEX_METRICS.reset()
            values_warm = engine.evaluate_series(
                series, transitions=engine.caches.transitions
            )
            metrics = engine.stats()["network_simplex"]
            bases = engine.caches.bases.stats()
        assert metrics["solves"] > 0  # auto reached the simplex tier at all
        assert metrics["warm_solves"] > 0
        assert bases["hits"] > 0
        assert metrics["warm_pivots_per_solve"] < max(
            metrics["cold_pivots_per_solve"], 1.0
        )
        # Routing must not move the values: an auto engine with the basis
        # store disabled (ssp/lp tiers, all exact) agrees on every
        # transition.
        with SNDEngine(
            SND(graph, n_clusters=3, seed=0, solver="auto"),
            jobs=None,
            use_basis_cache=False,
        ) as cold_engine:
            values_cold = cold_engine.evaluate_series(series)
        assert values_warm == pytest.approx(values_cold, rel=1e-9, abs=1e-9)

    def test_warm_bit_identical_to_cold(self, graph):
        """Fully integral series: the warm-started engine's distances are
        *bitwise* the cold engine's (not merely close)."""
        series = self.constant_adopter_series(40, 8)
        with SNDEngine(self.ns_snd(graph), jobs=None) as warm_engine, SNDEngine(
            self.ns_snd(graph), jobs=None, use_basis_cache=False
        ) as cold_engine:
            warm_vals = warm_engine.evaluate_series(series)
            cold_vals = cold_engine.evaluate_series(series)
            assert warm_engine.caches.bases.stats()["hits"] > 0
            assert cold_engine.caches.bases.stats()["hits"] == 0
        assert np.array_equal(warm_vals, cold_vals)

    def test_thread_executor_matches_serial(self, graph):
        series = self.constant_adopter_series(40, 6)
        with SNDEngine(self.ns_snd(graph), jobs=None) as serial, SNDEngine(
            self.ns_snd(graph), jobs=2, executor="thread"
        ) as threaded:
            assert np.array_equal(
                serial.evaluate_series(series), threaded.evaluate_series(series)
            )

    def test_slot_writes_append_only(self, graph):
        """Satellite contract: corpus appends write only the *new* rows of
        the shared state matrix (previously ``N + k`` rewrites per
        extend)."""
        states = distinct_states(40, 5)
        with SNDEngine(fresh_snd(graph), jobs=2) as engine:
            corpus = Corpus(engine, states)
            assert engine.slot_writes == 5
            assert engine.pool_starts == 1
            corpus.extend(distinct_states(40, 7)[5:])  # 2 genuinely new states
            assert engine.slot_writes == 7
            assert engine.pool_starts == 1
            # Re-evaluating resident states writes nothing further.
            engine.pairwise_matrix(states)
            assert engine.slot_writes == 7
            assert engine.stats()["slot_writes"] == 7

    def test_slot_overflow_resets_map_not_pool(self, graph):
        """When distinct states outgrow the matrix rows, only the slot map
        resets — the pool (and its warmed worker caches) survives."""
        with SNDEngine(fresh_snd(graph), jobs=2) as engine:
            engine._ensure_process_pool(distinct_states(40, 5))
            assert engine._capacity == 64 and len(engine._slots) == 5
            starts = engine.pool_starts
            # 62 fresh fingerprints: 5 + 62 > 64 forces the map reset.
            batch = []
            for t in range(62):
                values = np.zeros(40, dtype=np.int8)
                values[t % 40] = -1
                values[(t + 1) % 40] = -1 if t < 40 else 1
                batch.append(NetworkState(values))
            _, slot_of = engine._ensure_process_pool(batch)
            assert engine.pool_starts == starts  # no relaunch
            assert sorted(slot_of) == list(range(len(batch)))  # remapped from 0
            assert len(engine._slots) == len(batch)
