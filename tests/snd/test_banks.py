"""Tests for bank allocation strategies."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.generators import erdos_renyi_graph, two_cluster_graph
from repro.snd.banks import BankAllocation, allocate_banks


class TestBankAllocation:
    def test_global_strategy(self):
        g = erdos_renyi_graph(20, 0.2, seed=0)
        banks = allocate_banks(g, strategy="global")
        assert banks.n_clusters == 1
        assert len(banks.clusters[0]) == 20

    def test_per_bin_strategy(self):
        g = erdos_renyi_graph(10, 0.2, seed=0)
        banks = allocate_banks(g, strategy="per-bin")
        assert banks.n_clusters == 10
        assert all(len(c) == 1 for c in banks.clusters)

    def test_cluster_strategy_partition(self):
        g, *_ = two_cluster_graph(15, seed=1)
        banks = allocate_banks(g, strategy="cluster", n_clusters=4, seed=0)
        banks.validate(g.num_nodes)
        assert banks.n_clusters == 4

    def test_default_cluster_count(self):
        g = erdos_renyi_graph(100, 0.05, seed=0)
        banks = allocate_banks(g, seed=0)
        assert banks.n_clusters >= 2

    def test_unknown_strategy(self):
        g = erdos_renyi_graph(5, 0.5, seed=0)
        with pytest.raises(ValidationError):
            allocate_banks(g, strategy="quantum")

    def test_gamma_override(self):
        g = erdos_renyi_graph(10, 0.3, seed=0)
        banks = allocate_banks(g, strategy="global", gamma=7.0)
        assert banks.gammas[0][0] == 7.0

    def test_multiple_banks_geometric_ladder(self):
        g = erdos_renyi_graph(10, 0.3, seed=0)
        banks = allocate_banks(g, strategy="global", n_banks=3, gamma=2.0)
        assert banks.gammas[0].tolist() == [2.0, 4.0, 8.0]

    def test_safe_gamma_respects_threshold(self):
        """γ must be >= half the intra-cluster ground diameter (Thm. 3)."""
        from repro.snd.direct import dense_ground_distance
        from repro.snd.ground import GroundDistanceConfig
        from repro.opinions.models.model_agnostic import ModelAgnostic
        from repro.opinions.state import NetworkState

        g, *_ = two_cluster_graph(8, seed=2)
        max_cost = 16
        banks = allocate_banks(g, strategy="cluster", n_clusters=2, max_cost=max_cost, seed=0)
        config = GroundDistanceConfig(model=ModelAgnostic(), max_cost=max_cost)
        dense = dense_ground_distance(
            g, NetworkState.neutral(g.num_nodes), 1, config=config
        )
        for members, gammas in zip(banks.clusters, banks.gammas):
            members = np.asarray(members)
            diameter = dense[np.ix_(members, members)].max()
            assert gammas[0] >= 0.5 * diameter

    def test_cluster_of_lookup(self):
        g = erdos_renyi_graph(12, 0.3, seed=0)
        banks = allocate_banks(g, strategy="cluster", n_clusters=3, seed=0)
        lookup = banks.cluster_of(12)
        for ci, members in enumerate(banks.clusters):
            assert np.all(lookup[np.asarray(members)] == ci)

    def test_gamma_matrix_shape(self):
        g = erdos_renyi_graph(12, 0.3, seed=0)
        banks = allocate_banks(g, strategy="cluster", n_clusters=3, n_banks=2, seed=0)
        assert banks.gamma_matrix().shape == (3, 2)

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            BankAllocation(clusters=(np.array([0]),), gammas=(), n_banks=1)
        with pytest.raises(ValidationError):
            BankAllocation(
                clusters=(np.array([0]),), gammas=(np.array([1.0, 2.0]),), n_banks=1
            )
        with pytest.raises(ValidationError):
            BankAllocation(
                clusters=(np.array([0]),), gammas=(np.array([-1.0]),), n_banks=1
            )

    def test_empty_graph_rejected(self):
        from repro.graph.digraph import DiGraph

        with pytest.raises(ValidationError):
            allocate_banks(DiGraph(0))
