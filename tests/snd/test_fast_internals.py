"""Focused tests for the Theorem 4 pipeline internals."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState
from repro.snd import SND, allocate_banks
from repro.snd.fast import FastTermStats, _min_distance_from_set, emd_star_term_fast
from repro.snd.ground import build_edge_costs


@pytest.fixture
def setting():
    graph = erdos_renyi_graph(25, 0.2, seed=3, directed=True)
    state = NetworkState.neutral(25)
    costs = build_edge_costs(graph, state, 1, ModelAgnostic())
    banks = allocate_banks(graph, n_clusters=3, seed=0)
    return graph, costs, banks


class TestMinDistanceFromSet:
    def test_engines_agree_forward(self, setting):
        graph, costs, _ = setting
        members = np.array([0, 5, 9])
        a = _min_distance_from_set(graph, members, costs, reverse=False, engine="scipy")
        b = _min_distance_from_set(graph, members, costs, reverse=False, engine="python")
        assert np.allclose(a, b)

    def test_engines_agree_reverse(self, setting):
        graph, costs, _ = setting
        members = np.array([2, 7])
        a = _min_distance_from_set(graph, members, costs, reverse=True, engine="scipy")
        b = _min_distance_from_set(graph, members, costs, reverse=True, engine="python")
        assert np.allclose(a, b)

    def test_members_at_zero(self, setting):
        graph, costs, _ = setting
        members = np.array([4])
        dist = _min_distance_from_set(graph, members, costs, reverse=False, engine="scipy")
        assert dist[4] == 0.0

    def test_reverse_means_into_set(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        costs = np.array([2.0, 3.0])
        into = _min_distance_from_set(g, np.array([2]), costs, reverse=True, engine="python")
        assert into[0] == 5.0  # 0 -> 1 -> 2
        out = _min_distance_from_set(g, np.array([2]), costs, reverse=False, engine="python")
        assert not np.isfinite(out[0])  # 2 cannot reach 0


class TestTermEdgeCases:
    def test_identical_histograms_zero(self, setting):
        graph, costs, banks = setting
        h = np.zeros(25)
        h[[1, 2]] = 1.0
        assert emd_star_term_fast(graph, h, h, costs, banks, max_cost=64) == 0.0

    def test_bad_histogram_shape(self, setting):
        graph, costs, banks = setting
        with pytest.raises(ValidationError):
            emd_star_term_fast(graph, np.ones(3), np.ones(25), costs, banks, max_cost=64)

    def test_unknown_solver(self, setting):
        graph, costs, banks = setting
        p = np.zeros(25); p[0] = 1.0
        q = np.zeros(25); q[1] = 1.0
        with pytest.raises(ValidationError):
            emd_star_term_fast(
                graph, p, q, costs, banks, max_cost=64, solver="quantum"
            )

    def test_unknown_bank_metric(self, setting):
        graph, costs, banks = setting
        p = np.zeros(25); p[0] = 1.0
        with pytest.raises(ValidationError):
            emd_star_term_fast(
                graph, p, p, costs, banks, max_cost=64, bank_metric="median"
            )

    def test_empty_supplier_side(self, setting):
        """P empty, Q non-empty: everything comes from P's banks."""
        graph, costs, banks = setting
        p = np.zeros(25)
        q = np.zeros(25); q[[3, 4]] = 1.0
        value = emd_star_term_fast(graph, p, q, costs, banks, max_cost=64)
        assert value > 0

    def test_fractional_masses(self, rng, setting):
        """Real-valued histograms work (the API is not 0/1-only)."""
        graph, costs, banks = setting
        p = rng.uniform(0, 1, 25)
        q = rng.uniform(0, 1, 25)
        value = emd_star_term_fast(graph, p, q, costs, banks, max_cost=64)
        lp = emd_star_term_fast(graph, p, q, costs, banks, max_cost=64, solver="lp")
        assert value == pytest.approx(lp, rel=1e-6)

    def test_stats_populated(self, setting):
        graph, costs, banks = setting
        p = np.zeros(25); p[[0, 1, 2]] = 1.0
        q = np.zeros(25); q[[0, 5]] = 1.0
        stats = FastTermStats()
        emd_star_term_fast(graph, p, q, costs, banks, max_cost=64, stats=stats)
        assert stats.n_suppliers == 2  # users 1, 2 after cancellation
        assert stats.n_consumers == 1  # user 5
        assert stats.n_arcs > 0
        assert stats.cost > 0


class TestSolverConsistencyAtScale:
    @pytest.mark.parametrize("solver", ["ssp", "lp", "cost-scaling"])
    def test_solvers_match_direct(self, solver):
        from repro.snd import snd_direct

        g = erdos_renyi_graph(20, 0.25, seed=6)
        banks = allocate_banks(g, n_clusters=2, seed=1)
        a = NetworkState.from_active_sets(20, positive=[0, 1], negative=[9])
        b = NetworkState.from_active_sets(20, positive=[2], negative=[9, 10])
        fast = SND(g, banks=banks, solver=solver).distance(a, b)
        direct = snd_direct(g, a, b, banks=banks)
        assert fast == pytest.approx(direct, rel=1e-6)
