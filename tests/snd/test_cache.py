"""Tests for the unified cache hierarchy (repro.snd.cache)."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.flow.basis import TransportBasis
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState
from repro.snd import SND, CacheManager, GroundCostCache, TransitionCache
from repro.snd.cache import BasisCache, DijkstraRowCache, _value_nbytes


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 0.15, seed=7)


@pytest.fixture(scope="module")
def snd(graph):
    return SND(graph, n_clusters=3, seed=0)


def fill_ground(manager: CacheManager, snd, graph, n: int) -> None:
    for k in range(n):
        state = NetworkState.from_active_sets(40, positive=[k])
        manager.ground.edge_costs(snd.ground, graph, state, 1)


class TestCacheManager:
    def test_members_and_adoption(self):
        ground = GroundCostCache(8)
        manager = CacheManager(ground=ground)
        assert manager.ground is ground
        assert manager.rows is not None and manager.transitions is not None
        # Adopted caches report into the manager.
        assert ground._manager is manager

    def test_stats_surface(self, graph, snd):
        manager = CacheManager()
        state = NetworkState.from_active_sets(40, positive=[0])
        manager.ground.edge_costs(snd.ground, graph, state, 1)
        manager.ground.edge_costs(snd.ground, graph, state, 1)
        stats = manager.stats()
        assert set(stats) == {
            "ground", "rows", "transitions", "bases", "total_nbytes",
            "memory_budget",
        }
        assert stats["ground"]["hits"] == 1
        assert stats["ground"]["misses"] == stats["ground"]["builds"] == 1
        assert stats["ground"]["size"] == 1
        assert stats["ground"]["nbytes"] > 0
        assert stats["total_nbytes"] >= stats["ground"]["nbytes"]
        assert stats["memory_budget"] is None

    def test_memory_budget_evicts(self, graph, snd):
        manager = CacheManager(memory_budget=1)  # essentially nothing fits
        fill_ground(manager, snd, graph, 4)
        assert manager.nbytes <= max(
            c.nbytes for c in manager._members()
        )  # all but (at most) the newest entry evicted
        assert manager.ground.stats()["evictions"] >= 3

    def test_budget_targets_biggest_cache(self, graph, snd):
        # Cost arrays dwarf transition floats: the budget must evict the
        # ground cache, not starve the transition cache.
        state_a = NetworkState.from_active_sets(40, positive=[0])
        state_b = NetworkState.from_active_sets(40, positive=[1])
        probe = CacheManager()
        probe.ground.edge_costs(snd.ground, graph, state_a, 1)
        one_array = probe.ground.nbytes
        manager = CacheManager(memory_budget=2 * one_array)
        fill_ground(manager, snd, graph, 6)
        for k in range(16):
            manager.transitions.put(
                NetworkState.from_active_sets(40, positive=[k]), state_b, float(k)
            )
        assert manager.transitions.stats()["evictions"] == 0
        assert manager.ground.stats()["evictions"] >= 4

    def test_bad_budget_rejected(self):
        with pytest.raises(ValidationError):
            CacheManager(memory_budget=0)

    def test_eviction_never_breaks_values(self, graph, snd):
        # A starved hierarchy must still produce bit-identical results.
        from repro.snd.batch import evaluate_series
        from repro.opinions.state import StateSeries

        states = [
            NetworkState.from_active_sets(40, positive=list(range(k + 1)))
            for k in range(5)
        ]
        series = StateSeries(states)
        reference = evaluate_series(snd, series)
        manager = CacheManager(memory_budget=1)
        starved = evaluate_series(
            snd, series, cache=manager.ground, row_cache=manager.rows
        )
        assert np.array_equal(reference, starved)

    def test_ensure_ground_capacity_grows_only(self):
        manager = CacheManager(ground_size=4)
        manager.ensure_ground_capacity(16)
        assert manager.ground.maxsize == 16
        manager.ensure_ground_capacity(2)
        assert manager.ground.maxsize == 16

    def test_clear(self, graph, snd):
        manager = CacheManager()
        fill_ground(manager, snd, graph, 3)
        manager.clear()
        assert manager.nbytes == 0
        assert len(manager.ground) == 0

    def test_pickle_drops_entries_keeps_config(self, graph, snd):
        manager = CacheManager(ground_size=7, memory_budget=12345)
        fill_ground(manager, snd, graph, 3)
        clone = pickle.loads(pickle.dumps(manager))
        assert clone.memory_budget == 12345
        assert clone.ground.maxsize == 7
        assert len(clone.ground) == 0 and clone.nbytes == 0
        # The clone is fully wired (budget enforcement still works).
        assert clone.ground._manager is clone
        fill_ground(clone, snd, graph, 2)
        assert len(clone.ground) >= 1


class TestCounters:
    def test_eviction_counter(self):
        cache = TransitionCache(maxsize=2)
        states = [NetworkState.from_active_sets(10, positive=[k]) for k in range(5)]
        for k in range(4):
            cache.put(states[k], states[k + 1], float(k))
        assert cache.evictions == 2
        assert cache.stats()["evictions"] == 2

    def test_contains_does_not_count(self):
        cache = TransitionCache()
        a = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[1])
        assert not cache.contains(a, b)
        cache.put(a, b, 1.0)
        assert cache.contains(a, b)
        assert cache.hits == 0 and cache.misses == 0

    def test_nbytes_tracks_entries(self):
        cache = DijkstraRowCache(maxsize=4)
        row = np.arange(10, dtype=np.float64)
        cache._put(("k", False, 0), row)
        assert cache.nbytes == row.nbytes
        cache._put(("k", False, 0), row)  # overwrite: no double count
        assert cache.nbytes == row.nbytes
        cache.evict_oldest()
        assert cache.nbytes == 0


def _basis(k: int, size: int = 8) -> TransportBasis:
    return TransportBasis(
        rows=np.arange(size) + k, cols=np.arange(size) + 2 * k
    )


class TestBasisCache:
    def test_exact_channel(self):
        cache = BasisCache()
        cache.put_term((b"a", b"b", 1), _basis(0))
        hit = cache.get_warm((b"a", b"b", 1))
        assert hit is not None and hit.cells() == _basis(0).cells()
        assert cache.exact_hits == 1 and cache.hits == 1 and cache.misses == 0

    def test_reverse_channel_transposes(self):
        cache = BasisCache()
        cache.put_term((b"a", b"b", 1), _basis(3))
        hit = cache.get_warm((b"b", b"a", 1))
        assert hit is not None
        assert hit.cells() == _basis(3).transpose().cells()
        assert cache.reverse_hits == 1 and cache.exact_hits == 0

    def test_supplier_channel_most_recent(self):
        cache = BasisCache()
        cache.put_term((b"s", b"old", 1), _basis(1))
        cache.put_term((b"s", b"new", 1), _basis(2))
        # Different consumer, same supplier + opinion: most recent wins.
        hit = cache.get_warm((b"s", b"other", 1))
        assert hit is not None and hit.cells() == _basis(2).cells()
        assert cache.supplier_hits == 1
        # Opinion is part of the index key: no cross-opinion leakage.
        assert cache.get_warm((b"s", b"other", -1)) is None
        assert cache.misses == 1

    def test_one_hit_or_miss_per_lookup(self):
        cache = BasisCache()
        cache.put_term((b"a", b"b", 1), _basis(0))
        cache.get_warm((b"a", b"b", 1))   # exact
        cache.get_warm((b"b", b"a", 1))   # reverse
        cache.get_warm((b"a", b"x", 1))   # supplier
        cache.get_warm((b"z", b"x", 1))   # miss
        assert cache.hits == 3 and cache.misses == 1
        assert (
            cache.exact_hits + cache.reverse_hits + cache.supplier_hits
            == cache.hits
        )

    def test_stale_index_dropped_after_eviction(self):
        cache = BasisCache(maxsize=1)
        cache.put_term((b"a", b"b", 1), _basis(0))
        cache.put_term((b"c", b"d", 1), _basis(1))  # evicts (a, b, 1)
        assert cache.get_warm((b"a", b"x", 1)) is None  # stale index entry
        assert (b"a", 1) not in cache._index
        assert cache.get_warm((b"c", b"x", 1)) is not None

    def test_value_nbytes_counts_basis_payload(self):
        basis = _basis(0, size=16)
        assert _value_nbytes(basis) == basis.nbytes == 2 * 16 * 8

    def test_nbytes_accounting(self):
        cache = BasisCache(maxsize=4)
        cache.put_term((b"a", b"b", 1), _basis(0, size=16))
        assert cache.nbytes == 2 * 16 * 8
        cache.put_term((b"a", b"b", 1), _basis(1, size=4))  # overwrite
        assert cache.nbytes == 2 * 4 * 8

    def test_memory_budget_includes_bases(self):
        """Satellite contract: basis payloads participate in the shared
        budget, and the biggest-cache-first rule evicts the heavy basis
        store before starving the tiny transition floats."""
        basis_bytes = _basis(0, size=64).nbytes
        manager = CacheManager(memory_budget=3 * basis_bytes)
        for k in range(8):
            manager.bases.put_term((b"s%d" % k, b"c", 1), _basis(k, size=64))
        assert manager.bases.stats()["evictions"] >= 5
        assert manager.nbytes <= 3 * basis_bytes
        # Tiny transition entries survive while bases are evicted.
        state_b = NetworkState.from_active_sets(40, positive=[1])
        for k in range(6):
            manager.transitions.put(
                NetworkState.from_active_sets(40, positive=[k]), state_b, float(k)
            )
        for k in range(8, 12):
            manager.bases.put_term((b"s%d" % k, b"c", 1), _basis(k, size=64))
        assert manager.transitions.stats()["evictions"] == 0
        assert manager.bases.stats()["evictions"] >= 8

    def test_pickle_resets_entries_and_index(self):
        cache = BasisCache(maxsize=7)
        cache.put_term((b"a", b"b", 1), _basis(0))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 7
        assert len(clone) == 0 and clone._index == {}
        assert clone.get_warm((b"a", b"b", 1)) is None
        clone.put_term((b"a", b"b", 1), _basis(1))
        assert clone.get_warm((b"a", b"x", 1)) is not None

    def test_clear_resets_index(self):
        cache = BasisCache()
        cache.put_term((b"a", b"b", 1), _basis(0))
        cache.clear()
        assert cache._index == {}
        assert cache.get_warm((b"a", b"x", 1)) is None
