"""Tests for ground-distance construction and Assumption-2 quantization."""

import numpy as np
import pytest

from repro.exceptions import GroundDistanceError, QuantizationError
from repro.graph.digraph import DiGraph
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState
from repro.snd.ground import (
    GroundDistanceConfig,
    build_edge_costs,
    quantize_costs,
    unreachable_cost,
)


class TestQuantization:
    def test_integers_pass_through(self):
        costs = np.array([1.0, 5.0, 64.0])
        out = quantize_costs(costs, max_cost=64)
        assert out.tolist() == [1, 5, 64]
        assert out.dtype == np.int64

    def test_reals_scaled_to_bound(self):
        costs = np.array([0.5, 1.0, 2.0])
        out = quantize_costs(costs, max_cost=8)
        assert out.max() == 8
        assert out.min() >= 1
        # Ratios preserved up to rounding: 2.0 / 0.5 = 4.
        assert out[2] / out[0] == pytest.approx(4.0, rel=0.3)

    def test_floor_at_one(self):
        costs = np.array([1e-9, 100.0])
        out = quantize_costs(costs, max_cost=10)
        assert out[0] == 1

    def test_over_bound_rescaled(self):
        costs = np.array([10.0, 1000.0])
        out = quantize_costs(costs, max_cost=64)
        assert out.max() == 64

    def test_all_zero(self):
        out = quantize_costs(np.zeros(3), max_cost=5)
        assert out.tolist() == [1, 1, 1]

    def test_integer_with_zero_entry_not_rescaled(self):
        # A single zero must be floored to 1, not trigger a rescale that
        # distorts every other integer cost (regression: [0, 1, 5] used to
        # come back [1, 13, 64] under max_cost=64).
        out = quantize_costs(np.array([0.0, 1.0, 5.0]), max_cost=64)
        assert out.tolist() == [1, 1, 5]

    def test_integer_with_zero_above_bound_rescaled(self):
        # Zeros only suppress the rescale while the bound holds.
        out = quantize_costs(np.array([0.0, 1.0, 500.0]), max_cost=64)
        assert out.max() == 64
        assert out.min() >= 1

    def test_empty(self):
        assert quantize_costs(np.array([])).size == 0

    def test_infinite_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_costs(np.array([1.0, np.inf]))

    def test_negative_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_costs(np.array([-1.0]))

    def test_bad_bound_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_costs(np.array([1.0]), max_cost=0)

    def test_unreachable_strictly_above_paths(self):
        # Max finite path cost is U * (n - 1); the clamp must exceed it.
        assert unreachable_cost(10, 64) > 64 * 9


class TestBuildEdgeCosts:
    @pytest.fixture
    def setup(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        state = NetworkState([1, 0, 0])
        return g, state

    def test_default_composition(self, setup):
        g, state = setup
        costs = build_edge_costs(g, state, 1, ModelAgnostic(1, 2, 8))
        # comm (1) + in (0) + out: friendly spreader edge 0->1, neutral 1->2.
        assert costs.tolist() == [2.0, 3.0]

    def test_communication_penalties(self, setup):
        g, state = setup
        costs = build_edge_costs(
            g, state, 1, ModelAgnostic(1, 2, 8),
            communication_penalties=np.array([5.0, 5.0]),
        )
        assert costs.tolist() == [6.0, 7.0]

    def test_adoption_penalties_apply_to_target(self, setup):
        g, state = setup
        costs = build_edge_costs(
            g, state, 1, ModelAgnostic(1, 2, 8),
            adoption_penalties=np.array([0.0, 10.0, 0.0]),
        )
        # Edge 0 -> 1 targets node 1 (+10); edge 1 -> 2 targets node 2 (+0).
        assert costs.tolist() == [12.0, 3.0]

    def test_quantize_produces_integers(self, setup):
        g, state = setup
        costs = build_edge_costs(
            g, state, 1, ModelAgnostic(0.5, 1.7, 8.1), max_cost=32
        )
        assert np.allclose(costs, np.round(costs))
        assert costs.max() <= 32

    def test_quantize_disabled(self, setup):
        g, state = setup
        costs = build_edge_costs(
            g, state, 1, ModelAgnostic(0.5, 1.7, 8.1), quantize=False
        )
        assert costs.tolist() == [1.5, 2.7]

    def test_state_size_checked(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(GroundDistanceError):
            build_edge_costs(g, NetworkState([1, 0]), 1, ModelAgnostic())

    def test_misaligned_penalties_rejected(self, setup):
        g, state = setup
        with pytest.raises(GroundDistanceError):
            build_edge_costs(
                g, state, 1, ModelAgnostic(),
                communication_penalties=np.ones(5),
            )
        with pytest.raises(GroundDistanceError):
            build_edge_costs(
                g, state, 1, ModelAgnostic(),
                adoption_penalties=np.ones(7),
            )

    def test_config_wrapper(self, setup):
        g, state = setup
        config = GroundDistanceConfig(model=ModelAgnostic(1, 2, 8))
        assert np.array_equal(
            config.edge_costs(g, state, 1),
            build_edge_costs(g, state, 1, ModelAgnostic(1, 2, 8)),
        )
