"""SND facade tests: metric-like behaviour, Eq. 3 structure, configuration."""

import numpy as np
import pytest

from repro.exceptions import StateError, ValidationError
from repro.graph.generators import erdos_renyi_graph, star_graph, two_cluster_graph
from repro.opinions.models.independent_cascade import IndependentCascadeModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState, StateSeries
from repro.snd import SND, allocate_banks


@pytest.fixture
def graph():
    return erdos_renyi_graph(30, 0.2, seed=7)


@pytest.fixture
def snd(graph):
    return SND(graph, n_clusters=3, seed=0)


class TestBasicProperties:
    def test_identity(self, graph, snd):
        s = NetworkState.from_active_sets(30, positive=[1, 2], negative=[9])
        assert snd.distance(s, s) == 0.0

    def test_symmetry(self, snd):
        a = NetworkState.from_active_sets(30, positive=[0, 1], negative=[5])
        b = NetworkState.from_active_sets(30, positive=[2], negative=[5, 6])
        assert snd.distance(a, b) == pytest.approx(snd.distance(b, a))

    def test_positive_for_different_states(self, snd):
        a = NetworkState.from_active_sets(30, positive=[0])
        b = NetworkState.from_active_sets(30, positive=[1])
        assert snd.distance(a, b) > 0

    def test_callable_interface(self, snd):
        a = NetworkState.neutral(30)
        b = NetworkState.from_active_sets(30, positive=[3])
        assert snd(a, b) == snd.distance(a, b)

    def test_wrong_state_size_rejected(self, snd):
        with pytest.raises(StateError):
            snd.distance(NetworkState.neutral(10), NetworkState.neutral(10))

    def test_evaluate_terms_sum(self, snd):
        a = NetworkState.from_active_sets(30, positive=[0, 4], negative=[9])
        b = NetworkState.from_active_sets(30, positive=[0], negative=[9, 12])
        result = snd.evaluate(a, b)
        assert result.value == pytest.approx(0.5 * sum(result.terms))
        assert result.n_delta >= 1

    def test_polarity_terms_separate(self, snd):
        """A change involving only '+' users must leave the '-' terms at 0."""
        a = NetworkState.from_active_sets(30, positive=[0, 1])
        b = NetworkState.from_active_sets(30, positive=[0, 2])
        result = snd.evaluate(a, b)
        assert result.terms[1] == 0.0  # negative term a -> b
        assert result.terms[3] == 0.0
        assert result.terms[0] > 0


class TestDistanceSemantics:
    def test_propagated_closer_than_random(self):
        """The Fig. 5 phenomenon at the SND level: new activations adjacent
        to existing mass are cheaper than isolated ones."""
        g, labels, bridges = two_cluster_graph(12, p_in=0.4, n_bridges=2, seed=3)
        snd = SND(g, n_clusters=2, seed=0)
        cluster0 = np.flatnonzero(labels == 0)
        base = NetworkState.from_active_sets(24, positive=cluster0[:6].tolist())
        # Near: activate a neighbor of existing actives; far: an isolated
        # node in the other cluster.
        near_user = int(g.out_neighbors(int(cluster0[0]))[0])
        far_user = int(np.flatnonzero(labels == 1)[-1])
        near = base.with_opinions([near_user], 1)
        far = base.with_opinions([far_user], 1)
        if near == base:  # neighbor already active; pick another
            pytest.skip("degenerate topology for this seed")
        assert snd.distance(base, near) < snd.distance(base, far)

    def test_adverse_path_costs_more(self):
        """Moving '+' mass through a '-' relay costs more than through a
        neutral relay (the §2 motivation). Equal total masses keep banks
        out of play, so the cost is pure network transport."""
        from repro.graph.digraph import DiGraph

        # Two parallel 2-hop paths: 0-1-2 (neutral relay) and 0-3-4
        # ('-' relay), bidirected.
        g = DiGraph.from_undirected_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
        banks = allocate_banks(g, strategy="global", max_cost=64)
        snd = SND(g, ModelAgnostic(1, 2, 8), banks=banks)
        start = NetworkState([1, 0, 0, -1, 0])
        # '+' mass relocates from user 0 to user 2 (via neutral relay 1)...
        via_neutral = NetworkState([0, 0, 1, -1, 0])
        # ... versus from user 0 to user 4 (via the adverse relay 3).
        via_adverse = NetworkState([0, 0, 0, -1, 1])
        assert snd.distance(start, via_adverse) > snd.distance(start, via_neutral)

    def test_pure_activation_priced_by_banks(self):
        """With no mass movement (strict activation), the mismatch routes
        through banks at γ + distance-to-the-bank's-cluster — so two new
        activations inside the same (global) cluster cost the same. This is
        the locality granularity EMD* trades for tractability."""
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        banks = allocate_banks(g, strategy="global", max_cost=64)
        snd = SND(g, banks=banks)
        base = NetworkState([1, 0, 0, 0, 0])
        near = base.with_opinions([1], 1)
        far = base.with_opinions([4], 1)
        assert snd.distance(base, near) == pytest.approx(snd.distance(base, far))

    def test_more_changes_cost_more(self, snd):
        base = NetworkState.from_active_sets(30, positive=[0])
        one = base.with_opinions([10], 1)
        three = base.with_opinions([10, 11, 12], 1)
        assert snd.distance(base, three) > snd.distance(base, one)

    def test_distance_series(self, graph, snd):
        states = [
            NetworkState.from_active_sets(30, positive=[0]),
            NetworkState.from_active_sets(30, positive=[0, 1]),
            NetworkState.from_active_sets(30, positive=[0, 1], negative=[5]),
        ]
        series = StateSeries(states)
        distances = snd.distance_series(series)
        assert distances.shape == (2,)
        assert np.all(distances > 0)


class TestConfiguration:
    def test_engines_agree(self, graph):
        banks = allocate_banks(graph, n_clusters=3, seed=1)
        a = NetworkState.from_active_sets(30, positive=[0, 3], negative=[7])
        b = NetworkState.from_active_sets(30, positive=[1], negative=[7, 8])
        d_scipy = SND(graph, banks=banks, engine="scipy").distance(a, b)
        d_python = SND(graph, banks=banks, engine="python").distance(a, b)
        assert d_scipy == pytest.approx(d_python)

    def test_solvers_agree(self, graph):
        banks = allocate_banks(graph, n_clusters=3, seed=1)
        a = NetworkState.from_active_sets(30, positive=[0, 3])
        b = NetworkState.from_active_sets(30, positive=[1, 2, 4])
        d_ssp = SND(graph, banks=banks, solver="ssp").distance(a, b)
        d_scaling = SND(graph, banks=banks, solver="cost-scaling").distance(a, b)
        assert d_ssp == pytest.approx(d_scaling, rel=1e-6)

    def test_heaps_agree(self, graph):
        banks = allocate_banks(graph, n_clusters=3, seed=1)
        a = NetworkState.from_active_sets(30, positive=[0, 3])
        b = NetworkState.from_active_sets(30, positive=[1])
        values = {
            heap: SND(graph, banks=banks, engine="python", heap=heap).distance(a, b)
            for heap in ("binary", "radix", "pairing")
        }
        assert len({round(v, 9) for v in values.values()}) == 1

    def test_models_change_distance(self, graph):
        banks = allocate_banks(graph, n_clusters=3, seed=1)
        a = NetworkState.from_active_sets(30, positive=[0], negative=[9])
        b = NetworkState.from_active_sets(30, positive=[0, 1], negative=[9])
        agnostic = SND(graph, ModelAgnostic(), banks=banks).distance(a, b)
        icc = SND(graph, IndependentCascadeModel(0.3), banks=banks).distance(a, b)
        assert agnostic != pytest.approx(icc)

    def test_unknown_engine_rejected(self, graph):
        with pytest.raises(ValidationError):
            SND(graph, engine="gpu")

    def test_star_graph_works(self):
        g = star_graph(10)
        snd = SND(g, strategy="global")
        a = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[0, 1])
        assert snd.distance(a, b) > 0
