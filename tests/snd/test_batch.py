"""Tests for the batch SND engine: ground-cost cache, series, pairwise."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.state import NetworkState, StateSeries
from repro.snd import SND, GroundCostCache
from repro.snd.batch import _chunk_ranges


def random_series(n: int, length: int, seed: int) -> StateSeries:
    """A seeded synthetic series where each step flips a few opinions."""
    rng = np.random.default_rng(seed)
    values = np.zeros(n, dtype=np.int8)
    states = []
    for _ in range(length):
        values = values.copy()
        idx = rng.integers(0, n, size=max(2, n // 10))
        values[idx] = rng.integers(-1, 2, size=idx.size)
        states.append(NetworkState(values))
    return StateSeries(states)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 0.15, seed=7)


@pytest.fixture(scope="module")
def snd(graph):
    return SND(graph, n_clusters=3, seed=0)


class TestGroundCostCache:
    def test_hit_returns_same_array(self, graph, snd):
        cache = GroundCostCache()
        state = NetworkState.from_active_sets(40, positive=[0, 1], negative=[5])
        first = cache.edge_costs(snd.ground, graph, state, 1)
        second = cache.edge_costs(snd.ground, graph, state, 1)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_by_content_not_identity(self, graph, snd):
        cache = GroundCostCache()
        a = NetworkState.from_active_sets(40, positive=[3])
        b = NetworkState.from_active_sets(40, positive=[3])  # equal, distinct
        cache.edge_costs(snd.ground, graph, a, 1)
        cache.edge_costs(snd.ground, graph, b, 1)
        assert cache.hits == 1 and cache.misses == 1

    def test_opinion_part_of_key(self, graph, snd):
        cache = GroundCostCache()
        state = NetworkState.from_active_sets(40, positive=[0], negative=[1])
        cache.edge_costs(snd.ground, graph, state, 1)
        cache.edge_costs(snd.ground, graph, state, -1)
        assert cache.misses == 2

    def test_lru_bound(self, graph, snd):
        cache = GroundCostCache(maxsize=2)
        states = [NetworkState.from_active_sets(40, positive=[k]) for k in range(4)]
        for s in states:
            cache.edge_costs(snd.ground, graph, s, 1)
        assert len(cache) == 2
        # Oldest entries evicted: re-asking for state 0 is a miss again.
        cache.edge_costs(snd.ground, graph, states[0], 1)
        assert cache.misses == 5

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValidationError):
            GroundCostCache(maxsize=0)

    def test_pickle_drops_entries_and_lock(self, graph, snd):
        cache = GroundCostCache()
        cache.edge_costs(snd.ground, graph, NetworkState.neutral(40), 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.maxsize == cache.maxsize
        # Clone must be fully usable (lock re-created).
        clone.edge_costs(snd.ground, graph, NetworkState.neutral(40), 1)


class TestEvaluateSeries:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cached_matches_naive_loop(self, snd, seed):
        series = random_series(40, 8, seed)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        cache = GroundCostCache()
        batched = snd.evaluate_series(series, cache=cache)
        assert np.max(np.abs(batched - naive)) <= 1e-9
        assert cache.builds <= 2 * (len(series) - 1) + 2

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_matches_naive_loop(self, snd, executor):
        series = random_series(40, 8, seed=4)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        batched = snd.evaluate_series(series, jobs=2, executor=executor)
        assert np.max(np.abs(batched - naive)) <= 1e-9

    def test_distance_series_unchanged(self, snd):
        series = random_series(40, 6, seed=5)
        expected = np.array([snd.distance(a, b) for a, b in series.transitions()])
        assert np.array_equal(snd.distance_series(series), expected)

    def test_single_state_series(self, snd):
        series = StateSeries([NetworkState.neutral(40)])
        assert snd.evaluate_series(series).size == 0

    def test_more_jobs_than_transitions(self, snd):
        series = random_series(40, 3, seed=6)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        batched = snd.evaluate_series(series, jobs=16, executor="thread")
        assert np.max(np.abs(batched - naive)) <= 1e-9

    def test_unknown_executor_rejected(self, snd):
        series = random_series(40, 4, seed=7)
        with pytest.raises(ValidationError):
            snd.evaluate_series(series, jobs=2, executor="gpu")

    def test_instance_cache_shared_across_calls(self, graph):
        snd = SND(graph, n_clusters=3, seed=0)
        series = random_series(40, 5, seed=8)
        snd.evaluate_series(series)
        builds_first = snd.ground_cache.builds
        snd.evaluate_series(series)  # same states: everything cached
        assert snd.ground_cache.builds == builds_first


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self, snd):
        series = random_series(40, 6, seed=9)
        matrix = snd.pairwise_matrix(series)
        assert matrix.shape == (6, 6)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_matches_per_pair_distance(self, snd):
        states = list(random_series(40, 5, seed=10))
        matrix = snd.pairwise_matrix(states)
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                assert matrix[i, j] == pytest.approx(
                    snd.distance(states[i], states[j]), abs=1e-9
                )

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_matches_serial(self, snd, executor):
        series = random_series(40, 5, seed=11)
        serial = snd.pairwise_matrix(series)
        parallel = snd.pairwise_matrix(series, jobs=3, executor=executor)
        assert np.max(np.abs(serial - parallel)) <= 1e-9

    def test_build_count_linear_in_states(self, snd):
        states = list(random_series(40, 6, seed=12))
        cache = GroundCostCache(maxsize=4 * len(states))
        snd.pairwise_matrix(states, cache=cache)
        assert cache.builds <= 2 * len(states)

    def test_degenerate_sizes(self, snd):
        assert snd.pairwise_matrix([]).shape == (0, 0)
        one = snd.pairwise_matrix([NetworkState.neutral(40)])
        assert one.shape == (1, 1) and one[0, 0] == 0.0


class TestRegistryBatchPath:
    def test_snd_series_routed_through_batch(self, graph):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 5, seed=13)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        context.ensure_snd(n_clusters=3, seed=0)
        serial = registry.series("snd", series, context)
        naive = np.array(
            [context.snd.distance(a, b) for a, b in series.transitions()]
        )
        assert np.max(np.abs(serial - naive)) <= 1e-9
        # The serial batched path populates the SND instance cache (process
        # workers keep their own caches, so only the serial path shows here).
        assert context.snd.ground_cache.builds > 0
        parallel = registry.series("snd", series, context, jobs=2)
        assert np.max(np.abs(parallel - naive)) <= 1e-9

    def test_generic_pairwise_fallback(self, graph):
        from repro.distances import DistanceContext, default_registry
        from repro.distances.vector import hamming_distance

        series = random_series(40, 4, seed=14)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        matrix = registry.pairwise("hamming", series, context)
        states = list(series)
        for i in range(len(states)):
            for j in range(len(states)):
                assert matrix[i, j] == hamming_distance(states[i], states[j])

    def test_unknown_measure_rejected(self, graph):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 3, seed=15)
        with pytest.raises(ValidationError):
            default_registry().pairwise("nope", series, DistanceContext(graph=graph))


class TestStateDistanceMatrix:
    def test_batched_object_used(self, snd):
        from repro.analysis.metric_space import state_distance_matrix

        states = list(random_series(40, 4, seed=16))
        via_helper = state_distance_matrix(states, snd)
        direct = snd.pairwise_matrix(states)
        assert np.array_equal(via_helper, direct)

    def test_callable_fallback(self):
        from repro.analysis.metric_space import state_distance_matrix

        items = [0.0, 1.0, 3.0]
        matrix = state_distance_matrix(items, lambda a, b: abs(a - b))
        assert np.array_equal(
            matrix, np.abs(np.subtract.outer(items, items))
        )


class TestChunking:
    def test_ranges_cover_exactly(self):
        for n_items in (1, 5, 17):
            for n_chunks in (1, 2, 4, 30):
                ranges = _chunk_ranges(n_items, n_chunks)
                flat = [t for a, b in ranges for t in range(a, b)]
                assert flat == list(range(n_items))
                assert len(ranges) <= max(1, min(n_chunks, n_items))
