"""Tests for the batch SND engine: caches, series, windows, pairwise."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.generators import erdos_renyi_graph
from repro.opinions.state import NetworkState, StateSeries
from repro.snd import SND, DijkstraRowCache, GroundCostCache, TransitionCache
from repro.snd.batch import _chunk_ranges, _missing_runs


def random_series(n: int, length: int, rng: np.random.Generator) -> StateSeries:
    """A synthetic series where each step flips a few random opinions."""
    values = np.zeros(n, dtype=np.int8)
    states = []
    for _ in range(length):
        values = values.copy()
        idx = rng.integers(0, n, size=max(2, n // 10))
        values[idx] = rng.integers(-1, 2, size=idx.size)
        states.append(NetworkState(values))
    return StateSeries(states)


def distinct_series(n: int, length: int) -> StateSeries:
    """A series of pairwise-distinct states (state t has users ``0..t``
    positive), for tests that count cache entries per transition."""
    states = []
    for t in range(length):
        values = np.zeros(n, dtype=np.int8)
        values[: t + 1] = 1
        states.append(NetworkState(values))
    return StateSeries(states)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 0.15, seed=7)


@pytest.fixture(scope="module")
def snd(graph):
    return SND(graph, n_clusters=3, seed=0)


class TestGroundCostCache:
    def test_hit_returns_same_array(self, graph, snd):
        cache = GroundCostCache()
        state = NetworkState.from_active_sets(40, positive=[0, 1], negative=[5])
        first = cache.edge_costs(snd.ground, graph, state, 1)
        second = cache.edge_costs(snd.ground, graph, state, 1)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_by_content_not_identity(self, graph, snd):
        cache = GroundCostCache()
        a = NetworkState.from_active_sets(40, positive=[3])
        b = NetworkState.from_active_sets(40, positive=[3])  # equal, distinct
        cache.edge_costs(snd.ground, graph, a, 1)
        cache.edge_costs(snd.ground, graph, b, 1)
        assert cache.hits == 1 and cache.misses == 1

    def test_opinion_part_of_key(self, graph, snd):
        cache = GroundCostCache()
        state = NetworkState.from_active_sets(40, positive=[0], negative=[1])
        cache.edge_costs(snd.ground, graph, state, 1)
        cache.edge_costs(snd.ground, graph, state, -1)
        assert cache.misses == 2

    def test_lru_bound(self, graph, snd):
        cache = GroundCostCache(maxsize=2)
        states = [NetworkState.from_active_sets(40, positive=[k]) for k in range(4)]
        for s in states:
            cache.edge_costs(snd.ground, graph, s, 1)
        assert len(cache) == 2
        # Oldest entries evicted: re-asking for state 0 is a miss again.
        cache.edge_costs(snd.ground, graph, states[0], 1)
        assert cache.misses == 5

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValidationError):
            GroundCostCache(maxsize=0)

    def test_pickle_drops_entries_and_lock(self, graph, snd):
        cache = GroundCostCache()
        cache.edge_costs(snd.ground, graph, NetworkState.neutral(40), 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.maxsize == cache.maxsize
        # Clone must be fully usable (lock re-created).
        clone.edge_costs(snd.ground, graph, NetworkState.neutral(40), 1)


class TestTransitionCache:
    def test_get_put_roundtrip(self):
        cache = TransitionCache()
        a = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[1])
        assert cache.get(a, b) is None
        cache.put(a, b, 2.5)
        assert cache.get(a, b) == 2.5
        assert cache.fresh == 1 and cache.reused == 1

    def test_key_is_ordered(self):
        # Eq. 3 is symmetric, but summation order differs under a swap, so
        # the cache must not conflate (a, b) with (b, a).
        cache = TransitionCache()
        a = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[1])
        cache.put(a, b, 1.0)
        assert cache.get(b, a) is None

    def test_keyed_by_content(self):
        cache = TransitionCache()
        a1 = NetworkState.from_active_sets(10, positive=[0])
        a2 = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[1])
        cache.put(a1, b, 3.0)
        assert cache.get(a2, b) == 3.0

    def test_lru_bound(self):
        cache = TransitionCache(maxsize=2)
        states = [NetworkState.from_active_sets(10, positive=[k]) for k in range(4)]
        for k in range(3):
            cache.put(states[k], states[k + 1], float(k))
        assert len(cache) == 2
        assert cache.get(states[0], states[1]) is None  # evicted

    def test_pickle_drops_entries(self):
        cache = TransitionCache()
        a = NetworkState.from_active_sets(10, positive=[0])
        b = NetworkState.from_active_sets(10, positive=[1])
        cache.put(a, b, 1.0)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0 and clone.maxsize == cache.maxsize


class TestDijkstraRowCache:
    def _rows_direct(self, graph, snd, state, sources, *, reverse=False):
        from repro.shortestpath.dijkstra import multi_source_distances

        costs = snd.ground.edge_costs(graph, state, 1)
        return multi_source_distances(
            graph, sources, weights=costs, engine="scipy", reverse=reverse
        )

    def test_stitched_rows_identical(self, graph, snd):
        state = NetworkState.from_active_sets(40, positive=[1, 5, 9])
        costs = snd.ground.edge_costs(graph, state, 1)
        key = (GroundCostCache.fingerprint(state), 1)
        cache = DijkstraRowCache()
        # Prime two of four sources, then ask for all four: the stitched
        # matrix must equal one direct batched run bit-for-bit.
        cache.distance_rows(
            graph, [1, 9], costs, reverse=False, engine="scipy", heap="binary",
            cost_key=key,
        )
        stitched = cache.distance_rows(
            graph, [1, 5, 9, 12], costs, reverse=False, engine="scipy",
            heap="binary", cost_key=key,
        )
        direct = self._rows_direct(graph, snd, state, [1, 5, 9, 12])
        assert np.array_equal(stitched, direct)
        assert cache.hits == 2 and cache.misses == 4

    def test_reverse_part_of_key(self, graph, snd):
        state = NetworkState.from_active_sets(40, positive=[2])
        costs = snd.ground.edge_costs(graph, state, 1)
        key = (GroundCostCache.fingerprint(state), 1)
        cache = DijkstraRowCache()
        fwd = cache.distance_rows(
            graph, [2], costs, reverse=False, engine="scipy", heap="binary",
            cost_key=key,
        )
        rev = cache.distance_rows(
            graph, [2], costs, reverse=True, engine="scipy", heap="binary",
            cost_key=key,
        )
        assert cache.misses == 2  # no cross-direction hit
        direct_rev = self._rows_direct(graph, snd, state, [2], reverse=True)
        assert np.array_equal(rev, direct_rev)
        assert fwd.shape == rev.shape

    def test_eviction_pressure_preserves_values(self, graph, snd, rng):
        series = random_series(40, 6, rng)
        reference = SND(graph, n_clusters=3, seed=0).pairwise_matrix(list(series))
        pressured = SND(graph, n_clusters=3, seed=0).pairwise_matrix(
            list(series), row_cache=DijkstraRowCache(1)
        )
        assert np.array_equal(reference, pressured)


class TestEvaluateSeries:
    @pytest.mark.parametrize("trial", [1, 2, 3])
    def test_cached_matches_naive_loop(self, snd, rng, trial):
        series = random_series(40, 8, rng)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        cache = GroundCostCache()
        batched = snd.evaluate_series(series, cache=cache)
        assert np.max(np.abs(batched - naive)) <= 1e-9
        assert cache.builds <= 2 * (len(series) - 1) + 2

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_matches_naive_loop(self, snd, rng, executor):
        series = random_series(40, 8, rng)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        batched = snd.evaluate_series(series, jobs=2, executor=executor)
        assert np.max(np.abs(batched - naive)) <= 1e-9

    def test_distance_series_unchanged(self, snd, rng):
        series = random_series(40, 6, rng)
        expected = np.array([snd.distance(a, b) for a, b in series.transitions()])
        assert np.array_equal(snd.distance_series(series), expected)

    def test_single_state_series(self, snd):
        series = StateSeries([NetworkState.neutral(40)])
        assert snd.evaluate_series(series).size == 0

    def test_more_jobs_than_transitions(self, snd, rng):
        series = random_series(40, 3, rng)
        naive = np.array([snd.distance(a, b) for a, b in series.transitions()])
        batched = snd.evaluate_series(series, jobs=16, executor="thread")
        assert np.max(np.abs(batched - naive)) <= 1e-9

    def test_unknown_executor_rejected(self, snd, rng):
        series = random_series(40, 4, rng)
        with pytest.raises(ValidationError):
            snd.evaluate_series(series, jobs=2, executor="gpu")

    def test_instance_cache_shared_across_calls(self, graph, rng):
        snd = SND(graph, n_clusters=3, seed=0)
        series = random_series(40, 5, rng)
        snd.evaluate_series(series)
        builds_first = snd.ground_cache.builds
        snd.evaluate_series(series)  # same states: everything cached
        assert snd.ground_cache.builds == builds_first

    def test_transitions_cache_skips_solved(self, graph, rng):
        snd = SND(graph, n_clusters=3, seed=0)
        series = random_series(40, 6, rng)
        cache = TransitionCache()
        first = snd.evaluate_series(series, transitions=cache)
        solved = cache.fresh
        second = snd.evaluate_series(series, transitions=cache)
        assert np.array_equal(first, second)
        assert cache.fresh == solved  # nothing re-solved


class TestSlidingWindow:
    @pytest.mark.parametrize("window", [2, 3, 5])
    def test_windowed_identical_to_scratch(self, graph, rng, window):
        series = random_series(40, 7, rng)
        scratch = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        snd = SND(graph, n_clusters=3, seed=0)
        windowed = snd.evaluate_series(series, window=window)
        assert np.array_equal(scratch, windowed)

    def test_every_shift_matches_scratch_sweep(self, graph):
        series = distinct_series(40, 7)
        fresh = SND(graph, n_clusters=3, seed=0)
        snd = SND(graph, n_clusters=3, seed=0)
        window = 4
        cache = TransitionCache()
        for start in range(len(series) - window + 1):
            sub = series[start : start + window]
            windowed = snd.evaluate_series(sub, transitions=cache)
            scratch = fresh.evaluate_series(sub, cache=GroundCostCache())
            assert np.array_equal(windowed, scratch), f"shift {start} diverged"

    def test_one_fresh_transition_per_shift(self, graph):
        series = distinct_series(40, 8)
        snd = SND(graph, n_clusters=3, seed=0)
        window = 4
        cache = TransitionCache()
        for start in range(len(series) - window + 1):
            before = cache.fresh
            snd.evaluate_series(series[start : start + window], transitions=cache)
            fresh = cache.fresh - before
            expected = window - 1 if start == 0 else 1
            assert fresh == expected, f"shift {start}: {fresh} fresh != {expected}"

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_windowed_parallel_identical(self, graph, executor):
        series = distinct_series(40, 6)
        scratch = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        snd = SND(graph, n_clusters=3, seed=0)
        windowed = snd.evaluate_series(
            series, window=4, jobs=2, executor=executor
        )
        assert np.array_equal(scratch, windowed)
        assert snd.transition_cache.fresh == len(series) - 1

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_shifts_resolve_one_fresh(self, graph, executor):
        series = distinct_series(40, 7)
        snd = SND(graph, n_clusters=3, seed=0)
        window = 5
        cache = snd.transition_cache
        reference = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        for start in range(len(series) - window + 1):
            before = cache.fresh
            vals = snd.evaluate_series(
                series[start : start + window],
                jobs=2,
                executor=executor,
                transitions=cache,
            )
            assert np.array_equal(vals, reference[start : start + window - 1])
            expected = window - 1 if start == 0 else 1
            assert cache.fresh - before == expected

    def test_ground_cache_eviction_pressure(self, graph):
        # A one-entry ground-cost cache forces constant rebuilds; values
        # and the one-fresh-per-shift contract must survive.
        series = distinct_series(40, 6)
        scratch = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        snd = SND(graph, n_clusters=3, seed=0)
        windowed = snd.evaluate_series(
            series, window=3, cache=GroundCostCache(maxsize=1)
        )
        assert np.array_equal(scratch, windowed)
        assert snd.transition_cache.fresh == len(series) - 1

    def test_window_larger_than_series(self, graph, rng):
        series = random_series(40, 5, rng)
        scratch = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        snd = SND(graph, n_clusters=3, seed=0)
        assert np.array_equal(scratch, snd.evaluate_series(series, window=99))

    def test_window_must_span_a_transition(self, snd, rng):
        series = random_series(40, 4, rng)
        with pytest.raises(ValidationError):
            snd.evaluate_series(series, window=1)

    def test_instance_transition_cache_reused_across_calls(self, graph):
        series = distinct_series(40, 8)
        snd = SND(graph, n_clusters=3, seed=0)
        snd.evaluate_series(series[:6], window=3)
        solved = snd.transition_cache.fresh
        assert solved == 5
        # The stream advances by two states: exactly two new transitions.
        snd.evaluate_series(series[2:], window=3)
        assert snd.transition_cache.fresh == solved + 2

    @pytest.mark.slow
    @pytest.mark.parametrize("window", [2, 3, 4, 6, 9])
    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_full_window_matrix(self, graph, rng, window, executor):
        """Every window size x executor: identical to scratch under cache
        pressure, one fresh transition per shift."""
        series = random_series(40, 9, rng)
        scratch = SND(graph, n_clusters=3, seed=0).evaluate_series(series)
        snd = SND(graph, n_clusters=3, seed=0)
        windowed = snd.evaluate_series(
            series,
            window=window,
            jobs=2,
            executor=executor,
            cache=GroundCostCache(maxsize=2),
        )
        assert np.array_equal(scratch, windowed)


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self, snd, rng):
        series = random_series(40, 6, rng)
        matrix = snd.pairwise_matrix(series)
        assert matrix.shape == (6, 6)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_matches_per_pair_distance(self, snd, rng):
        states = list(random_series(40, 5, rng))
        matrix = snd.pairwise_matrix(states)
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                assert matrix[i, j] == pytest.approx(
                    snd.distance(states[i], states[j]), abs=1e-9
                )

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_matches_serial(self, snd, rng, executor):
        series = random_series(40, 5, rng)
        serial = snd.pairwise_matrix(series)
        parallel = snd.pairwise_matrix(series, jobs=3, executor=executor)
        assert np.max(np.abs(serial - parallel)) <= 1e-9

    def test_build_count_linear_in_states(self, snd, rng):
        states = list(random_series(40, 6, rng))
        cache = GroundCostCache(maxsize=4 * len(states))
        snd.pairwise_matrix(states, cache=cache)
        assert cache.builds <= 2 * len(states)

    def test_empty_input(self, snd):
        out = snd.pairwise_matrix([])
        assert out.shape == (0, 0) and out.dtype == np.float64

    def test_single_state(self, snd):
        one = snd.pairwise_matrix([NetworkState.neutral(40)])
        assert one.shape == (1, 1) and one[0, 0] == 0.0

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_degenerate_sizes_with_jobs(self, snd, executor):
        # 0/1-state inputs return before any pool is created, jobs or not.
        assert snd.pairwise_matrix([], jobs=2, executor=executor).shape == (0, 0)
        one = snd.pairwise_matrix(
            [NetworkState.neutral(40)], jobs=2, executor=executor
        )
        assert one.shape == (1, 1) and one[0, 0] == 0.0

    def test_two_states_single_pair(self, snd, rng):
        states = list(random_series(40, 2, rng))
        serial = snd.pairwise_matrix(states)
        threaded = snd.pairwise_matrix(states, jobs=4, executor="thread")
        assert np.array_equal(serial, threaded)


class TestRegistryBatchPath:
    def test_snd_series_routed_through_batch(self, graph, rng):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 5, rng)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        context.ensure_snd(n_clusters=3, seed=0)
        serial = registry.series("snd", series, context)
        naive = np.array(
            [context.snd.distance(a, b) for a, b in series.transitions()]
        )
        assert np.max(np.abs(serial - naive)) <= 1e-9
        # The serial batched path populates the SND instance cache (process
        # workers keep their own caches, so only the serial path shows here).
        assert context.snd.ground_cache.builds > 0
        parallel = registry.series("snd", series, context, jobs=2)
        assert np.max(np.abs(parallel - naive)) <= 1e-9

    def test_snd_series_window_kwarg(self, graph, rng):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 6, rng)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        context.ensure_snd(n_clusters=3, seed=0)
        full = registry.series("snd", series, context)
        windowed = registry.series("snd", series, context, window=3)
        assert np.array_equal(full, windowed)
        assert context.snd.transition_cache.reused > 0

    def test_window_noop_for_generic_measures(self, graph, rng):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 4, rng)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        plain = registry.series("hamming", series, context)
        windowed = registry.series("hamming", series, context, window=3)
        assert np.array_equal(plain, windowed)

    def test_generic_pairwise_fallback(self, graph, rng):
        from repro.distances import DistanceContext, default_registry
        from repro.distances.vector import hamming_distance

        series = random_series(40, 4, rng)
        registry = default_registry()
        context = DistanceContext(graph=graph)
        matrix = registry.pairwise("hamming", series, context)
        states = list(series)
        for i in range(len(states)):
            for j in range(len(states)):
                assert matrix[i, j] == hamming_distance(states[i], states[j])

    def test_unknown_measure_rejected(self, graph, rng):
        from repro.distances import DistanceContext, default_registry

        series = random_series(40, 3, rng)
        with pytest.raises(ValidationError):
            default_registry().pairwise("nope", series, DistanceContext(graph=graph))


class TestStateDistanceMatrix:
    def test_batched_object_used(self, snd, rng):
        from repro.analysis.metric_space import state_distance_matrix

        states = list(random_series(40, 4, rng))
        via_helper = state_distance_matrix(states, snd)
        direct = snd.pairwise_matrix(states)
        assert np.array_equal(via_helper, direct)

    def test_callable_fallback(self):
        from repro.analysis.metric_space import state_distance_matrix

        items = [0.0, 1.0, 3.0]
        matrix = state_distance_matrix(items, lambda a, b: abs(a - b))
        assert np.array_equal(
            matrix, np.abs(np.subtract.outer(items, items))
        )


class TestChunking:
    def test_ranges_cover_exactly(self):
        for n_items in (1, 5, 17):
            for n_chunks in (1, 2, 4, 30):
                ranges = _chunk_ranges(n_items, n_chunks)
                flat = [t for a, b in ranges for t in range(a, b)]
                assert flat == list(range(n_items))
                assert len(ranges) <= max(1, min(n_chunks, n_items))

    def test_zero_items(self):
        assert _chunk_ranges(0, 4) == []
        assert _chunk_ranges(-3, 4) == []

    def test_more_chunks_than_items(self):
        ranges = _chunk_ranges(3, 100)
        assert ranges == [(0, 1), (1, 2), (2, 3)]
        assert all(b > a for a, b in ranges)  # never an empty range

    def test_degenerate_chunk_counts(self):
        assert _chunk_ranges(5, 0) == [(0, 5)]
        assert _chunk_ranges(5, -2) == [(0, 5)]

    def test_missing_runs_contiguity(self):
        # Non-contiguous missing indices split into contiguous tasks.
        tasks = _missing_runs([0, 1, 2, 5, 6, 9], jobs=2)
        covered = sorted(t for a, b in tasks for t in range(a, b))
        assert covered == [0, 1, 2, 5, 6, 9]
        for a, b in tasks:
            assert b > a

    def test_missing_runs_single_gap(self):
        assert _missing_runs([4], jobs=8) == [(4, 5)]
