"""Tests for the random graph generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_configuration_graph,
    powerlaw_degree_sequence,
    star_graph,
    two_cluster_graph,
    watts_strogatz_graph,
)
from repro.graph.traversal import is_weakly_connected


class TestErdosRenyi:
    def test_edge_density_close_to_p(self):
        n, p = 200, 0.1
        g = erdos_renyi_graph(n, p, seed=0)
        expected = p * n * (n - 1)  # bidirected counts both directions
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_p_zero_gives_empty(self):
        assert erdos_renyi_graph(50, 0.0, seed=1).num_edges == 0

    def test_p_one_gives_complete(self):
        g = erdos_renyi_graph(10, 1.0, seed=1, directed=True)
        assert g.num_edges == 10 * 9

    def test_deterministic_under_seed(self):
        a = erdos_renyi_graph(40, 0.2, seed=5)
        b = erdos_renyi_graph(40, 0.2, seed=5)
        assert a == b

    def test_undirected_is_symmetric(self):
        g = erdos_renyi_graph(30, 0.2, seed=2)
        for u, v, _ in g.edges():
            assert g.has_edge(v, u)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValidationError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert_graph(100, 3, seed=0)
        # (n - m) new nodes each add m undirected edges -> 2m(n-m) directed.
        assert g.num_edges == 2 * 3 * 97

    def test_m_ge_n_rejected(self):
        with pytest.raises(ValidationError):
            barabasi_albert_graph(3, 3)

    def test_heavy_tail(self):
        g = barabasi_albert_graph(300, 2, seed=1)
        degrees = g.out_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_directed_mode(self):
        g = barabasi_albert_graph(50, 2, seed=3, directed=True)
        assert g.num_edges == 2 * 48


class TestPowerlawConfiguration:
    def test_degree_sequence_even_sum(self):
        degrees = powerlaw_degree_sequence(101, -2.3, seed=0)
        assert degrees.sum() % 2 == 0
        assert degrees.min() >= 1

    def test_negative_exponent_required(self):
        with pytest.raises(ValidationError):
            powerlaw_degree_sequence(10, 2.3)

    def test_graph_size(self):
        g = powerlaw_configuration_graph(500, -2.3, seed=0)
        assert g.num_nodes == 500
        assert g.num_edges > 0

    @pytest.mark.parametrize("exponent", [-2.9, -2.5, -2.1])
    def test_paper_exponent_range(self, exponent):
        g = powerlaw_configuration_graph(300, exponent, k_min=2, seed=1)
        assert g.num_nodes == 300
        degrees = g.out_degrees()
        # Heavier tails for shallower exponents; just sanity-check spread.
        assert degrees.max() >= degrees.mean()

    def test_deterministic_under_seed(self):
        a = powerlaw_configuration_graph(100, -2.3, seed=9)
        b = powerlaw_configuration_graph(100, -2.3, seed=9)
        assert a == b


class TestWattsStrogatz:
    def test_degree_regular_at_beta_zero(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert np.all(g.out_degrees() == 4)

    def test_rewiring_preserves_edge_count(self):
        g0 = watts_strogatz_graph(30, 4, 0.0, seed=1)
        g1 = watts_strogatz_graph(30, 4, 0.5, seed=1)
        assert g0.num_edges == g1.num_edges

    def test_odd_k_rejected(self):
        with pytest.raises(ValidationError):
            watts_strogatz_graph(10, 3, 0.1)


class TestPlantedPartition:
    def test_labels_and_homophily(self):
        g, labels = planted_partition_graph([20, 20], 0.5, 0.02, seed=0)
        assert g.num_nodes == 40
        edge_arr = g.edge_array()
        same = labels[edge_arr[:, 0]] == labels[edge_arr[:, 1]]
        assert same.mean() > 0.8


class TestTwoCluster:
    def test_structure(self):
        g, labels, bridges = two_cluster_graph(10, n_bridges=3, seed=0)
        assert g.num_nodes == 20
        assert (labels == 0).sum() == 10
        assert len(bridges) == 3
        for u, v in bridges:
            assert labels[u] == 0 and labels[v] == 1
            assert g.has_edge(u, v)

    def test_connected(self):
        g, *_ = two_cluster_graph(8, seed=1)
        assert is_weakly_connected(g)


class TestStar:
    def test_center_out(self):
        g = star_graph(5)
        assert g.out_degrees()[0] == 4
        assert g.in_degrees()[0] == 0

    def test_center_in(self):
        g = star_graph(5, center_out=False)
        assert g.in_degrees()[0] == 4
