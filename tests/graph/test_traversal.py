"""Tests for BFS and connectivity."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_tree,
    estimate_diameter,
    is_weakly_connected,
    strongly_connected_components,
    weakly_connected_components,
)


class TestBfs:
    def test_line_distances(self, line_graph):
        assert bfs_distances(line_graph, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable_marked(self, line_graph):
        # Directed path: nothing reaches node 0 from node 3.
        assert bfs_distances(line_graph, 3).tolist() == [-1, -1, -1, 0]

    def test_multi_source(self, line_graph):
        dist = bfs_distances(line_graph, [0, 3])
        assert dist.tolist() == [0, 1, 2, 0]

    def test_tree_predecessors(self, line_graph):
        pred = bfs_tree(line_graph, 0)
        assert pred.tolist() == [-1, 0, 1, 2]

    def test_agrees_with_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi_graph(40, 0.1, seed=11, directed=True)
        nxg = g.to_networkx()
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(40):
            expected = theirs.get(v, -1)
            assert ours[v] == expected


class TestComponents:
    def test_weak_components(self):
        g = DiGraph(5, [(0, 1), (2, 3)])
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2] != labels[4]

    def test_weak_ignores_direction(self):
        g = DiGraph(3, [(0, 1), (2, 1)])
        labels = weakly_connected_components(g)
        assert len(np.unique(labels)) == 1

    def test_strong_components_cycle(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        labels = strongly_connected_components(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_strong_components_dag(self, line_graph):
        labels = strongly_connected_components(line_graph)
        assert len(np.unique(labels)) == 4

    def test_strong_agrees_with_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi_graph(40, 0.06, seed=3, directed=True)
        ours = strongly_connected_components(g)
        theirs = list(nx.strongly_connected_components(g.to_networkx()))
        assert len(np.unique(ours)) == len(theirs)
        for comp in theirs:
            comp = sorted(comp)
            assert len({ours[v] for v in comp}) == 1

    def test_is_weakly_connected(self):
        assert is_weakly_connected(DiGraph(3, [(0, 1), (1, 2)]))
        assert not is_weakly_connected(DiGraph(3, [(0, 1)]))
        assert is_weakly_connected(DiGraph(0))


class TestDiameter:
    def test_line_diameter(self):
        g = DiGraph.from_undirected_edges(5, [(i, i + 1) for i in range(4)])
        assert estimate_diameter(g, seed=0) == 4

    def test_lower_bound_property(self):
        g = erdos_renyi_graph(30, 0.2, seed=4)
        est = estimate_diameter(g, seed=0)
        assert est >= 1
