"""Tests for clustering (bank-bin partitions and LP communities)."""

import numpy as np
import pytest

from repro.exceptions import ClusteringError
from repro.graph.clustering import (
    balanced_bfs_partition,
    greedy_modularity_communities,
    label_propagation_communities,
    modularity,
    partition_from_labels,
    validate_partition,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph, two_cluster_graph


class TestPartitionHelpers:
    def test_partition_from_labels(self):
        clusters = partition_from_labels(np.array([2, 0, 2, 1]))
        as_sets = [set(c.tolist()) for c in clusters]
        assert {0, 2} in as_sets and {1} in as_sets and {3} in as_sets

    def test_validate_accepts_partition(self):
        validate_partition([np.array([0, 1]), np.array([2])], 3)

    def test_validate_rejects_overlap(self):
        with pytest.raises(ClusteringError):
            validate_partition([np.array([0, 1]), np.array([1, 2])], 3)

    def test_validate_rejects_incomplete(self):
        with pytest.raises(ClusteringError):
            validate_partition([np.array([0])], 3)

    def test_validate_rejects_empty_cluster(self):
        with pytest.raises(ClusteringError):
            validate_partition([np.array([0, 1, 2]), np.array([], dtype=int)], 3)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ClusteringError):
            validate_partition([np.array([0, 5])], 3)


class TestBalancedBfsPartition:
    def test_is_partition(self):
        g, *_ = two_cluster_graph(15, seed=0)
        clusters = balanced_bfs_partition(g, 4, seed=1)
        validate_partition(clusters, g.num_nodes)

    def test_roughly_balanced(self):
        g, *_ = two_cluster_graph(20, seed=2)
        clusters = balanced_bfs_partition(g, 4, seed=1)
        sizes = [len(c) for c in clusters]
        assert max(sizes) <= 3 * min(sizes)

    def test_handles_disconnected(self):
        g = DiGraph(6, [(0, 1), (1, 2), (3, 4)])  # node 5 isolated
        clusters = balanced_bfs_partition(g, 2, seed=0)
        validate_partition(clusters, 6)

    def test_single_cluster(self):
        g, *_ = two_cluster_graph(5, seed=0)
        clusters = balanced_bfs_partition(g, 1, seed=0)
        assert len(clusters) == 1
        assert len(clusters[0]) == g.num_nodes

    def test_too_many_clusters_rejected(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(ClusteringError):
            balanced_bfs_partition(g, 5)


class TestLabelPropagation:
    def test_recovers_planted_partition(self):
        g, truth = planted_partition_graph([15, 15], 0.6, 0.02, seed=0)
        labels = label_propagation_communities(g, seed=0)
        # Communities should align with the planted blocks (up to renaming):
        # most pairs in the same block share a label.
        same_block = truth[:, None] == truth[None, :]
        same_label = labels[:, None] == labels[None, :]
        agreement = (same_block == same_label).mean()
        assert agreement > 0.8

    def test_labels_compacted(self):
        g, _ = planted_partition_graph([10, 10], 0.5, 0.05, seed=1)
        labels = label_propagation_communities(g, seed=1)
        uniq = np.unique(labels)
        assert uniq.tolist() == list(range(len(uniq)))

    def test_isolated_nodes_keep_own_label(self):
        g = DiGraph(3, [(0, 1)])
        labels = label_propagation_communities(g, seed=0)
        assert labels[2] not in (labels[0],)


class TestModularity:
    def test_good_partition_beats_random(self, rng):
        g, truth = planted_partition_graph([12, 12], 0.6, 0.05, seed=3)
        random_labels = rng.integers(0, 2, size=g.num_nodes)
        assert modularity(g, truth) > modularity(g, random_labels)

    def test_empty_graph(self):
        assert modularity(DiGraph(3), np.zeros(3)) == 0.0

    def test_greedy_modularity_two_blocks(self):
        g, truth = planted_partition_graph([10, 10], 0.7, 0.02, seed=4)
        labels = greedy_modularity_communities(g)
        assert modularity(g, labels) > 0.2
