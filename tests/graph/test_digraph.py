"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.exceptions import EdgeError, GraphError, NodeError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_nodes_without_edges(self):
        g = DiGraph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert list(g.out_neighbors(3)) == []

    def test_basic_edges(self):
        g = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_edges == 3
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(2).tolist() == []

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(NodeError):
            DiGraph(2, [(0, 5)])
        with pytest.raises(NodeError):
            DiGraph(2, [(-1, 0)])

    def test_self_loops_dropped(self):
        g = DiGraph(3, [(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_collapsed_min_weight(self):
        g = DiGraph(2, [(0, 1), (0, 1), (0, 1)], weights=[5.0, 2.0, 9.0])
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 2.0

    def test_default_weights_are_one(self):
        g = DiGraph(2, [(0, 1)])
        assert g.edge_weight(0, 1) == 1.0

    def test_misaligned_weights_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph(2, [(0, 1)], weights=[1.0, 2.0])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph(3, np.array([[0, 1, 2]]))

    def test_csr_indices_sorted_per_row(self):
        g = DiGraph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.out_neighbors(0).tolist() == [1, 2, 3]


class TestAccessors:
    def test_degrees(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degrees().tolist() == [2, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 2]

    def test_in_neighbors(self):
        g = DiGraph(3, [(0, 2), (1, 2)])
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]
        assert g.in_neighbors(0).tolist() == []

    def test_in_weights_aligned(self):
        g = DiGraph(3, [(0, 2), (1, 2)], weights=[3.0, 7.0])
        neigh = g.in_neighbors(2)
        weights = g.in_weights(2)
        lookup = dict(zip(neigh.tolist(), weights.tolist()))
        assert lookup == {0: 3.0, 1: 7.0}

    def test_edge_weight_missing_edge(self):
        g = DiGraph(2, [(0, 1)])
        with pytest.raises(EdgeError):
            g.edge_weight(1, 0)

    def test_has_edge_directed(self):
        g = DiGraph(2, [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_node_bounds_checked(self):
        g = DiGraph(2, [(0, 1)])
        with pytest.raises(NodeError):
            g.out_neighbors(2)

    def test_edges_iteration(self):
        edges = [(0, 1, 2.0), (1, 2, 3.0)]
        g = DiGraph(3, [(u, v) for u, v, _ in edges], weights=[w for *_, w in edges])
        assert list(g.edges()) == edges

    def test_edge_array_roundtrip(self):
        g = DiGraph(4, [(0, 1), (2, 3), (1, 3)])
        arr = g.edge_array()
        g2 = DiGraph(4, arr)
        assert g == g2

    def test_len_is_node_count(self):
        assert len(DiGraph(7)) == 7


class TestDerivedGraphs:
    def test_reverse(self):
        g = DiGraph(3, [(0, 1), (1, 2)], weights=[4.0, 5.0])
        r = g.reverse()
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert r.edge_weight(1, 0) == 4.0
        assert not r.has_edge(0, 1)

    def test_reverse_twice_is_identity(self):
        g = DiGraph(4, [(0, 1), (1, 2), (3, 0)], weights=[1.0, 2.0, 3.0])
        assert g.reverse().reverse() == g

    def test_to_undirected(self):
        g = DiGraph(3, [(0, 1)])
        u = g.to_undirected()
        assert u.has_edge(0, 1) and u.has_edge(1, 0)
        assert u.num_edges == 2

    def test_to_undirected_keeps_min_weight(self):
        g = DiGraph(2, [(0, 1), (1, 0)], weights=[3.0, 1.0])
        u = g.to_undirected()
        assert u.edge_weight(0, 1) == 1.0
        assert u.edge_weight(1, 0) == 1.0

    def test_with_weights(self):
        g = DiGraph(2, [(0, 1)])
        g2 = g.with_weights(np.array([9.0]))
        assert g2.edge_weight(0, 1) == 9.0
        assert g.edge_weight(0, 1) == 1.0  # original untouched

    def test_with_weights_misaligned(self):
        g = DiGraph(2, [(0, 1)])
        with pytest.raises(EdgeError):
            g.with_weights(np.array([1.0, 2.0]))

    def test_subgraph(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        sub, ids = g.subgraph([1, 2, 3])
        assert ids.tolist() == [1, 2, 3]
        assert sub.num_nodes == 3
        assert sub.has_edge(0, 1)  # 1 -> 2 relabelled
        assert sub.has_edge(1, 2)  # 2 -> 3 relabelled
        assert not sub.has_edge(0, 2)

    def test_from_undirected_edges(self):
        g = DiGraph.from_undirected_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 4
        assert g.has_edge(1, 0) and g.has_edge(2, 1)


class TestInterop:
    def test_scipy_roundtrip(self):
        g = DiGraph(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
        mat = g.to_scipy_csr()
        assert mat.shape == (3, 3)
        assert mat[0, 1] == 2.0
        assert mat[1, 2] == 3.0

    def test_scipy_with_override_weights(self):
        g = DiGraph(2, [(0, 1)])
        mat = g.to_scipy_csr(np.array([7.0]))
        assert mat[0, 1] == 7.0

    def test_networkx_roundtrip(self):
        nx = pytest.importorskip("networkx")
        g = DiGraph(4, [(0, 1), (1, 2), (3, 1)], weights=[1.0, 2.5, 4.0])
        nxg = g.to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        back = DiGraph.from_networkx(nxg)
        assert back == g

    def test_from_csr(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        g2 = DiGraph.from_csr(g.indptr, g.indices, g.weights)
        assert g == g2

    def test_equality_ignores_identity(self):
        a = DiGraph(2, [(0, 1)])
        b = DiGraph(2, [(0, 1)])
        assert a == b
        assert a != DiGraph(2, [(1, 0)])
