"""Tests for graph serialisation."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import load_npz, read_edgelist, save_npz, write_edgelist


class TestEdgelist:
    def test_roundtrip_unweighted(self, tmp_path):
        g = erdos_renyi_graph(20, 0.2, seed=0)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_roundtrip_weighted(self, tmp_path):
        g = DiGraph(3, [(0, 1), (1, 2)], weights=[0.5, 2.25])
        path = tmp_path / "g.edges"
        write_edgelist(g, path, weights=True)
        back = read_edgelist(path)
        assert back.edge_weight(0, 1) == 0.5
        assert back.edge_weight(1, 2) == 2.25

    def test_header_preserves_isolated_nodes(self, tmp_path):
        g = DiGraph(10, [(0, 1)])
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path).num_nodes == 10

    def test_missing_header_infers_count(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n3 2\n")
        g = read_edgelist(path)
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# a comment\n\n0 1\n")
        assert read_edgelist(path).num_edges == 1


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi_graph(30, 0.15, seed=1)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_weights_preserved(self, tmp_path):
        g = DiGraph(2, [(0, 1)], weights=[3.5])
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).edge_weight(0, 1) == 3.5
