"""Tests for Laplacian construction."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.laplacian import (
    laplacian_matrix,
    normalized_laplacian_matrix,
    quadratic_form,
)


class TestLaplacian:
    def test_row_sums_zero(self):
        g = erdos_renyi_graph(20, 0.3, seed=0)
        lap = laplacian_matrix(g, dense=True)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_symmetric(self):
        g = DiGraph(3, [(0, 1), (1, 2)])  # directed; Laplacian symmetrises
        lap = laplacian_matrix(g, dense=True)
        assert np.allclose(lap, lap.T)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi_graph(15, 0.3, seed=1)
        lap = laplacian_matrix(g, dense=True)
        nxg = nx.Graph(g.to_networkx().to_undirected())
        expected = nx.laplacian_matrix(nxg, nodelist=range(15)).todense()
        assert np.allclose(lap, expected)

    def test_quadratic_form_counts_cut_edges(self):
        # x^T L x = sum over undirected edges of (x_u - x_v)^2.
        g = DiGraph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        lap = laplacian_matrix(g)
        x = np.array([1.0, 1.0, 0.0, 0.0])
        assert quadratic_form(lap, x) == pytest.approx(1.0)

    def test_quadratic_form_nonnegative(self, rng):
        g = erdos_renyi_graph(25, 0.2, seed=2)
        lap = laplacian_matrix(g)
        for _ in range(5):
            x = rng.normal(size=25)
            assert quadratic_form(lap, x) >= 0.0

    def test_quadratic_form_shape_mismatch(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(ValidationError):
            quadratic_form(laplacian_matrix(g), np.zeros(5))


class TestNormalizedLaplacian:
    def test_eigenvalues_bounded(self):
        g = erdos_renyi_graph(20, 0.3, seed=3)
        lap = normalized_laplacian_matrix(g, dense=True)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9

    def test_isolated_nodes_zero_rows(self):
        g = DiGraph(3, [(0, 1), (1, 0)])
        lap = normalized_laplacian_matrix(g, dense=True)
        assert np.allclose(lap[2], [0, 0, 1.0])  # I - 0 on the diagonal
