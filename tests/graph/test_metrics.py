"""Tests for structural graph statistics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_configuration_graph,
    powerlaw_degree_sequence,
    star_graph,
)
from repro.graph.metrics import (
    clustering_coefficient,
    degree_assortativity,
    degree_statistics,
    powerlaw_alpha_mle,
)


class TestDegreeStatistics:
    def test_star(self):
        stats = degree_statistics(star_graph(11))
        assert stats["max"] == 10
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(2 * 10 / 11)

    def test_empty(self):
        stats = degree_statistics(DiGraph(0))
        assert stats["mean"] == 0.0


class TestPowerlawMle:
    def test_recovers_generator_exponent(self):
        # Degrees drawn with P(k) ~ k^-2.5 must fit back near 2.5.
        degrees = powerlaw_degree_sequence(20_000, -2.5, k_min=2, k_max=500, seed=0)
        alpha = powerlaw_alpha_mle(degrees, k_min=2)
        assert alpha == pytest.approx(2.5, abs=0.25)

    @pytest.mark.parametrize("exponent", [-2.1, -2.9])
    def test_orders_exponents(self, exponent):
        degrees = powerlaw_degree_sequence(10_000, exponent, k_min=2, k_max=300, seed=1)
        alpha = powerlaw_alpha_mle(degrees, k_min=2)
        assert alpha == pytest.approx(-exponent, abs=0.4)

    def test_empty_tail_rejected(self):
        with pytest.raises(ValidationError):
            powerlaw_alpha_mle([1, 1, 1], k_min=5)


class TestClusteringCoefficient:
    def test_triangle(self):
        g = DiGraph.from_undirected_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_star_is_zero(self):
        g = star_graph(6).to_undirected()
        assert clustering_coefficient(g) == 0.0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi_graph(40, 0.2, seed=3)
        ours = clustering_coefficient(g)
        theirs = nx.average_clustering(nx.Graph(g.to_networkx().to_undirected()))
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_sampled_close_to_full(self):
        g = erdos_renyi_graph(80, 0.1, seed=4)
        full = clustering_coefficient(g)
        sampled = clustering_coefficient(g, sample=60, seed=0)
        assert sampled == pytest.approx(full, abs=0.1)


class TestAssortativity:
    def test_star_disassortative(self):
        assert degree_assortativity(star_graph(10)) < 0

    def test_no_edges(self):
        assert degree_assortativity(DiGraph(5)) == 0.0

    def test_powerlaw_graphs_computable(self):
        g = powerlaw_configuration_graph(500, -2.3, k_min=2, seed=0)
        value = degree_assortativity(g)
        assert -1.0 <= value <= 1.0
