"""EMD* tests: extension construction, Fig. 5 behaviour, Theorem 3
metricity, reduction lemmas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emd.emd_star import (
    build_extension,
    cluster_distance_matrix,
    emd_star,
    metric_gammas,
)
from repro.emd.reduction import cancel_common_mass, reduce_histograms, remove_empty_bins
from repro.exceptions import HistogramError, ValidationError


def line_metric(n: int) -> np.ndarray:
    idx = np.arange(n, dtype=float)
    return np.abs(idx[:, None] - idx[None, :])


class TestExtensionConstruction:
    def test_masses_equalised(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        ext = build_extension([3.0, 0, 0, 0], [1.0, 1, 0, 0], d, clusters)
        assert ext.p_ext.sum() == pytest.approx(ext.q_ext.sum())
        assert ext.total_mass == pytest.approx(3.0)

    def test_bank_mass_proportional_to_cluster_mass(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        # Q lighter by 2; Q's mass is 3 in cluster 0, 1 in cluster 1.
        ext = build_extension([3.0, 3, 0, 0], [2.0, 1, 1, 0], d, clusters)
        q_banks = ext.q_ext[4:]
        assert q_banks[0] == pytest.approx(2 * 3 / 4)
        assert q_banks[1] == pytest.approx(2 * 1 / 4)

    def test_empty_lighter_histogram_uses_sizes(self):
        d = line_metric(4)
        clusters = [np.array([0]), np.array([1, 2, 3])]
        ext = build_extension([2.0, 2, 0, 0], [0.0, 0, 0, 0], d, clusters)
        q_banks = ext.q_ext[4:]
        assert q_banks[0] == pytest.approx(4 * 1 / 4)
        assert q_banks[1] == pytest.approx(4 * 3 / 4)

    def test_equal_masses_zero_banks(self):
        d = line_metric(3)
        ext = build_extension([1.0, 0, 1], [0.0, 1, 1], d)
        assert np.all(ext.p_ext[3:] == 0)
        assert np.all(ext.q_ext[3:] == 0)

    def test_multiple_banks_split_capacity(self):
        d = line_metric(2)
        ext = build_extension([2.0, 0], [0.0, 0], d, n_banks=2, gammas=1.0)
        assert ext.q_ext[2:].tolist() == [1.0, 1.0]

    def test_extended_distance_bank_diagonal_zero(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        ext = build_extension([1.0, 0, 0, 0], [0.0, 0, 1, 0], d, clusters)
        banks = slice(4, None)
        assert np.allclose(np.diag(ext.d_ext[banks, banks]), 0.0)

    def test_cluster_metric_matches_eq4(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        gammas = [np.array([2.0]), np.array([3.0])]
        ext = build_extension(
            [1.0, 0, 0, 0], [0.0, 0, 1, 0], d, clusters, gammas,
            bank_metric="cluster",
        )
        inter = cluster_distance_matrix(d, clusters)
        # bin 0 (cluster 0) -> bank of cluster 1: gamma_1 + d[0, 1].
        assert ext.d_ext[0, 5] == pytest.approx(3.0 + inter[0, 1])
        # bin 0 -> own cluster's bank: just gamma_0.
        assert ext.d_ext[0, 4] == pytest.approx(2.0)

    def test_nearest_metric_uses_member_distances(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        gammas = [np.array([2.0]), np.array([3.0])]
        ext = build_extension(
            [1.0, 0, 0, 0], [0.0, 0, 1, 0], d, clusters, gammas,
            bank_metric="nearest",
        )
        # bin 0 -> bank of cluster 1: gamma_1 + min(d[0,2], d[0,3]) = 3 + 2.
        assert ext.d_ext[0, 5] == pytest.approx(5.0)
        # bin 1 -> bank of cluster 1: gamma_1 + d[1,2] = 3 + 1.
        assert ext.d_ext[1, 5] == pytest.approx(4.0)

    def test_invalid_bank_metric(self):
        with pytest.raises(ValidationError):
            build_extension([1.0], [1.0], np.zeros((1, 1)), bank_metric="bogus")

    def test_bad_partition_rejected(self):
        d = line_metric(3)
        with pytest.raises(Exception):
            build_extension([1.0, 0, 0], [0.0, 1, 0], d, [np.array([0, 1])])

    def test_gamma_count_mismatch_rejected(self):
        d = line_metric(2)
        with pytest.raises(ValidationError):
            build_extension(
                [1.0, 0], [0.0, 1], d,
                [np.array([0]), np.array([1])],
                gammas=[np.array([1.0])],
            )


class TestClusterDistances:
    def test_min_over_blocks(self):
        d = line_metric(4)
        clusters = [np.array([0, 1]), np.array([2, 3])]
        inter = cluster_distance_matrix(d, clusters)
        assert inter[0, 1] == 1.0  # |1 - 2|
        assert inter[0, 0] == 0.0

    def test_metric_gammas_threshold(self):
        d = line_metric(4)
        clusters = [np.array([0, 3]), np.array([1, 2])]
        gammas = metric_gammas(d, clusters)
        assert gammas[0][0] == pytest.approx(1.5)  # half of |0-3|
        assert gammas[1][0] == pytest.approx(0.5)


class TestEmdStarValues:
    def test_identical_zero(self):
        d = line_metric(3)
        assert emd_star([1.0, 2, 0], [1.0, 2, 0], d) == pytest.approx(0.0)

    def test_equal_mass_reduces_to_transport(self):
        d = line_metric(2)
        # Equal masses: banks are empty, EMD* = raw EMD cost.
        assert emd_star([1.0, 0], [0.0, 1], d) == pytest.approx(1.0)

    def test_mismatch_charges_bank_cost(self):
        d = line_metric(2)
        value = emd_star([1.0, 0], [0.0, 0], d, gammas=2.5)
        assert value == pytest.approx(2.5)  # one unit into the bank

    def test_zero_histograms(self):
        d = line_metric(2)
        assert emd_star([0.0, 0], [0.0, 0], d) == 0.0

    def test_solver_methods_agree(self, rng):
        d = line_metric(5)
        clusters = [np.array([0, 1, 2]), np.array([3, 4])]
        p = rng.integers(0, 5, 5).astype(float)
        q = rng.integers(0, 5, 5).astype(float)
        vals = [
            emd_star(p, q, d, clusters, method=m) for m in ("ssp", "simplex", "lp")
        ]
        assert vals[0] == pytest.approx(vals[1], abs=1e-7)
        assert vals[0] == pytest.approx(vals[2], abs=1e-7)


class TestFig5Intuition:
    """The paper's Fig. 5: EMD* prefers propagated over random extra mass;
    EMDα / EMD̂ cannot tell them apart; plain EMD sees no difference at all."""

    def build(self):
        # Two clusters of 4 bins on a line, joined by one "bridge" gap.
        # Bins 0-3 are cluster C1, bins 4-7 cluster C2; the bridge sits
        # between bins 3 and 4.
        n = 8
        d = line_metric(n)
        clusters = [np.arange(0, 4), np.arange(4, 8)]
        g1 = np.array([1.0, 1, 1, 1, 0, 0, 0, 0])
        g2 = g1.copy()
        g2[4] = 2.0  # extra mass right behind the bridge (propagated)
        g3 = g1.copy()
        g3[7] = 2.0  # same extra mass, far corner (random placement)
        return d, clusters, g1, g2, g3

    def test_emd_star_orders_by_plausibility(self):
        d, clusters, g1, g2, g3 = self.build()
        near = emd_star(g1, g2, d, clusters)
        far = emd_star(g1, g3, d, clusters)
        assert near < far

    def test_emd_alpha_and_hat_equidistant(self):
        from repro.emd.emd_alpha import emd_alpha
        from repro.emd.emd_hat import emd_hat

        d, _, g1, g2, g3 = self.build()
        assert emd_alpha(g1, g2, d) == pytest.approx(emd_alpha(g1, g3, d), abs=1e-7)
        assert emd_hat(g1, g2, d) == pytest.approx(emd_hat(g1, g3, d), abs=1e-7)

    def test_plain_emd_blind(self):
        from repro.emd.base import emd

        d, _, g1, g2, g3 = self.build()
        assert emd(g1, g2, d) == pytest.approx(0.0, abs=1e-9)
        assert emd(g1, g3, d) == pytest.approx(0.0, abs=1e-9)


class TestTheorem3Metricity:
    """Metric properties of EMD*.

    The *size-share* variant (partner-independent bank capacities) is
    provably metric with nearest-member bank distances and threshold
    gammas; we property-test it. The paper's *mass-share* variant is NOT
    (its extension depends on the comparison pair, a gap in the Theorem 3
    proof) — we pin a concrete counterexample.
    """

    @pytest.fixture
    def instance(self, rng):
        n = 6
        d = line_metric(n)
        clusters = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        gammas = metric_gammas(d, clusters)  # exactly at the threshold

        def hist():
            return rng.integers(0, 4, n).astype(float)

        return d, clusters, gammas, hist

    def test_symmetry(self, instance):
        d, clusters, gammas, hist = instance
        for _ in range(8):
            p, q = hist(), hist()
            for shares in ("mass", "size"):
                ab = emd_star(p, q, d, clusters, gammas, bank_shares=shares)
                ba = emd_star(q, p, d, clusters, gammas, bank_shares=shares)
                assert ab == pytest.approx(ba, abs=1e-7)

    def test_identity(self, instance):
        d, clusters, gammas, hist = instance
        p = hist()
        assert emd_star(p, p, d, clusters, gammas) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_triangle_inequality_size_shares(self, seed):
        d = line_metric(6)
        clusters = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        gammas = metric_gammas(d, clusters)
        rng = np.random.default_rng(seed)
        p = rng.integers(0, 4, 6).astype(float)
        q = rng.integers(0, 4, 6).astype(float)
        r = rng.integers(0, 4, 6).astype(float)
        kwargs = dict(bank_shares="size")
        pq = emd_star(p, q, d, clusters, gammas, **kwargs)
        qr = emd_star(q, r, d, clusters, gammas, **kwargs)
        pr = emd_star(p, r, d, clusters, gammas, **kwargs)
        assert pr <= pq + qr + 1e-6

    def test_mass_shares_triangle_counterexample(self):
        """The pair-dependent mass-share capacities break the triangle
        inequality (found by the property test; pinned here as documented
        evidence of the Theorem 3 proof gap)."""
        # Literal seed on purpose: this pins one concrete violating
        # instance, so it must NOT follow the per-nodeid `rng` fixture.
        rng = np.random.default_rng(1995)
        d = line_metric(6)
        clusters = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        gammas = metric_gammas(d, clusters)
        p = rng.integers(0, 4, 6).astype(float)
        q = rng.integers(0, 4, 6).astype(float)
        r = rng.integers(0, 4, 6).astype(float)
        kwargs = dict(bank_shares="mass")
        pq = emd_star(p, q, d, clusters, gammas, **kwargs)
        qr = emd_star(q, r, d, clusters, gammas, **kwargs)
        pr = emd_star(p, r, d, clusters, gammas, **kwargs)
        assert pr > pq + qr + 1e-6  # the violation is real


class TestReductionLemmas:
    def test_cancel_common_mass(self):
        p, q = cancel_common_mass([3.0, 1, 0], [1.0, 1, 2])
        assert p.tolist() == [2.0, 0, 0]
        assert q.tolist() == [0.0, 0, 2]

    def test_cancel_requires_same_bins(self):
        with pytest.raises(HistogramError):
            cancel_common_mass([1.0], [1.0, 2.0])

    def test_remove_empty_bins(self):
        p = np.array([2.0, 0, 1])
        q = np.array([0.0, 3, 0])
        d = line_metric(3)
        p_r, q_r, d_r, sup, con = remove_empty_bins(p, q, d)
        assert p_r.tolist() == [2.0, 1.0]
        assert q_r.tolist() == [3.0]
        assert sup.tolist() == [0, 2]
        assert con.tolist() == [1]
        assert d_r.shape == (2, 1)
        assert d_r[0, 0] == d[0, 1]

    def test_lemma2_equal_mass_exact(self, rng):
        """With equal total masses (no banks in play), cancelling common
        mass leaves EMD* unchanged — the pure Lemma 2 statement over a
        semimetric ground distance."""
        d = line_metric(5)
        clusters = [np.array([0, 1]), np.array([2, 3, 4])]
        for _ in range(10):
            p = rng.integers(0, 5, 5).astype(float)
            q = rng.permutation(p)  # same multiset -> equal total mass
            p_c, q_c = cancel_common_mass(p, q)
            full = emd_star(p, q, d, clusters)
            reduced = emd_star(p_c, q_c, d, clusters)
            assert reduced == pytest.approx(full, abs=1e-7)

    def test_reduce_histograms_composition(self):
        p = np.array([2.0, 1, 0, 4])
        q = np.array([2.0, 3, 1, 0])
        d = line_metric(4)
        p_r, q_r, d_r, sup, con = reduce_histograms(p, q, d)
        assert sup.tolist() == [3]
        assert sorted(con.tolist()) == [1, 2]
        assert np.all(p_r > 0) and np.all(q_r > 0)
