"""Theorem 2: EMDα(P, Q, D) == EMD̂(P, Q, D) whenever both are metric
(D metric, α >= 0.5) — including a hypothesis-driven property test.

Also verifies Corollary 1: padding equal-mass histograms with an arbitrary
equal bank does not change EMD.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emd.base import emd
from repro.emd.emd_alpha import emd_alpha, extend_with_global_bank
from repro.emd.emd_hat import emd_hat


def metric_from_points(points: np.ndarray) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def random_metric(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random metric via shortest-path closure of a random cost matrix."""
    raw = rng.uniform(1, 10, size=(n, n))
    raw = (raw + raw.T) / 2
    np.fill_diagonal(raw, 0.0)
    # Floyd-Warshall closure makes it satisfy the triangle inequality.
    d = raw.copy()
    for k in range(n):
        d = np.minimum(d, d[:, [k]] + d[[k], :])
    return d


class TestTheorem2:
    @pytest.mark.parametrize("seed", range(8))
    def test_equality_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        d = random_metric(rng, n)
        p = rng.integers(0, 8, n).astype(float)
        q = rng.integers(0, 8, n).astype(float)
        alpha = float(rng.uniform(0.5, 2.0))
        assert emd_alpha(p, q, d, alpha=alpha) == pytest.approx(
            emd_hat(p, q, d, alpha=alpha), abs=1e-7
        )

    def test_equality_with_mass_mismatch(self, rng):
        d = random_metric(rng, 4)
        p = np.array([5.0, 0.0, 2.0, 0.0])
        q = np.array([0.0, 1.0, 0.0, 0.0])  # much lighter
        assert emd_alpha(p, q, d, alpha=0.5) == pytest.approx(
            emd_hat(p, q, d, alpha=0.5), abs=1e-7
        )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 5),
        alpha_times_ten=st.integers(5, 30),
    )
    def test_equality_property(self, seed, n, alpha_times_ten):
        rng = np.random.default_rng(seed)
        d = random_metric(rng, n)
        p = rng.integers(0, 10, n).astype(float)
        q = rng.integers(0, 10, n).astype(float)
        alpha = alpha_times_ten / 10.0
        assert emd_alpha(p, q, d, alpha=alpha) == pytest.approx(
            emd_hat(p, q, d, alpha=alpha), abs=1e-7
        )

    def test_below_half_alpha_can_differ(self):
        # With alpha < 0.5 the bank becomes a cheap shortcut and the
        # equivalence breaks: EMDα <= EMD̂ with strict inequality possible.
        d = np.array([[0.0, 10.0], [10.0, 0.0]])
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        alpha = 0.1
        assert emd_alpha(p, q, d, alpha=alpha) < emd_hat(p, q, d, alpha=alpha)


class TestExtension:
    def test_extended_masses_equal(self):
        p = np.array([3.0, 1.0])
        q = np.array([0.5, 0.5])
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        p_ext, q_ext, d_ext = extend_with_global_bank(p, q, d, alpha=0.5)
        assert p_ext.sum() == pytest.approx(q_ext.sum())
        assert d_ext.shape == (3, 3)
        assert d_ext[2, 2] == 0.0
        assert d_ext[0, 2] == pytest.approx(0.5 * d.max())


class TestCorollary1:
    @pytest.mark.parametrize("k", [0.0, 1.0, 7.5])
    def test_bank_padding_invariant(self, rng, k):
        d = random_metric(rng, 4)
        p = rng.integers(1, 6, 4).astype(float)
        q = rng.integers(1, 6, 4).astype(float)
        q = q * (p.sum() / q.sum())  # equal total masses
        omega = 0.5 * d.max()
        d_ext = np.full((5, 5), omega)
        d_ext[:4, :4] = d
        d_ext[4, 4] = 0.0
        base = emd(p, q, d)
        padded = emd(np.append(p, k), np.append(q, k), d_ext)
        # EMD normalises by moved mass; compare raw costs instead.
        assert base * p.sum() == pytest.approx(padded * (p.sum() + k), abs=1e-7)
