"""Tests for classic EMD (Rubner) and its metric properties (Theorem 1)."""

import numpy as np
import pytest

from repro.emd.base import emd, emd_raw_cost
from repro.exceptions import HistogramError, ValidationError


def metric_from_points(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix — always a metric."""
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestBasics:
    def test_identical_histograms_zero(self):
        p = np.array([1.0, 2.0, 3.0])
        d = metric_from_points(np.arange(3, dtype=float)[:, None])
        assert emd(p, p, d) == pytest.approx(0.0)

    def test_single_bin_shift(self):
        # All mass moves one bin over at ground distance 1.
        d = metric_from_points(np.arange(2, dtype=float)[:, None])
        assert emd([1.0, 0.0], [0.0, 1.0], d) == pytest.approx(1.0)

    def test_normalisation_by_moved_mass(self):
        d = metric_from_points(np.arange(2, dtype=float)[:, None])
        # 5 units over distance 1: raw cost 5, EMD (mean cost) 1.
        assert emd([5.0, 0.0], [0.0, 5.0], d) == pytest.approx(1.0)
        assert emd_raw_cost([5.0, 0.0], [0.0, 5.0], d) == pytest.approx(5.0)

    def test_mass_mismatch_ignored(self):
        # Classic EMD moves min mass only: heavy P, light Q.
        d = metric_from_points(np.arange(2, dtype=float)[:, None])
        assert emd([10.0, 0.0], [0.0, 1.0], d) == pytest.approx(1.0)

    def test_empty_histogram_convention(self):
        d = np.zeros((2, 2))
        assert emd([0.0, 0.0], [1.0, 1.0], d) == 0.0

    def test_rectangular_ground_distance(self):
        d = np.array([[1.0, 2.0, 3.0]])
        assert emd([2.0], [1.0, 1.0, 0.0], d) == pytest.approx(1.5)

    def test_negative_mass_rejected(self):
        with pytest.raises(ValidationError):
            emd([-1.0], [1.0], np.zeros((1, 1)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(HistogramError):
            emd([1.0, 2.0], [1.0], np.zeros((3, 3)))

    def test_return_plan(self):
        d = metric_from_points(np.arange(2, dtype=float)[:, None])
        value, plan = emd([1.0, 0.0], [0.0, 1.0], d, return_plan=True)
        assert value == pytest.approx(1.0)
        assert plan.flows[0, 1] == pytest.approx(1.0)


class TestMetricProperties:
    """Theorem 1: EMD is a metric on equal-mass histograms over metric D."""

    @pytest.fixture
    def setup(self, rng):
        points = rng.uniform(0, 10, size=(5, 2))
        d = metric_from_points(points)
        def hist():
            h = rng.integers(0, 5, 5).astype(float)
            h[0] += 1  # avoid empty histograms
            return h * (60.0 / h.sum())  # common total mass
        return d, hist

    def test_symmetry(self, setup):
        d, hist = setup
        for _ in range(5):
            p, q = hist(), hist()
            assert emd(p, q, d) == pytest.approx(emd(q, p, d.T), abs=1e-9)

    def test_identity_of_indiscernibles(self, setup):
        d, hist = setup
        p = hist()
        assert emd(p, p, d) == pytest.approx(0.0, abs=1e-9)

    def test_triangle_inequality(self, setup):
        d, hist = setup
        for _ in range(10):
            p, q, r = hist(), hist(), hist()
            pq = emd(p, q, d)
            qr = emd(q, r, d)
            pr = emd(p, r, d)
            assert pr <= pq + qr + 1e-7

    def test_nonnegativity(self, setup):
        d, hist = setup
        for _ in range(5):
            assert emd(hist(), hist(), d) >= 0.0
