"""Legacy setup shim.

All metadata lives in pyproject.toml (PEP 621); this file exists so that
``pip install -e .`` succeeds in offline environments where the PEP 660
editable build cannot fetch the ``wheel`` package.
"""

from setuptools import setup

setup()
