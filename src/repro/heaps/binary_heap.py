"""Indexed binary min-heap with decrease-key.

Items are integers ``0..capacity-1``; each may be present at most once.
``decrease_key`` is O(log n) via a position index. This is the default heap
for Dijkstra (matching the paper's released implementation, §6.5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexedBinaryHeap"]


class IndexedBinaryHeap:
    """Array-backed binary min-heap keyed by float, indexed by item id."""

    __slots__ = ("_keys", "_heap", "_pos", "_size")

    _ABSENT = -1

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._keys = np.empty(capacity, dtype=np.float64)
        self._heap = np.empty(capacity, dtype=np.int64)  # heap position -> item
        self._pos = np.full(capacity, self._ABSENT, dtype=np.int64)  # item -> position
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return self._pos[item] != self._ABSENT

    def key_of(self, item: int) -> float:
        """Current key of *item* (undefined if absent)."""
        return float(self._keys[item])

    def push(self, item: int, key: float) -> None:
        """Insert *item* with *key*; if present, behaves as decrease-key
        (raises if the new key is larger)."""
        if self._pos[item] != self._ABSENT:
            self.decrease_key(item, key)
            return
        self._keys[item] = key
        self._heap[self._size] = item
        self._pos[item] = self._size
        self._size += 1
        self._sift_up(self._size - 1)

    def decrease_key(self, item: int, key: float) -> None:
        """Lower the key of an item already in the heap."""
        if self._pos[item] == self._ABSENT:
            raise KeyError(f"item {item} not in heap")
        if key > self._keys[item]:
            raise ValueError(
                f"decrease_key would increase key of {item}: "
                f"{self._keys[item]} -> {key}"
            )
        self._keys[item] = key
        self._sift_up(int(self._pos[item]))

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the minimum key."""
        if self._size == 0:
            raise IndexError("pop from empty heap")
        top = int(self._heap[0])
        key = float(self._keys[top])
        self._size -= 1
        last = int(self._heap[self._size])
        self._pos[top] = self._ABSENT
        if self._size > 0:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top, key

    def peek(self) -> tuple[int, float]:
        """Return (without removing) the minimum ``(item, key)``."""
        if self._size == 0:
            raise IndexError("peek at empty heap")
        top = int(self._heap[0])
        return top, float(self._keys[top])

    # ------------------------------------------------------------------ #

    def _sift_up(self, pos: int) -> None:
        heap, keys, index = self._heap, self._keys, self._pos
        item = heap[pos]
        key = keys[item]
        while pos > 0:
            parent = (pos - 1) >> 1
            parent_item = heap[parent]
            if keys[parent_item] <= key:
                break
            heap[pos] = parent_item
            index[parent_item] = pos
            pos = parent
        heap[pos] = item
        index[item] = pos

    def _sift_down(self, pos: int) -> None:
        heap, keys, index = self._heap, self._keys, self._pos
        size = self._size
        item = heap[pos]
        key = keys[item]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and keys[heap[right]] < keys[heap[child]]:
                child = right
            child_item = heap[child]
            if keys[child_item] >= key:
                break
            heap[pos] = child_item
            index[child_item] = pos
            pos = child
        heap[pos] = item
        index[item] = pos
