"""Priority queues with decrease-key, as required by Dijkstra variants.

The paper's Theorem 4 cites Dijkstra over a radix/Fibonacci-heap combination
(Ahuja et al. 1990) for integer edge costs bounded by ``U``; the released
implementation used a binary heap. We provide both, plus a pairing heap
(an efficient practical stand-in for the Fibonacci heap), behind one
interface so the choice is a benchmark ablation rather than a code fork.
"""

from repro.heaps.binary_heap import IndexedBinaryHeap
from repro.heaps.pairing_heap import PairingHeap
from repro.heaps.radix_heap import RadixHeap

__all__ = ["IndexedBinaryHeap", "RadixHeap", "PairingHeap", "make_heap", "HEAP_KINDS"]

HEAP_KINDS = ("binary", "radix", "pairing")


def make_heap(kind: str, *, capacity: int, max_key: float | None = None):
    """Factory over the three heap implementations.

    Parameters
    ----------
    kind:
        One of ``"binary"``, ``"radix"``, ``"pairing"``.
    capacity:
        Number of distinct items (node count for Dijkstra).
    max_key:
        Upper bound on any inserted key — required by the radix heap
        (monotone integer keys), ignored by the others.
    """
    if kind == "binary":
        return IndexedBinaryHeap(capacity)
    if kind == "pairing":
        return PairingHeap(capacity)
    if kind == "radix":
        if max_key is None:
            raise ValueError("radix heap requires max_key (C * (n-1) bound)")
        return RadixHeap(capacity, int(max_key))
    raise ValueError(f"unknown heap kind {kind!r}; expected one of {HEAP_KINDS}")
