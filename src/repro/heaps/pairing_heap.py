"""Pairing heap with decrease-key.

A practical stand-in for the Fibonacci heap of the paper's Theorem 4: same
amortised O(1) decrease-key role in Dijkstra, with far better constants in
pure Python. Implemented with array-based node storage (no per-node objects)
to keep allocation pressure low.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PairingHeap"]


class PairingHeap:
    """Min pairing heap over items ``0..capacity-1`` keyed by float.

    Uses the left-child / right-sibling representation; ``_prev`` stores the
    parent for leftmost children and the left sibling otherwise, which is
    exactly the information needed to cut a node during decrease-key.
    """

    __slots__ = ("_keys", "_child", "_sibling", "_prev", "_in_heap", "_root", "_size")

    _NONE = -1

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._keys = np.zeros(capacity, dtype=np.float64)
        self._child = np.full(capacity, self._NONE, dtype=np.int64)
        self._sibling = np.full(capacity, self._NONE, dtype=np.int64)
        self._prev = np.full(capacity, self._NONE, dtype=np.int64)
        self._in_heap = np.zeros(capacity, dtype=bool)
        self._root = self._NONE
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return bool(self._in_heap[item])

    def key_of(self, item: int) -> float:
        return float(self._keys[item])

    def _meld(self, a: int, b: int) -> int:
        """Merge two root nodes, returning the new root."""
        if a == self._NONE:
            return b
        if b == self._NONE:
            return a
        if self._keys[b] < self._keys[a]:
            a, b = b, a
        # b becomes leftmost child of a.
        old_child = self._child[a]
        self._sibling[b] = old_child
        if old_child != self._NONE:
            self._prev[old_child] = b
        self._prev[b] = a
        self._child[a] = b
        self._sibling[a] = self._NONE
        return a

    def push(self, item: int, key: float) -> None:
        if self._in_heap[item]:
            self.decrease_key(item, key)
            return
        self._keys[item] = key
        self._child[item] = self._NONE
        self._sibling[item] = self._NONE
        self._prev[item] = self._NONE
        self._in_heap[item] = True
        self._root = self._meld(self._root, item)
        self._size += 1

    def decrease_key(self, item: int, key: float) -> None:
        if not self._in_heap[item]:
            raise KeyError(f"item {item} not in heap")
        if key > self._keys[item]:
            raise ValueError(
                f"decrease_key would increase key of {item}: "
                f"{self._keys[item]} -> {key}"
            )
        self._keys[item] = key
        if item == self._root:
            return
        # Cut item from its parent's child list.
        prev = self._prev[item]
        sib = self._sibling[item]
        if self._child[prev] == item:  # item is leftmost child: prev is parent
            self._child[prev] = sib
        else:  # prev is left sibling
            self._sibling[prev] = sib
        if sib != self._NONE:
            self._prev[sib] = prev
        self._sibling[item] = self._NONE
        self._prev[item] = self._NONE
        self._root = self._meld(self._root, item)

    def pop(self) -> tuple[int, float]:
        if self._size == 0:
            raise IndexError("pop from empty heap")
        top = self._root
        key = float(self._keys[top])
        self._in_heap[top] = False
        self._size -= 1
        # Two-pass pairing of the children.
        first_pass: list[int] = []
        node = self._child[top]
        while node != self._NONE:
            nxt = self._sibling[node]
            self._sibling[node] = self._NONE
            self._prev[node] = self._NONE
            if nxt != self._NONE:
                nxt2 = self._sibling[nxt]
                self._sibling[nxt] = self._NONE
                self._prev[nxt] = self._NONE
                first_pass.append(self._meld(node, nxt))
                node = nxt2
            else:
                first_pass.append(node)
                node = self._NONE
        root = self._NONE
        for subtree in reversed(first_pass):
            root = self._meld(root, subtree)
        self._child[top] = self._NONE
        self._root = root
        return top, key

    def peek(self) -> tuple[int, float]:
        if self._size == 0:
            raise IndexError("peek at empty heap")
        return int(self._root), float(self._keys[self._root])
