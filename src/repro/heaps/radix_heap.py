"""One-level radix heap for monotone integer keys (Ahuja–Mehlhorn–Orlin–Tarjan).

A radix heap exploits Dijkstra's monotonicity: keys popped never decrease,
and every key lies in ``[last_popped, last_popped + max_span]``. Buckets hold
exponentially growing key ranges relative to the last popped key; pops
redistribute the first non-empty bucket. For integer edge costs bounded by
``U`` (the paper's Assumption 2) this yields O(m + n log U)-style behaviour
— the heap the paper's Theorem 4 cites.
"""

from __future__ import annotations

__all__ = ["RadixHeap"]


class RadixHeap:
    """Monotone integer-key priority queue with decrease-key.

    Parameters
    ----------
    capacity:
        Item ids are ``0..capacity-1``.
    max_key:
        Strict upper bound on any key ever inserted (e.g. ``U * (n - 1)``
        for Dijkstra with edge costs at most ``U``).
    """

    __slots__ = ("_capacity", "_max_key", "_buckets", "_keys", "_where", "_last", "_size")

    _ABSENT = -1

    def __init__(self, capacity: int, max_key: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if max_key < 0:
            raise ValueError(f"max_key must be non-negative, got {max_key}")
        self._capacity = capacity
        self._max_key = max_key
        n_buckets = max(2, max_key.bit_length() + 2)
        self._buckets: list[dict[int, int]] = [dict() for _ in range(n_buckets)]
        self._keys = [0] * capacity
        self._where = [self._ABSENT] * capacity
        self._last = 0  # last popped key (monotone floor)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return self._where[item] != self._ABSENT

    def key_of(self, item: int) -> float:
        return float(self._keys[item])

    def _bucket_index(self, key: int) -> int:
        """Bucket b holds keys whose binary representation first differs from
        ``_last`` at bit b-1 (bucket 0: key == _last)."""
        diff = key ^ self._last
        return diff.bit_length()  # 0 when key == last

    def push(self, item: int, key: float) -> None:
        key = int(key)
        if key < self._last:
            raise ValueError(
                f"radix heap requires monotone keys: {key} < last popped {self._last}"
            )
        if key > self._max_key:
            raise ValueError(f"key {key} exceeds declared max_key {self._max_key}")
        if self._where[item] != self._ABSENT:
            self.decrease_key(item, key)
            return
        b = self._bucket_index(key)
        self._buckets[b][item] = key
        self._keys[item] = key
        self._where[item] = b
        self._size += 1

    def decrease_key(self, item: int, key: float) -> None:
        key = int(key)
        b_old = self._where[item]
        if b_old == self._ABSENT:
            raise KeyError(f"item {item} not in heap")
        old = self._keys[item]
        if key > old:
            raise ValueError(f"decrease_key would increase key of {item}: {old} -> {key}")
        if key < self._last:
            raise ValueError(
                f"radix heap requires monotone keys: {key} < last popped {self._last}"
            )
        del self._buckets[b_old][item]
        b_new = self._bucket_index(key)
        self._buckets[b_new][item] = key
        self._keys[item] = key
        self._where[item] = b_new

    def pop(self) -> tuple[int, float]:
        if self._size == 0:
            raise IndexError("pop from empty heap")
        # Find first non-empty bucket.
        b = 0
        while not self._buckets[b]:
            b += 1
        if b == 0:
            item, key = self._buckets[0].popitem()
            self._where[item] = self._ABSENT
            self._size -= 1
            return item, float(key)
        # Redistribute: the minimum key in bucket b becomes the new floor;
        # every item in the bucket lands in a strictly smaller bucket.
        bucket = self._buckets[b]
        min_key = min(bucket.values())
        self._last = min_key
        items = list(bucket.items())
        bucket.clear()
        for item, key in items:
            nb = self._bucket_index(key)
            self._buckets[nb][item] = key
            self._where[item] = nb
        item, key = next(iter(self._buckets[0].items()))
        del self._buckets[0][item]
        self._where[item] = self._ABSENT
        self._size -= 1
        return item, float(key)

    def peek(self) -> tuple[int, float]:
        if self._size == 0:
            raise IndexError("peek at empty heap")
        best_item = -1
        best_key = None
        for bucket in self._buckets:
            if bucket:
                for item, key in bucket.items():
                    if best_key is None or key < best_key:
                        best_key = key
                        best_item = item
                break  # min always lives in the first non-empty bucket
        assert best_key is not None
        return best_item, float(best_key)
