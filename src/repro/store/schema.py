"""Schema for the experiment store.

Design notes: graphs and state series are stored as compressed npz blobs
(they are opaque to SQL queries), while run results are first-class rows so
``EXPERIMENTS.md`` tables can be regenerated with plain SQL.
"""

SCHEMA_VERSION = 1

DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS graphs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    name       TEXT NOT NULL UNIQUE,
    n_nodes    INTEGER NOT NULL,
    n_edges    INTEGER NOT NULL,
    blob       BLOB NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS state_series (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    graph_id   INTEGER NOT NULL REFERENCES graphs(id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    n_states   INTEGER NOT NULL,
    blob       BLOB NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (graph_id, name)
);

CREATE TABLE IF NOT EXISTS distance_runs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    series_id  INTEGER REFERENCES state_series(id) ON DELETE CASCADE,
    measure    TEXT NOT NULL,
    t_from     INTEGER NOT NULL,
    t_to       INTEGER NOT NULL,
    value      REAL NOT NULL,
    elapsed_s  REAL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS experiment_results (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment TEXT NOT NULL,
    metric     TEXT NOT NULL,
    params     TEXT NOT NULL DEFAULT '{}',
    value      REAL NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE INDEX IF NOT EXISTS idx_distance_runs_series
    ON distance_runs (series_id, measure);
CREATE INDEX IF NOT EXISTS idx_experiment_results_exp
    ON experiment_results (experiment, metric);
"""
