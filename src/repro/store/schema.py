"""Schema for the experiment store.

Design notes: graphs and state series are stored as compressed npz blobs
(they are opaque to SQL queries), while run results are first-class rows so
``EXPERIMENTS.md`` tables can be regenerated with plain SQL.

Versioning: ``DDL`` holds the v1 base schema; later versions live in
``MIGRATIONS`` (version -> idempotent SQL script) and are applied in order
on open, so a store created by any earlier release upgrades in place. New
databases run the same path (base DDL, then every migration), keeping one
code path for both.

v2 adds ``corpora``: appendable state collections with their incrementally
extended pairwise SND matrices (:class:`repro.snd.engine.Corpus`), so the
§9 metric-space workloads can persist and resume growing corpora instead
of recomputing ``N·(N-1)/2`` pairs per run.

v3 adds ``transition_cache``: spilled entries of the in-memory
:class:`repro.snd.cache.TransitionCache` (one solved SND value keyed by
the ordered state-fingerprint pair), so a restarted server warms its
cache from the store and answers a previously-served trace with zero
fresh solves. Fingerprints are the raw opinion-vector bytes — content
keys, valid across processes and releases.
"""

SCHEMA_VERSION = 3

DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS graphs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    name       TEXT NOT NULL UNIQUE,
    n_nodes    INTEGER NOT NULL,
    n_edges    INTEGER NOT NULL,
    blob       BLOB NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS state_series (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    graph_id   INTEGER NOT NULL REFERENCES graphs(id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    n_states   INTEGER NOT NULL,
    blob       BLOB NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (graph_id, name)
);

CREATE TABLE IF NOT EXISTS distance_runs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    series_id  INTEGER REFERENCES state_series(id) ON DELETE CASCADE,
    measure    TEXT NOT NULL,
    t_from     INTEGER NOT NULL,
    t_to       INTEGER NOT NULL,
    value      REAL NOT NULL,
    elapsed_s  REAL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS experiment_results (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment TEXT NOT NULL,
    metric     TEXT NOT NULL,
    params     TEXT NOT NULL DEFAULT '{}',
    value      REAL NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE INDEX IF NOT EXISTS idx_distance_runs_series
    ON distance_runs (series_id, measure);
CREATE INDEX IF NOT EXISTS idx_experiment_results_exp
    ON experiment_results (experiment, metric);
"""

#: version -> SQL applied when upgrading *to* that version. Scripts must be
#: idempotent (IF NOT EXISTS) — new databases run them all after the base
#: DDL, existing ones only the versions above their stored schema_version.
MIGRATIONS: dict[int, str] = {
    2: """
CREATE TABLE IF NOT EXISTS corpora (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    graph_id    INTEGER NOT NULL REFERENCES graphs(id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    n_states    INTEGER NOT NULL,
    blob        BLOB NOT NULL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (graph_id, name)
);

CREATE INDEX IF NOT EXISTS idx_corpora_graph ON corpora (graph_id, name);
""",
    3: """
CREATE TABLE IF NOT EXISTS transition_cache (
    graph_id    INTEGER NOT NULL REFERENCES graphs(id) ON DELETE CASCADE,
    key_a       BLOB NOT NULL,
    key_b       BLOB NOT NULL,
    value       REAL NOT NULL,
    updated_at  TEXT NOT NULL DEFAULT (datetime('now')),
    PRIMARY KEY (graph_id, key_a, key_b)
) WITHOUT ROWID;
""",
}
