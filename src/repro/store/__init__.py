"""SQLite-backed experiment store (graphs, state series, distance runs)."""

from repro.store.database import ExperimentStore

__all__ = ["ExperimentStore"]
