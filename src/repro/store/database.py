"""SQLite persistence for experiments — graphs, series, and results.

An ICDE-appropriate convenience: benchmark harnesses write every measured
row here, so EXPERIMENTS.md numbers are regenerable queries rather than
copy-paste. The store is a plain single-file SQLite database (stdlib only),
safe for concurrent readers, single writer.
"""

from __future__ import annotations

import io
import json
import os
import sqlite3
from pathlib import Path

import numpy as np

from repro.exceptions import StoreError
from repro.graph.digraph import DiGraph
from repro.opinions.state import StateSeries
from repro.store.schema import DDL, MIGRATIONS, SCHEMA_VERSION

__all__ = ["ExperimentStore"]


def _graph_blob(graph: DiGraph) -> bytes:
    buf = io.BytesIO()
    np.savez_compressed(
        buf, indptr=graph.indptr, indices=graph.indices, weights=graph.weights
    )
    return buf.getvalue()


def _graph_from_blob(blob: bytes) -> DiGraph:
    with np.load(io.BytesIO(blob)) as data:
        return DiGraph.from_csr(data["indptr"], data["indices"], data["weights"])


def _series_blob(series: StateSeries) -> bytes:
    buf = io.BytesIO()
    labels = series.labels if series.labels is not None else []
    # No explicit itemsize: numpy sizes the unicode dtype to the longest
    # label, so nothing is silently truncated (a fixed "U64" used to clip
    # labels beyond 64 characters on save).
    np.savez_compressed(
        buf,
        matrix=series.to_matrix(),
        labels=np.asarray([str(x) for x in labels], dtype=np.str_),
    )
    return buf.getvalue()


def _series_from_blob(blob: bytes) -> StateSeries:
    with np.load(io.BytesIO(blob)) as data:
        matrix = data["matrix"]
        labels = [str(x) for x in data["labels"]] if data["labels"].size else None
        return StateSeries.from_matrix(matrix, labels=labels)


class ExperimentStore:
    """Single-file experiment database.

    Examples
    --------
    >>> store = ExperimentStore(":memory:")
    >>> from repro.graph import star_graph
    >>> gid = store.save_graph("star", star_graph(4))
    >>> store.load_graph("star").num_nodes
    4
    """

    def __init__(self, path: str | os.PathLike = "experiments.sqlite") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self.path)
        except sqlite3.Error as exc:  # pragma: no cover - environment-specific
            raise StoreError(f"cannot open store at {self.path}: {exc}") from exc
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(DDL)
        self._migrate()

    def _migrate(self) -> None:
        """Apply pending schema migrations in version order.

        A database without a recorded version is treated as v1 (the base
        DDL), so stores written by earlier releases upgrade in place; new
        databases run every migration after the base DDL — one code path.
        """
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        current = int(row[0]) if row is not None else 1
        if current > SCHEMA_VERSION:
            raise StoreError(
                f"store at {self.path} has schema v{current}, newer than "
                f"this library's v{SCHEMA_VERSION}"
            )
        for version in range(current + 1, SCHEMA_VERSION + 1):
            try:
                self._conn.executescript(MIGRATIONS[version])
            except sqlite3.Error as exc:
                raise StoreError(
                    f"migration to schema v{version} failed: {exc}"
                ) from exc
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #

    def save_graph(self, name: str, graph: DiGraph, *, replace: bool = True) -> int:
        """Insert (or replace) a named graph; returns its row id."""
        blob = _graph_blob(graph)
        try:
            if replace:
                self._conn.execute("DELETE FROM graphs WHERE name = ?", (name,))
            cursor = self._conn.execute(
                "INSERT INTO graphs (name, n_nodes, n_edges, blob) VALUES (?, ?, ?, ?)",
                (name, graph.num_nodes, graph.num_edges, blob),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(f"failed to save graph {name!r}: {exc}") from exc
        return int(cursor.lastrowid)

    def load_graph(self, name: str) -> DiGraph:
        row = self._conn.execute(
            "SELECT blob FROM graphs WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no graph named {name!r}")
        return _graph_from_blob(row[0])

    def list_graphs(self) -> list[tuple[str, int, int]]:
        """``(name, n_nodes, n_edges)`` for every stored graph."""
        return [
            (r[0], int(r[1]), int(r[2]))
            for r in self._conn.execute(
                "SELECT name, n_nodes, n_edges FROM graphs ORDER BY name"
            )
        ]

    # ------------------------------------------------------------------ #
    # State series
    # ------------------------------------------------------------------ #

    def save_series(
        self, graph_name: str, series_name: str, series: StateSeries, *, replace: bool = True
    ) -> int:
        graph_row = self._conn.execute(
            "SELECT id FROM graphs WHERE name = ?", (graph_name,)
        ).fetchone()
        if graph_row is None:
            raise StoreError(f"no graph named {graph_name!r} for series")
        graph_id = int(graph_row[0])
        try:
            if replace:
                self._conn.execute(
                    "DELETE FROM state_series WHERE graph_id = ? AND name = ?",
                    (graph_id, series_name),
                )
            cursor = self._conn.execute(
                "INSERT INTO state_series (graph_id, name, n_states, blob) "
                "VALUES (?, ?, ?, ?)",
                (graph_id, series_name, len(series), _series_blob(series)),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(f"failed to save series {series_name!r}: {exc}") from exc
        return int(cursor.lastrowid)

    def load_series(self, graph_name: str, series_name: str) -> StateSeries:
        row = self._conn.execute(
            "SELECT s.blob FROM state_series s JOIN graphs g ON s.graph_id = g.id "
            "WHERE g.name = ? AND s.name = ?",
            (graph_name, series_name),
        ).fetchone()
        if row is None:
            raise StoreError(f"no series {series_name!r} under graph {graph_name!r}")
        return _series_from_blob(row[0])

    def series_id(self, graph_name: str, series_name: str) -> int:
        """Row id of a stored series (for :meth:`record_distance` keys)."""
        row = self._conn.execute(
            "SELECT s.id FROM state_series s JOIN graphs g ON s.graph_id = g.id "
            "WHERE g.name = ? AND s.name = ?",
            (graph_name, series_name),
        ).fetchone()
        if row is None:
            raise StoreError(f"no series {series_name!r} under graph {graph_name!r}")
        return int(row[0])

    # ------------------------------------------------------------------ #
    # Corpora (schema v2)
    # ------------------------------------------------------------------ #

    def save_corpus(
        self,
        graph_name: str,
        corpus_name: str,
        states: StateSeries,
        matrix: np.ndarray,
        *,
        replace: bool = True,
    ) -> int:
        """Persist a corpus: its member states plus the pairwise SND
        matrix maintained by :class:`repro.snd.engine.Corpus`."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (len(states), len(states)):
            raise StoreError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(states)} corpus states"
            )
        graph_row = self._conn.execute(
            "SELECT id FROM graphs WHERE name = ?", (graph_name,)
        ).fetchone()
        if graph_row is None:
            raise StoreError(f"no graph named {graph_name!r} for corpus")
        graph_id = int(graph_row[0])
        buf = io.BytesIO()
        np.savez_compressed(buf, states=states.to_matrix(), matrix=matrix)
        try:
            if replace:
                self._conn.execute(
                    "DELETE FROM corpora WHERE graph_id = ? AND name = ?",
                    (graph_id, corpus_name),
                )
            cursor = self._conn.execute(
                "INSERT INTO corpora (graph_id, name, n_states, blob) "
                "VALUES (?, ?, ?, ?)",
                (graph_id, corpus_name, len(states), buf.getvalue()),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(f"failed to save corpus {corpus_name!r}: {exc}") from exc
        return int(cursor.lastrowid)

    def load_corpus(self, graph_name: str, corpus_name: str) -> tuple[StateSeries, np.ndarray]:
        """``(states, matrix)`` of a stored corpus."""
        row = self._conn.execute(
            "SELECT c.blob FROM corpora c JOIN graphs g ON c.graph_id = g.id "
            "WHERE g.name = ? AND c.name = ?",
            (graph_name, corpus_name),
        ).fetchone()
        if row is None:
            raise StoreError(f"no corpus {corpus_name!r} under graph {graph_name!r}")
        with np.load(io.BytesIO(row[0])) as data:
            return (
                StateSeries.from_matrix(data["states"]),
                np.asarray(data["matrix"], dtype=np.float64),
            )

    def list_corpora(self, graph_name: str | None = None) -> list[tuple[str, str, int]]:
        """``(graph_name, corpus_name, n_states)`` rows, optionally
        filtered to one graph."""
        query = (
            "SELECT g.name, c.name, c.n_states FROM corpora c "
            "JOIN graphs g ON c.graph_id = g.id"
        )
        params: tuple = ()
        if graph_name is not None:
            query += " WHERE g.name = ?"
            params = (graph_name,)
        query += " ORDER BY g.name, c.name"
        return [(r[0], r[1], int(r[2])) for r in self._conn.execute(query, params)]

    # ------------------------------------------------------------------ #
    # Transition cache spill (schema v3)
    # ------------------------------------------------------------------ #

    def _graph_id(self, graph_name: str) -> int:
        row = self._conn.execute(
            "SELECT id FROM graphs WHERE name = ?", (graph_name,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no graph named {graph_name!r}")
        return int(row[0])

    def save_transitions(
        self, graph_name: str, rows: list[tuple[bytes, bytes, float]]
    ) -> int:
        """Upsert spilled transition-cache rows for *graph_name*.

        Rows are ``(key_a, key_b, value)`` from
        :meth:`repro.snd.cache.TransitionCache.export_rows`. Upsert
        semantics make the periodic flush idempotent: re-flushing an
        unchanged cache rewrites the same primary keys. Returns the
        number of rows written.
        """
        graph_id = self._graph_id(graph_name)
        try:
            self._conn.executemany(
                "INSERT INTO transition_cache (graph_id, key_a, key_b, value) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT (graph_id, key_a, key_b) DO UPDATE SET "
                "value = excluded.value, updated_at = datetime('now')",
                [
                    (graph_id, sqlite3.Binary(ka), sqlite3.Binary(kb), float(v))
                    for ka, kb, v in rows
                ],
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(
                f"failed to save transition cache for {graph_name!r}: {exc}"
            ) from exc
        return len(rows)

    def load_transitions(self, graph_name: str) -> list[tuple[bytes, bytes, float]]:
        """All spilled transition rows for *graph_name*, oldest first (so
        re-seeding preserves rough LRU order)."""
        graph_id = self._graph_id(graph_name)
        return [
            (bytes(r[0]), bytes(r[1]), float(r[2]))
            for r in self._conn.execute(
                "SELECT key_a, key_b, value FROM transition_cache "
                "WHERE graph_id = ? ORDER BY updated_at, key_a, key_b",
                (graph_id,),
            )
        ]

    def count_transitions(self, graph_name: str) -> int:
        """Number of spilled transition rows for *graph_name*."""
        graph_id = self._graph_id(graph_name)
        row = self._conn.execute(
            "SELECT COUNT(*) FROM transition_cache WHERE graph_id = ?",
            (graph_id,),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def record_distance(
        self,
        series_id: int | None,
        measure: str,
        t_from: int,
        t_to: int,
        value: float,
        elapsed_s: float | None = None,
    ) -> None:
        self._conn.execute(
            "INSERT INTO distance_runs (series_id, measure, t_from, t_to, value, elapsed_s) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (series_id, measure, t_from, t_to, float(value), elapsed_s),
        )
        self._conn.commit()

    def record_result(
        self, experiment: str, metric: str, value: float, *, params: dict | None = None
    ) -> None:
        """Record one scalar experiment outcome (e.g. ``fig8 / tpr_at_0.3``)."""
        self._conn.execute(
            "INSERT INTO experiment_results (experiment, metric, params, value) "
            "VALUES (?, ?, ?, ?)",
            (experiment, metric, json.dumps(params or {}, sort_keys=True), float(value)),
        )
        self._conn.commit()

    def results(self, experiment: str) -> list[tuple[str, dict, float]]:
        """All ``(metric, params, value)`` rows for an experiment, newest last."""
        return [
            (r[0], json.loads(r[1]), float(r[2]))
            for r in self._conn.execute(
                "SELECT metric, params, value FROM experiment_results "
                "WHERE experiment = ? ORDER BY id",
                (experiment,),
            )
        ]
