"""A compact directed graph stored in Compressed Sparse Row (CSR) form.

The whole library operates on :class:`DiGraph`. Nodes are the integers
``0..n-1``; edges are stored as two aligned arrays (``indptr``, ``indices``)
in CSR order, exactly as in :mod:`scipy.sparse`, so conversion to a scipy CSR
matrix is zero-copy on the structure arrays. An optional per-edge weight array
is kept aligned with ``indices``.

Design notes
------------
* Parallel edges are collapsed at construction (keeping the minimum weight);
  self-loops are dropped — neither carries meaning for opinion propagation,
  and shortest-path/flow codes are simpler without them.
* The reverse adjacency (in-edges) is built lazily and cached, because only
  some algorithms (reverse Dijkstra, in-neighbor votes) need it.
* Instances are immutable after construction; "mutation" helpers return new
  graphs. Immutability is what makes the lazy caches safe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import EdgeError, GraphError, NodeError

__all__ = ["DiGraph"]


class DiGraph:
    """Directed graph over nodes ``0..n-1`` in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs or an ``(m, 2)`` integer array. Edge
        direction is ``u -> v`` ("u influences v").
    weights:
        Optional per-edge weights aligned with *edges*. When omitted, every
        edge has weight 1.0.

    Examples
    --------
    >>> g = DiGraph(3, [(0, 1), (1, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> list(g.out_neighbors(0))
    [1]
    """

    __slots__ = (
        "_n",
        "_indptr",
        "_indices",
        "_weights",
        "_rev_indptr",
        "_rev_indices",
        "_rev_weights",
        "_rev_edge_ids",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray = (),
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)

        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_arr.size == 0:
            edge_arr = np.empty((0, 2), dtype=np.int64)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise EdgeError(f"edges must be an (m, 2) array, got shape {edge_arr.shape}")
        edge_arr = edge_arr.astype(np.int64, copy=False)

        if weights is None:
            weight_arr = np.ones(edge_arr.shape[0], dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
            if weight_arr.shape != (edge_arr.shape[0],):
                raise EdgeError(
                    f"weights must have one entry per edge "
                    f"({edge_arr.shape[0]}), got shape {weight_arr.shape}"
                )

        if edge_arr.shape[0]:
            lo = int(edge_arr.min())
            hi = int(edge_arr.max())
            if lo < 0 or hi >= self._n:
                raise NodeError(f"edge endpoints must lie in [0, {self._n - 1}]")

            # Drop self-loops.
            keep = edge_arr[:, 0] != edge_arr[:, 1]
            edge_arr = edge_arr[keep]
            weight_arr = weight_arr[keep]

            # Sort into CSR order, then collapse duplicates keeping min weight.
            order = np.lexsort((edge_arr[:, 1], edge_arr[:, 0]))
            edge_arr = edge_arr[order]
            weight_arr = weight_arr[order]
            if edge_arr.shape[0]:
                same = np.concatenate(
                    ([False], np.all(edge_arr[1:] == edge_arr[:-1], axis=1))
                )
                if same.any():
                    # Group-min over runs of duplicates.
                    group_id = np.cumsum(~same) - 1
                    n_groups = group_id[-1] + 1
                    min_w = np.full(n_groups, np.inf)
                    np.minimum.at(min_w, group_id, weight_arr)
                    firsts = np.flatnonzero(~same)
                    edge_arr = edge_arr[firsts]
                    weight_arr = min_w

        sources = edge_arr[:, 0]
        self._indices = np.ascontiguousarray(edge_arr[:, 1])
        self._weights = np.ascontiguousarray(weight_arr)
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        if sources.size:
            np.add.at(self._indptr, sources + 1, 1)
        np.cumsum(self._indptr, out=self._indptr)

        self._rev_indptr: np.ndarray | None = None
        self._rev_indices: np.ndarray | None = None
        self._rev_weights: np.ndarray | None = None
        self._rev_edge_ids: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "DiGraph":
        """Build directly from CSR arrays (assumed valid, sorted, loop-free)."""
        g = cls.__new__(cls)
        g._n = len(indptr) - 1
        g._indptr = np.asarray(indptr, dtype=np.int64)
        g._indices = np.asarray(indices, dtype=np.int64)
        if weights is None:
            weights = np.ones(len(g._indices), dtype=np.float64)
        g._weights = np.asarray(weights, dtype=np.float64)
        if g._weights.shape != g._indices.shape:
            raise EdgeError("weights must align with indices")
        g._rev_indptr = g._rev_indices = g._rev_weights = g._rev_edge_ids = None
        return g

    @classmethod
    def from_undirected_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[float] | None = None,
    ) -> "DiGraph":
        """Build a digraph containing both directions of every listed edge."""
        edge_list = list(edges)
        both = edge_list + [(v, u) for (u, v) in edge_list]
        if weights is not None:
            w = list(weights)
            both_w: Sequence[float] | None = w + w
        else:
            both_w = None
        return cls(n, both, both_w)

    @classmethod
    def from_networkx(cls, nx_graph) -> "DiGraph":
        """Convert a networkx (Di)Graph with integer labels ``0..n-1``."""
        n = nx_graph.number_of_nodes()
        directed = nx_graph.is_directed()
        edges = []
        weights = []
        for u, v, data in nx_graph.edges(data=True):
            w = float(data.get("weight", 1.0))
            edges.append((int(u), int(v)))
            weights.append(w)
            if not directed:
                edges.append((int(v), int(u)))
                weights.append(w)
        return cls(n, edges, weights)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (after dedup/self-loop removal)."""
        return len(self._indices)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of length ``n + 1`` (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of length ``m`` (read-only view)."""
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """Per-edge weights aligned with :attr:`indices`."""
        return self._weights

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self._n}, m={self.num_edges})"

    def _check_node(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self._n:
            raise NodeError(f"node {u} out of range [0, {self._n - 1}]")
        return u

    # ------------------------------------------------------------------ #
    # Neighborhoods
    # ------------------------------------------------------------------ #

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of edges leaving *u* (CSR slice; do not mutate)."""
        u = self._check_node(u)
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def out_weights(self, u: int) -> np.ndarray:
        """Weights of edges leaving *u*, aligned with :meth:`out_neighbors`."""
        u = self._check_node(u)
        return self._weights[self._indptr[u] : self._indptr[u + 1]]

    def out_edge_range(self, u: int) -> tuple[int, int]:
        """Half-open range of edge ids leaving *u* in CSR order."""
        u = self._check_node(u)
        return int(self._indptr[u]), int(self._indptr[u + 1])

    def in_neighbors(self, u: int) -> np.ndarray:
        """Sources of edges entering *u* (from the cached reverse CSR)."""
        self._ensure_reverse()
        u = self._check_node(u)
        assert self._rev_indices is not None and self._rev_indptr is not None
        return self._rev_indices[self._rev_indptr[u] : self._rev_indptr[u + 1]]

    def in_weights(self, u: int) -> np.ndarray:
        """Weights of edges entering *u*, aligned with :meth:`in_neighbors`."""
        self._ensure_reverse()
        u = self._check_node(u)
        assert self._rev_weights is not None and self._rev_indptr is not None
        return self._rev_weights[self._rev_indptr[u] : self._rev_indptr[u + 1]]

    def in_edge_ids(self, u: int) -> np.ndarray:
        """Forward-CSR edge ids of the edges entering *u*."""
        self._ensure_reverse()
        u = self._check_node(u)
        assert self._rev_edge_ids is not None and self._rev_indptr is not None
        return self._rev_edge_ids[self._rev_indptr[u] : self._rev_indptr[u + 1]]

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for all nodes."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees for all nodes."""
        degs = np.zeros(self._n, dtype=np.int64)
        if len(self._indices):
            np.add.at(degs, self._indices, 1)
        return degs

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the directed edge ``u -> v`` exists."""
        u = self._check_node(u)
        v = self._check_node(v)
        row = self._indices[self._indptr[u] : self._indptr[u + 1]]
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises :class:`EdgeError` if absent."""
        u = self._check_node(u)
        v = self._check_node(v)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        row = self._indices[lo:hi]
        pos = np.searchsorted(row, v)
        if pos >= len(row) or row[pos] != v:
            raise EdgeError(f"edge {u} -> {v} does not exist")
        return float(self._weights[lo + pos])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, weight)`` triples in CSR order."""
        for u in range(self._n):
            lo, hi = self._indptr[u], self._indptr[u + 1]
            for k in range(lo, hi):
                yield u, int(self._indices[k]), float(self._weights[k])

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array in CSR order."""
        sources = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._indptr))
        return np.column_stack([sources, self._indices])

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def _ensure_reverse(self) -> None:
        if self._rev_indptr is not None:
            return
        m = len(self._indices)
        rev_indptr = np.zeros(self._n + 1, dtype=np.int64)
        if m:
            np.add.at(rev_indptr, self._indices + 1, 1)
        np.cumsum(rev_indptr, out=rev_indptr)
        rev_indices = np.empty(m, dtype=np.int64)
        rev_weights = np.empty(m, dtype=np.float64)
        rev_edge_ids = np.empty(m, dtype=np.int64)
        cursor = rev_indptr[:-1].copy()
        sources = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._indptr))
        # Stable counting pass: edges are visited in CSR (sorted) order, so the
        # reverse lists come out sorted by source automatically.
        for eid in range(m):
            v = self._indices[eid]
            slot = cursor[v]
            rev_indices[slot] = sources[eid]
            rev_weights[slot] = self._weights[eid]
            rev_edge_ids[slot] = eid
            cursor[v] += 1
        self._rev_indptr = rev_indptr
        self._rev_indices = rev_indices
        self._rev_weights = rev_weights
        self._rev_edge_ids = rev_edge_ids

    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped (weights preserved)."""
        self._ensure_reverse()
        assert self._rev_indptr is not None
        return DiGraph.from_csr(
            self._rev_indptr.copy(),
            self._rev_indices.copy(),  # type: ignore[arg-type]
            self._rev_weights.copy(),  # type: ignore[arg-type]
        )

    def with_weights(self, weights: np.ndarray) -> "DiGraph":
        """Same structure with a new per-edge weight array (aligned to CSR)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self._indices.shape:
            raise EdgeError(
                f"weights must have shape {self._indices.shape}, got {weights.shape}"
            )
        return DiGraph.from_csr(self._indptr, self._indices, weights)

    def to_undirected(self) -> "DiGraph":
        """Symmetrised graph: for every edge, both directions exist.

        When both ``u -> v`` and ``v -> u`` already exist with different
        weights, the minimum is kept (consistent with parallel-edge collapse).
        """
        edge_arr = self.edge_array()
        flipped = edge_arr[:, ::-1]
        all_edges = np.vstack([edge_arr, flipped])
        all_weights = np.concatenate([self._weights, self._weights])
        return DiGraph(self._n, all_edges, all_weights)

    def subgraph(self, nodes: Sequence[int]) -> tuple["DiGraph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns the subgraph (with nodes relabelled ``0..k-1`` in the order
        given) and the array of original node ids.
        """
        nodes_arr = np.asarray(nodes, dtype=np.int64)
        if nodes_arr.size and (nodes_arr.min() < 0 or nodes_arr.max() >= self._n):
            raise NodeError("subgraph nodes out of range")
        relabel = -np.ones(self._n, dtype=np.int64)
        relabel[nodes_arr] = np.arange(len(nodes_arr))
        sub_edges = []
        sub_weights = []
        for new_u, u in enumerate(nodes_arr):
            lo, hi = self._indptr[u], self._indptr[u + 1]
            for k in range(lo, hi):
                v = self._indices[k]
                if relabel[v] >= 0:
                    sub_edges.append((new_u, relabel[v]))
                    sub_weights.append(self._weights[k])
        return DiGraph(len(nodes_arr), sub_edges, sub_weights), nodes_arr

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def to_scipy_csr(self, weights: np.ndarray | None = None):
        """Return the graph as a :class:`scipy.sparse.csr_matrix`.

        *weights* overrides the stored per-edge weights (same CSR alignment);
        used by the ground-distance builder to reuse one structure with many
        cost vectors.
        """
        from scipy.sparse import csr_matrix

        data = self._weights if weights is None else np.asarray(weights, dtype=np.float64)
        if data.shape != self._indices.shape:
            raise EdgeError("weights must align with CSR indices")
        return csr_matrix((data, self._indices, self._indptr), shape=(self._n, self._n))

    def to_networkx(self):
        """Return a :class:`networkx.DiGraph` copy (requires networkx)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_weighted_edges_from(self.edges())
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.allclose(self._weights, other._weights)
        )

    def __hash__(self) -> int:  # structural identity is too expensive; use id
        return id(self)
