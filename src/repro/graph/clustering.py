"""Graph clustering used for (a) EMD* bank-bin allocation and (b) the
``community-lp`` opinion-prediction baseline of §6.3.

Two different needs, two different algorithms:

* :func:`balanced_bfs_partition` produces a *complete, balanced* partition —
  what EMD* bank allocation needs (every bin must belong to exactly one
  cluster, cluster sizes should be comparable so bank capacities are
  well-conditioned).
* :func:`label_propagation_communities` finds *natural* communities — what
  the community-lp baseline (Conover et al.) uses.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ClusteringError
from repro.graph.digraph import DiGraph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "label_propagation_communities",
    "balanced_bfs_partition",
    "greedy_modularity_communities",
    "partition_from_labels",
    "validate_partition",
    "modularity",
]


def partition_from_labels(labels: np.ndarray) -> list[np.ndarray]:
    """Convert a label array into a list of member-index arrays.

    Labels are compacted: cluster ids in the output are ``0..k-1`` ordered by
    first appearance.
    """
    labels = np.asarray(labels)
    _, compact = np.unique(labels, return_inverse=True)
    clusters: list[np.ndarray] = []
    order = np.argsort(compact, kind="stable")
    sorted_labels = compact[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    for chunk in np.split(order, boundaries):
        clusters.append(np.sort(chunk))
    return clusters


def validate_partition(clusters: list[np.ndarray], n: int) -> None:
    """Raise :class:`ClusteringError` unless *clusters* partition ``0..n-1``."""
    seen = np.zeros(n, dtype=bool)
    total = 0
    for ci, members in enumerate(clusters):
        members = np.asarray(members)
        if members.size == 0:
            raise ClusteringError(f"cluster {ci} is empty")
        if members.min() < 0 or members.max() >= n:
            raise ClusteringError(f"cluster {ci} contains out-of-range nodes")
        if seen[members].any():
            raise ClusteringError("clusters overlap")
        seen[members] = True
        total += members.size
    if total != n:
        raise ClusteringError(f"clusters cover {total} of {n} nodes")


def label_propagation_communities(
    graph: DiGraph, *, max_iter: int = 100, seed=None
) -> np.ndarray:
    """Asynchronous label propagation (Raghavan et al.) over the undirected
    version of *graph*. Returns compacted community labels.

    Each node repeatedly adopts the most frequent label among its neighbors
    (ties broken uniformly at random) until no label changes or *max_iter*
    sweeps elapse.
    """
    check_positive_int(max_iter, "max_iter")
    rng = as_rng(seed)
    undirected = graph.to_undirected()
    n = undirected.num_nodes
    indptr, indices = undirected.indptr, undirected.indices
    labels = np.arange(n, dtype=np.int64)
    order = np.arange(n)
    for _ in range(max_iter):
        rng.shuffle(order)
        changed = False
        for u in order:
            neigh = indices[indptr[u] : indptr[u + 1]]
            if neigh.size == 0:
                continue
            neigh_labels = labels[neigh]
            values, counts = np.unique(neigh_labels, return_counts=True)
            best = values[counts == counts.max()]
            new_label = int(best[rng.integers(len(best))]) if len(best) > 1 else int(best[0])
            if new_label != labels[u]:
                labels[u] = new_label
                changed = True
        if not changed:
            break
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def balanced_bfs_partition(
    graph: DiGraph, n_clusters: int, *, seed=None
) -> list[np.ndarray]:
    """Partition nodes into *n_clusters* connected, size-balanced chunks.

    Seeds are chosen greedily far apart (k-center style on hop distance),
    then clusters grow by synchronized BFS; each frontier step assigns
    unclaimed nodes to the smallest adjacent cluster. Isolated leftovers are
    assigned to the globally smallest cluster, which keeps the result a true
    partition even on disconnected graphs.
    """
    check_positive_int(n_clusters, "n_clusters")
    n = graph.num_nodes
    if n_clusters > n:
        raise ClusteringError(f"cannot make {n_clusters} clusters from {n} nodes")
    rng = as_rng(seed)
    undirected = graph.to_undirected()
    indptr, indices = undirected.indptr, undirected.indices

    from repro.graph.traversal import bfs_distances

    seeds = [int(rng.integers(n))]
    for _ in range(n_clusters - 1):
        dist = bfs_distances(undirected, seeds)
        unreached = dist < 0
        if unreached.any():
            candidates = np.flatnonzero(unreached)
            seeds.append(int(candidates[rng.integers(len(candidates))]))
        else:
            seeds.append(int(np.argmax(dist)))

    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(n_clusters, dtype=np.int64)
    frontiers: list[deque[int]] = []
    for ci, s in enumerate(seeds):
        assignment[s] = ci
        sizes[ci] += 1
        frontiers.append(deque([s]))

    remaining = n - n_clusters
    while remaining > 0:
        progressed = False
        # Grow smallest-first so sizes stay balanced.
        for ci in np.argsort(sizes, kind="stable"):
            frontier = frontiers[ci]
            steps = len(frontier)
            for _ in range(steps):
                u = frontier.popleft()
                for v in indices[indptr[u] : indptr[u + 1]]:
                    if assignment[v] < 0:
                        assignment[v] = ci
                        sizes[ci] += 1
                        remaining -= 1
                        frontier.append(int(v))
                        progressed = True
            if remaining == 0:
                break
        if not progressed:
            # Disconnected leftovers: dump them into the smallest cluster.
            leftovers = np.flatnonzero(assignment < 0)
            smallest = int(np.argmin(sizes))
            assignment[leftovers] = smallest
            sizes[smallest] += len(leftovers)
            remaining = 0
    return partition_from_labels(assignment)


def modularity(graph: DiGraph, labels: np.ndarray) -> float:
    """Newman modularity of a labelling over the undirected version."""
    undirected = graph.to_undirected()
    labels = np.asarray(labels)
    m2 = undirected.num_edges  # each undirected edge counted twice already
    if m2 == 0:
        return 0.0
    degrees = undirected.out_degrees().astype(np.float64)
    edge_arr = undirected.edge_array()
    same = labels[edge_arr[:, 0]] == labels[edge_arr[:, 1]]
    intra = float(same.sum()) / m2
    expected = 0.0
    for lab in np.unique(labels):
        deg_sum = float(degrees[labels == lab].sum())
        expected += (deg_sum / m2) ** 2
    return intra - expected


def greedy_modularity_communities(
    graph: DiGraph, *, min_communities: int = 1
) -> np.ndarray:
    """Agglomerative (CNM-style) greedy modularity maximisation.

    Suitable for small/medium graphs (used in tests and the community-lp
    baseline on CI-scale data); label propagation is the scalable option.
    """
    undirected = graph.to_undirected()
    n = undirected.num_nodes
    labels = np.arange(n, dtype=np.int64)
    if undirected.num_edges == 0:
        return labels
    m2 = float(undirected.num_edges)
    degrees = undirected.out_degrees().astype(np.float64)

    # community -> (total degree, member set); adjacency weights between comms
    comm_degree = {int(i): float(degrees[i]) for i in range(n)}
    members: dict[int, set[int]] = {int(i): {int(i)} for i in range(n)}
    links: dict[int, dict[int, float]] = {int(i): {} for i in range(n)}
    for u, v, _w in undirected.edges():
        if u < v:
            links[u][v] = links[u].get(v, 0.0) + 1.0
            links[v][u] = links[v].get(u, 0.0) + 1.0

    def delta_q(a: int, b: int) -> float:
        e_ab = links[a].get(b, 0.0)
        return 2.0 * (e_ab / m2 - (comm_degree[a] / m2) * (comm_degree[b] / m2))

    while len(members) > max(1, min_communities):
        best_pair: tuple[int, int] | None = None
        best_gain = 0.0
        for a in list(links):
            for b, _ in links[a].items():
                if a < b:
                    gain = delta_q(a, b)
                    if gain > best_gain:
                        best_gain = gain
                        best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        # Merge b into a.
        members[a] |= members.pop(b)
        comm_degree[a] += comm_degree.pop(b)
        for c, w in links.pop(b).items():
            if c == a:
                continue
            links[c].pop(b, None)
            links[a][c] = links[a].get(c, 0.0) + w
            links[c][a] = links[c].get(a, 0.0) + w
        links[a].pop(b, None)
        for c in list(links):
            links[c].pop(b, None)

    out = np.empty(n, dtype=np.int64)
    for new_label, (_, node_set) in enumerate(sorted(members.items())):
        for node in node_set:
            out[node] = new_label
    return out
