"""Random-graph generators used by the paper's experiments.

The evaluation (§6.1) uses synthetic scale-free networks with exponents
between −2.9 and −2.1 and sizes 10k–200k; Fig. 5 uses a two-cluster graph
joined by a few bridge edges. All generators here are implemented from
scratch on numpy and return :class:`~repro.graph.digraph.DiGraph`.

Directedness convention: an edge ``u -> v`` means "u can influence v"
(in Twitter terms, v follows u). Generators produce either symmetric
(undirected-as-bidirected) or genuinely directed graphs, per their flag.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_configuration_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "two_cluster_graph",
    "star_graph",
    "powerlaw_degree_sequence",
]


def erdos_renyi_graph(n: int, p: float, *, directed: bool = False, seed=None) -> DiGraph:
    """G(n, p) random graph.

    Sampling is done per-source with a geometric skip trick, so the cost is
    proportional to the number of edges rather than ``n**2``.
    """
    check_positive_int(n, "n")
    check_in_range(p, 0.0, 1.0, "p")
    rng = as_rng(seed)
    edges: list[tuple[int, int]] = []
    if p > 0.0:
        log_1p = np.log1p(-p) if p < 1.0 else -np.inf
        for u in range(n):
            v = -1
            while True:
                if p < 1.0:
                    r = rng.random()
                    skip = int(np.floor(np.log1p(-r) / log_1p))
                    v += 1 + skip
                else:
                    v += 1
                if v >= n:
                    break
                if v != u:
                    edges.append((u, v))
    if directed:
        return DiGraph(n, edges)
    # Keep each unordered pair once (u < v), then mirror.
    undirected = [(u, v) for (u, v) in edges if u < v]
    return DiGraph.from_undirected_edges(n, undirected)


def barabasi_albert_graph(n: int, m: int, *, directed: bool = False, seed=None) -> DiGraph:
    """Barabási–Albert preferential attachment graph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    degree (implemented with the repeated-nodes urn, which realises exact
    preferential attachment without per-step renormalisation).
    """
    check_positive_int(n, "n")
    check_positive_int(m, "m")
    if m >= n:
        raise ValidationError(f"m ({m}) must be smaller than n ({n})")
    rng = as_rng(seed)
    repeated: list[int] = list(range(m))  # seed clique targets
    edges: list[tuple[int, int]] = []
    for new_node in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            if repeated and rng.random() > 1.0 / (len(repeated) + 1):
                cand = repeated[int(rng.integers(len(repeated)))]
            else:
                cand = int(rng.integers(new_node))
            if cand != new_node:
                targets.add(cand)
        for t in targets:
            edges.append((new_node, t))
            repeated.append(t)
            repeated.append(new_node)
    if directed:
        # New node follows old node: influence flows old -> new.
        return DiGraph(n, [(t, s) for (s, t) in edges])
    return DiGraph.from_undirected_edges(n, edges)


def powerlaw_degree_sequence(
    n: int, exponent: float, *, k_min: int = 1, k_max: int | None = None, seed=None
) -> np.ndarray:
    """Sample a degree sequence with ``P(k) ~ k**exponent`` (exponent < 0).

    The sum is forced even (required by the configuration model) by
    incrementing one entry when necessary.
    """
    check_positive_int(n, "n")
    if exponent >= 0:
        raise ValidationError(f"exponent must be negative, got {exponent}")
    rng = as_rng(seed)
    if k_max is None:
        k_max = max(k_min + 1, int(np.sqrt(n)))
    ks = np.arange(k_min, k_max + 1, dtype=np.float64)
    probs = ks**exponent
    probs /= probs.sum()
    degrees = rng.choice(np.arange(k_min, k_max + 1), size=n, p=probs).astype(np.int64)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(n))] += 1
    return degrees


def powerlaw_configuration_graph(
    n: int,
    exponent: float = -2.3,
    *,
    k_min: int = 1,
    k_max: int | None = None,
    directed: bool = False,
    seed=None,
) -> DiGraph:
    """Scale-free graph via the configuration model (the paper's §6.1 setup).

    Stubs are shuffled and paired; self-loops and parallel edges from the
    pairing are discarded (the standard "erased" configuration model), which
    perturbs the degree sequence negligibly for the exponents used here
    (−2.9 … −2.1).
    """
    rng = as_rng(seed)
    degrees = powerlaw_degree_sequence(n, exponent, k_min=k_min, k_max=k_max, seed=rng)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    if len(stubs) % 2 == 1:  # defensive; powerlaw_degree_sequence guarantees even
        stubs = stubs[:-1]
    pairs = stubs.reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    pairs = pairs[keep]
    if directed:
        return DiGraph(n, pairs)
    return DiGraph.from_undirected_edges(n, [tuple(p) for p in pairs])


def watts_strogatz_graph(
    n: int, k: int, beta: float, *, seed=None
) -> DiGraph:
    """Watts–Strogatz small-world graph (returned as a bidirected DiGraph)."""
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    check_in_range(beta, 0.0, 1.0, "beta")
    if k % 2 == 1 or k >= n:
        raise ValidationError(f"k must be even and < n, got k={k}, n={n}")
    rng = as_rng(seed)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            a, b = min(u, v), max(u, v)
            edges.add((a, b))
    rewired: set[tuple[int, int]] = set()
    for (a, b) in sorted(edges):
        if rng.random() < beta:
            for _ in range(16):  # bounded retries to find a fresh endpoint
                c = int(rng.integers(n))
                if c != a and (min(a, c), max(a, c)) not in edges and (
                    min(a, c),
                    max(a, c),
                ) not in rewired:
                    rewired.add((min(a, c), max(a, c)))
                    break
            else:
                rewired.add((a, b))
        else:
            rewired.add((a, b))
    return DiGraph.from_undirected_edges(n, sorted(rewired))


def planted_partition_graph(
    sizes: list[int], p_in: float, p_out: float, *, seed=None
) -> tuple[DiGraph, np.ndarray]:
    """Planted-partition (stochastic block) graph.

    Returns the graph and the array of true block labels. Used to test the
    clustering substrate and to build community-structured opinion data.
    """
    for s in sizes:
        check_positive_int(s, "block size")
    check_in_range(p_in, 0.0, 1.0, "p_in")
    check_in_range(p_out, 0.0, 1.0, "p_out")
    rng = as_rng(seed)
    n = int(sum(sizes))
    labels = np.repeat(np.arange(len(sizes)), sizes)
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if labels[u] == labels[v] else p_out
            if rng.random() < p:
                edges.append((u, v))
    return DiGraph.from_undirected_edges(n, edges), labels


def two_cluster_graph(
    cluster_size: int,
    *,
    p_in: float = 0.2,
    n_bridges: int = 3,
    seed=None,
) -> tuple[DiGraph, np.ndarray, list[tuple[int, int]]]:
    """The Fig. 5 topology: two dense clusters joined by a few bridge edges.

    Returns ``(graph, labels, bridges)`` where *labels* assigns 0/1 cluster
    membership and *bridges* lists the bridge endpoints ``(u_in_c0, v_in_c1)``.
    Bridge endpoints are deterministic (evenly spaced) so experiments can
    place "propagated" mass next to them.
    """
    check_positive_int(cluster_size, "cluster_size")
    check_positive_int(n_bridges, "n_bridges")
    rng = as_rng(seed)
    n = 2 * cluster_size
    labels = np.repeat(np.arange(2), cluster_size)
    edges: list[tuple[int, int]] = []
    for base in (0, cluster_size):
        # Ring backbone guarantees connectivity inside each cluster.
        for i in range(cluster_size):
            edges.append((base + i, base + (i + 1) % cluster_size))
        for i in range(cluster_size):
            for j in range(i + 2, cluster_size):
                if rng.random() < p_in:
                    edges.append((base + i, base + j))
    step = max(1, cluster_size // n_bridges)
    bridges = [
        (i * step % cluster_size, cluster_size + (i * step) % cluster_size)
        for i in range(n_bridges)
    ]
    edges.extend(bridges)
    return DiGraph.from_undirected_edges(n, edges), labels, bridges


def star_graph(n: int, *, center_out: bool = True) -> DiGraph:
    """Star on ``n`` nodes with node 0 at the center.

    ``center_out=True`` directs edges ``0 -> i`` (hub influences leaves);
    otherwise leaves influence the hub. Handy in unit tests.
    """
    check_positive_int(n, "n")
    if center_out:
        edges = [(0, i) for i in range(1, n)]
    else:
        edges = [(i, 0) for i in range(1, n)]
    return DiGraph(n, edges)
