"""Graph Laplacians (for the quad-form baseline distance of §6.1)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph

__all__ = ["laplacian_matrix", "normalized_laplacian_matrix"]


def laplacian_matrix(graph: DiGraph, *, dense: bool = False):
    """Combinatorial Laplacian ``L = D - A`` of the undirected version.

    Returns a scipy sparse CSR matrix by default (dense numpy array when
    ``dense=True`` — only sensible for small graphs, e.g. in tests).
    """
    from scipy.sparse import diags

    adj = graph.to_undirected().to_scipy_csr()
    # to_undirected() collapses duplicate directions, so adj is symmetric 0/1*w.
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    lap = diags(degrees) - adj
    if dense:
        return np.asarray(lap.todense())
    return lap.tocsr()


def normalized_laplacian_matrix(graph: DiGraph, *, dense: bool = False):
    """Symmetric normalized Laplacian ``I - D^-1/2 A D^-1/2``.

    Isolated nodes contribute zero rows/columns (standard convention).
    """
    from scipy.sparse import diags, identity

    adj = graph.to_undirected().to_scipy_csr()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_half = diags(inv_sqrt)
    lap = identity(graph.num_nodes, format="csr") - d_half @ adj @ d_half
    if dense:
        return np.asarray(lap.todense())
    return lap.tocsr()


def quadratic_form(lap, x: np.ndarray) -> float:
    """Evaluate ``x^T L x`` for a (sparse or dense) Laplacian.

    Clamps tiny negative values caused by floating-point noise to zero,
    because the quad-form distance takes a square root of this quantity.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.shape[0] != lap.shape[0]:
        raise ValidationError(
            f"vector length {x.shape} does not match Laplacian {lap.shape}"
        )
    value = float(x @ (lap @ x))
    return max(value, 0.0)
