"""Graph substrate: CSR digraphs, generators, clustering, traversal, I/O."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_configuration_graph,
    star_graph,
    two_cluster_graph,
    watts_strogatz_graph,
)
from repro.graph.clustering import (
    balanced_bfs_partition,
    greedy_modularity_communities,
    label_propagation_communities,
    modularity,
    partition_from_labels,
)
from repro.graph.laplacian import laplacian_matrix
from repro.graph.metrics import (
    clustering_coefficient,
    degree_assortativity,
    degree_statistics,
    powerlaw_alpha_mle,
)
from repro.graph.traversal import (
    bfs_distances,
    strongly_connected_components,
    weakly_connected_components,
)

__all__ = [
    "DiGraph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_configuration_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "two_cluster_graph",
    "star_graph",
    "label_propagation_communities",
    "greedy_modularity_communities",
    "balanced_bfs_partition",
    "partition_from_labels",
    "modularity",
    "laplacian_matrix",
    "degree_statistics",
    "powerlaw_alpha_mle",
    "clustering_coefficient",
    "degree_assortativity",
    "bfs_distances",
    "weakly_connected_components",
    "strongly_connected_components",
]
