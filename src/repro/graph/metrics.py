"""Structural graph statistics.

Used to validate generated networks against their nominal parameters
(scale-free exponent, degree structure) and for the feature-based distance
measures discussed in §7.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph

__all__ = [
    "degree_statistics",
    "powerlaw_alpha_mle",
    "clustering_coefficient",
    "degree_assortativity",
]


def degree_statistics(graph: DiGraph) -> dict:
    """Summary of the (total) degree distribution of the undirected view."""
    undirected = graph.to_undirected()
    degrees = undirected.out_degrees().astype(np.float64)
    if degrees.size == 0:
        return {"mean": 0.0, "median": 0.0, "max": 0, "min": 0, "std": 0.0}
    return {
        "mean": float(degrees.mean()),
        "median": float(np.median(degrees)),
        "max": int(degrees.max()),
        "min": int(degrees.min()),
        "std": float(degrees.std()),
    }


def powerlaw_alpha_mle(degrees, *, k_min: int = 1) -> float:
    """Discrete power-law exponent estimate (Clauset et al.'s MLE form).

    .. math:: \\hat{\\alpha} = 1 + n \\Big/ \\sum_i \\ln(k_i / (k_{min} - 1/2))

    Only degrees >= *k_min* participate. Returns the *positive* exponent α
    (the paper's generator parameters are the negated values, e.g. -2.3).
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= k_min]
    if tail.size == 0:
        raise ValidationError(f"no degrees >= k_min ({k_min}) to fit")
    return float(1.0 + tail.size / np.log(tail / (k_min - 0.5)).sum())


def clustering_coefficient(graph: DiGraph, *, sample: int | None = None, seed=None) -> float:
    """Average local clustering coefficient of the undirected view.

    *sample* limits the computation to a random node subset (for large
    graphs); ``None`` computes over all nodes.
    """
    from repro.utils.rng import as_rng

    undirected = graph.to_undirected()
    n = undirected.num_nodes
    if n == 0:
        return 0.0
    nodes = np.arange(n)
    if sample is not None and sample < n:
        nodes = as_rng(seed).choice(n, size=sample, replace=False)

    neighbor_sets = {}
    total = 0.0
    counted = 0
    for u in nodes:
        neigh = undirected.out_neighbors(int(u))
        k = len(neigh)
        if k < 2:
            counted += 1
            continue
        if int(u) not in neighbor_sets:
            neighbor_sets[int(u)] = set(neigh.tolist())
        links = 0
        neigh_list = neigh.tolist()
        for i, a in enumerate(neigh_list):
            a_set = neighbor_sets.get(a)
            if a_set is None:
                a_set = set(undirected.out_neighbors(a).tolist())
                neighbor_sets[a] = a_set
            for b in neigh_list[i + 1 :]:
                if b in a_set:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / max(counted, 1)


def degree_assortativity(graph: DiGraph) -> float:
    """Pearson correlation of degrees across (undirected) edges.

    Returns 0.0 for degenerate graphs (no edges or constant degrees).
    """
    undirected = graph.to_undirected()
    if undirected.num_edges == 0:
        return 0.0
    degrees = undirected.out_degrees().astype(np.float64)
    edge_arr = undirected.edge_array()
    x = degrees[edge_arr[:, 0]]
    y = degrees[edge_arr[:, 1]]
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
