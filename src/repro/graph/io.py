"""Graph serialisation: whitespace edge lists and compressed npz."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["write_edgelist", "read_edgelist", "save_npz", "load_npz"]


def write_edgelist(graph: DiGraph, path: str | os.PathLike, *, weights: bool = False) -> None:
    """Write ``u v [w]`` lines, one edge per line, '#' header with n."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# nodes {graph.num_nodes}\n")
        for u, v, w in graph.edges():
            if weights:
                fh.write(f"{u} {v} {w:.12g}\n")
            else:
                fh.write(f"{u} {v}\n")


def read_edgelist(path: str | os.PathLike) -> DiGraph:
    """Read an edge list written by :func:`write_edgelist`.

    Node count comes from the ``# nodes N`` header when present, otherwise
    from ``max(endpoint) + 1``.
    """
    path = Path(path)
    n: int | None = None
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    any_weights = False
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "nodes":
                    n = int(parts[1])
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{path}:{lineno}: malformed edge line {line!r}")
            u, v = int(parts[0]), int(parts[1])
            edges.append((u, v))
            if len(parts) == 3:
                weights.append(float(parts[2]))
                any_weights = True
            else:
                weights.append(1.0)
    if n is None:
        n = 1 + max((max(u, v) for u, v in edges), default=-1)
    return DiGraph(n, edges, weights if any_weights else None)


def save_npz(graph: DiGraph, path: str | os.PathLike) -> None:
    """Save CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        n=np.int64(graph.num_nodes),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path: str | os.PathLike) -> DiGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        for key in ("n", "indptr", "indices", "weights"):
            if key not in data:
                raise GraphError(f"{path}: missing array {key!r}")
        return DiGraph.from_csr(data["indptr"], data["indices"], data["weights"])
