"""Breadth-first traversal and connectivity over :class:`DiGraph`."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "weakly_connected_components",
    "strongly_connected_components",
    "is_weakly_connected",
    "estimate_diameter",
]

_UNREACHED = -1


def bfs_distances(graph: DiGraph, sources: int | list[int]) -> np.ndarray:
    """Hop distances from *sources* (a node or a set of nodes) to every node.

    Unreachable nodes get ``-1``.
    """
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    dist = np.full(graph.num_nodes, _UNREACHED, dtype=np.int64)
    queue: deque[int] = deque()
    for s in sources:
        s = int(s)
        if dist[s] == _UNREACHED:
            dist[s] = 0
            queue.append(s)
    indptr, indices = graph.indptr, graph.indices
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            if dist[v] == _UNREACHED:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_tree(graph: DiGraph, source: int) -> np.ndarray:
    """BFS predecessor array from *source* (``-1`` for source/unreached)."""
    pred = np.full(graph.num_nodes, _UNREACHED, dtype=np.int64)
    seen = np.zeros(graph.num_nodes, dtype=bool)
    seen[source] = True
    queue: deque[int] = deque([int(source)])
    indptr, indices = graph.indptr, graph.indices
    while queue:
        u = queue.popleft()
        for v in indices[indptr[u] : indptr[u + 1]]:
            if not seen[v]:
                seen[v] = True
                pred[v] = u
                queue.append(v)
    return pred


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label array: ``labels[v]`` is the weak-component id of node ``v``."""
    n = graph.num_nodes
    labels = np.full(n, _UNREACHED, dtype=np.int64)
    undirected = graph.to_undirected()
    indptr, indices = undirected.indptr, undirected.indices
    current = 0
    for start in range(n):
        if labels[start] != _UNREACHED:
            continue
        labels[start] = current
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            for v in indices[indptr[u] : indptr[u + 1]]:
                if labels[v] == _UNREACHED:
                    labels[v] = current
                    queue.append(v)
        current += 1
    return labels


def strongly_connected_components(graph: DiGraph) -> np.ndarray:
    """Tarjan's algorithm, iterative form. Returns component labels."""
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    index = np.full(n, _UNREACHED, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, _UNREACHED, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(n):
        if index[root] != _UNREACHED:
            continue
        work: list[tuple[int, int]] = [(root, int(indptr[root]))]
        while work:
            u, edge_pos = work[-1]
            if index[u] == _UNREACHED:
                index[u] = lowlink[u] = next_index
                next_index += 1
                stack.append(u)
                on_stack[u] = True
            advanced = False
            while edge_pos < indptr[u + 1]:
                v = int(indices[edge_pos])
                edge_pos += 1
                if index[v] == _UNREACHED:
                    work[-1] = (u, edge_pos)
                    work.append((v, int(indptr[v])))
                    advanced = True
                    break
                if on_stack[v]:
                    lowlink[u] = min(lowlink[u], index[v])
            if advanced:
                continue
            work.pop()
            if lowlink[u] == index[u]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = next_label
                    if w == u:
                        break
                next_label += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[u])
    return labels


def is_weakly_connected(graph: DiGraph) -> bool:
    """True iff the graph has a single weakly connected component."""
    if graph.num_nodes == 0:
        return True
    return int(weakly_connected_components(graph).max()) == 0


def estimate_diameter(graph: DiGraph, *, n_probes: int = 4, seed=None) -> int:
    """Lower-bound estimate of the (hop) diameter via repeated double-BFS.

    Used to size bank-bin ground distances when exact cluster diameters are
    too expensive; a lower bound is acceptable there because callers scale it.
    """
    from repro.utils.rng import as_rng

    n = graph.num_nodes
    if n == 0:
        return 0
    rng = as_rng(seed)
    undirected = graph.to_undirected()
    best = 0
    for _ in range(max(1, n_probes)):
        start = int(rng.integers(n))
        d1 = bfs_distances(undirected, start)
        far = int(np.argmax(d1))
        d2 = bfs_distances(undirected, far)
        best = max(best, int(d2.max()))
    return best
