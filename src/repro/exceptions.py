"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
library failures without accidentally swallowing programming errors. Each
subsystem raises the most specific subclass that applies.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeError",
    "EdgeError",
    "StateError",
    "ModelError",
    "FlowError",
    "InfeasibleFlowError",
    "UnboundedFlowError",
    "HistogramError",
    "GroundDistanceError",
    "QuantizationError",
    "ClusteringError",
    "PredictionError",
    "SchedulerSaturatedError",
    "ClientSaturatedError",
    "StoreError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, domain, ...)."""


class GraphError(ReproError):
    """Malformed graph structure or an unsupported graph operation."""


class NodeError(GraphError, KeyError):
    """A node index is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge specification is invalid (self-loop where forbidden, ...)."""


class StateError(ReproError):
    """A network state is malformed (wrong length, values outside {-1,0,1})."""


class ModelError(ReproError):
    """An opinion-dynamics model received inconsistent parameters."""


class FlowError(ReproError):
    """Base class for min-cost-flow / transportation solver failures."""


class InfeasibleFlowError(FlowError):
    """The flow/transportation instance admits no feasible solution."""


class UnboundedFlowError(FlowError):
    """The flow/transportation instance is unbounded (should not happen for
    well-formed transportation problems with non-negative costs)."""


class HistogramError(ReproError):
    """A histogram passed to an EMD variant is malformed."""


class GroundDistanceError(ReproError):
    """A ground-distance matrix violates a required property (negativity,
    non-zero diagonal, asymmetry where symmetry is required, ...)."""


class QuantizationError(ReproError):
    """Costs could not be quantized to positive integers bounded by ``U``
    (Assumption 2 of the paper)."""


class ClusteringError(ReproError):
    """A bin clustering is invalid (not a partition of the node set)."""


class PredictionError(ReproError):
    """The opinion-prediction pipeline received an unusable input series."""


class StoreError(ReproError):
    """The SQLite experiment store failed to read or write."""


class SchedulerSaturatedError(ReproError):
    """The pair scheduler's bounded queue is full and the request could not
    be admitted (non-blocking admission, or the admission timeout expired).
    The serve tier maps this to HTTP 503."""


class ClientSaturatedError(SchedulerSaturatedError):
    """One client's per-identity pending quota (``client_max_pending``,
    scaled by its priority class) is exhausted while the global queue still
    has room — a fairness rejection, not global saturation.  The serve tier
    maps this to HTTP 429 so well-behaved clients are distinguishable from
    an overloaded server."""
