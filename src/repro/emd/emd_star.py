"""EMD* — the paper's generalisation of EMD with *local* bank bins (§4).

Instead of one global bank (EMDα) or a structure-blind penalty (EMD̂),
EMD* attaches ``N_b`` bank bins to every cluster of histogram bins. The mass
mismatch is split over the lighter histogram's banks proportionally to each
cluster's mass, so moving "extra" mass is cheap next to where mass already
lives and expensive far from it — the property Fig. 5 demonstrates.

Metricity (Theorem 3) requires each bank's ground distance γ to satisfy
``γ^(i)_j ≥ ½ · max intra-cluster distance`` — :func:`metric_gammas` builds
exactly-threshold values from a dense ground distance.

Bank-capacity formula: the paper's printed expression divides cluster mass
by the mismatch, which contradicts the stated requirements (proportionality
+ mass evening). We implement the stated intent:
``P^(i) = (cluster_mass / total_mass) · Δ`` split uniformly over the
cluster's banks, falling back to size-proportional allocation when the
lighter histogram is empty (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.base import emd_raw_cost
from repro.exceptions import ClusteringError, HistogramError, ValidationError
from repro.graph.clustering import validate_partition
from repro.utils.validation import check_nonnegative, check_vector

__all__ = ["EmdStarExtension", "build_extension", "emd_star", "metric_gammas", "cluster_distance_matrix"]


def _normalise_clusters(clusters, n: int) -> list[np.ndarray]:
    if clusters is None:
        return [np.arange(n, dtype=np.int64)]
    out = [np.asarray(c, dtype=np.int64) for c in clusters]
    validate_partition(out, n)
    return out


def _normalise_gammas(gammas, n_clusters: int, n_banks: int) -> list[np.ndarray]:
    """Accept a scalar, per-cluster sequence, or per-cluster-per-bank arrays."""
    if np.isscalar(gammas):
        g = float(gammas)
        if g < 0:
            raise ValidationError(f"gamma must be non-negative, got {g}")
        return [np.full(n_banks, g) for _ in range(n_clusters)]
    gam_list = list(gammas)
    if len(gam_list) != n_clusters:
        raise ValidationError(
            f"need gammas for {n_clusters} clusters, got {len(gam_list)}"
        )
    out = []
    for ci, g in enumerate(gam_list):
        arr = np.atleast_1d(np.asarray(g, dtype=np.float64))
        if arr.shape[0] == 1 and n_banks > 1:
            arr = np.full(n_banks, float(arr[0]))
        if arr.shape[0] != n_banks:
            raise ValidationError(
                f"cluster {ci}: expected {n_banks} bank gammas, got {arr.shape[0]}"
            )
        check_nonnegative(arr, f"gammas[{ci}]")
        out.append(arr)
    return out


def metric_gammas(
    costs: np.ndarray, clusters, *, n_banks: int = 1, scale: float = 1.0
) -> list[np.ndarray]:
    """Per-cluster bank distances at the Theorem 3 metricity threshold.

    ``γ^(i) = scale · ½ · max_{p,q ∈ C_i} D_pq`` — with ``scale >= 1`` the
    metric guarantee holds; smaller scales trade metricity for sensitivity.
    """
    costs = np.asarray(costs, dtype=np.float64)
    gammas = []
    for members in clusters:
        members = np.asarray(members, dtype=np.int64)
        block = costs[np.ix_(members, members)]
        finite = block[np.isfinite(block)]
        diameter = float(finite.max()) if finite.size else 0.0
        gammas.append(np.full(n_banks, scale * 0.5 * diameter))
    return gammas


def cluster_distance_matrix(costs: np.ndarray, clusters: list[np.ndarray]) -> np.ndarray:
    """Inter-cluster distances ``d_ij = min_{p∈C_i, q∈C_j} D_pq`` (§4).

    The diagonal is zero (a cluster contains its own bins, and D_pp = 0 for
    any semimetric D).
    """
    nc = len(clusters)
    d = np.zeros((nc, nc))
    for i in range(nc):
        for j in range(nc):
            if i == j:
                continue
            block = costs[np.ix_(clusters[i], clusters[j])]
            d[i, j] = float(block.min()) if block.size else np.inf
    return d


@dataclass(frozen=True)
class EmdStarExtension:
    """The extended transportation instance underlying an EMD* evaluation.

    ``p_ext``/``q_ext`` have layout ``[original bins | C_1 banks | ... |
    C_Nc banks]``; ``d_ext`` is the extended ground distance D̃ of Eq. (4).
    """

    p_ext: np.ndarray
    q_ext: np.ndarray
    d_ext: np.ndarray
    n_original: int
    n_banks: int
    clusters: tuple
    gammas: tuple

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_mass(self) -> float:
        """Common total mass of both extended histograms (= max(ΣP, ΣQ))."""
        return float(self.p_ext.sum())


def _bank_capacities(
    histogram: np.ndarray,
    clusters: list[np.ndarray],
    n_banks: int,
    deficit: float,
    bank_shares: str,
) -> np.ndarray:
    """Distribute *deficit* over the histogram's banks.

    ``bank_shares="mass"`` follows the paper's stated intent (capacity
    proportional to the cluster's mass in the lighter histogram; size
    fallback when it is empty). ``"size"`` uses the fixed size-proportional
    profile, which is partner-independent and therefore provably metric
    (see the module docstring / DESIGN.md).
    """
    nc = len(clusters)
    caps = np.zeros(nc * n_banks)
    if deficit <= 0:
        return caps
    sizes = np.array([len(c) for c in clusters], dtype=np.float64)
    if bank_shares == "size":
        shares = sizes / sizes.sum()
    elif bank_shares == "mass":
        cluster_mass = np.array([float(histogram[c].sum()) for c in clusters])
        total = cluster_mass.sum()
        if total > 0:
            shares = cluster_mass / total
        else:
            # Empty lighter histogram: fall back to size-proportional shares.
            shares = sizes / sizes.sum()
    else:
        raise ValidationError(
            f"bank_shares must be 'mass' or 'size', got {bank_shares!r}"
        )
    for ci in range(nc):
        caps[ci * n_banks : (ci + 1) * n_banks] = shares[ci] * deficit / n_banks
    return caps


def build_extension(
    p,
    q,
    costs,
    clusters=None,
    gammas=None,
    *,
    n_banks: int = 1,
    bank_metric: str = "nearest",
    bank_shares: str = "mass",
) -> EmdStarExtension:
    """Construct the EMD* extended histograms and ground distance (Eq. 4).

    Parameters
    ----------
    p, q:
        Histograms over the same ``n`` bins.
    costs:
        ``(n, n)`` ground distance.
    clusters:
        Partition of ``0..n-1`` as a list of index arrays; defaults to one
        global cluster (recovering EMDα behaviour).
    gammas:
        Bank ground distances: a scalar, one value per cluster, or an
        ``n_banks`` array per cluster. Defaults to the Theorem 3 metricity
        threshold computed from *costs*.
    bank_metric:
        How a bin prices travel to/from another cluster's banks:

        * ``"nearest"`` (default) — ``γ + min over the bank cluster's
          members of the bin-to-member distance``. This refines the paper's
          Eq. 4: it keeps the extended ground distance a semimetric through
          original bins (the cluster-level variant can violate the triangle
          inequality across clusters, a gap in the Thm. 3/Lemma 2 proofs;
          see DESIGN.md), which is what makes the Theorem 4 reduction exact.
        * ``"cluster"`` — the literal Eq. 4:
          ``γ + d[cluster(bin), cluster(bank)]``.
    bank_shares:
        How the mass mismatch is split over the lighter histogram's banks:

        * ``"mass"`` (default) — proportional to the cluster's mass, the
          paper's stated intent. Because the capacity profile then depends
          on the comparison *pair*, the triangle inequality can fail across
          three histograms (a counterexample lives in the test suite) —
          Theorem 3's proof implicitly assumes partner-independent
          extensions.
        * ``"size"`` — proportional to cluster size: a fixed profile, for
          which the Theorem 3 metricity argument goes through rigorously.
    """
    p = check_nonnegative(check_vector(p, "P"), "P")
    q = check_nonnegative(check_vector(q, "Q"), "Q")
    n = p.shape[0]
    if q.shape[0] != n:
        raise HistogramError("EMD* requires histograms over the same bin set")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (n, n):
        raise HistogramError(f"ground distance must be ({n}, {n}), got {costs.shape}")
    if n_banks < 1:
        raise ValidationError(f"n_banks must be >= 1, got {n_banks}")

    if bank_metric not in ("nearest", "cluster"):
        raise ValidationError(
            f"bank_metric must be 'nearest' or 'cluster', got {bank_metric!r}"
        )
    cluster_list = _normalise_clusters(clusters, n)
    nc = len(cluster_list)
    if gammas is None:
        gamma_list = metric_gammas(costs, cluster_list, n_banks=n_banks)
    else:
        gamma_list = _normalise_gammas(gammas, nc, n_banks)

    total_p, total_q = float(p.sum()), float(q.sum())
    delta = abs(total_p - total_q)
    p_banks = _bank_capacities(
        p, cluster_list, n_banks, delta if total_p < total_q else 0.0, bank_shares
    )
    q_banks = _bank_capacities(
        q, cluster_list, n_banks, delta if total_q < total_p else 0.0, bank_shares
    )

    p_ext = np.concatenate([p, p_banks])
    q_ext = np.concatenate([q, q_banks])

    # --- extended ground distance (Eq. 4, assembled blockwise) --- #
    n_ext = n + nc * n_banks
    d_ext = np.zeros((n_ext, n_ext))
    d_ext[:n, :n] = costs

    cluster_of = np.empty(n, dtype=np.int64)
    for ci, members in enumerate(cluster_list):
        cluster_of[members] = ci
    inter = cluster_distance_matrix(costs, cluster_list)
    gamma_flat = np.concatenate(gamma_list)  # length nc * n_banks
    bank_cluster = np.repeat(np.arange(nc), n_banks)

    if bank_metric == "cluster":
        # bin (in cluster a) <-> bank (of cluster c): gamma_bank + d[a, c]
        bin_bank = gamma_flat[None, :] + inter[cluster_of][:, bank_cluster]
        d_ext[:n, n:] = bin_bank
        d_ext[n:, :n] = bin_bank.T
    else:
        # "nearest": gamma_bank + distance to/from the closest member of the
        # bank's cluster — semimetric-preserving refinement of Eq. 4.
        to_cluster = np.stack(
            [costs[:, members].min(axis=1) for members in cluster_list], axis=1
        )  # (n, nc): min_q∈Cc D[v, q]
        from_cluster = np.stack(
            [costs[members, :].min(axis=0) for members in cluster_list], axis=0
        )  # (nc, n): min_p∈Cc D[p, v]
        d_ext[:n, n:] = gamma_flat[None, :] + to_cluster[:, bank_cluster]
        d_ext[n:, :n] = gamma_flat[:, None] + from_cluster[bank_cluster, :]

    # bank <-> bank: gamma_i + gamma_j + d[cluster_i, cluster_j]; self = 0.
    bank_bank = (
        gamma_flat[:, None]
        + gamma_flat[None, :]
        + inter[np.ix_(bank_cluster, bank_cluster)]
    )
    np.fill_diagonal(bank_bank, 0.0)
    d_ext[n:, n:] = bank_bank

    return EmdStarExtension(
        p_ext=p_ext,
        q_ext=q_ext,
        d_ext=d_ext,
        n_original=n,
        n_banks=n_banks,
        clusters=tuple(np.asarray(c) for c in cluster_list),
        gammas=tuple(gamma_list),
    )


def emd_star(
    p,
    q,
    costs,
    clusters=None,
    gammas=None,
    *,
    n_banks: int = 1,
    bank_metric: str = "nearest",
    bank_shares: str = "mass",
    method: str = "ssp",
) -> float:
    """Compute EMD* (Eq. 4): ``EMD(P̃, Q̃, D̃) · max(ΣP, ΣQ)``.

    Since the extension balances both histograms at ``max(ΣP, ΣQ)`` total
    mass, the result equals the raw optimal cost of the extended
    transportation problem.
    """
    ext = build_extension(
        p,
        q,
        costs,
        clusters,
        gammas,
        n_banks=n_banks,
        bank_metric=bank_metric,
        bank_shares=bank_shares,
    )
    if ext.total_mass <= 0.0:
        return 0.0
    return emd_raw_cost(ext.p_ext, ext.q_ext, ext.d_ext, method=method)
