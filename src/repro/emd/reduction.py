"""The Lemma 1 / Lemma 2 reductions enabling linear-time SND (§5).

* **Lemma 2** (:func:`cancel_common_mass`): subtracting
  ``min(P_i, Q_i)`` from both histograms at every bin leaves EMD* unchanged
  when the ground distance is a semimetric — mass that stays put travels at
  zero cost, and rerouting never beats the triangle inequality.
* **Lemma 1** (:func:`remove_empty_bins`): bins that are empty on both sides
  neither supply nor demand mass, so they (and their ground-distance
  rows/columns) can be dropped.

Composed, they shrink the transportation problem from ``n`` bins to the
``n∆`` users whose opinion changed — Assumption 1 makes ``n∆ ≪ n``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import HistogramError
from repro.utils.validation import check_nonnegative, check_vector

__all__ = [
    "cancel_common_mass",
    "reduced_problem_profile",
    "remove_empty_bins",
    "reduce_histograms",
]


def reduced_problem_profile(
    p_red: np.ndarray,
    q_red: np.ndarray,
    costs_red: np.ndarray | None = None,
    *,
    unreachable: float | None = None,
) -> dict:
    """Size/density profile of a reduced instance, consumed by the
    ``solver="auto"`` selection policy.

    Returns a dict with ``n_suppliers``, ``n_consumers``, ``n_cells``
    (``n_suppliers * n_consumers``) and ``density`` — the fraction of cost
    cells strictly below *unreachable* (1.0 when no cost matrix or clamp is
    given). A low density means most supplier/consumer pairs are effectively
    disconnected, which favours the sparse min-cost-flow formulation over
    the dense simplex/LP ones.
    """
    n_sup = int(np.asarray(p_red).shape[0])
    n_con = int(np.asarray(q_red).shape[0])
    cells = n_sup * n_con
    density = 1.0
    if costs_red is not None and unreachable is not None and cells:
        costs_red = np.asarray(costs_red, dtype=np.float64)
        density = float(np.count_nonzero(costs_red < unreachable)) / costs_red.size
    return {
        "n_suppliers": n_sup,
        "n_consumers": n_con,
        "n_cells": cells,
        "density": density,
    }


def cancel_common_mass(p, q) -> tuple[np.ndarray, np.ndarray]:
    """Apply Lemma 2 at every bin: subtract the elementwise minimum.

    At least one of the returned histograms is zero at every bin.
    """
    p = check_nonnegative(check_vector(p, "P"), "P")
    q = check_nonnegative(check_vector(q, "Q"), "Q")
    if p.shape != q.shape:
        raise HistogramError(
            f"histograms must share a bin set, got lengths {p.shape[0]} and {q.shape[0]}"
        )
    common = np.minimum(p, q)
    return p - common, q - common


def remove_empty_bins(
    p: np.ndarray, q: np.ndarray, costs: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
    """Apply Lemma 1: drop bins empty in P (as suppliers) and in Q (as
    consumers), and slice the ground distance accordingly.

    Returns ``(p_reduced, q_reduced, costs_reduced, supplier_ids, consumer_ids)``
    where the id arrays map reduced positions back to original bins. P and Q
    are reduced *independently* (suppliers by P's support, consumers by Q's),
    which is the asymmetric form the transportation problem needs.
    """
    p = check_vector(p, "P")
    q = check_vector(q, "Q")
    supplier_ids = np.flatnonzero(p > 0)
    consumer_ids = np.flatnonzero(q > 0)
    p_red = p[supplier_ids]
    q_red = q[consumer_ids]
    costs_red = None
    if costs is not None:
        costs = np.asarray(costs, dtype=np.float64)
        if costs.shape != (p.shape[0], q.shape[0]):
            raise HistogramError(
                f"ground distance must be ({p.shape[0]}, {q.shape[0]}), got {costs.shape}"
            )
        costs_red = costs[np.ix_(supplier_ids, consumer_ids)]
    return p_red, q_red, costs_red, supplier_ids, consumer_ids


def reduce_histograms(
    p, q, costs: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
    """Lemma 2 followed by Lemma 1 — the full §5 histogram reduction.

    Returns the same tuple as :func:`remove_empty_bins`. After this step the
    remaining suppliers are exactly the bins where ``P > Q`` and consumers
    those where ``Q > P`` — for opinion histograms, the changed users.
    """
    p_c, q_c = cancel_common_mass(p, q)
    return remove_empty_bins(p_c, q_c, costs)
