"""EMDα (Ljosa, Bhattacharya & Singh 2006): the single-bank-bin extension.

Each histogram gains one "bank" bin sized so the extended histograms have
equal total mass; the bank sits at uniform ground distance
``γ = α · max(D)`` from every regular bin. Theorem 2 of the paper proves
EMDα coincides with EMD̂ whenever both are metric (α ≥ 0.5, D metric) —
property-tested in ``tests/emd/test_theorem2.py``.
"""

from __future__ import annotations

import numpy as np

from repro.emd.base import emd_raw_cost
from repro.exceptions import HistogramError, ValidationError

__all__ = ["emd_alpha", "extend_with_global_bank"]


def extend_with_global_bank(
    p: np.ndarray, q: np.ndarray, costs: np.ndarray, *, alpha: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the extended histograms/ground distance of the EMDα definition.

    ``P̃ = [P, ΣQ]``, ``Q̃ = [Q, ΣP]``; the extended ground distance gets a
    border of ``γ = α·max(D)`` and a zero bank-to-bank corner.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    n = p.shape[0]
    if q.shape[0] != n or costs.shape != (n, n):
        raise HistogramError(
            "EMDα requires histograms over the same bins and a square ground distance"
        )
    gamma = alpha * (float(costs.max()) if costs.size else 0.0)
    p_ext = np.append(p, q.sum())
    q_ext = np.append(q, p.sum())
    d_ext = np.full((n + 1, n + 1), gamma)
    d_ext[:n, :n] = costs
    d_ext[n, n] = 0.0
    return p_ext, q_ext, d_ext


def emd_alpha(p, q, costs, *, alpha: float = 0.5, method: str = "ssp") -> float:
    """Compute EMDα (metric for metric D and α ≥ 0.5).

    Per the definition, the extended-problem EMD is scaled back by
    ``ΣP + ΣQ``; since the extended problem is balanced with that exact total
    mass, the result equals the raw optimal transportation cost.
    """
    if alpha < 0:
        raise ValidationError(f"alpha must be non-negative, got {alpha}")
    p_ext, q_ext, d_ext = extend_with_global_bank(
        np.asarray(p, dtype=np.float64),
        np.asarray(q, dtype=np.float64),
        np.asarray(costs, dtype=np.float64),
        alpha=alpha,
    )
    return emd_raw_cost(p_ext, q_ext, d_ext, method=method)
