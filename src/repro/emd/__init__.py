"""Earth Mover's Distance family.

* :func:`emd` — the original EMD (Rubner et al.), normalised optimal
  transportation cost; ignores total-mass mismatch.
* :func:`emd_hat` — EMD̂ (Pele & Werman): additive mass-mismatch penalty.
* :func:`emd_alpha` — EMDα (Ljosa et al.): single global bank bin.
* :func:`emd_star` — EMD\\* (this paper): local bank bins per bin cluster,
  relating the mass-mismatch penalty to network structure.

Theorem 2 (EMDα ≡ EMD̂ for metric ground distances and α ≥ 0.5) and
Theorem 3 (EMD\\* metricity) are property-tested in ``tests/emd``.
"""

from repro.emd.base import emd, emd_raw_cost
from repro.emd.emd_alpha import emd_alpha
from repro.emd.emd_hat import emd_hat
from repro.emd.emd_star import EmdStarExtension, build_extension, emd_star, metric_gammas
from repro.emd.reduction import (
    cancel_common_mass,
    reduced_problem_profile,
    remove_empty_bins,
)

__all__ = [
    "emd",
    "emd_raw_cost",
    "emd_hat",
    "emd_alpha",
    "emd_star",
    "EmdStarExtension",
    "build_extension",
    "metric_gammas",
    "cancel_common_mass",
    "reduced_problem_profile",
    "remove_empty_bins",
]
