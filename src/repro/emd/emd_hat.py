"""EMD̂ (Pele & Werman 2008): EMD with an additive mass-mismatch penalty.

.. math::
   \\hat{EMD}(P, Q, D) = EMD(P, Q, D) \\cdot \\min(\\Sigma P, \\Sigma Q)
   + \\alpha \\cdot \\max_{ij} D_{ij} \\cdot |\\Sigma P - \\Sigma Q|

The penalty depends only on the mismatch magnitude and the ground-distance
diameter — it cannot see *where* in the network the unmatched mass sits,
which is the inadequacy Fig. 5 of the paper illustrates and EMD* fixes.
Metric for metric D and α ≥ 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.emd.base import emd
from repro.exceptions import ValidationError

__all__ = ["emd_hat"]


def emd_hat(p, q, costs, *, alpha: float = 0.5, method: str = "ssp") -> float:
    """Compute EMD̂ with mismatch weight *alpha* (metric requires α ≥ 0.5)."""
    if alpha < 0:
        raise ValidationError(f"alpha must be non-negative, got {alpha}")
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    base = emd(p, q, costs, method=method)
    moved = min(float(p.sum()), float(q.sum()))
    mismatch = abs(float(p.sum()) - float(q.sum()))
    max_d = float(costs.max()) if costs.size else 0.0
    return base * moved + alpha * max_d * mismatch
