"""The original Earth Mover's Distance (Rubner, Tomasi & Guibas 2000).

EMD(P, Q, D) is the cost of the optimal partial transport moving
``min(sum P, sum Q)`` units from P's bins to Q's bins, divided by the moved
mass (Eq. 1 of the paper). It is a metric on equal-mass histograms when D is
a metric (Theorem 1), but it silently ignores any total-mass mismatch — the
limitation EMD̂/EMDα/EMD* address.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import HistogramError
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem
from repro.utils.validation import check_nonnegative, check_vector

__all__ = ["emd", "emd_raw_cost"]


def _as_problem(p, q, costs) -> TransportationProblem:
    p = check_nonnegative(check_vector(p, "P"), "P")
    q = check_nonnegative(check_vector(q, "Q"), "Q")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (p.shape[0], q.shape[0]):
        raise HistogramError(
            f"ground distance must be ({p.shape[0]}, {q.shape[0]}), got {costs.shape}"
        )
    return TransportationProblem(p, q, costs)


def emd(
    p,
    q,
    costs,
    *,
    method: str = "ssp",
    return_plan: bool = False,
) -> float | tuple[float, TransportPlan]:
    """Original EMD: mean per-unit cost of the optimal (partial) transport.

    Parameters
    ----------
    p, q:
        Non-negative histograms (any lengths ``n`` and ``m``).
    costs:
        ``(n, m)`` non-negative ground-distance matrix.
    method:
        Transportation solver: ``"ssp"`` (default), ``"simplex"``, ``"lp"``.
    return_plan:
        Also return the optimal :class:`TransportPlan`.

    Notes
    -----
    When either histogram is empty the distance is 0 by convention (there is
    no mass to move); Rubner et al. leave this case undefined.
    """
    from repro.flow import solve_transportation

    problem = _as_problem(p, q, costs)
    if problem.moved_mass <= 0.0:
        plan = TransportPlan(flows=np.zeros(problem.costs.shape), cost=0.0)
        return (0.0, plan) if return_plan else 0.0
    plan = solve_transportation(problem, method=method)
    value = plan.cost / problem.moved_mass
    return (value, plan) if return_plan else value


def emd_raw_cost(p, q, costs, *, method: str = "ssp") -> float:
    """Un-normalised optimal transportation cost (``EMD * moved_mass``).

    This is the quantity EMDα and EMD* produce after their mass-evening
    extensions: with balanced extended histograms,
    ``EMD(ext) * total_mass == optimal cost``.
    """
    from repro.flow import solve_transportation

    problem = _as_problem(p, q, costs)
    if problem.moved_mass <= 0.0:
        return 0.0
    return solve_transportation(problem, method=method).cost
