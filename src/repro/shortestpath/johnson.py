"""Johnson's all-pairs shortest paths.

The paper (§5) notes that computing the full ground distance via Johnson's
algorithm costs O(n^2 log n) and is what the *direct* (unreduced) SND
computation would require; the fast path avoids it. We keep Johnson here for
the direct/validation path on small graphs and for oracle tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.dijkstra import dijkstra

__all__ = ["johnson_all_pairs"]


def johnson_all_pairs(
    graph: DiGraph,
    *,
    weights: np.ndarray | None = None,
    heap: str = "binary",
) -> np.ndarray:
    """All-pairs shortest-path matrix ``D[i, j] = dist(i -> j)``.

    Negative edges are handled via the standard reweighting with a virtual
    super-source; for the non-negative costs of SND ground distances the
    reweighting pass degenerates to zeros and only the Dijkstra sweep runs.
    """
    n = graph.num_nodes
    if weights is None:
        w = graph.weights.copy()
    else:
        w = np.asarray(weights, dtype=np.float64).copy()

    if n == 0:
        return np.empty((0, 0))

    if w.size and w.min() < 0:
        # Augment with a super-source connected to everyone at cost 0.
        aug_edges = graph.edge_array()
        super_edges = np.column_stack(
            [np.full(n, n, dtype=np.int64), np.arange(n, dtype=np.int64)]
        )
        all_edges = np.vstack([aug_edges, super_edges])
        all_weights = np.concatenate([w, np.zeros(n)])
        aug = DiGraph(n + 1, all_edges, all_weights)
        # DiGraph construction may reorder edges; recompute aligned weights.
        h = bellman_ford(aug, n)
        h = h[:n]
        # Reweight: w'(u, v) = w(u, v) + h(u) - h(v) >= 0.
        edge_arr = graph.edge_array()
        w = w + h[edge_arr[:, 0]] - h[edge_arr[:, 1]]
        w = np.maximum(w, 0.0)  # clamp float dust
    else:
        h = np.zeros(n)

    out = np.empty((n, n))
    for s in range(n):
        out[s] = dijkstra(graph, s, weights=w, heap=heap)
    # Undo the reweighting: d(u, v) = d'(u, v) - h(u) + h(v).
    out = out - h[:, None] + h[None, :]
    out[np.isnan(out)] = np.inf
    return out
