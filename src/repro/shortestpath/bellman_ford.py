"""Bellman–Ford (needed by Johnson's reweighting; tolerates negative edges)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, ValidationError
from repro.graph.digraph import DiGraph

__all__ = ["bellman_ford"]


def bellman_ford(
    graph: DiGraph,
    source: int,
    *,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Single-source distances allowing negative edge weights.

    Raises :class:`GraphError` when a negative cycle is reachable from
    *source*. Implementation is the queue-based SPFA refinement of
    Bellman–Ford with a relaxation counter as the cycle detector.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValidationError(f"source {source} out of range")
    if weights is None:
        w = graph.weights
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != graph.indices.shape:
            raise ValidationError("weights must align with graph edges")

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    in_queue = np.zeros(n, dtype=bool)
    relax_count = np.zeros(n, dtype=np.int64)
    from collections import deque

    queue: deque[int] = deque([source])
    in_queue[source] = True
    indptr, indices = graph.indptr, graph.indices
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = int(indices[k])
            alt = du + w[k]
            if alt < dist[v] - 1e-15:
                dist[v] = alt
                if not in_queue[v]:
                    relax_count[v] += 1
                    if relax_count[v] > n:
                        raise GraphError("negative cycle reachable from source")
                    queue.append(v)
                    in_queue[v] = True
    return dist
