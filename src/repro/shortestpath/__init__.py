"""Shortest-path algorithms over :class:`~repro.graph.digraph.DiGraph`.

Two engines compute identical results:

* ``"python"`` — our from-scratch Dijkstra with a pluggable heap (binary /
  radix / pairing), the reference implementation matching the paper's §5;
* ``"scipy"`` — vectorised :mod:`scipy.sparse.csgraph`, used for large-scale
  benchmark runs.

The ground-distance builder of :mod:`repro.snd` calls
:func:`multi_source_distances`, which is the workhorse of the linear-time SND
computation (one single-source run per changed user, Theorem 4).
"""

from repro.shortestpath.bellman_ford import bellman_ford
from repro.shortestpath.dijkstra import (
    dijkstra,
    dijkstra_multi,
    multi_source_distances,
)
from repro.shortestpath.johnson import johnson_all_pairs

__all__ = [
    "dijkstra",
    "dijkstra_multi",
    "multi_source_distances",
    "bellman_ford",
    "johnson_all_pairs",
]
