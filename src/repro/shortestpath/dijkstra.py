"""Dijkstra's algorithm with pluggable heaps and a scipy fast path.

All functions accept ``weights`` overriding the graph's stored per-edge
weights (aligned with the CSR edge order); the SND ground-distance builder
relies on this to evaluate many cost models over one structure without
copying the graph.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.digraph import DiGraph
from repro.heaps import make_heap
from repro.utils.validation import check_nonnegative

__all__ = ["dijkstra", "dijkstra_multi", "multi_source_distances"]


def _edge_weights(graph: DiGraph, weights: np.ndarray | None) -> np.ndarray:
    if weights is None:
        w = graph.weights
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != graph.indices.shape:
            raise ValidationError(
                f"weights must align with the graph's {graph.num_edges} edges"
            )
    return check_nonnegative(w, "edge weights")


def dijkstra(
    graph: DiGraph,
    source: int,
    *,
    weights: np.ndarray | None = None,
    heap: str = "binary",
    max_cost: float | None = None,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Single-source shortest-path distances from *source*.

    Parameters
    ----------
    heap:
        ``"binary"`` (default), ``"radix"`` (integer weights only), or
        ``"pairing"``.
    max_cost:
        Required for the radix heap: an upper bound on any finite distance
        (e.g. ``U * (n - 1)`` under Assumption 2). Inferred from the weights
        when omitted.
    targets:
        Optional node set; the search stops once all targets are settled
        (distances to other nodes are still valid where computed).

    Returns
    -------
    Array of length ``n`` with ``np.inf`` for unreachable nodes.
    """
    return dijkstra_multi(
        graph, [source], weights=weights, heap=heap, max_cost=max_cost, targets=targets
    )


def dijkstra_multi(
    graph: DiGraph,
    sources,
    *,
    weights: np.ndarray | None = None,
    heap: str = "binary",
    max_cost: float | None = None,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Multi-source Dijkstra: distance from the *nearest* source to each node.

    Multi-source runs are what the ICC ground distance needs (distance from
    the active set) and what cluster-distance computations use.
    """
    n = graph.num_nodes
    w = _edge_weights(graph, weights)
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        return np.full(n, np.inf)
    if sources.min() < 0 or sources.max() >= n:
        raise ValidationError("source nodes out of range")

    if heap == "radix":
        if not np.allclose(w, np.round(w)):
            raise ValidationError("radix heap requires integer edge weights")
        if max_cost is None:
            max_edge = float(w.max()) if w.size else 0.0
            max_cost = max_edge * max(n - 1, 1)
        pq = make_heap("radix", capacity=n, max_key=int(max_cost) + 1)
    else:
        pq = make_heap(heap, capacity=n)

    dist = np.full(n, np.inf)
    settled = np.zeros(n, dtype=bool)
    for s in sources:
        dist[s] = 0.0
        pq.push(int(s), 0.0)

    remaining_targets: set[int] | None = None
    if targets is not None:
        remaining_targets = {int(t) for t in np.atleast_1d(targets)}

    indptr, indices = graph.indptr, graph.indices
    while len(pq):
        u, du = pq.pop()
        if settled[u]:
            continue
        settled[u] = True
        if remaining_targets is not None:
            remaining_targets.discard(u)
            if not remaining_targets:
                break
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = int(indices[k])
            if settled[v]:
                continue
            alt = du + w[k]
            if alt < dist[v]:
                dist[v] = alt
                pq.push(v, alt)
    return dist


def multi_source_distances(
    graph: DiGraph,
    sources,
    *,
    weights: np.ndarray | None = None,
    engine: str = "scipy",
    heap: str = "binary",
    reverse: bool = False,
) -> np.ndarray:
    """Distances from *each* source to all nodes: an ``(k, n)`` matrix.

    This is the bulk operation of the fast SND pipeline: one row per changed
    user. With ``reverse=True``, distances are measured *into* the sources
    (i.e. along reversed edges), which Theorem 4 uses when the lighter side
    of the transportation problem supplies the Dijkstra sources.

    ``engine="scipy"`` dispatches all sources to
    :func:`scipy.sparse.csgraph.dijkstra` in one call; ``engine="python"``
    loops our reference implementation.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    work_graph = graph.reverse() if reverse else graph
    if reverse and weights is not None:
        # Re-align the override weights with the reversed CSR ordering.
        graph._ensure_reverse()  # noqa: SLF001 - intentional internal access
        weights = np.asarray(weights, dtype=np.float64)[graph._rev_edge_ids]  # noqa: SLF001

    if engine == "scipy":
        from scipy.sparse.csgraph import dijkstra as sp_dijkstra

        if sources.size == 0:
            return np.empty((0, graph.num_nodes))
        w = _edge_weights(work_graph, weights)
        matrix = work_graph.to_scipy_csr(w)
        return np.atleast_2d(sp_dijkstra(matrix, directed=True, indices=sources))
    if engine == "python":
        rows = [
            dijkstra(work_graph, int(s), weights=weights, heap=heap) for s in sources
        ]
        return np.vstack(rows) if rows else np.empty((0, graph.num_nodes))
    raise ValidationError(f"unknown engine {engine!r}; expected 'scipy' or 'python'")
