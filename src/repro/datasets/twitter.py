"""Simulated political-Twitter dataset (the Fig. 9 substitute).

The paper's Twitter data (10k users, ~130 follower edges each, quarterly
states May'08-Aug'11, from Macropol et al.) is not publicly available. This
module generates a synthetic stand-in that preserves everything the
experiment consumes:

* a directed follower graph with scale-free in-degrees and two latent
  political communities (homophilous but not perfectly so);
* a quarterly series of opinion states evolving by the neighbor-voting
  process, with ground-truth events injected per
  :data:`repro.datasets.events.DEFAULT_TIMELINE` —
  **consensus** events add activation volume through normal propagation
  (all distance measures should spike), while **polarizing** events flip
  and activate users along community lines at near-constant volume (only
  propagation-aware measures should spike);
* a Google-Trends-like "search interest" series spiking at the events.

See DESIGN.md §2 for why this substitution preserves the experiment's
discriminative structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.events import DEFAULT_TIMELINE, QUARTER_LABELS, Event
from repro.graph.digraph import DiGraph
from repro.opinions.dynamics import evolve_state, seed_state
from repro.opinions.state import NEUTRAL, NetworkState, StateSeries
from repro.utils.rng import as_rng

__all__ = ["TwitterDataset", "simulated_twitter_dataset"]


@dataclass
class TwitterDataset:
    """The simulated dataset bundle consumed by the Fig. 9 harness."""

    graph: DiGraph
    series: StateSeries
    quarters: tuple[str, ...]
    events: tuple[Event, ...]
    interest: np.ndarray
    communities: np.ndarray

    @property
    def event_quarters(self) -> dict[int, Event]:
        return {e.quarter: e for e in self.events}


def _homophilous_follower_graph(
    n: int, avg_degree: int, homophily: float, rng: np.random.Generator
) -> tuple[DiGraph, np.ndarray]:
    """Directed preferential-attachment follower graph with two leanings.

    Each user picks ``avg_degree / 2`` accounts to follow, preferring
    popular accounts (preferential attachment) of her own leaning with
    probability *homophily*. Edge direction is influencer -> follower
    (influence flows along it).
    """
    communities = rng.integers(0, 2, size=n)
    follows_per_user = max(1, avg_degree // 2)
    popularity = np.ones(n)
    edges: list[tuple[int, int]] = []
    by_side = [np.flatnonzero(communities == side) for side in (0, 1)]
    for u in range(n):
        own = by_side[communities[u]]
        other = by_side[1 - communities[u]]
        for _ in range(follows_per_user):
            pool = own if rng.random() < homophily else other
            if pool.size == 0:
                pool = np.arange(n)
            weights = popularity[pool]
            target = int(pool[rng.choice(pool.size, p=weights / weights.sum())])
            if target != u:
                edges.append((target, u))  # target influences follower u
                popularity[target] += 1.0
    return DiGraph(n, edges), communities


def _apply_consensus_event(
    graph: DiGraph,
    state: NetworkState,
    intensity: float,
    volume: int,
    rng: np.random.Generator,
) -> NetworkState:
    """Volume shock: many users activate *through normal propagation*
    (several neighbor-voting waves), so placement stays structure-driven."""
    boosted = state
    waves = 1 + int(round(2 * intensity))
    for _ in range(waves):
        boosted = evolve_state(
            graph, boosted, p_nbr=0.5 * intensity, p_ext=0.02, seed=rng,
            candidate_fraction=min(1.0, 3.0 * volume / max(1, graph.num_nodes)),
        )
    return boosted


def _apply_polarizing_event(
    graph: DiGraph,
    state: NetworkState,
    communities: np.ndarray,
    intensity: float,
    volume: int,
    rng: np.random.Generator,
) -> NetworkState:
    """Polarization shock: *volume* users activate along community lines
    (community 0 -> positive, community 1 -> negative), scattered within
    their side rather than propagated.

    Crucially this *replaces* (rather than adds to) the quarter's organic
    growth — the caller hands over the volume organic propagation would
    have produced — so activation counts stay on trend and only the
    *placement* of new opinions is abnormal. That is what makes polarizing
    events invisible to volume-driven measures and visible to SND (§6.2).
    """
    neutral = np.flatnonzero(state.values == NEUTRAL)
    k = min(int(round(volume * intensity)), neutral.size)
    if k == 0:
        return state
    chosen = rng.choice(neutral, size=k, replace=False)
    opinions = np.where(communities[chosen] == 0, 1, -1).astype(np.int8)
    return state.with_opinions(chosen, opinions)


def simulated_twitter_dataset(
    *,
    n_users: int | None = None,
    avg_degree: int | None = None,
    homophily: float = 0.7,
    n_quarters: int = len(QUARTER_LABELS),
    events: tuple[Event, ...] = DEFAULT_TIMELINE,
    seed: int = 2008,
) -> TwitterDataset:
    """Build the simulated political-Twitter dataset.

    Defaults scale with ``REPRO_SCALE``: 10k users / ~130 edges each at
    paper scale, 1.5k users / ~24 edges each in CI.
    """
    from repro.datasets.synthetic import paper_scale

    if n_users is None:
        n_users = 10_000 if paper_scale() else 1_500
    if avg_degree is None:
        avg_degree = 130 if paper_scale() else 24
    rng = as_rng(seed)
    graph, communities = _homophilous_follower_graph(
        n_users, avg_degree, homophily, rng
    )

    base_volume = max(10, n_users // 50)
    event_by_quarter = {e.quarter: e for e in events}

    states = [seed_state(graph, base_volume, seed=rng)]
    interest = [0.25 + 0.05 * rng.random()]
    organic_fraction = min(1.0, 2.0 * base_volume / n_users)
    for t in range(1, n_quarters):
        event = event_by_quarter.get(t)
        if event is not None and event.kind == "polarizing":
            # Measure what organic growth would have produced, then realise
            # (1 - intensity) of it organically and the rest as scattered
            # community-aligned activations: volume on trend, placement
            # anomalous.
            probe = evolve_state(
                graph, states[-1], p_nbr=0.10, p_ext=0.005,
                candidate_fraction=organic_fraction, seed=np.random.default_rng(
                    int(rng.integers(2**63))
                ),
            )
            organic_volume = max(1, probe.n_active - states[-1].n_active)
            nxt = evolve_state(
                graph, states[-1], p_nbr=0.10, p_ext=0.005,
                candidate_fraction=organic_fraction * (1.0 - event.intensity),
                seed=rng,
            )
            nxt = _apply_polarizing_event(
                graph, nxt, communities, event.intensity, organic_volume, rng
            )
        else:
            nxt = evolve_state(
                graph,
                states[-1],
                p_nbr=0.10,
                p_ext=0.005,
                candidate_fraction=organic_fraction,
                seed=rng,
            )
            if event is not None:  # consensus: volume shock on top
                nxt = _apply_consensus_event(
                    graph, nxt, event.intensity, base_volume, rng
                )
        if event is not None:
            interest.append(min(1.0, 0.3 + 0.7 * event.intensity + 0.05 * rng.random()))
        else:
            interest.append(0.2 + 0.1 * rng.random())
        states.append(nxt)

    labels = [QUARTER_LABELS[t % len(QUARTER_LABELS)] for t in range(n_quarters)]
    return TwitterDataset(
        graph=graph,
        series=StateSeries(states, labels=labels),
        quarters=tuple(labels),
        events=tuple(e for e in events if e.quarter < n_quarters),
        interest=np.asarray(interest),
        communities=communities,
    )
