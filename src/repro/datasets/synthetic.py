"""Synthetic experiment datasets mirroring the §6 protocols.

Each config dataclass carries the paper's parameter values as defaults,
scaled down by the ``REPRO_SCALE`` environment knob (``ci`` default /
``paper``) so the benches run in CI while remaining faithful at full scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_configuration_graph
from repro.graph.traversal import weakly_connected_components
from repro.opinions.dynamics import generate_series, random_transition, seed_state
from repro.opinions.models.independent_cascade import IndependentCascadeModel
from repro.opinions.state import NetworkState, StateSeries
from repro.utils.rng import as_rng

__all__ = [
    "paper_scale",
    "Fig7Config",
    "Fig8Config",
    "fig7_dataset",
    "fig8_dataset",
    "icc_transition_pairs",
    "prediction_dataset",
]


def paper_scale() -> bool:
    """True when ``REPRO_SCALE=paper`` requests full-size experiments."""
    return os.environ.get("REPRO_SCALE", "ci").lower() == "paper"


def giant_component_powerlaw(
    n: int, exponent: float, *, k_min: int = 1, seed=None
) -> DiGraph:
    """Scale-free graph restricted to its largest weak component.

    The anomaly experiments measure how far new activations sit from
    existing opinion mass; with ``k_min=1`` the graph keeps a deep tree-like
    periphery (large diameter), which carries that signal at small scale,
    and the giant-component restriction removes unreachable-distance noise.
    """
    raw = powerlaw_configuration_graph(n, exponent, k_min=k_min, seed=seed)
    labels = weakly_connected_components(raw)
    giant_label = int(np.bincount(labels).argmax())
    graph, _ = raw.subgraph(np.flatnonzero(labels == giant_label).tolist())
    return graph


@dataclass
class Fig7Config:
    """Fig. 7: 40-state series with parameter-swap anomalies.

    Paper: |V| = 20k, γ = -2.3, P_nbr = 0.12 / P_ext = 0.01 normal,
    0.08 / 0.05 anomalous.
    """

    n_nodes: int = field(default_factory=lambda: 20_000 if paper_scale() else 6_000)
    exponent: float = -2.3
    n_states: int = 40
    n_seeds: int = field(default_factory=lambda: 400 if paper_scale() else 120)
    p_nbr: float = 0.12
    p_ext: float = 0.01
    p_nbr_anomalous: float = 0.08
    p_ext_anomalous: float = 0.05
    anomalous: tuple = (12, 22, 32)
    candidate_fraction: float = 0.3
    graph_seed: int = 3
    seed: int = 7


@dataclass
class Fig8Config:
    """Fig. 8: 300-state series for ROC analysis.

    Paper: |V| = 30k, γ = -2.3, P_nbr = 0.08 / P_ext = 0.001 normal,
    0.07 / 0.011 anomalous, 300 states.
    """

    n_nodes: int = field(default_factory=lambda: 30_000 if paper_scale() else 6_000)
    exponent: float = -2.3
    n_states: int = field(default_factory=lambda: 300 if paper_scale() else 80)
    n_seeds: int = field(default_factory=lambda: 300 if paper_scale() else 120)
    p_nbr: float = 0.08
    p_ext: float = 0.001
    # Paper values are 0.07 / 0.011; at CI scale the signal-to-noise of an
    # ~4k-node series needs a slightly stronger (still sum-preserving)
    # contrast — see EXPERIMENTS.md.
    p_nbr_anomalous: float = field(
        default_factory=lambda: 0.07 if paper_scale() else 0.065
    )
    p_ext_anomalous: float = field(
        default_factory=lambda: 0.011 if paper_scale() else 0.016
    )
    anomaly_fraction: float = 0.15
    candidate_fraction: float = 0.5
    burn_in: int = 10
    graph_seed: int = 3
    seed: int = 8


def fig7_dataset(config: Fig7Config | None = None) -> tuple[DiGraph, StateSeries]:
    """Scale-free graph + 40-state series with known anomalous transitions."""
    cfg = config or Fig7Config()
    rng = as_rng(cfg.seed)
    graph = giant_component_powerlaw(
        cfg.n_nodes, cfg.exponent, k_min=1, seed=cfg.graph_seed
    )
    series = generate_series(
        graph,
        cfg.n_states,
        n_seeds=cfg.n_seeds,
        p_nbr=cfg.p_nbr,
        p_ext=cfg.p_ext,
        anomalous=set(cfg.anomalous),
        p_nbr_anomalous=cfg.p_nbr_anomalous,
        p_ext_anomalous=cfg.p_ext_anomalous,
        candidate_fraction=cfg.candidate_fraction,
        seed=rng,
    )
    return graph, series


def fig8_dataset(config: Fig8Config | None = None) -> tuple[DiGraph, StateSeries]:
    """Scale-free graph + long series with randomly placed anomalies."""
    cfg = config or Fig8Config()
    rng = as_rng(cfg.seed)
    graph = giant_component_powerlaw(
        cfg.n_nodes, cfg.exponent, k_min=1, seed=cfg.graph_seed
    )
    n_anomalous = max(1, int(round(cfg.anomaly_fraction * (cfg.n_states - 1))))
    first_eligible = cfg.burn_in + 2
    anomalous = set(
        int(t)
        for t in rng.choice(
            np.arange(first_eligible, cfg.n_states - 2),
            size=n_anomalous,
            replace=False,
        )
    )
    series = generate_series(
        graph,
        cfg.n_states,
        n_seeds=cfg.n_seeds,
        p_nbr=cfg.p_nbr,
        p_ext=cfg.p_ext,
        anomalous=anomalous,
        p_nbr_anomalous=cfg.p_nbr_anomalous,
        p_ext_anomalous=cfg.p_ext_anomalous,
        candidate_fraction=cfg.candidate_fraction,
        seed=rng,
    )
    return graph, series


def icc_transition_pairs(
    *,
    n_nodes: int | None = None,
    exponent: float = -2.5,
    n_pairs: int = 20,
    n_seeds: int | None = None,
    activation_prob: float = 0.3,
    seed: int = 10,
) -> tuple[DiGraph, list[tuple[NetworkState, NetworkState, bool]]]:
    """§6.4 data: pairs ``(G1, G2, is_anomalous)`` where normal transitions
    follow the ICC model and anomalous ones activate users uniformly at
    random, matched in activation count to the normal ones."""
    if n_nodes is None:
        n_nodes = 10_000 if paper_scale() else 2_000
    if n_seeds is None:
        n_seeds = 200 if paper_scale() else 60
    rng = as_rng(seed)
    # k_min=1 giant component: the deep periphery is what separates
    # structure-driven (ICC) from random placement at small scale.
    graph = giant_component_powerlaw(n_nodes, exponent, k_min=1, seed=seed)
    model = IndependentCascadeModel(activation_prob=activation_prob)
    pairs: list[tuple[NetworkState, NetworkState, bool]] = []
    for k in range(n_pairs):
        g1 = seed_state(graph, n_seeds, seed=rng)
        normal = k % 2 == 0
        if normal:
            g2 = model.simulate(graph, g1, rounds=1, seed=rng)
            pairs.append((g1, g2, False))
        else:
            # Match the anomalous activation volume to a typical ICC round.
            probe = model.simulate(graph, g1, rounds=1, seed=rng)
            n_new = max(1, probe.n_active - g1.n_active)
            g2 = random_transition(graph, g1, n_new, seed=rng)
            pairs.append((g1, g2, True))
    return graph, pairs


def prediction_dataset(
    *,
    n_nodes: int | None = None,
    exponent: float = -2.5,
    n_states: int = 6,
    n_seeds: int | None = None,
    p_nbr: float = 0.15,
    p_ext: float = 0.02,
    candidate_fraction: float = 0.05,
    seed: int = 12,
) -> tuple[DiGraph, StateSeries]:
    """§6.3 synthetic data: γ = -2.5 scale-free network, 800 initial
    adopters (paper scale), smooth neighbor-driven evolution."""
    if n_nodes is None:
        n_nodes = 10_000 if paper_scale() else 1_500
    if n_seeds is None:
        n_seeds = 800 if paper_scale() else 150
    rng = as_rng(seed)
    graph = powerlaw_configuration_graph(n_nodes, exponent, k_min=2, seed=rng)
    series = generate_series(
        graph,
        n_states,
        n_seeds=n_seeds,
        p_nbr=p_nbr,
        p_ext=p_ext,
        candidate_fraction=candidate_fraction,
        seed=rng,
    )
    return graph, series
