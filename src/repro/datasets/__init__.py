"""Experiment datasets: §6 synthetic protocols and the simulated political
Twitter dataset substituting for the paper's (unavailable) real data."""

from repro.datasets.synthetic import (
    Fig7Config,
    Fig8Config,
    fig7_dataset,
    fig8_dataset,
    icc_transition_pairs,
    prediction_dataset,
)
from repro.datasets.twitter import TwitterDataset, simulated_twitter_dataset

__all__ = [
    "Fig7Config",
    "Fig8Config",
    "fig7_dataset",
    "fig8_dataset",
    "icc_transition_pairs",
    "prediction_dataset",
    "TwitterDataset",
    "simulated_twitter_dataset",
]
