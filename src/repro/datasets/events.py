"""Political-event timeline for the simulated Twitter dataset (Fig. 9).

The paper grounds its Twitter anomalies in a log of US political events
(election, inauguration, Economic Stimulus Bill, ACA, bin Laden's death)
cross-checked against Google Trends. Real tweets are unavailable, so the
simulated dataset injects events of two kinds the paper distinguishes:

* **consensus** events — perceived uniformly, spiking activation volume
  (every distance measure reacts);
* **polarizing** events — splitting the society along community lines with
  little extra volume (only propagation-aware measures react).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event", "DEFAULT_TIMELINE", "QUARTER_LABELS"]


@dataclass(frozen=True)
class Event:
    """One injected ground-truth event.

    Attributes
    ----------
    quarter:
        Index of the affected state in the quarterly series.
    name:
        Display name (mirrors the paper's annotations).
    kind:
        ``"consensus"`` or ``"polarizing"``.
    intensity:
        Relative strength in [0, 1], scales the injected activations.
    """

    quarter: int
    name: str
    kind: str
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("consensus", "polarizing"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError(f"intensity must lie in (0, 1], got {self.intensity}")


#: Quarterly labels May'08 - Aug'11, matching Fig. 9's x-axis.
QUARTER_LABELS: tuple[str, ...] = (
    "05'08-11'08",
    "08'08-02'09",
    "11'08-05'09",
    "02'09-08'09",
    "05'09-11'09",
    "08'09-02'10",
    "11'09-05'10",
    "02'10-08'10",
    "05'10-11'10",
    "08'10-02'11",
    "11'10-05'11",
    "02'11-08'11",
)

#: The Fig. 9 storyline: consensus shocks (election, inauguration, Nobel,
#: bin Laden) and polarizing shocks (stimulus bill, ACA, tax plan).
DEFAULT_TIMELINE: tuple[Event, ...] = (
    Event(quarter=1, name="election", kind="consensus", intensity=1.0),
    Event(quarter=2, name="inauguration", kind="consensus", intensity=0.6),
    Event(quarter=3, name="Economic Stimulus Bill", kind="polarizing", intensity=0.9),
    Event(quarter=5, name="Nobel Prize", kind="consensus", intensity=0.4),
    Event(quarter=7, name='"Obama Care"', kind="polarizing", intensity=1.0),
    Event(quarter=9, name="Tax plan", kind="polarizing", intensity=0.7),
    Event(quarter=11, name="bin Laden", kind="consensus", intensity=0.9),
)
