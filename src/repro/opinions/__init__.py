"""Polar opinion states and opinion-dynamics models.

A *network state* assigns every user an opinion in ``{+1, 0, -1}``
(positive / neutral / negative, §3). Opinion models provide (a) the
per-edge opinion-spreading penalties ``-log Pout`` entering the ground
distance (Eq. 2) and (b) forward simulators used to generate synthetic
evolution data (§6.1, §6.4).
"""

from repro.opinions.dynamics import (
    evolve_state,
    generate_series,
    random_transition,
    seed_state,
)
from repro.opinions.models import (
    IndependentCascadeModel,
    LinearThresholdModel,
    ModelAgnostic,
    OpinionModel,
)
from repro.opinions.state import NEGATIVE, NEUTRAL, POSITIVE, NetworkState, StateSeries

__all__ = [
    "NetworkState",
    "StateSeries",
    "POSITIVE",
    "NEUTRAL",
    "NEGATIVE",
    "OpinionModel",
    "ModelAgnostic",
    "IndependentCascadeModel",
    "LinearThresholdModel",
    "seed_state",
    "evolve_state",
    "generate_series",
    "random_transition",
]
