"""Network states with polar opinions, and time series thereof.

Opinion quantification follows §3 of the paper: user ``i`` has ``+1`` when
holding the positive opinion, ``-1`` for the negative opinion, ``0`` when
neutral (no or unknown opinion). A state is immutable; modification helpers
return new states.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import StateError

__all__ = ["POSITIVE", "NEUTRAL", "NEGATIVE", "NetworkState", "StateSeries"]

POSITIVE: int = 1
NEUTRAL: int = 0
NEGATIVE: int = -1

_VALID_VALUES = frozenset({-1, 0, 1})


class NetworkState:
    """Immutable vector of polar opinions over ``n`` users.

    Examples
    --------
    >>> s = NetworkState([1, 0, -1])
    >>> s.n_active, s.n_positive, s.n_negative
    (2, 1, 1)
    >>> s.positive_histogram().tolist()
    [1.0, 0.0, 0.0]
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[int]) -> None:
        arr = np.asarray(values, dtype=np.int8)
        if arr.ndim != 1:
            raise StateError(f"state must be one-dimensional, got shape {arr.shape}")
        bad = ~np.isin(arr, (-1, 0, 1))
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            raise StateError(
                f"opinion values must be in {{-1, 0, 1}}; "
                f"user {first} has {arr[first]}"
            )
        arr.setflags(write=False)
        self._values = arr

    @classmethod
    def neutral(cls, n: int) -> "NetworkState":
        """All-neutral state over *n* users."""
        return cls(np.zeros(n, dtype=np.int8))

    @classmethod
    def from_active_sets(
        cls, n: int, positive: Sequence[int] = (), negative: Sequence[int] = ()
    ) -> "NetworkState":
        """Build from explicit sets of positive/negative user ids."""
        values = np.zeros(n, dtype=np.int8)
        pos = np.asarray(positive, dtype=np.int64)
        neg = np.asarray(negative, dtype=np.int64)
        if np.intersect1d(pos, neg).size:
            raise StateError("a user cannot be both positive and negative")
        values[pos] = POSITIVE
        values[neg] = NEGATIVE
        return cls(values)

    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """Read-only int8 array of opinions."""
        return self._values

    @property
    def n(self) -> int:
        """Number of users."""
        return self._values.shape[0]

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, user: int) -> int:
        return int(self._values[user])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkState):
            return NotImplemented
        return np.array_equal(self._values, other._values)

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkState(n={self.n}, +{self.n_positive}, "
            f"-{self.n_negative}, 0:{self.n - self.n_active})"
        )

    # ------------------------------------------------------------------ #
    # Masks, counts, histograms
    # ------------------------------------------------------------------ #

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of users expressing an opinion."""
        return self._values != NEUTRAL

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self._values))

    @property
    def n_positive(self) -> int:
        return int(np.count_nonzero(self._values == POSITIVE))

    @property
    def n_negative(self) -> int:
        return int(np.count_nonzero(self._values == NEGATIVE))

    def active_users(self) -> np.ndarray:
        """Ids of users expressing any opinion."""
        return np.flatnonzero(self._values)

    def users_with(self, opinion: int) -> np.ndarray:
        """Ids of users holding exactly *opinion*."""
        if opinion not in _VALID_VALUES:
            raise StateError(f"opinion must be in {{-1, 0, 1}}, got {opinion}")
        return np.flatnonzero(self._values == opinion)

    def positive_histogram(self) -> np.ndarray:
        """``G+`` of §3: unit mass at positive users, zero elsewhere
        (negative users are treated as neutral)."""
        return (self._values == POSITIVE).astype(np.float64)

    def negative_histogram(self) -> np.ndarray:
        """``G-`` of §3: unit mass at negative users, zero elsewhere."""
        return (self._values == NEGATIVE).astype(np.float64)

    def histogram(self, opinion: int) -> np.ndarray:
        """Histogram for ``opinion`` (+1 or -1)."""
        if opinion == POSITIVE:
            return self.positive_histogram()
        if opinion == NEGATIVE:
            return self.negative_histogram()
        raise StateError(f"histogram is defined for opinions +1/-1, got {opinion}")

    # ------------------------------------------------------------------ #
    # Comparison and modification
    # ------------------------------------------------------------------ #

    def changed_users(self, other: "NetworkState") -> np.ndarray:
        """Ids of users whose opinion differs between the two states
        (``n∆`` of Assumption 1)."""
        self._check_compatible(other)
        return np.flatnonzero(self._values != other._values)

    def n_delta(self, other: "NetworkState") -> int:
        """``n∆``: the number of changed users."""
        return int(self.changed_users(other).shape[0])

    def with_opinions(self, users: Sequence[int], opinions) -> "NetworkState":
        """New state with *users* reassigned to *opinions* (scalar or array)."""
        values = self._values.copy()
        values.setflags(write=True)
        values[np.asarray(users, dtype=np.int64)] = opinions
        return NetworkState(values)

    def with_neutralized(self, users: Sequence[int]) -> "NetworkState":
        """New state with *users* forced neutral (used to hide opinions in
        the §6.3 prediction experiments)."""
        return self.with_opinions(users, NEUTRAL)

    def _check_compatible(self, other: "NetworkState") -> None:
        if self.n != other.n:
            raise StateError(
                f"states are over different user sets ({self.n} vs {other.n})"
            )


class StateSeries:
    """A time-ordered sequence of :class:`NetworkState` over one user set.

    Supports integer indexing, slicing (returns a new series), and optional
    per-state labels (used for ground-truth anomaly flags and quarter names).
    """

    def __init__(
        self,
        states: Sequence[NetworkState],
        *,
        labels: Sequence[str] | None = None,
    ) -> None:
        states = list(states)
        if not states:
            raise StateError("a series needs at least one state")
        n = states[0].n
        for k, s in enumerate(states):
            if not isinstance(s, NetworkState):
                raise StateError(f"element {k} is not a NetworkState")
            if s.n != n:
                raise StateError(
                    f"state {k} has {s.n} users, expected {n}"
                )
        if labels is not None and len(labels) != len(states):
            raise StateError(
                f"got {len(labels)} labels for {len(states)} states"
            )
        self._states = states
        self.labels = list(labels) if labels is not None else None

    @property
    def n_users(self) -> int:
        return self._states[0].n

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[NetworkState]:
        return iter(self._states)

    def __getitem__(self, index):
        if isinstance(index, slice):
            labels = self.labels[index] if self.labels is not None else None
            return StateSeries(self._states[index], labels=labels)
        return self._states[index]

    def to_matrix(self) -> np.ndarray:
        """Stack into a ``(T, n)`` int8 matrix (rows are states)."""
        return np.vstack([s.values for s in self._states])

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, **kwargs) -> "StateSeries":
        """Inverse of :meth:`to_matrix`."""
        matrix = np.asarray(matrix)
        return cls([NetworkState(row) for row in matrix], **kwargs)

    def transitions(self) -> Iterator[tuple[NetworkState, NetworkState]]:
        """Iterate over adjacent state pairs ``(G_t, G_{t+1})``."""
        return zip(self._states, self._states[1:])

    def activation_counts(self) -> np.ndarray:
        """Number of active users per state (used to normalise distances)."""
        return np.array([s.n_active for s in self._states], dtype=np.int64)
