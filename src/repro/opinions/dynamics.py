"""The §6.1 synthetic opinion-evolution process and series generators.

The paper generates network-state series as follows: the first state seeds
approximately equal numbers of "+" and "-" adopters uniformly at random;
each subsequent state gives every neutral user a chance to activate —
adopting an opinion from her active in-neighbors with probability ``p_nbr``
(probabilistic voting over in-neighbor opinion counts) or a uniformly random
opinion with probability ``p_ext`` (the "external source"). Anomalous
states are generated with a different ``(p_nbr, p_ext)`` split *preserving
the sum*, which perturbs the activation process qualitatively while keeping
the activation rate — exactly the anomaly a summary statistic cannot see
(§6.2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.opinions.state import NEUTRAL, NetworkState, StateSeries
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["seed_state", "evolve_state", "generate_series", "random_transition"]


def seed_state(
    graph: DiGraph, n_adopters: int, *, balance: float = 0.5, seed=None
) -> NetworkState:
    """Initial state: *n_adopters* users chosen uniformly, split ± by *balance*."""
    check_positive_int(n_adopters, "n_adopters")
    check_probability(balance, "balance")
    if n_adopters > graph.num_nodes:
        raise ModelError(
            f"cannot seed {n_adopters} adopters into {graph.num_nodes} users"
        )
    rng = as_rng(seed)
    adopters = rng.choice(graph.num_nodes, size=n_adopters, replace=False)
    n_pos = int(round(balance * n_adopters))
    opinions = np.concatenate(
        [np.ones(n_pos, dtype=np.int8), -np.ones(n_adopters - n_pos, dtype=np.int8)]
    )
    rng.shuffle(opinions)
    return NetworkState.neutral(graph.num_nodes).with_opinions(adopters, opinions)


def evolve_state(
    graph: DiGraph,
    state: NetworkState,
    *,
    p_nbr: float,
    p_ext: float,
    candidate_fraction: float = 1.0,
    seed=None,
) -> NetworkState:
    """One §6.1 evolution step.

    Each neutral user (or a random *candidate_fraction* of them) draws once:
    with probability ``p_nbr`` she adopts from her neighbors — an opinion
    sampled proportionally to the counts of active in-neighbors of each kind
    (no active in-neighbors: she stays neutral); with probability ``p_ext``
    she adopts a uniformly random polar opinion; otherwise she stays neutral.
    Active users never change (activation is monotone in this process).
    """
    check_probability(p_nbr, "p_nbr")
    check_probability(p_ext, "p_ext")
    if p_nbr + p_ext > 1.0:
        raise ModelError(f"p_nbr + p_ext must be <= 1, got {p_nbr + p_ext}")
    check_probability(candidate_fraction, "candidate_fraction")
    rng = as_rng(seed)
    values = state.values

    neutral_users = np.flatnonzero(values == NEUTRAL)
    if candidate_fraction < 1.0 and neutral_users.size:
        k = int(round(candidate_fraction * neutral_users.size))
        neutral_users = rng.choice(neutral_users, size=k, replace=False)
    if neutral_users.size == 0:
        return state

    # Count active in-neighbors of each polarity for every node, vectorised.
    sources = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    targets = graph.indices
    src_vals = values[sources]
    pos_in = np.zeros(graph.num_nodes, dtype=np.int64)
    neg_in = np.zeros(graph.num_nodes, dtype=np.int64)
    np.add.at(pos_in, targets[src_vals > 0], 1)
    np.add.at(neg_in, targets[src_vals < 0], 1)

    draws = rng.random(neutral_users.shape[0])
    new_values = np.zeros(neutral_users.shape[0], dtype=np.int8)

    nbr_mask = draws < p_nbr
    ext_mask = (draws >= p_nbr) & (draws < p_nbr + p_ext)

    # Neighbor adoption: probabilistic voting over in-neighbor counts.
    nbr_users = neutral_users[nbr_mask]
    if nbr_users.size:
        pos = pos_in[nbr_users].astype(np.float64)
        neg = neg_in[nbr_users].astype(np.float64)
        total = pos + neg
        has_active = total > 0
        vote = rng.random(nbr_users.shape[0])
        chosen = np.where(vote < np.divide(pos, total, out=np.zeros_like(pos), where=has_active), 1, -1)
        chosen = np.where(has_active, chosen, 0).astype(np.int8)
        new_values[nbr_mask] = chosen

    # External adoption: uniformly random polar opinion.
    n_ext = int(ext_mask.sum())
    if n_ext:
        new_values[ext_mask] = rng.choice(np.array([1, -1], dtype=np.int8), size=n_ext)

    changed = new_values != NEUTRAL
    if not changed.any():
        return state
    return state.with_opinions(neutral_users[changed], new_values[changed])


def generate_series(
    graph: DiGraph,
    n_states: int,
    *,
    n_seeds: int,
    p_nbr: float,
    p_ext: float,
    anomalous: set[int] | frozenset[int] | None = None,
    p_nbr_anomalous: float | None = None,
    p_ext_anomalous: float | None = None,
    candidate_fraction: float = 1.0,
    seed=None,
) -> StateSeries:
    """Generate a series of *n_states* states per the §6.2 protocol.

    *anomalous* lists the indices of states (>= 1) generated with the
    anomalous parameters; the paper preserves ``p_nbr + p_ext`` across the
    two regimes and so do the defaults (swap enough mass between the two to
    matter: ``p_nbr - 0.04 / p_ext + 0.04`` as in Fig. 7 when not given).
    """
    check_positive_int(n_states, "n_states")
    anomalous = frozenset(anomalous or ())
    if p_nbr_anomalous is None:
        p_nbr_anomalous = max(0.0, p_nbr - 0.04)
    if p_ext_anomalous is None:
        p_ext_anomalous = p_ext + (p_nbr - p_nbr_anomalous)
    rng = as_rng(seed)
    states = [seed_state(graph, n_seeds, seed=rng)]
    for t in range(1, n_states):
        if t in anomalous:
            nbr, ext = p_nbr_anomalous, p_ext_anomalous
        else:
            nbr, ext = p_nbr, p_ext
        states.append(
            evolve_state(
                graph,
                states[-1],
                p_nbr=nbr,
                p_ext=ext,
                candidate_fraction=candidate_fraction,
                seed=rng,
            )
        )
    labels = [
        "anomalous" if t in anomalous else "normal" for t in range(n_states)
    ]
    return StateSeries(states, labels=labels)


def random_transition(
    graph: DiGraph,
    state: NetworkState,
    n_activations: int,
    *,
    seed=None,
) -> NetworkState:
    """The §6.4 "anomalous" transition: *n_activations* neutral users adopt
    uniformly random opinions, ignoring the network structure entirely."""
    rng = as_rng(seed)
    neutral_users = np.flatnonzero(state.values == NEUTRAL)
    k = min(int(n_activations), neutral_users.size)
    if k == 0:
        return state
    chosen = rng.choice(neutral_users, size=k, replace=False)
    opinions = rng.choice(np.array([1, -1], dtype=np.int8), size=k)
    return state.with_opinions(chosen, opinions)
