"""Independent Cascade with Competition (Carnes et al. 2007), §3.

The distance-based competitive IC model: users adopt the opinion of the
*closest* active users (w.r.t. per-edge distances ``d_uv``), with edge
activation probabilities ``p_uv`` splitting ties among equally-close
activators.

Spreading probabilities entering the ground distance (per the paper's
table, with the ε trick making impossible events merely very expensive):

* ``ε``                         if u is not among v's closest active
                                 in-neighbors (``d_v({u}) > d_v(I)``);
* ``1``                          if ``G[u] = op ∧ G[v] = op``;
* ``max(0, p_uv - ε) / p^a(v)``  if ``G[u] = op ∧ G[v] = 0``;
* ``ε``                          otherwise.

``d_v({u})`` is evaluated edge-locally (the direct edge distance ``d_uv``),
making the per-edge cost computable without all-pairs shortest paths; see
DESIGN.md. ``p^a(v)`` sums activation probabilities over v's closest active
in-neighbors.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel, check_opinion
from repro.opinions.state import NEUTRAL, NetworkState
from repro.utils.rng import as_rng

__all__ = ["IndependentCascadeModel"]


class IndependentCascadeModel(OpinionModel):
    """Competitive independent cascade (activation probs + edge distances).

    Parameters
    ----------
    activation_prob:
        Scalar or per-edge array (CSR-aligned) of activation probabilities
        ``p_uv``.
    edge_distance:
        Scalar or per-edge array of distances ``d_uv`` (defaults to 1, i.e.
        hop counts).
    epsilon:
        The ε of §3: probability assigned to model-impossible events so all
        states stay at finite distance. Must be in (0, 1).
    """

    name = "independent-cascade"

    def __init__(
        self,
        activation_prob: float | np.ndarray = 0.1,
        edge_distance: float | np.ndarray = 1.0,
        *,
        epsilon: float = 1e-4,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ModelError(f"epsilon must be in (0, 1), got {epsilon}")
        self.activation_prob = activation_prob
        self.edge_distance = edge_distance
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------ #

    def _per_edge(self, graph: DiGraph, value, name: str) -> np.ndarray:
        if np.isscalar(value):
            return np.full(graph.num_edges, float(value))
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != graph.indices.shape:
            raise ModelError(
                f"{name} must be scalar or aligned with the {graph.num_edges} edges"
            )
        return arr

    def spreading_penalties(
        self, graph: DiGraph, state: NetworkState, opinion: int
    ) -> np.ndarray:
        opinion = check_opinion(opinion)
        probs = self._per_edge(graph, self.activation_prob, "activation_prob")
        dists = self._per_edge(graph, self.edge_distance, "edge_distance")
        if np.any((probs < 0) | (probs > 1)):
            raise ModelError("activation probabilities must lie in [0, 1]")

        src_op, dst_op = self._edge_endpoint_opinions(graph, state)
        sources = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
        )
        targets = graph.indices
        active_src = src_op != NEUTRAL

        # d_v(I): per target, min direct-edge distance over active sources.
        closest = np.full(graph.num_nodes, np.inf)
        np.minimum.at(closest, targets[active_src], dists[active_src])
        is_closest = active_src & (dists <= closest[targets])

        # p^a(v): total activation probability of v's closest activators.
        pa = np.zeros(graph.num_nodes)
        np.add.at(pa, targets[is_closest], probs[is_closest])

        eps = self.epsilon
        pout = np.full(graph.num_edges, eps)
        mutual = (src_op == opinion) & (dst_op == opinion)
        pout[mutual] = 1.0
        frontier = (src_op == opinion) & (dst_op == NEUTRAL) & is_closest
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.maximum(0.0, probs - eps) / pa[targets]
        ratio[~np.isfinite(ratio)] = 0.0
        pout[frontier] = ratio[frontier]
        # The ε trick: clamp away zero probabilities so -log stays finite.
        pout = np.clip(pout, eps, 1.0)
        return -np.log(pout)

    # ------------------------------------------------------------------ #
    # Forward simulation (used by Fig. 10's "normal" transitions)
    # ------------------------------------------------------------------ #

    def step(
        self, graph: DiGraph, state: NetworkState, rng: np.random.Generator
    ) -> NetworkState:
        """One synchronous cascade round.

        Every active user attempts each neutral out-neighbor independently
        with probability ``p_uv``. A user activated by several competitors in
        the same round adopts one of their opinions with probability
        proportional to the attempting edges' activation probabilities
        (Carnes' tie-splitting).
        """
        rng = as_rng(rng)
        probs = self._per_edge(graph, self.activation_prob, "activation_prob")
        values = state.values
        # Gather attempts: per neutral target, accumulate weight per opinion.
        weight_pos = np.zeros(graph.num_nodes)
        weight_neg = np.zeros(graph.num_nodes)
        active = np.flatnonzero(values)
        for u in active:
            lo, hi = graph.out_edge_range(u)
            targets = graph.indices[lo:hi]
            neutral = values[targets] == NEUTRAL
            if not neutral.any():
                continue
            cand = targets[neutral]
            cand_probs = probs[lo:hi][neutral]
            success = rng.random(cand.shape[0]) < cand_probs
            if not success.any():
                continue
            bucket = weight_pos if values[u] > 0 else weight_neg
            np.add.at(bucket, cand[success], cand_probs[success])

        total = weight_pos + weight_neg
        contested = np.flatnonzero(total > 0)
        if contested.size == 0:
            return state
        draws = rng.random(contested.shape[0])
        new_ops = np.where(
            draws < weight_pos[contested] / total[contested], 1, -1
        ).astype(np.int8)
        return state.with_opinions(contested, new_ops)

    def simulate(
        self,
        graph: DiGraph,
        initial: NetworkState,
        *,
        rounds: int = 1,
        seed=None,
    ) -> NetworkState:
        """Run *rounds* cascade steps from *initial*."""
        rng = as_rng(seed)
        state = initial
        for _ in range(rounds):
            state = self.step(graph, state, rng)
        return state
