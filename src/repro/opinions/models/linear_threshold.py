"""Linear Threshold with Competition (Borodin et al. 2010), §3.

Each edge carries an influence weight ``ω_uv``; each user a threshold
``θ_u``. A neutral user activates once its active in-neighbors' total
weight ``Ω_in`` reaches the threshold, adopting an opinion by weighted vote.

Spreading probabilities entering the ground distance (per the paper's
table, ε-smoothed):

* ``ε``                       if u is not an active in-neighbor of v;
* ``1``                        if ``G[u] = op ∧ G[v] = op``;
* ``(1-ε)·ω_uv / Ω_in``        if ``G[u] = op ∧ G[v] = 0 ∧ Ω_in ≥ θ_v``;
* ``ε``                        otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel, check_opinion
from repro.opinions.state import NEUTRAL, NetworkState
from repro.utils.rng import as_rng

__all__ = ["LinearThresholdModel"]


class LinearThresholdModel(OpinionModel):
    """Competitive linear threshold model.

    Parameters
    ----------
    weights:
        Scalar or CSR-aligned per-edge influence weights ``ω_uv``.
    thresholds:
        Per-node thresholds ``θ_u``; a scalar is broadcast. May also be
        ``"random"``: thresholds are drawn uniformly at simulation time
        (Kempe-style), with 0.5 used inside the (deterministic) ground
        distance.
    epsilon:
        The ε of §3, in (0, 1).
    """

    name = "linear-threshold"

    def __init__(
        self,
        weights: float | np.ndarray = 1.0,
        thresholds: float | np.ndarray | str = 0.5,
        *,
        epsilon: float = 1e-4,
        seed=None,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ModelError(f"epsilon must be in (0, 1), got {epsilon}")
        self.weights = weights
        self.thresholds = thresholds
        self.epsilon = float(epsilon)
        self._seed = seed

    def _edge_weights(self, graph: DiGraph) -> np.ndarray:
        if np.isscalar(self.weights):
            return np.full(graph.num_edges, float(self.weights))
        arr = np.asarray(self.weights, dtype=np.float64)
        if arr.shape != graph.indices.shape:
            raise ModelError(
                f"weights must be scalar or aligned with the {graph.num_edges} edges"
            )
        return arr

    def _node_thresholds(self, graph: DiGraph, rng=None) -> np.ndarray:
        if isinstance(self.thresholds, str):
            if self.thresholds != "random":
                raise ModelError(f"unknown thresholds spec {self.thresholds!r}")
            if rng is None:
                return np.full(graph.num_nodes, 0.5)
            return as_rng(rng).random(graph.num_nodes)
        if np.isscalar(self.thresholds):
            return np.full(graph.num_nodes, float(self.thresholds))
        arr = np.asarray(self.thresholds, dtype=np.float64)
        if arr.shape != (graph.num_nodes,):
            raise ModelError(
                f"thresholds must be scalar or length {graph.num_nodes}"
            )
        return arr

    # ------------------------------------------------------------------ #

    def spreading_penalties(
        self, graph: DiGraph, state: NetworkState, opinion: int
    ) -> np.ndarray:
        opinion = check_opinion(opinion)
        omega = self._edge_weights(graph)
        theta = self._node_thresholds(graph)
        src_op, dst_op = self._edge_endpoint_opinions(graph, state)
        targets = graph.indices
        active_src = src_op != NEUTRAL

        # Ω_in per node: total active in-neighbor weight.
        omega_in = np.zeros(graph.num_nodes)
        np.add.at(omega_in, targets[active_src], omega[active_src])

        eps = self.epsilon
        pout = np.full(graph.num_edges, eps)
        mutual = (src_op == opinion) & (dst_op == opinion)
        pout[mutual] = 1.0
        over_threshold = omega_in[targets] >= theta[targets]
        frontier = (src_op == opinion) & (dst_op == NEUTRAL) & over_threshold
        with np.errstate(divide="ignore", invalid="ignore"):
            share = (1.0 - eps) * omega / omega_in[targets]
        share[~np.isfinite(share)] = 0.0
        pout[frontier] = share[frontier]
        pout = np.clip(pout, eps, 1.0)
        return -np.log(pout)

    # ------------------------------------------------------------------ #

    def step(
        self, graph: DiGraph, state: NetworkState, rng: np.random.Generator
    ) -> NetworkState:
        """One synchronous LT round: neutral users over threshold activate
        and adopt the weighted-majority opinion of their active in-neighbors
        (probabilistic tie-break via weighted vote)."""
        rng = as_rng(rng)
        omega = self._edge_weights(graph)
        theta = self._node_thresholds(graph, rng=None)  # fixed thresholds per step
        values = state.values
        sources = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
        )
        targets = graph.indices
        src_vals = values[sources]
        active_edge = src_vals != NEUTRAL

        weight_pos = np.zeros(graph.num_nodes)
        weight_neg = np.zeros(graph.num_nodes)
        pos_edge = active_edge & (src_vals > 0)
        neg_edge = active_edge & (src_vals < 0)
        np.add.at(weight_pos, targets[pos_edge], omega[pos_edge])
        np.add.at(weight_neg, targets[neg_edge], omega[neg_edge])
        omega_in = weight_pos + weight_neg

        neutral = values == NEUTRAL
        activating = np.flatnonzero(neutral & (omega_in >= theta) & (omega_in > 0))
        if activating.size == 0:
            return state
        draws = rng.random(activating.shape[0])
        new_ops = np.where(
            draws < weight_pos[activating] / omega_in[activating], 1, -1
        ).astype(np.int8)
        return state.with_opinions(activating, new_ops)

    def simulate(
        self, graph: DiGraph, initial: NetworkState, *, rounds: int = 1, seed=None
    ) -> NetworkState:
        """Run *rounds* LT steps from *initial*."""
        rng = as_rng(seed)
        state = initial
        for _ in range(rounds):
            state = self.step(graph, state, rng)
        return state
