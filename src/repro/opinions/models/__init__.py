"""Opinion-dynamics models: spreading penalties (Eq. 2) + simulators."""

from repro.opinions.models.base import OpinionModel
from repro.opinions.models.independent_cascade import IndependentCascadeModel
from repro.opinions.models.linear_threshold import LinearThresholdModel
from repro.opinions.models.model_agnostic import ModelAgnostic
from repro.opinions.models.multipolar_voting import (
    evolve_multipolar_state,
    generate_multipolar_series,
    seed_multipolar_state,
)

__all__ = [
    "OpinionModel",
    "ModelAgnostic",
    "IndependentCascadeModel",
    "LinearThresholdModel",
    "seed_multipolar_state",
    "evolve_multipolar_state",
    "generate_multipolar_series",
]
