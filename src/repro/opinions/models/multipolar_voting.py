"""The §6.1 synthetic evolution process, generalised to ``k`` poles.

Same shape as :mod:`repro.opinions.dynamics`: the first state seeds
approximately equal numbers of adopters per pole uniformly at random; each
subsequent state gives every neutral user one draw — with probability
``p_nbr`` she adopts by probabilistic voting over her active in-neighbors'
pole counts, with probability ``p_ext`` a uniformly random pole (the
"external source"), otherwise she stays neutral. Activation is monotone.
Anomalous states swap mass between ``p_nbr`` and ``p_ext`` while
preserving their sum — the activation *rate* is unchanged, only the
mechanism, which is exactly the anomaly a scalar summary cannot see
(§6.2). At ``k = 2`` the process is the bipolar one over pole labels
``{1, 2}`` instead of ``{+1, -1}``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.multipolar.state import POLE_NEUTRAL, MultipolarSeries, MultipolarState
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "seed_multipolar_state",
    "evolve_multipolar_state",
    "generate_multipolar_series",
]


def seed_multipolar_state(
    graph: DiGraph,
    n_adopters: int,
    *,
    n_poles: int,
    seed=None,
) -> MultipolarState:
    """Initial state: *n_adopters* users chosen uniformly, split across
    the *n_poles* poles as evenly as the count allows."""
    check_positive_int(n_adopters, "n_adopters")
    if n_adopters > graph.num_nodes:
        raise ModelError(
            f"cannot seed {n_adopters} adopters into {graph.num_nodes} users"
        )
    rng = as_rng(seed)
    adopters = rng.choice(graph.num_nodes, size=n_adopters, replace=False)
    # Even split, remainder to the lowest-numbered poles; shuffled so no
    # pole is systematically seeded onto low user ids.
    poles = np.arange(n_adopters) % n_poles + 1
    rng.shuffle(poles)
    return MultipolarState.neutral(graph.num_nodes, n_poles=n_poles).with_opinions(
        adopters, poles.astype(np.int8)
    )


def evolve_multipolar_state(
    graph: DiGraph,
    state: MultipolarState,
    *,
    p_nbr: float,
    p_ext: float,
    candidate_fraction: float = 1.0,
    seed=None,
) -> MultipolarState:
    """One k-pole evolution step.

    Each neutral user (or a random *candidate_fraction* of them) draws
    once: with probability ``p_nbr`` she adopts a pole sampled
    proportionally to the counts of active in-neighbors holding each pole
    (no active in-neighbors: she stays neutral); with probability
    ``p_ext`` a uniformly random pole; otherwise she stays neutral.
    Active users never change.
    """
    check_probability(p_nbr, "p_nbr")
    check_probability(p_ext, "p_ext")
    if p_nbr + p_ext > 1.0:
        raise ModelError(f"p_nbr + p_ext must be <= 1, got {p_nbr + p_ext}")
    check_probability(candidate_fraction, "candidate_fraction")
    rng = as_rng(seed)
    values = state.values
    k = state.n_poles

    neutral_users = np.flatnonzero(values == POLE_NEUTRAL)
    if candidate_fraction < 1.0 and neutral_users.size:
        m = int(round(candidate_fraction * neutral_users.size))
        neutral_users = rng.choice(neutral_users, size=m, replace=False)
    if neutral_users.size == 0:
        return state

    # Per-node active in-neighbor counts for every pole, vectorised:
    # in_counts[p-1, v] = |{u -> v : u holds pole p}|.
    sources = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    targets = graph.indices
    src_vals = values[sources]
    in_counts = np.zeros((k, graph.num_nodes), dtype=np.int64)
    for pole in range(1, k + 1):
        np.add.at(in_counts[pole - 1], targets[src_vals == pole], 1)

    draws = rng.random(neutral_users.shape[0])
    new_values = np.zeros(neutral_users.shape[0], dtype=np.int8)

    nbr_mask = draws < p_nbr
    ext_mask = (draws >= p_nbr) & (draws < p_nbr + p_ext)

    # Neighbor adoption: probabilistic voting over per-pole counts (the
    # k-ary generalisation of the bipolar coin flip: invert the CDF of
    # the normalised count vector with one uniform draw per user).
    nbr_users = neutral_users[nbr_mask]
    if nbr_users.size:
        counts = in_counts[:, nbr_users].astype(np.float64)  # (k, m)
        totals = counts.sum(axis=0)
        has_active = totals > 0
        cdf = np.cumsum(
            np.divide(counts, totals, out=np.zeros_like(counts), where=has_active),
            axis=0,
        )
        vote = rng.random(nbr_users.shape[0])
        chosen = (vote[None, :] >= cdf).sum(axis=0) + 1  # first bin above vote
        chosen = np.where(has_active, chosen, POLE_NEUTRAL).astype(np.int8)
        new_values[nbr_mask] = chosen

    # External adoption: uniformly random pole.
    n_ext = int(ext_mask.sum())
    if n_ext:
        new_values[ext_mask] = rng.integers(1, k + 1, size=n_ext, dtype=np.int8)

    changed = new_values != POLE_NEUTRAL
    if not changed.any():
        return state
    return state.with_opinions(neutral_users[changed], new_values[changed])


def generate_multipolar_series(
    graph: DiGraph,
    n_states: int,
    *,
    n_poles: int,
    n_seeds: int,
    p_nbr: float,
    p_ext: float,
    anomalous: set[int] | frozenset[int] | None = None,
    p_nbr_anomalous: float | None = None,
    p_ext_anomalous: float | None = None,
    candidate_fraction: float = 1.0,
    seed=None,
) -> MultipolarSeries:
    """Generate *n_states* k-pole states per the §6.2 protocol.

    *anomalous* lists the indices of states (>= 1) generated with the
    anomalous parameters; the defaults preserve ``p_nbr + p_ext`` across
    the two regimes exactly like the bipolar generator (``p_nbr - 0.04 /
    p_ext + 0.04`` when not given). Labels are ``"anomalous"`` /
    ``"normal"`` per state.
    """
    check_positive_int(n_states, "n_states")
    anomalous = frozenset(anomalous or ())
    if p_nbr_anomalous is None:
        p_nbr_anomalous = max(0.0, p_nbr - 0.04)
    if p_ext_anomalous is None:
        p_ext_anomalous = p_ext + (p_nbr - p_nbr_anomalous)
    rng = as_rng(seed)
    states = [seed_multipolar_state(graph, n_seeds, n_poles=n_poles, seed=rng)]
    for t in range(1, n_states):
        if t in anomalous:
            nbr, ext = p_nbr_anomalous, p_ext_anomalous
        else:
            nbr, ext = p_nbr, p_ext
        states.append(
            evolve_multipolar_state(
                graph,
                states[-1],
                p_nbr=nbr,
                p_ext=ext,
                candidate_fraction=candidate_fraction,
                seed=rng,
            )
        )
    labels = ["anomalous" if t in anomalous else "normal" for t in range(n_states)]
    return MultipolarSeries(states, labels=labels)
