"""Interface every opinion-dynamics model implements.

A model contributes the opinion-spreading penalties ``-log Pout(G_i, op)``
to the extended adjacency matrix of Eq. 2:

.. math::
   A_{ext}(G_i, op) = -\\log P(G_i, op) - \\log P_{in}(G_i, op)
                      - \\log P_{out}(G_i, op)

Penalties are returned per *edge*, aligned with the graph's CSR edge order,
so the ground-distance builder composes them with the communication and
adoption terms without materialising any n-by-n matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState

__all__ = ["OpinionModel", "check_opinion"]


def check_opinion(opinion: int) -> int:
    """Validate a polar opinion argument (must be +1 or -1)."""
    if opinion not in (POSITIVE, NEGATIVE):
        raise ModelError(f"opinion must be +1 or -1, got {opinion}")
    return int(opinion)


class OpinionModel(ABC):
    """Base class for polar opinion propagation models."""

    #: Human-readable model name (used in logs and the CLI).
    name: str = "abstract"

    @abstractmethod
    def spreading_penalties(
        self, graph: DiGraph, state: NetworkState, opinion: int
    ) -> np.ndarray:
        """Per-edge ``-log Pout`` penalties for spreading *opinion*.

        Returns a float array aligned with ``graph.indices`` (CSR edge
        order). Entries must be finite and non-negative: models encode
        "impossible" transitions with the ε trick of §3 (a large but finite
        penalty) rather than infinities, so that any two network states
        remain at a finite, comparable distance.
        """

    def supports_simulation(self) -> bool:
        """Whether :meth:`step` is implemented for this model."""
        return True

    def step(
        self, graph: DiGraph, state: NetworkState, rng: np.random.Generator
    ) -> NetworkState:
        """Advance the dynamics by one round (optional capability)."""
        raise NotImplementedError(f"{self.name} does not define forward dynamics")

    # Convenience shared by subclasses -------------------------------- #

    @staticmethod
    def _edge_endpoint_opinions(
        graph: DiGraph, state: NetworkState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectors of source and target opinions per CSR edge."""
        sources = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
        )
        return state.values[sources].astype(np.int64), state.values[
            graph.indices
        ].astype(np.int64)
