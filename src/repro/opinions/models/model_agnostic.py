"""Model-agnostic opinion propagation penalties (§3).

When there is no evidence the network follows a specific dynamics model,
spreading penalties are constants determined by the spreader's relation to
the opinion being spread:

* ``c_friendly`` — the spreader holds the opinion (cheap);
* ``c_neutral`` — the spreader is neutral (intermediate);
* ``c_adverse`` — the spreader *or the receiver* holds the adverse opinion
  (expensive).

The paper prints the adverse condition as ``G[u] != op ∨ G[v] = -op``; read
literally (with first-match semantics) the neutral case would be dead code,
so we implement the evident intent — adverse iff ``G[u] = -op`` or
``G[v] = -op`` — and document the deviation in DESIGN.md.

Defaults (1 / 2 / 8) are positive integers so Assumption 2 holds without
quantization.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import DiGraph
from repro.opinions.models.base import OpinionModel, check_opinion
from repro.opinions.state import NetworkState

__all__ = ["ModelAgnostic"]


class ModelAgnostic(OpinionModel):
    """Constant-penalty spreading model (requires
    ``c_friendly < c_neutral < c_adverse``)."""

    name = "model-agnostic"

    def __init__(
        self,
        c_friendly: float = 1.0,
        c_neutral: float = 2.0,
        c_adverse: float = 8.0,
    ) -> None:
        if not 0 <= c_friendly < c_neutral < c_adverse:
            raise ModelError(
                "penalties must satisfy 0 <= c_friendly < c_neutral < c_adverse, "
                f"got {c_friendly}, {c_neutral}, {c_adverse}"
            )
        self.c_friendly = float(c_friendly)
        self.c_neutral = float(c_neutral)
        self.c_adverse = float(c_adverse)

    def spreading_penalties(
        self, graph: DiGraph, state: NetworkState, opinion: int
    ) -> np.ndarray:
        opinion = check_opinion(opinion)
        src_op, dst_op = self._edge_endpoint_opinions(graph, state)
        penalties = np.full(graph.num_edges, self.c_neutral)
        penalties[src_op == opinion] = self.c_friendly
        adverse = (src_op == -opinion) | (dst_op == -opinion)
        penalties[adverse] = self.c_adverse
        return penalties

    def supports_simulation(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelAgnostic(c_friendly={self.c_friendly}, "
            f"c_neutral={self.c_neutral}, c_adverse={self.c_adverse})"
        )
