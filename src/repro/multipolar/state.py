"""k-pole network states and time series thereof.

The paper models exactly two polar opinions (§3); this module generalises
the state space to ``k >= 2`` mutually exclusive *poles*. User ``i`` holds
pole ``p ∈ {1, ..., k}`` or is neutral (``0``). Pole labels are ordinal
only — no pole is "closer" to another; the pairwise-pole ground costs in
:mod:`repro.multipolar.snd` treat every competing pole as equally adverse.

At ``k = 2`` the state space is isomorphic to the bipolar one: pole ``1``
maps onto the positive opinion (``+1``) and pole ``2`` onto the negative
(``-1``) — :meth:`MultipolarState.from_bipolar` / :meth:`to_bipolar`
convert losslessly, and the k-pole SND built on this mapping reduces
bit-identically to the bipolar Eq. 3 pipeline.

Content fingerprints are byte-stable: :attr:`MultipolarState.values` is a
read-only ``int8`` array, so ``state.values.tobytes()`` — the key used by
:class:`~repro.snd.cache.GroundCostCache` / ``TransitionCache`` — works on
multipolar states unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import StateError
from repro.opinions.state import NEGATIVE, NEUTRAL, POSITIVE, NetworkState, StateSeries

__all__ = ["POLE_NEUTRAL", "MultipolarState", "MultipolarSeries"]

POLE_NEUTRAL: int = 0

#: int8 bounds the pole count; far beyond any sensible regime.
MAX_POLES: int = 127


class MultipolarState:
    """Immutable vector of k-pole opinions over ``n`` users.

    Examples
    --------
    >>> s = MultipolarState([1, 0, 3, 2], n_poles=3)
    >>> s.n_active, s.pole_counts().tolist()
    (3, [1, 1, 1])
    >>> s.histogram(3).tolist()
    [0.0, 0.0, 1.0, 0.0]
    """

    __slots__ = ("_values", "_n_poles", "_projections")

    def __init__(self, values: Iterable[int], *, n_poles: int) -> None:
        if not isinstance(n_poles, (int, np.integer)) or not 2 <= n_poles <= MAX_POLES:
            raise StateError(
                f"n_poles must be an integer in [2, {MAX_POLES}], got {n_poles!r}"
            )
        arr = np.asarray(values, dtype=np.int8)
        if arr.ndim != 1:
            raise StateError(f"state must be one-dimensional, got shape {arr.shape}")
        bad = (arr < 0) | (arr > n_poles)
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            raise StateError(
                f"pole values must be in {{0, ..., {n_poles}}}; "
                f"user {first} has {arr[first]}"
            )
        arr.setflags(write=False)
        self._values = arr
        self._n_poles = int(n_poles)
        self._projections: dict[int, NetworkState] = {}

    @classmethod
    def neutral(cls, n: int, *, n_poles: int) -> "MultipolarState":
        """All-neutral state over *n* users."""
        return cls(np.zeros(n, dtype=np.int8), n_poles=n_poles)

    @classmethod
    def from_pole_sets(
        cls, n: int, pole_sets: Sequence[Sequence[int]], *, n_poles: int | None = None
    ) -> "MultipolarState":
        """Build from explicit per-pole user-id sets (``pole_sets[p-1]``
        holds pole ``p``'s adopters)."""
        if n_poles is None:
            n_poles = len(pole_sets)
        if len(pole_sets) > n_poles:
            raise StateError(
                f"got {len(pole_sets)} pole sets for {n_poles} poles"
            )
        values = np.zeros(n, dtype=np.int8)
        seen = np.zeros(n, dtype=bool)
        for pole_minus_one, users in enumerate(pole_sets):
            ids = np.asarray(users, dtype=np.int64)
            if seen[ids].any():
                raise StateError("a user cannot hold two poles at once")
            seen[ids] = True
            values[ids] = pole_minus_one + 1
        return cls(values, n_poles=n_poles)

    @classmethod
    def from_bipolar(cls, state: NetworkState) -> "MultipolarState":
        """Lossless embedding of a bipolar state: ``+1 -> pole 1``,
        ``-1 -> pole 2``, neutral stays neutral."""
        values = np.zeros(state.n, dtype=np.int8)
        values[state.values == POSITIVE] = 1
        values[state.values == NEGATIVE] = 2
        return cls(values, n_poles=2)

    def to_bipolar(self) -> NetworkState:
        """Inverse of :meth:`from_bipolar` (``k = 2`` states only)."""
        if self._n_poles != 2:
            raise StateError(
                f"only k=2 states convert to bipolar, this one has k={self._n_poles}"
            )
        return self.polar_projection(1)

    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """Read-only int8 array of pole assignments (0 = neutral)."""
        return self._values

    @property
    def n(self) -> int:
        """Number of users."""
        return self._values.shape[0]

    @property
    def n_poles(self) -> int:
        """Number of poles ``k``."""
        return self._n_poles

    @property
    def poles(self) -> range:
        """The valid pole labels ``1 ... k``."""
        return range(1, self._n_poles + 1)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, user: int) -> int:
        return int(self._values[user])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultipolarState):
            return NotImplemented
        return self._n_poles == other._n_poles and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        return hash((self._n_poles, self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(
            f"p{p}:{c}" for p, c in zip(self.poles, self.pole_counts())
        )
        return f"MultipolarState(n={self.n}, k={self._n_poles}, {counts})"

    def fingerprint(self) -> bytes:
        """Byte-stable content key (equal assignments => equal fingerprint;
        the same key :class:`~repro.snd.cache.GroundCostCache` derives)."""
        return self._values.tobytes()

    # ------------------------------------------------------------------ #
    # Masks, counts, histograms
    # ------------------------------------------------------------------ #

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of users holding any pole."""
        return self._values != POLE_NEUTRAL

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self._values))

    def active_users(self) -> np.ndarray:
        """Ids of users holding any pole."""
        return np.flatnonzero(self._values)

    def users_with(self, pole: int) -> np.ndarray:
        """Ids of users holding exactly *pole*."""
        self._check_pole(pole)
        return np.flatnonzero(self._values == pole)

    def pole_counts(self) -> np.ndarray:
        """``(k,)`` int64 vector of adopter counts per pole."""
        return np.bincount(
            self._values, minlength=self._n_poles + 1
        )[1:].astype(np.int64)

    def histogram(self, pole: int) -> np.ndarray:
        """Unit-mass indicator of *pole*'s adopters (the §3 histogram with
        every competing pole treated as neutral)."""
        self._check_pole(pole)
        return (self._values == pole).astype(np.float64)

    def polar_projection(self, pole: int) -> NetworkState:
        """One-vs-rest collapse onto the bipolar state space.

        Users holding *pole* become positive, users holding any *other*
        pole become negative, neutral users stay neutral. This is the
        bridge to the bipolar Eq. 2/Eq. 3 machinery: the projected state's
        positive histogram is exactly :meth:`histogram`, and the ground
        distance built from it treats every competing pole as adverse. At
        ``k = 2``, the pole-1 projection is the identity embedding and the
        pole-2 projection is its sign flip, which is what makes the k-pole
        SND reduce bit-identically to the bipolar one.

        Projections are memoised per pole (states are immutable).
        """
        self._check_pole(pole)
        cached = self._projections.get(pole)
        if cached is not None:
            return cached
        values = self._values
        proj = np.zeros(values.shape[0], dtype=np.int8)
        proj[values == pole] = POSITIVE
        proj[(values != pole) & (values != POLE_NEUTRAL)] = NEGATIVE
        state = NetworkState(proj)
        self._projections[pole] = state
        return state

    # ------------------------------------------------------------------ #
    # Comparison and modification
    # ------------------------------------------------------------------ #

    def changed_users(self, other: "MultipolarState") -> np.ndarray:
        """Ids of users whose pole differs between the two states."""
        self._check_compatible(other)
        return np.flatnonzero(self._values != other._values)

    def n_delta(self, other: "MultipolarState") -> int:
        """Number of changed users (the k-pole ``n∆``)."""
        return int(self.changed_users(other).shape[0])

    def with_opinions(self, users: Sequence[int], poles) -> "MultipolarState":
        """New state with *users* reassigned to *poles* (scalar or array)."""
        values = self._values.copy()
        values.setflags(write=True)
        values[np.asarray(users, dtype=np.int64)] = poles
        return MultipolarState(values, n_poles=self._n_poles)

    def with_neutralized(self, users: Sequence[int]) -> "MultipolarState":
        """New state with *users* forced neutral (prediction experiments
        hide opinions this way)."""
        return self.with_opinions(users, POLE_NEUTRAL)

    def _check_pole(self, pole: int) -> None:
        if not 1 <= pole <= self._n_poles:
            raise StateError(
                f"pole must be in {{1, ..., {self._n_poles}}}, got {pole}"
            )

    def _check_compatible(self, other: "MultipolarState") -> None:
        if self.n != other.n:
            raise StateError(
                f"states are over different user sets ({self.n} vs {other.n})"
            )
        if self._n_poles != other._n_poles:
            raise StateError(
                f"states have different pole counts "
                f"({self._n_poles} vs {other._n_poles})"
            )


class MultipolarSeries:
    """A time-ordered sequence of :class:`MultipolarState` over one user set.

    The k-pole sibling of :class:`~repro.opinions.state.StateSeries`:
    integer indexing, slicing (returns a new series), optional per-state
    labels (ground-truth anomaly flags).
    """

    def __init__(
        self,
        states: Sequence[MultipolarState],
        *,
        labels: Sequence[str] | None = None,
    ) -> None:
        states = list(states)
        if not states:
            raise StateError("a series needs at least one state")
        n, k = states[0].n, states[0].n_poles
        for t, s in enumerate(states):
            if not isinstance(s, MultipolarState):
                raise StateError(f"element {t} is not a MultipolarState")
            if s.n != n:
                raise StateError(f"state {t} has {s.n} users, expected {n}")
            if s.n_poles != k:
                raise StateError(
                    f"state {t} has {s.n_poles} poles, expected {k}"
                )
        if labels is not None and len(labels) != len(states):
            raise StateError(f"got {len(labels)} labels for {len(states)} states")
        self._states = states
        self.labels = list(labels) if labels is not None else None

    @classmethod
    def from_bipolar(cls, series: StateSeries) -> "MultipolarSeries":
        """Embed a bipolar series state-by-state (labels preserved)."""
        return cls(
            [MultipolarState.from_bipolar(s) for s in series],
            labels=series.labels,
        )

    def to_bipolar(self) -> StateSeries:
        """Collapse a ``k = 2`` series back to bipolar (labels preserved)."""
        return StateSeries(
            [s.to_bipolar() for s in self._states], labels=self.labels
        )

    @property
    def n_users(self) -> int:
        return self._states[0].n

    @property
    def n_poles(self) -> int:
        return self._states[0].n_poles

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[MultipolarState]:
        return iter(self._states)

    def __getitem__(self, index):
        if isinstance(index, slice):
            labels = self.labels[index] if self.labels is not None else None
            return MultipolarSeries(self._states[index], labels=labels)
        return self._states[index]

    def to_matrix(self) -> np.ndarray:
        """Stack into a ``(T, n)`` int8 matrix (rows are states)."""
        return np.vstack([s.values for s in self._states])

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, *, n_poles: int, **kwargs) -> "MultipolarSeries":
        """Inverse of :meth:`to_matrix`."""
        matrix = np.asarray(matrix)
        return cls(
            [MultipolarState(row, n_poles=n_poles) for row in matrix], **kwargs
        )

    def transitions(self) -> Iterator[tuple[MultipolarState, MultipolarState]]:
        """Iterate over adjacent state pairs ``(G_t, G_{t+1})``."""
        return zip(self._states, self._states[1:])

    def activation_counts(self) -> np.ndarray:
        """Number of active users per state (used to normalise distances)."""
        return np.array([s.n_active for s in self._states], dtype=np.int64)
