"""k-pole generalisation of the SND stack.

The paper's state space has exactly two polar opinions; this package
generalises it to ``k >= 2`` mutually exclusive poles:

* :class:`MultipolarState` / :class:`MultipolarSeries` — k-pole states
  with the same byte-stable content fingerprints as bipolar ones, so the
  cache hierarchy and scheduler layers work unchanged;
* :func:`~repro.multipolar.ground.pole_edge_costs` — Eq. 2 ground costs
  per pole, every competing pole adverse (one-vs-rest over the bipolar
  builder);
* :class:`MultipolarSND` — the k-pole Eq. 3 generalisation, reducing
  **bit-identically** to the bipolar :class:`~repro.snd.snd.SND` at
  ``k = 2``.

The synthetic k-pole evolution process lives in
:mod:`repro.opinions.models.multipolar_voting`; the polarization-measure
bake-off comparing ``SND_k`` against scalar literature measures lives in
:mod:`repro.analysis.bakeoff`.
"""

from repro.multipolar.ground import pole_edge_costs
from repro.multipolar.snd import MultipolarSND, MultipolarSNDResult
from repro.multipolar.state import (
    POLE_NEUTRAL,
    MultipolarSeries,
    MultipolarState,
)

__all__ = [
    "POLE_NEUTRAL",
    "MultipolarState",
    "MultipolarSeries",
    "MultipolarSND",
    "MultipolarSNDResult",
    "pole_edge_costs",
]
