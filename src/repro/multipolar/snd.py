"""k-pole Social Network Distance.

Eq. 3 generalises from two polar opinions to ``k`` poles by summing one
``EMD*`` term per (direction, pole):

.. math::
   SND_k(G_1, G_2) = \\tfrac{1}{2} \\sum_{p=1}^{k} \\bigl[
       EMD^*(G_1^p, G_2^p, D(G_1, p)) + EMD^*(G_2^p, G_1^p, D(G_2, p))
   \\bigr]

where ``G^p`` is pole ``p``'s unit-mass indicator histogram and
``D(G, p)`` the k-pole ground distance of :mod:`repro.multipolar.ground`
(every competing pole adverse). Terms are accumulated direction-major,
pole-minor — at ``k = 2`` that is exactly the Eq. 3 order ``(G_1, G_2, +),
(G_1, G_2, -), (G_2, G_1, +), (G_2, G_1, -)``, and each projected term
equals the corresponding bipolar term byte-for-byte, so ``SND_2`` is
**bit-identical** to the bipolar :class:`~repro.snd.snd.SND` (asserted
across solvers in ``tests/multipolar/test_k2_equivalence.py``).

Every term runs through the unchanged Theorem 4 fast pipeline, and the
batch entry points draw on the inner SND's
:class:`~repro.snd.cache.CacheManager` — multipolar states carry the same
byte-stable content fingerprints as bipolar ones, so the ground/row/
transition/basis cache layers work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StateError
from repro.graph.digraph import DiGraph
from repro.multipolar.state import MultipolarSeries, MultipolarState
from repro.opinions.models.base import OpinionModel
from repro.opinions.state import POSITIVE
from repro.snd.cache import GroundCostCache
from repro.snd.fast import FastTermStats
from repro.snd.snd import SND

__all__ = ["MultipolarSND", "MultipolarSNDResult"]

#: Solvers whose ``use_basis_cache="auto"`` policy threads warm starts
#: (mirrors :data:`repro.snd.engine.WARM_SOLVERS` plus the basis-aware
#: ``"auto"`` tier).
_WARM_CAPABLE = ("network-simplex", "auto")


@dataclass
class MultipolarSNDResult:
    """A fully itemised k-pole SND evaluation.

    ``terms`` and ``stats`` are direction-major, pole-minor: the first
    ``k`` entries are the ``G_1 -> G_2`` terms for poles ``1..k``, the
    last ``k`` the reverse direction.
    """

    value: float
    terms: tuple[float, ...]
    stats: tuple[FastTermStats, ...]

    @property
    def n_poles(self) -> int:
        return len(self.terms) // 2

    @property
    def n_delta(self) -> int:
        """Changed users observed across the forward-direction terms."""
        k = self.n_poles
        return max(s.n_suppliers + s.n_consumers for s in self.stats[:k])


class MultipolarSND:
    """k-pole SND over a fixed graph and opinion model.

    Thin orchestration over an inner bipolar :class:`~repro.snd.snd.SND`:
    each (direction, pole) term projects the supplier/consumer states
    one-vs-rest and runs the unchanged bipolar term pipeline, so every
    solver / engine / cache knob of :class:`SND` applies verbatim (all
    keyword arguments are forwarded).

    Parameters
    ----------
    graph:
        The social network (direction = influence flow).
    n_poles:
        Number of poles ``k >= 2``.
    model:
        Opinion model supplying spreading penalties for the projected
        states; defaults to the polarity-symmetric
        :class:`~repro.opinions.models.model_agnostic.ModelAgnostic`
        (symmetry is what the k=2 bit-identity reduction relies on).
    **snd_kwargs:
        Forwarded to :class:`~repro.snd.snd.SND` (banks, solver, engine,
        penalties, seed, ...).

    Examples
    --------
    >>> from repro.graph import erdos_renyi_graph
    >>> from repro.multipolar import MultipolarState
    >>> g = erdos_renyi_graph(30, 0.2, seed=1)
    >>> msnd = MultipolarSND(g, n_poles=3, n_clusters=2, seed=0)
    >>> a = MultipolarState.from_pole_sets(30, [[0], [5], [9]])
    >>> b = MultipolarState.from_pole_sets(30, [[1], [5], [9]])
    >>> msnd.distance(a, a)
    0.0
    >>> msnd.distance(a, b) > 0
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        n_poles: int = 2,
        model: OpinionModel | None = None,
        **snd_kwargs,
    ) -> None:
        if not isinstance(n_poles, (int, np.integer)) or n_poles < 2:
            raise StateError(f"n_poles must be an integer >= 2, got {n_poles!r}")
        self.graph = graph
        self.n_poles = int(n_poles)
        self.snd = SND(graph, model, **snd_kwargs)

    # ------------------------------------------------------------------ #

    @property
    def poles(self) -> range:
        return range(1, self.n_poles + 1)

    @property
    def caches(self):
        """The inner SND's cache hierarchy (shared with any bipolar use of
        the same instance)."""
        return self.snd.caches

    def cache_stats(self) -> dict:
        return self.snd.caches.stats()

    def _check_state(self, state: MultipolarState) -> None:
        if not isinstance(state, MultipolarState):
            raise StateError(
                f"expected a MultipolarState, got {type(state).__name__}"
            )
        if state.n_poles != self.n_poles:
            raise StateError(
                f"state has {state.n_poles} poles, instance expects {self.n_poles}"
            )
        if state.n != self.graph.num_nodes:
            raise StateError(
                f"state covers {state.n} users, graph has {self.graph.num_nodes}"
            )

    def _basis_cache(self):
        """Basis store for warm-capable solvers (the engine's ``"auto"``
        activation policy)."""
        if self.snd.solver in _WARM_CAPABLE:
            return self.snd.caches.bases
        return None

    # ------------------------------------------------------------------ #

    def term(
        self,
        supplier_state: MultipolarState,
        consumer_state: MultipolarState,
        pole: int,
        *,
        edge_costs: np.ndarray | None = None,
        row_cache=None,
        cost_key=None,
        basis_cache=None,
        basis_key=None,
        stats: FastTermStats | None = None,
    ) -> float:
        """One k-pole ``EMD*`` term: pole *pole*'s mass moving from
        *supplier_state*'s adopters to *consumer_state*'s adopters under
        the one-vs-rest ground distance built from *supplier_state*.

        The optional cache arguments mirror :meth:`SND.term` and apply to
        the projected (bipolar) term.
        """
        self._check_state(supplier_state)
        self._check_state(consumer_state)
        proj_sup = supplier_state.polar_projection(pole)
        proj_con = consumer_state.polar_projection(pole)
        return self.snd.term(
            proj_sup,
            proj_con,
            POSITIVE,
            edge_costs=edge_costs,
            row_cache=row_cache,
            cost_key=cost_key,
            basis_cache=basis_cache,
            basis_key=basis_key,
            stats=stats,
        )

    def distance(self, state_a: MultipolarState, state_b: MultipolarState) -> float:
        """k-pole SND between two states."""
        return self.evaluate(state_a, state_b).value

    def __call__(self, state_a: MultipolarState, state_b: MultipolarState) -> float:
        return self.distance(state_a, state_b)

    def evaluate(
        self, state_a: MultipolarState, state_b: MultipolarState
    ) -> MultipolarSNDResult:
        """k-pole SND with per-term values and pipeline diagnostics.

        Cache-free like the bipolar single-pair path; term order and
        summation are direction-major, pole-minor (the Eq. 3 order at
        ``k = 2``, which the bit-identity contract depends on).
        """
        self._check_state(state_a)
        self._check_state(state_b)
        k = self.n_poles
        stats = tuple(FastTermStats() for _ in range(2 * k))
        terms = []
        for i, (sup, con) in enumerate(((state_a, state_b), (state_b, state_a))):
            for pole in self.poles:
                terms.append(
                    self.term(sup, con, pole, stats=stats[i * k + pole - 1])
                )
        return MultipolarSNDResult(
            value=0.5 * sum(terms), terms=tuple(terms), stats=stats
        )

    # ------------------------------------------------------------------ #
    # Batch evaluation through the shared cache hierarchy
    # ------------------------------------------------------------------ #

    def _pair_cached(
        self,
        a: MultipolarState,
        b: MultipolarState,
        cache: GroundCostCache,
        row_cache=None,
        basis_cache=None,
    ) -> float:
        """One evaluation with ground costs drawn from *cache* (the k-pole
        sibling of :func:`repro.snd.engine._pair_distance`; same term
        order, value-preserving cache layers only)."""
        ground, graph = self.snd.ground, self.snd.graph
        terms = []
        for sup, con in ((a, b), (b, a)):
            for pole in self.poles:
                proj_sup = sup.polar_projection(pole)
                proj_con = con.polar_projection(pole)
                key_sup = GroundCostCache.fingerprint(proj_sup)
                key_con = GroundCostCache.fingerprint(proj_con)
                terms.append(
                    self.snd.term(
                        proj_sup,
                        proj_con,
                        POSITIVE,
                        edge_costs=cache.edge_costs(
                            ground, graph, proj_sup, POSITIVE
                        ),
                        row_cache=row_cache,
                        cost_key=(key_sup, POSITIVE),
                        basis_cache=basis_cache,
                        basis_key=(key_sup, key_con, POSITIVE),
                    )
                )
        return 0.5 * sum(terms)

    def evaluate_series(
        self,
        series: MultipolarSeries,
        *,
        window: int | None = None,
    ) -> np.ndarray:
        """Adjacent-state distances ``d_t = SND_k(G_t, G_{t+1})``.

        Runs serially through the instance cache hierarchy: ground-cost
        arrays (one per live projection), Dijkstra rows, finished
        transitions (keyed by the multipolar content fingerprints, so a
        repeated or window-shifted sweep re-solves only fresh
        transitions), and — for warm-capable solvers — the basis store.
        *window* is accepted for interface parity with the bipolar path:
        transition memoisation already gives the incremental sliding-window
        behaviour, so the value is identical for every window size.
        """
        del window  # value-identical either way; transitions are memoised
        for state in series:
            self._check_state(state)
        caches = self.caches
        basis_cache = self._basis_cache()
        out = np.empty(max(len(series) - 1, 0), dtype=np.float64)
        for t, (a, b) in enumerate(series.transitions()):
            cached = caches.transitions.get(a, b)
            if cached is not None:
                out[t] = cached
                continue
            value = self._pair_cached(
                a, b, caches.ground, row_cache=caches.rows, basis_cache=basis_cache
            )
            caches.transitions.put(a, b, value)
            out[t] = value
        return out

    def pairwise_matrix(self, states) -> np.ndarray:
        """Symmetric all-pairs ``SND_k`` matrix (upper triangle evaluated
        once; the construction is symmetric, the diagonal exactly 0)."""
        states = list(states)
        for state in states:
            self._check_state(state)
        n = len(states)
        cache = self.caches.ground
        if cache.maxsize < self.n_poles * n:
            # Right-size transiently so each state's k projected cost
            # arrays are built once (mirrors SND.pairwise_matrix).
            cache = GroundCostCache(self.n_poles * n)
        basis_cache = self._basis_cache()
        matrix = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                value = self._pair_cached(
                    states[i],
                    states[j],
                    cache,
                    row_cache=self.caches.rows,
                    basis_cache=basis_cache,
                )
                matrix[i, j] = matrix[j, i] = value
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultipolarSND(n={self.graph.num_nodes}, k={self.n_poles}, "
            f"model={self.snd.model.name}, solver={self.snd.solver})"
        )
