"""k-pole ground costs, layered on the bipolar Eq. 2 builder.

The paper's ground distance (Eq. 2) prices moving one unit of opinion
mass along an edge as ``comm + adopt + spread``, where the spreading term
depends on the supplier-side state and on which polar opinion is moving:
spreading towards users of the *opposite* opinion is penalised (adverse),
towards co-opinionated users is cheap (friendly).

The k-pole generalisation keeps Eq. 2 verbatim and generalises only the
friend/foe classification: when pole ``p``'s mass moves, users holding
``p`` are friendly and users holding **any competing pole** are adverse
(pairwise, every ``q != p`` is an opponent of ``p``; there is no notion
of poles being "closer" to each other). Mechanically this is the
one-vs-rest :meth:`~repro.multipolar.state.MultipolarState.polar_projection`
fed through the unchanged bipolar pipeline — so quantization (Assumption
2), the ``U·n`` unreachable cost, and every cache key derived from the
cost array stay exactly as documented in :mod:`repro.snd.ground`.

At ``k = 2`` the pole-1 projection is the identity embedding and the
pole-2 projection is its sign flip; for the (symmetric-by-construction)
:class:`~repro.opinions.models.model_agnostic.ModelAgnostic` penalties
the projected build equals the bipolar ``build_edge_costs(graph, state,
±1)`` array for the corresponding opinion — byte for byte. This is what
makes the k-pole SND reduce bit-identically to Eq. 3.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.multipolar.state import MultipolarState
from repro.opinions.state import POSITIVE
from repro.snd.ground import GroundDistanceConfig

__all__ = ["pole_edge_costs"]


def pole_edge_costs(
    config: GroundDistanceConfig,
    graph: DiGraph,
    state: MultipolarState,
    pole: int,
) -> np.ndarray:
    """CSR-aligned Eq. 2 edge costs for *pole*'s mass under *state*.

    Equivalent to ``config.edge_costs(graph, state.polar_projection(pole),
    POSITIVE)``: the supplier-side state is collapsed one-vs-rest (the
    pole's adopters positive, every competing pole's adopters negative)
    and priced by the bipolar builder for the positive opinion.
    """
    return config.edge_costs(graph, state.polar_projection(pole), POSITIVE)
