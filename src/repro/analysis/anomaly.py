"""Anomalous network-state detection from a distance series (§6.2).

Pipeline (exactly the paper's): compute adjacent-state distances, normalise
each by the number of active users at that time, scale to [0, 1], then score
every transition with

.. math::
   S_t = (d_t - d_{t-1}) + (d_t - d_{t+1})

— a spike detector. Transitions ranked by ``S_t`` feed the ROC analysis
(Fig. 8); thresholding gives the detector (Fig. 7 / Fig. 9 markers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import StateSeries
from repro.utils.validation import check_vector

__all__ = [
    "normalize_distance_series",
    "anomaly_scores",
    "detect_anomalies",
    "AnomalyDetectionResult",
]


def normalize_distance_series(
    distances: np.ndarray,
    active_counts: np.ndarray | None = None,
    *,
    scale: bool = True,
) -> np.ndarray:
    """Normalise raw adjacent-state distances per the paper's protocol.

    ``distances[t]`` is the distance between states ``t`` and ``t+1``; it is
    divided by the number of users active at time ``t+1`` (the state whose
    behaviour is being judged), then the series is scaled to max 1.
    """
    d = check_vector(distances, "distances")
    if active_counts is not None:
        counts = check_vector(active_counts, "active_counts")
        if counts.shape[0] == d.shape[0] + 1:
            counts = counts[1:]  # per-state counts -> per-transition counts
        elif counts.shape[0] != d.shape[0]:
            raise ValidationError(
                "active_counts must align with transitions "
                f"({d.shape[0]}) or states ({d.shape[0] + 1})"
            )
        safe = np.maximum(counts, 1.0)
        d = d / safe
    if scale and d.size and d.max() > 0:
        d = d / d.max()
    return d


def anomaly_scores(normalized: np.ndarray) -> np.ndarray:
    """The spike score ``S_t = (d_t - d_{t-1}) + (d_t - d_{t+1})``.

    Boundary transitions lack one neighbour; the missing term is taken as 0
    (equivalently ``d_{-1} = d_0`` and ``d_T = d_{T-1}``), so first/last
    transitions are scored by their single available slope.
    """
    d = check_vector(normalized, "normalized distances")
    if d.size == 0:
        return d.copy()
    prev = np.concatenate([[d[0]], d[:-1]])
    nxt = np.concatenate([d[1:], [d[-1]]])
    return (d - prev) + (d - nxt)


@dataclass
class AnomalyDetectionResult:
    """Detector output: per-transition scores and the flagged indices."""

    normalized: np.ndarray
    scores: np.ndarray
    flagged: np.ndarray
    threshold: float

    def ranking(self) -> np.ndarray:
        """Transition indices sorted by decreasing anomaly score."""
        return np.argsort(-self.scores, kind="stable")


def detect_anomalies(
    distances: np.ndarray,
    *,
    series: StateSeries | None = None,
    active_counts: np.ndarray | None = None,
    threshold: float | None = None,
    top_k: int | None = None,
) -> AnomalyDetectionResult:
    """Run the full §6.2 detection pipeline on a raw distance series.

    Exactly one of *threshold* (flag scores above it) and *top_k* (flag the
    k best-scored transitions) may be given; the default flags scores above
    ``mean + 2·std`` of the score series.
    """
    if threshold is not None and top_k is not None:
        raise ValidationError("pass either threshold or top_k, not both")
    if active_counts is None and series is not None:
        active_counts = series.activation_counts()
    normalized = normalize_distance_series(distances, active_counts)
    scores = anomaly_scores(normalized)
    if top_k is not None:
        top_k = int(top_k)
        if top_k < 0:
            raise ValidationError(f"top_k must be non-negative, got {top_k}")
        order = np.argsort(-scores, kind="stable")
        flagged = np.sort(order[:top_k])
        if top_k == 0 or not len(order):
            # Nothing flagged: the effective threshold sits above every
            # score (a -1 index here used to report the series *minimum*).
            used_threshold = np.inf
        else:
            used_threshold = float(scores[order[min(top_k, len(order)) - 1]])
    else:
        if threshold is None:
            threshold = float(scores.mean() + 2.0 * scores.std()) if scores.size else 0.0
        flagged = np.flatnonzero(scores > threshold)
        used_threshold = float(threshold)
    return AnomalyDetectionResult(
        normalized=normalized,
        scores=scores,
        flagged=flagged,
        threshold=used_threshold,
    )
