"""Anomalous network-state detection from a distance series (§6.2).

Pipeline (exactly the paper's): compute adjacent-state distances, normalise
each by the number of active users at that time, scale to [0, 1], then score
every transition with

.. math::
   S_t = (d_t - d_{t-1}) + (d_t - d_{t+1})

— a spike detector. Transitions ranked by ``S_t`` feed the ROC analysis
(Fig. 8); thresholding gives the detector (Fig. 7 / Fig. 9 markers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.opinions.state import StateSeries
from repro.utils.validation import check_vector

__all__ = [
    "normalize_distance_series",
    "anomaly_scores",
    "detect_anomalies",
    "AnomalyDetectionResult",
    "ScoredTransition",
    "StreamingAnomalyDetector",
]


def normalize_distance_series(
    distances: np.ndarray,
    active_counts: np.ndarray | None = None,
    *,
    scale: bool = True,
) -> np.ndarray:
    """Normalise raw adjacent-state distances per the paper's protocol.

    ``distances[t]`` is the distance between states ``t`` and ``t+1``; it is
    divided by the number of users active at time ``t+1`` (the state whose
    behaviour is being judged), then the series is scaled to max 1.
    """
    d = check_vector(distances, "distances")
    if active_counts is not None:
        counts = check_vector(active_counts, "active_counts")
        if counts.shape[0] == d.shape[0] + 1:
            counts = counts[1:]  # per-state counts -> per-transition counts
        elif counts.shape[0] != d.shape[0]:
            raise ValidationError(
                "active_counts must align with transitions "
                f"({d.shape[0]}) or states ({d.shape[0] + 1})"
            )
        safe = np.maximum(counts, 1.0)
        d = d / safe
    if scale and d.size and d.max() > 0:
        d = d / d.max()
    return d


def anomaly_scores(normalized: np.ndarray) -> np.ndarray:
    """The spike score ``S_t = (d_t - d_{t-1}) + (d_t - d_{t+1})``.

    Boundary transitions lack one neighbour; the missing term is taken as 0
    (equivalently ``d_{-1} = d_0`` and ``d_T = d_{T-1}``), so first/last
    transitions are scored by their single available slope.
    """
    d = check_vector(normalized, "normalized distances")
    if d.size == 0:
        return d.copy()
    prev = np.concatenate([[d[0]], d[:-1]])
    nxt = np.concatenate([d[1:], [d[-1]]])
    return (d - prev) + (d - nxt)


@dataclass
class AnomalyDetectionResult:
    """Detector output: per-transition scores and the flagged indices."""

    normalized: np.ndarray
    scores: np.ndarray
    flagged: np.ndarray
    threshold: float

    def ranking(self) -> np.ndarray:
        """Transition indices sorted by decreasing anomaly score."""
        return np.argsort(-self.scores, kind="stable")


def detect_anomalies(
    distances: np.ndarray,
    *,
    series: StateSeries | None = None,
    active_counts: np.ndarray | None = None,
    threshold: float | None = None,
    top_k: int | None = None,
) -> AnomalyDetectionResult:
    """Run the full §6.2 detection pipeline on a raw distance series.

    Exactly one of *threshold* (flag scores above it) and *top_k* (flag the
    k best-scored transitions) may be given; the default flags scores above
    ``mean + 2·std`` of the score series.
    """
    if threshold is not None and top_k is not None:
        raise ValidationError("pass either threshold or top_k, not both")
    if active_counts is None and series is not None:
        active_counts = series.activation_counts()
    normalized = normalize_distance_series(distances, active_counts)
    scores = anomaly_scores(normalized)
    if top_k is not None:
        top_k = int(top_k)
        if top_k < 0:
            raise ValidationError(f"top_k must be non-negative, got {top_k}")
        order = np.argsort(-scores, kind="stable")
        flagged = np.sort(order[:top_k])
        if top_k == 0 or not len(order):
            # Nothing flagged: the effective threshold sits above every
            # score (a -1 index here used to report the series *minimum*).
            used_threshold = np.inf
        else:
            used_threshold = float(scores[order[min(top_k, len(order)) - 1]])
    else:
        if threshold is None:
            threshold = float(scores.mean() + 2.0 * scores.std()) if scores.size else 0.0
        flagged = np.flatnonzero(scores > threshold)
        used_threshold = float(threshold)
    return AnomalyDetectionResult(
        normalized=normalized,
        scores=scores,
        flagged=flagged,
        threshold=used_threshold,
    )


# --------------------------------------------------------------------- #
# Streaming detection
# --------------------------------------------------------------------- #


@dataclass
class ScoredTransition:
    """One finalised transition score from the streaming detector."""

    index: int
    distance: float
    normalized: float
    score: float
    threshold: float
    flagged: bool


class StreamingAnomalyDetector:
    """Online §6.2 detection: push distances one at a time.

    The offline pipeline (:func:`detect_anomalies`) is non-causal in two
    places — it scales by the *global* series maximum and thresholds at
    the *global* ``mean + 2·std`` of the scores. The streaming detector
    replaces both with causal equivalents: the running maximum and the
    running (Welford) mean/std of the scores emitted so far. The spike
    score itself needs the right neighbour ``d_{t+1}``, so :meth:`push`
    finalises the *previous* transition and :meth:`finalize` flushes the
    last one (with its missing term taken as 0, exactly like the offline
    boundary rule).

    With ``scale=False`` and a fixed *threshold*, the emitted scores are
    **identical** to :func:`anomaly_scores` over the full series — that
    exactness is what ``tests/analysis/test_anomaly_roc.py`` locks down;
    with the causal defaults they agree whenever the running max/stats
    have converged to the global ones.
    """

    def __init__(self, *, threshold: float | None = None, scale: bool = True) -> None:
        self.fixed_threshold = threshold
        self.scale = scale
        self.results: list[ScoredTransition] = []
        self._normalized: list[float] = []  # per-active-count, unscaled
        self._raw: list[float] = []
        self._running_max = 0.0
        # Welford accumulators over emitted scores (adaptive threshold).
        self._score_count = 0
        self._score_mean = 0.0
        self._score_m2 = 0.0

    def __len__(self) -> int:
        """Number of distances pushed so far."""
        return len(self._normalized)

    def push(self, distance: float, *, active_count: int | None = None) -> ScoredTransition | None:
        """Consume the next adjacent-state distance ``d_t``.

        *active_count* (the number of users active in the later state of
        the transition) applies the paper's per-state normalisation.
        Returns the newly finalised score for transition ``t-1`` — whose
        right neighbour just arrived — or ``None`` for the very first
        distance.
        """
        distance = float(distance)
        if distance < 0:
            raise ValidationError(f"distances must be >= 0, got {distance}")
        normalized = distance
        if active_count is not None:
            normalized = distance / max(float(active_count), 1.0)
        self._raw.append(distance)
        self._normalized.append(normalized)
        self._running_max = max(self._running_max, normalized)
        if len(self._normalized) < 2:
            return None
        return self._score(len(self._normalized) - 2, last=False)

    def finalize(self) -> ScoredTransition | None:
        """Flush the final transition (missing right neighbour taken as 0,
        the offline boundary rule). Returns ``None`` on an empty stream or
        when nothing is pending."""
        if not self._normalized:
            return None
        index = len(self._normalized) - 1
        if self.results and self.results[-1].index == index:
            return None  # already flushed
        return self._score(index, last=True)

    def _score(self, index: int, *, last: bool) -> ScoredTransition:
        d = self._normalized
        here = d[index]
        prev = d[index - 1] if index > 0 else here
        nxt = here if last else d[index + 1]
        raw_score = (here - prev) + (here - nxt)
        scaled = 1.0
        if self.scale and self._running_max > 0:
            scaled = self._running_max
        score = raw_score / scaled
        # Welford update, then threshold over everything seen so far —
        # the causal analogue of the offline global mean + 2·std.
        self._score_count += 1
        delta = score - self._score_mean
        self._score_mean += delta / self._score_count
        self._score_m2 += delta * (score - self._score_mean)
        if self.fixed_threshold is not None:
            threshold = float(self.fixed_threshold)
        else:
            std = (self._score_m2 / self._score_count) ** 0.5
            threshold = self._score_mean + 2.0 * std
        scored = ScoredTransition(
            index=index,
            distance=self._raw[index],
            normalized=here / scaled if self.scale else here,
            score=score,
            threshold=threshold,
            flagged=bool(score > threshold),
        )
        self.results.append(scored)
        return scored

    def flagged(self) -> np.ndarray:
        """Indices of transitions flagged so far (sorted)."""
        return np.array(sorted(s.index for s in self.results if s.flagged), dtype=np.int64)

    def scores(self) -> np.ndarray:
        """All finalised scores in transition order."""
        return np.array([s.score for s in self.results], dtype=np.float64)
