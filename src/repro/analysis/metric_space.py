"""Metric-space applications of SND — the paper's §9 future work.

Because SND (with size-proportional bank shares and nearest-member bank
distances, see DESIGN.md) is a metric, network states live in a metric
space and the standard distance-based machinery applies. This module
implements the three applications §9 names:

* **search** — :class:`VPTree`, a vantage-point tree with triangle-
  inequality pruning for exact nearest-neighbor queries (the §4 remark on
  exploiting metricity "to improve practical performance of distance-based
  search", citing Clarkson);
* **clustering** — :func:`k_medoids`, PAM-style clustering over a
  precomputed distance matrix;
* **classification** — :class:`KnnStateClassifier`, k-nearest-neighbor
  classification of network states (e.g. "normal" vs "anomalous" regime).

All three are distance-agnostic: pass ``SND(...).distance`` or any
callable/matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_rng

__all__ = ["VPTree", "k_medoids", "KnnStateClassifier", "state_distance_matrix"]

DistanceFn = Callable[[object, object], float]


def state_distance_matrix(
    items: Sequence,
    distance,
    *,
    jobs: int | None = None,
) -> np.ndarray:
    """The symmetric ``(N, N)`` matrix :func:`k_medoids` (and any other
    matrix consumer here) expects.

    *distance* may be a :class:`repro.snd.Corpus` (whose incrementally
    maintained matrix is returned directly when *items* are exactly the
    corpus members, and whose engine is used otherwise), an object
    exposing a batched ``pairwise_matrix`` (:class:`repro.snd.SND` or
    :class:`repro.snd.SNDEngine`, which cache ground costs and honour
    *jobs*), or a plain callable ``f(a, b) -> float``, in which case the
    upper triangle is evaluated once and mirrored.
    """
    # Class-level probes: ``matrix`` is a copying property on Corpus, so
    # it must not be touched until the membership check says it applies.
    cls = type(distance)
    if getattr(cls, "states", None) is not None and getattr(cls, "matrix", None) is not None:
        items = list(items)
        members = list(distance.states)
        if len(items) == len(members) and all(
            a == b for a, b in zip(items, members)
        ):
            return np.asarray(distance.matrix, dtype=np.float64)
        distance = getattr(distance, "engine", distance)
    batched = getattr(distance, "pairwise_matrix", None)
    if callable(batched):
        return np.asarray(batched(items, jobs=jobs), dtype=np.float64)
    items = list(items)
    n = len(items)
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = float(distance(items[i], items[j]))
    return out


# --------------------------------------------------------------------- #
# Vantage-point tree
# --------------------------------------------------------------------- #


@dataclass
class _VPNode:
    index: int
    radius: float = 0.0
    inside: "._VPNode | None" = None
    outside: "._VPNode | None" = None


class VPTree:
    """Exact nearest-neighbor search under a metric distance.

    Construction performs O(n log n) distance evaluations; queries prune
    subtrees with the triangle inequality, so with a true metric the result
    equals brute force at (typically) far fewer evaluations. The number of
    distance calls is tracked in :attr:`last_query_evaluations` so tests
    and benchmarks can verify the pruning actually bites.
    """

    def __init__(self, items: Sequence, distance_fn: DistanceFn, *, seed=None) -> None:
        if not items:
            raise ValidationError("VPTree needs at least one item")
        self.items = list(items)
        self.distance_fn = distance_fn
        self._rng = as_rng(seed)
        self.last_query_evaluations = 0
        indices = list(range(len(self.items)))
        self._root = self._build(indices)

    def _build(self, indices: list[int]) -> _VPNode | None:
        if not indices:
            return None
        vantage = indices[int(self._rng.integers(len(indices)))]
        rest = [i for i in indices if i != vantage]
        node = _VPNode(index=vantage)
        if not rest:
            return node
        dists = np.array(
            [self.distance_fn(self.items[vantage], self.items[i]) for i in rest]
        )
        node.radius = float(np.median(dists))
        inside = [i for i, d in zip(rest, dists) if d <= node.radius]
        outside = [i for i, d in zip(rest, dists) if d > node.radius]
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    def nearest(self, query, *, exclude: int | None = None) -> tuple[int, float]:
        """Index and distance of the nearest stored item to *query*.

        ``exclude`` skips one stored index (for leave-one-out evaluation).
        """
        self.last_query_evaluations = 0
        best = [-1, np.inf]

        def visit(node: _VPNode | None) -> None:
            if node is None:
                return
            d = self.distance_fn(query, self.items[node.index])
            self.last_query_evaluations += 1
            if node.index != exclude and d < best[1]:
                best[0], best[1] = node.index, d
            # Triangle-inequality pruning: a child region can only contain
            # a better candidate if its annulus intersects the best ball.
            if d <= node.radius:
                visit(node.inside)
                if d + best[1] > node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                if d - best[1] <= node.radius:
                    visit(node.inside)

        visit(self._root)
        if best[0] < 0:
            raise ValidationError("no eligible items (everything excluded)")
        return int(best[0]), float(best[1])


# --------------------------------------------------------------------- #
# k-medoids
# --------------------------------------------------------------------- #


def k_medoids(
    distance_matrix: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """PAM-style k-medoids over a precomputed distance matrix.

    Returns ``(labels, medoid_indices, total_cost)``. Deterministic given
    the seed (medoids initialised by k-center-style greedy seeding).
    """
    d = np.asarray(distance_matrix, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValidationError("distance_matrix must be square")
    n = d.shape[0]
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    rng = as_rng(seed)

    # Greedy far-apart seeding.
    medoids = [int(rng.integers(n))]
    while len(medoids) < k:
        dist_to_nearest = d[:, medoids].min(axis=1)
        medoids.append(int(np.argmax(dist_to_nearest)))
    medoids_arr = np.array(sorted(set(medoids)), dtype=np.int64)
    while medoids_arr.size < k:  # degenerate duplicates: pad randomly
        extra = int(rng.integers(n))
        if extra not in medoids_arr:
            medoids_arr = np.sort(np.append(medoids_arr, extra))

    for _ in range(max_iter):
        labels = np.argmin(d[:, medoids_arr], axis=1)
        changed = False
        for ci in range(k):
            members = np.flatnonzero(labels == ci)
            if members.size == 0:
                continue
            within = d[np.ix_(members, members)].sum(axis=1)
            best = int(members[np.argmin(within)])
            if best != medoids_arr[ci]:
                medoids_arr[ci] = best
                changed = True
        if not changed:
            break
    labels = np.argmin(d[:, medoids_arr], axis=1)
    cost = float(d[np.arange(n), medoids_arr[labels]].sum())
    return labels.astype(np.int64), medoids_arr, cost


# --------------------------------------------------------------------- #
# kNN classification
# --------------------------------------------------------------------- #


@dataclass
class KnnStateClassifier:
    """k-nearest-neighbor classification of network states.

    Fit with labelled states and a distance callable; predicts by majority
    vote among the k nearest training states (ties: smallest total
    distance).
    """

    distance_fn: DistanceFn
    k: int = 3
    _states: list = field(default_factory=list, repr=False)
    _labels: list = field(default_factory=list, repr=False)

    def fit(self, states: Sequence, labels: Sequence) -> "KnnStateClassifier":
        if len(states) != len(labels):
            raise ValidationError("states and labels must align")
        if len(states) == 0:
            raise ValidationError("need at least one training state")
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        self._states = list(states)
        self._labels = list(labels)
        return self

    def predict(self, state) -> object:
        if not self._states:
            raise ValidationError("classifier is not fitted")
        dists = np.array([self.distance_fn(state, s) for s in self._states])
        k = min(self.k, len(self._states))
        nearest = np.argsort(dists, kind="stable")[:k]
        votes: dict = {}
        for idx in nearest:
            label = self._labels[int(idx)]
            total, count = votes.get(label, (0.0, 0))
            votes[label] = (total + float(dists[idx]), count + 1)
        # Majority; ties broken by smaller accumulated distance.
        return max(votes.items(), key=lambda kv: (kv[1][1], -kv[1][0]))[0]

    def score(self, states: Sequence, labels: Sequence) -> float:
        """Mean accuracy over a labelled evaluation set."""
        if len(states) != len(labels):
            raise ValidationError("states and labels must align")
        if not states:
            return 1.0
        hits = sum(self.predict(s) == y for s, y in zip(states, labels))
        return hits / len(states)
