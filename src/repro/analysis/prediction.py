"""Distance-based user opinion prediction (§6.3).

Given recent network states ``G_{-t} ... G_{-1}`` and an *incomplete*
current state ``G_0`` (some active users' opinions hidden), the method:

1. computes adjacent distances over the recent window,
2. extrapolates them to an estimate ``d*`` of ``dist(G_{-1}, G_0)``,
3. samples random opinion assignments for the hidden users and keeps the
   one whose induced distance is closest to ``d*``.

The method is distance-measure-agnostic: the paper runs it with SND and
with every baseline (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.extrapolation import extrapolate_next
from repro.exceptions import PredictionError
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState, StateSeries
from repro.utils.rng import as_rng

__all__ = ["DistancePredictor", "PredictionOutcome"]

DistanceFn = Callable[[NetworkState, NetworkState], float]


@dataclass
class PredictionOutcome:
    """Result of one prediction run."""

    predicted: np.ndarray
    target_users: np.ndarray
    estimated_distance: float
    achieved_distance: float
    n_assignments: int

    def accuracy(self, truth: np.ndarray) -> float:
        """Fraction of target users predicted correctly."""
        truth = np.asarray(truth)
        if truth.shape != self.predicted.shape:
            raise PredictionError(
                f"truth must have shape {self.predicted.shape}, got {truth.shape}"
            )
        if truth.size == 0:
            return 1.0
        return float(np.mean(truth == self.predicted))


class DistancePredictor:
    """Randomised-search opinion predictor around one distance measure.

    Parameters
    ----------
    distance_fn:
        ``f(state_a, state_b) -> float`` — e.g. ``SND(...).distance`` or a
        baseline from :mod:`repro.distances`.
    n_assignments:
        Random assignments sampled per prediction (the paper uses 100).
    extrapolation:
        Method for the ``d*`` estimate (see :func:`extrapolate_next`).
    opinion_values:
        The active-opinion alphabet sampled for hidden users. ``None``
        (default) keeps the paper's bipolar ``{+1, -1}``; the multipolar
        bake-off passes the pole labels ``[1, ..., k]`` so the same
        randomised-search protocol runs over k-pole states (which must
        then expose the same ``with_opinions`` / ``with_neutralized`` /
        ``users_with`` surface — :class:`~repro.multipolar.state.
        MultipolarState` does).
    """

    def __init__(
        self,
        distance_fn: DistanceFn,
        *,
        n_assignments: int = 100,
        extrapolation: str = "linear",
        opinion_values: Sequence[int] | None = None,
    ) -> None:
        if n_assignments < 1:
            raise PredictionError(
                f"n_assignments must be positive, got {n_assignments}"
            )
        self.distance_fn = distance_fn
        self.n_assignments = int(n_assignments)
        self.extrapolation = extrapolation
        if opinion_values is None:
            self.opinion_values = None
        else:
            values = np.asarray(opinion_values, dtype=np.int8)
            if values.size < 2:
                raise PredictionError(
                    f"opinion_values needs at least two opinions, got {values!r}"
                )
            self.opinion_values = values

    # ------------------------------------------------------------------ #

    def predict(
        self,
        recent: StateSeries | Sequence[NetworkState],
        current_incomplete: NetworkState,
        target_users: Sequence[int],
        *,
        seed=None,
    ) -> PredictionOutcome:
        """Predict the opinions of *target_users* in the current state.

        *recent* must hold at least two states (to form one distance);
        *current_incomplete* is the current state with the target users'
        opinions unknown (their stored value is ignored — each sampled
        assignment overwrites them).
        """
        states = list(recent)
        if len(states) < 2:
            raise PredictionError(
                "need at least two recent states to extrapolate a distance"
            )
        targets = np.asarray(target_users, dtype=np.int64)
        if targets.size == 0:
            raise PredictionError("no target users given")
        if np.unique(targets).size != targets.size:
            raise PredictionError("target users must be distinct")
        rng = as_rng(seed)

        past = np.array(
            [self.distance_fn(a, b) for a, b in zip(states, states[1:])]
        )
        d_star = extrapolate_next(past, method=self.extrapolation)

        last = states[-1]
        best_gap = np.inf
        best_assignment: np.ndarray | None = None
        best_distance = np.inf
        if self.opinion_values is not None:
            opinions = self.opinion_values
        else:
            opinions = np.array([POSITIVE, NEGATIVE], dtype=np.int8)
        for _ in range(self.n_assignments):
            assignment = rng.choice(opinions, size=targets.size)
            candidate = current_incomplete.with_opinions(targets, assignment)
            dist = self.distance_fn(last, candidate)
            gap = abs(dist - d_star)
            if gap < best_gap:
                best_gap = gap
                best_assignment = assignment
                best_distance = dist
        assert best_assignment is not None
        return PredictionOutcome(
            predicted=best_assignment,
            target_users=targets,
            estimated_distance=float(d_star),
            achieved_distance=float(best_distance),
            n_assignments=self.n_assignments,
        )

    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        series: StateSeries,
        *,
        n_targets: int = 20,
        window: int = 3,
        n_repeats: int = 10,
        seed=None,
    ) -> tuple[float, float]:
        """The §6.3 protocol: hide ``n_targets`` active users (balanced
        between + and -) in the final state, predict them from the *window*
        preceding states, repeat ``n_repeats`` times.

        Returns ``(mean accuracy %, std dev %)``.
        """
        if len(series) < window + 1:
            raise PredictionError(
                f"series of length {len(series)} too short for window {window}"
            )
        rng = as_rng(seed)
        current = series[len(series) - 1]
        recent = series[len(series) - 1 - window : len(series) - 1]
        accuracies = []
        for _ in range(n_repeats):
            if self.opinion_values is not None:
                targets = _sample_targets_from_alphabet(
                    current, n_targets, rng, self.opinion_values
                )
            else:
                targets = _sample_balanced_targets(current, n_targets, rng)
            truth = current.values[targets]
            hidden = current.with_neutralized(targets)
            outcome = self.predict(recent, hidden, targets, seed=rng)
            accuracies.append(outcome.accuracy(truth) * 100.0)
        acc = np.asarray(accuracies)
        return float(acc.mean()), float(acc.std(ddof=0))


def _sample_targets_from_alphabet(
    state, n_targets: int, rng: np.random.Generator, opinion_values: np.ndarray
) -> np.ndarray:
    """Targets balanced across an arbitrary opinion alphabet (the k-pole
    generalisation of :func:`_sample_balanced_targets`): round-robin over
    the opinions' adopter pools, largest pools absorbing the remainder."""
    pools = [state.users_with(int(v)) for v in opinion_values]
    total = sum(p.size for p in pools)
    if total < n_targets:
        raise PredictionError(
            f"state has only {total} active users, need {n_targets} targets"
        )
    base = n_targets // len(pools)
    takes = [min(base, p.size) for p in pools]
    # Distribute the remainder to pools with spare capacity (largest first,
    # deterministic given the pool sizes).
    shortfall = n_targets - sum(takes)
    order = sorted(
        range(len(pools)), key=lambda i: pools[i].size - takes[i], reverse=True
    )
    while shortfall > 0:
        progressed = False
        for i in order:
            if shortfall == 0:
                break
            if takes[i] < pools[i].size:
                takes[i] += 1
                shortfall -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the total check
            raise PredictionError("not enough active users to sample targets")
    chosen = np.concatenate(
        [
            rng.choice(pool, size=take, replace=False)
            for pool, take in zip(pools, takes)
            if take
        ]
    )
    rng.shuffle(chosen)
    return chosen


def _sample_balanced_targets(
    state: NetworkState, n_targets: int, rng: np.random.Generator
) -> np.ndarray:
    """~Equal numbers of positive and negative active users, per §6.3."""
    positive = state.users_with(POSITIVE)
    negative = state.users_with(NEGATIVE)
    if positive.size + negative.size < n_targets:
        raise PredictionError(
            f"state has only {positive.size + negative.size} active users, "
            f"need {n_targets} targets"
        )
    half = n_targets // 2
    n_pos = min(half, positive.size)
    n_neg = min(n_targets - n_pos, negative.size)
    n_pos = n_targets - n_neg  # rebalance if one side is short
    if n_pos > positive.size:
        raise PredictionError("not enough active users of each polarity")
    chosen = np.concatenate(
        [
            rng.choice(positive, size=n_pos, replace=False),
            rng.choice(negative, size=n_neg, replace=False),
        ]
    )
    rng.shuffle(chosen)
    return chosen
