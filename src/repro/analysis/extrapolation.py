"""Time-series extrapolation for the §6.3 prediction pipeline.

The paper assumes the network evolved "smoothly" over the recent states and
extrapolates the adjacent-state distance series one step ahead to estimate
``d*``, the expected distance from the latest state to the (unknown) current
one.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PredictionError
from repro.utils.validation import check_vector

__all__ = ["extrapolate_next"]


def extrapolate_next(values, *, method: str = "linear") -> float:
    """One-step-ahead forecast of a short distance series.

    * ``"linear"`` — least-squares line through the points, evaluated at the
      next index (falls back to the mean for a single point);
    * ``"mean"`` — the series average;
    * ``"last"`` — the final value (random-walk forecast).

    Forecasts are clamped at 0 (distances cannot be negative).
    """
    v = check_vector(values, "values")
    if v.size == 0:
        raise PredictionError("cannot extrapolate an empty series")
    if method == "last":
        forecast = float(v[-1])
    elif method == "mean":
        forecast = float(v.mean())
    elif method == "linear":
        if v.size == 1:
            forecast = float(v[0])
        else:
            x = np.arange(v.size, dtype=np.float64)
            slope, intercept = np.polyfit(x, v, 1)
            forecast = float(slope * v.size + intercept)
    else:
        raise PredictionError(
            f"unknown extrapolation method {method!r}; "
            "expected 'linear', 'mean', or 'last'"
        )
    return max(forecast, 0.0)
