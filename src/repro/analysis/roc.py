"""ROC curves and summary statistics for anomaly ranking quality (Fig. 8)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_vector

__all__ = ["roc_curve", "roc_auc", "tpr_at_fpr"]


def roc_curve(scores, labels) -> tuple[np.ndarray, np.ndarray]:
    """(FPR, TPR) points swept over all thresholds, high scores first.

    Ties in score are collapsed into single sweep steps (standard ROC
    convention), and the curve is anchored at (0, 0) and (1, 1).
    """
    s = check_vector(scores, "scores")
    y = np.asarray(labels).astype(bool)
    if y.shape != s.shape:
        raise ValidationError(
            f"labels must align with scores, got {y.shape} vs {s.shape}"
        )
    n_pos = int(y.sum())
    n_neg = int((~y).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("ROC needs at least one positive and one negative")

    order = np.argsort(-s, kind="stable")
    sorted_scores = s[order]
    sorted_labels = y[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    # Keep only the last index of each tied-score run.
    distinct = np.append(np.diff(sorted_scores) != 0, True)
    tpr = np.concatenate([[0.0], tp[distinct] / n_pos, [1.0]])
    fpr = np.concatenate([[0.0], fp[distinct] / n_neg, [1.0]])
    return fpr, tpr


def roc_auc(scores, labels) -> float:
    """Area under the ROC curve (trapezoidal rule)."""
    fpr, tpr = roc_curve(scores, labels)
    return float(np.trapezoid(tpr, fpr))


def tpr_at_fpr(scores, labels, max_fpr: float) -> float:
    """Best achievable TPR subject to ``FPR <= max_fpr`` — the paper's
    headline statistic (TPR 0.83 at FPR <= 0.3, §6.2)."""
    if not 0.0 <= max_fpr <= 1.0:
        raise ValidationError(f"max_fpr must lie in [0, 1], got {max_fpr}")
    fpr, tpr = roc_curve(scores, labels)
    eligible = fpr <= max_fpr + 1e-12
    return float(tpr[eligible].max()) if eligible.any() else 0.0
