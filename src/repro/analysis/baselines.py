"""Baselines: §6.3 opinion predictors and scalar polarization measures.

Prediction baselines (non-distance-based):

* ``nhood-voting`` — each target user's opinion is drawn by probabilistic
  voting over her *active in-neighbors*' opinions (uniformly random when
  she has none): the egonet-level method SND is contrasted against.
* ``community-lp`` — Conover et al. (2011): detect communities via label
  propagation, then predict each target by the dominant opinion of her
  community (random fallback for undecided communities).

Scalar polarization measures (the bake-off baselines, registered in
:func:`repro.distances.registry.default_registry` as change-in-measure
distances ``|P(G_2) - P(G_1)|``):

* ``esp`` — :func:`polarization_index`, the mean-centered squared opinion
  norm ``Σ_i (x_i - x̄)²`` (the "polarization" objective of Musco, Musco
  & Tsourakakis, *Minimizing Polarization and Disagreement in Social
  Networks*, WWW 2018 — an extremity-of-spectrum / variance measure).
* ``disagreement`` — :func:`disagreement_index`, the Laplacian quadratic
  form ``x̃ᵀ L x̃`` over mean-centered opinions (cross-edge conflict;
  same paper's "disagreement" objective, a spectral measure).
* ``bimodality`` — :func:`bimodality_coefficient`, Sarle's
  ``(skew² + 1) / kurtosis`` over active users' opinions, one of the
  distribution-shape measures catalogued in the how-to-quantify-
  polarization literature (large when the opinion distribution splits
  into two camps).

All three consume a scalar opinion spectrum. Bipolar states use their
``±1`` values directly; k-pole states are collapsed by
:func:`opinion_spectrum` onto the equispaced embedding of ``[-1, 1]`` —
the canonical (and lossy) flattening whose failure modes on ``k > 2``
regimes the bake-off (:mod:`repro.analysis.bakeoff`) is designed to
expose.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.clustering import label_propagation_communities
from repro.graph.digraph import DiGraph
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState
from repro.utils.rng import as_rng

__all__ = [
    "nhood_voting_predict",
    "community_lp_predict",
    "opinion_spectrum",
    "polarization_index",
    "disagreement_index",
    "bimodality_coefficient",
]

_POLAR = np.array([POSITIVE, NEGATIVE], dtype=np.int8)


def nhood_voting_predict(
    graph: DiGraph,
    state: NetworkState,
    target_users: Sequence[int],
    *,
    seed=None,
) -> np.ndarray:
    """Predict each target by probabilistic vote over active in-neighbors.

    With ``k+`` positive and ``k-`` negative active in-neighbors, the user
    is predicted positive with probability ``k+ / (k+ + k-)``; users with no
    active in-neighbors get a uniformly random polar opinion (the paper's
    fallback).
    """
    rng = as_rng(seed)
    targets = np.asarray(target_users, dtype=np.int64)
    values = state.values
    out = np.empty(targets.size, dtype=np.int8)
    for idx, user in enumerate(targets):
        neighbors = graph.in_neighbors(int(user))
        n_pos = int(np.count_nonzero(values[neighbors] == POSITIVE))
        n_neg = int(np.count_nonzero(values[neighbors] == NEGATIVE))
        total = n_pos + n_neg
        if total == 0:
            out[idx] = _POLAR[rng.integers(2)]
        else:
            out[idx] = POSITIVE if rng.random() < n_pos / total else NEGATIVE
    return out


def community_lp_predict(
    graph: DiGraph,
    state: NetworkState,
    target_users: Sequence[int],
    *,
    labels: np.ndarray | None = None,
    seed=None,
) -> np.ndarray:
    """Predict each target by the dominant opinion of her LP community.

    Pass precomputed community *labels* to amortise detection across
    repeated trials (the §6.3 harness does). Target users' own (hidden)
    opinions are excluded from the community tallies.
    """
    rng = as_rng(seed)
    targets = np.asarray(target_users, dtype=np.int64)
    if labels is None:
        labels = label_propagation_communities(graph, seed=rng)
    labels = np.asarray(labels, dtype=np.int64)

    values = state.values.astype(np.int64).copy()
    values[targets] = 0  # hidden users must not vote for themselves

    n_comm = int(labels.max()) + 1 if labels.size else 0
    pos_counts = np.zeros(n_comm, dtype=np.int64)
    neg_counts = np.zeros(n_comm, dtype=np.int64)
    np.add.at(pos_counts, labels[values == POSITIVE], 1)
    np.add.at(neg_counts, labels[values == NEGATIVE], 1)

    out = np.empty(targets.size, dtype=np.int8)
    for idx, user in enumerate(targets):
        community = labels[user]
        n_pos, n_neg = pos_counts[community], neg_counts[community]
        if n_pos > n_neg:
            out[idx] = POSITIVE
        elif n_neg > n_pos:
            out[idx] = NEGATIVE
        else:
            out[idx] = _POLAR[rng.integers(2)]
    return out


# --------------------------------------------------------------------- #
# Scalar polarization measures (bake-off baselines)
# --------------------------------------------------------------------- #


def opinion_spectrum(state) -> np.ndarray:
    """Scalar opinion vector of *state* (float64, one entry per user).

    Bipolar :class:`~repro.opinions.state.NetworkState` values pass
    through (``+1 / 0 / -1``). k-pole states (anything exposing
    ``n_poles``) are collapsed onto the equispaced embedding of
    ``[-1, 1]``: pole ``p`` maps to ``-1 + 2·(p-1)/(k-1)`` and neutral
    users to ``0`` — for ``k = 2`` that is exactly the bipolar convention
    (pole 1 → +1, pole 2 → -1 after orientation), for ``k > 2`` it is the
    canonical lossy flattening every scalar measure must make (interior
    poles collide with neutrality — see the bake-off docs).
    """
    n_poles = getattr(state, "n_poles", None)
    values = state.values.astype(np.float64)
    if n_poles is None:
        return values
    spectrum = np.zeros_like(values)
    active = values > 0
    # Pole p -> +1 - 2*(p-1)/(k-1): pole 1 sits at +1 (the bipolar
    # positive), pole k at -1, interior poles equispaced between.
    spectrum[active] = 1.0 - 2.0 * (values[active] - 1.0) / (n_poles - 1)
    return spectrum


def polarization_index(state) -> float:
    """Mean-centered squared opinion norm ``Σ_i (x_i - x̄)²`` (the
    polarization objective of Musco et al., WWW 2018)."""
    x = opinion_spectrum(state)
    centered = x - x.mean()
    return float(centered @ centered)


def disagreement_index(state, laplacian) -> float:
    """Laplacian quadratic form ``x̃ᵀ L x̃`` over mean-centered opinions
    (cross-edge conflict; the disagreement objective of Musco et al., WWW
    2018). *laplacian* is the combinatorial Laplacian, e.g. from
    :func:`repro.graph.laplacian.laplacian_matrix` or
    :meth:`~repro.distances.registry.DistanceContext.ensure_laplacian`.
    """
    x = opinion_spectrum(state)
    centered = x - x.mean()
    return float(centered @ (laplacian @ centered))


def bimodality_coefficient(state) -> float:
    """Sarle's bimodality coefficient ``(g₁² + 1) / g₂`` over the active
    users' opinion spectrum (``g₁`` skewness, ``g₂`` Pearson kurtosis).

    Approaches its maximum when the active opinions split into two
    point camps; a state with fewer than two active users, or with all
    active users in one camp (zero variance), scores ``0.0`` by
    convention.
    """
    x = opinion_spectrum(state)
    x = x[state.values != 0]
    if x.size < 2:
        return 0.0
    centered = x - x.mean()
    m2 = float(np.mean(centered**2))
    if m2 == 0.0:
        return 0.0
    skew = float(np.mean(centered**3)) / m2**1.5
    kurtosis = float(np.mean(centered**4)) / m2**2
    return (skew**2 + 1.0) / kurtosis
