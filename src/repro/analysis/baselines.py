"""Non-distance-based opinion-prediction baselines (§6.3).

* ``nhood-voting`` — each target user's opinion is drawn by probabilistic
  voting over her *active in-neighbors*' opinions (uniformly random when
  she has none): the egonet-level method SND is contrasted against.
* ``community-lp`` — Conover et al. (2011): detect communities via label
  propagation, then predict each target by the dominant opinion of her
  community (random fallback for undecided communities).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.clustering import label_propagation_communities
from repro.graph.digraph import DiGraph
from repro.opinions.state import NEGATIVE, POSITIVE, NetworkState
from repro.utils.rng import as_rng

__all__ = ["nhood_voting_predict", "community_lp_predict"]

_POLAR = np.array([POSITIVE, NEGATIVE], dtype=np.int8)


def nhood_voting_predict(
    graph: DiGraph,
    state: NetworkState,
    target_users: Sequence[int],
    *,
    seed=None,
) -> np.ndarray:
    """Predict each target by probabilistic vote over active in-neighbors.

    With ``k+`` positive and ``k-`` negative active in-neighbors, the user
    is predicted positive with probability ``k+ / (k+ + k-)``; users with no
    active in-neighbors get a uniformly random polar opinion (the paper's
    fallback).
    """
    rng = as_rng(seed)
    targets = np.asarray(target_users, dtype=np.int64)
    values = state.values
    out = np.empty(targets.size, dtype=np.int8)
    for idx, user in enumerate(targets):
        neighbors = graph.in_neighbors(int(user))
        n_pos = int(np.count_nonzero(values[neighbors] == POSITIVE))
        n_neg = int(np.count_nonzero(values[neighbors] == NEGATIVE))
        total = n_pos + n_neg
        if total == 0:
            out[idx] = _POLAR[rng.integers(2)]
        else:
            out[idx] = POSITIVE if rng.random() < n_pos / total else NEGATIVE
    return out


def community_lp_predict(
    graph: DiGraph,
    state: NetworkState,
    target_users: Sequence[int],
    *,
    labels: np.ndarray | None = None,
    seed=None,
) -> np.ndarray:
    """Predict each target by the dominant opinion of her LP community.

    Pass precomputed community *labels* to amortise detection across
    repeated trials (the §6.3 harness does). Target users' own (hidden)
    opinions are excluded from the community tallies.
    """
    rng = as_rng(seed)
    targets = np.asarray(target_users, dtype=np.int64)
    if labels is None:
        labels = label_propagation_communities(graph, seed=rng)
    labels = np.asarray(labels, dtype=np.int64)

    values = state.values.astype(np.int64).copy()
    values[targets] = 0  # hidden users must not vote for themselves

    n_comm = int(labels.max()) + 1 if labels.size else 0
    pos_counts = np.zeros(n_comm, dtype=np.int64)
    neg_counts = np.zeros(n_comm, dtype=np.int64)
    np.add.at(pos_counts, labels[values == POSITIVE], 1)
    np.add.at(neg_counts, labels[values == NEGATIVE], 1)

    out = np.empty(targets.size, dtype=np.int8)
    for idx, user in enumerate(targets):
        community = labels[user]
        n_pos, n_neg = pos_counts[community], neg_counts[community]
        if n_pos > n_neg:
            out[idx] = POSITIVE
        elif n_neg > n_pos:
            out[idx] = NEGATIVE
        else:
            out[idx] = _POLAR[rng.integers(2)]
    return out
