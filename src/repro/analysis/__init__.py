"""Application layer: anomaly detection (§6.2), ROC scoring, opinion
prediction (§6.3) and its non-distance baselines."""

from repro.analysis.anomaly import (
    AnomalyDetectionResult,
    anomaly_scores,
    detect_anomalies,
    normalize_distance_series,
)
from repro.analysis.baselines import community_lp_predict, nhood_voting_predict
from repro.analysis.extrapolation import extrapolate_next
from repro.analysis.metric_space import (
    KnnStateClassifier,
    VPTree,
    k_medoids,
    state_distance_matrix,
)
from repro.analysis.prediction import DistancePredictor, PredictionOutcome
from repro.analysis.roc import roc_auc, roc_curve, tpr_at_fpr

__all__ = [
    "normalize_distance_series",
    "anomaly_scores",
    "detect_anomalies",
    "AnomalyDetectionResult",
    "roc_curve",
    "roc_auc",
    "tpr_at_fpr",
    "extrapolate_next",
    "VPTree",
    "k_medoids",
    "KnnStateClassifier",
    "state_distance_matrix",
    "DistancePredictor",
    "PredictionOutcome",
    "nhood_voting_predict",
    "community_lp_predict",
]
