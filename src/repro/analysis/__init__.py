"""Application layer: anomaly detection (§6.2), ROC scoring, opinion
prediction (§6.3), its non-distance baselines, and the polarization-
measure bake-off (:mod:`repro.analysis.bakeoff`)."""

from repro.analysis.anomaly import (
    AnomalyDetectionResult,
    anomaly_scores,
    detect_anomalies,
    normalize_distance_series,
)
from repro.analysis.bakeoff import (
    DEFAULT_MEASURES,
    BakeoffRegime,
    default_regimes,
    run_bakeoff,
)
from repro.analysis.baselines import (
    bimodality_coefficient,
    community_lp_predict,
    disagreement_index,
    nhood_voting_predict,
    opinion_spectrum,
    polarization_index,
)
from repro.analysis.extrapolation import extrapolate_next
from repro.analysis.metric_space import (
    KnnStateClassifier,
    VPTree,
    k_medoids,
    state_distance_matrix,
)
from repro.analysis.prediction import DistancePredictor, PredictionOutcome
from repro.analysis.roc import roc_auc, roc_curve, tpr_at_fpr

__all__ = [
    "normalize_distance_series",
    "anomaly_scores",
    "detect_anomalies",
    "AnomalyDetectionResult",
    "roc_curve",
    "roc_auc",
    "tpr_at_fpr",
    "extrapolate_next",
    "VPTree",
    "k_medoids",
    "KnnStateClassifier",
    "state_distance_matrix",
    "DistancePredictor",
    "PredictionOutcome",
    "nhood_voting_predict",
    "community_lp_predict",
    "opinion_spectrum",
    "polarization_index",
    "disagreement_index",
    "bimodality_coefficient",
    "BakeoffRegime",
    "DEFAULT_MEASURES",
    "default_regimes",
    "run_bakeoff",
]
