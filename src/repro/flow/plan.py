"""Transportation-plan representation and feasibility checking."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlowError
from repro.flow.problem import TransportationProblem

__all__ = ["TransportPlan"]

_TOL = 1e-7


@dataclass(frozen=True)
class TransportPlan:
    """An (optimal) solution to a :class:`TransportationProblem`.

    Attributes
    ----------
    flows:
        ``(n_suppliers, n_consumers)`` matrix; ``flows[i, j]`` is the mass
        moved from supplier ``i`` to consumer ``j``.
    cost:
        Total transportation cost ``sum(flows * costs)``.
    """

    flows: np.ndarray
    cost: float

    @property
    def moved_mass(self) -> float:
        """Total mass moved by the plan."""
        return float(self.flows.sum())

    def mean_cost(self) -> float:
        """Cost per unit of moved mass (the EMD normalisation). Zero-mass
        plans have zero mean cost by convention (identical empty histograms)."""
        moved = self.moved_mass
        if moved <= 0.0:
            return 0.0
        return self.cost / moved

    def validate(self, problem: TransportationProblem) -> None:
        """Raise :class:`FlowError` unless the plan is feasible for *problem*
        and moves the required ``min(total_supply, total_demand)`` mass."""
        flows = self.flows
        if flows.shape != problem.costs.shape:
            raise FlowError(
                f"plan shape {flows.shape} does not match problem {problem.costs.shape}"
            )
        if flows.size and float(flows.min()) < -_TOL:
            raise FlowError(f"negative flow entry: {flows.min()}")
        scale = max(1.0, problem.total_supply, problem.total_demand)
        row = flows.sum(axis=1)
        if np.any(row > problem.supplies + _TOL * scale):
            raise FlowError("plan exceeds some supplier capacity")
        col = flows.sum(axis=0)
        if np.any(col > problem.demands + _TOL * scale):
            raise FlowError("plan exceeds some consumer capacity")
        required = problem.moved_mass
        if abs(self.moved_mass - required) > _TOL * scale:
            raise FlowError(
                f"plan moves {self.moved_mass}, but must move {required}"
            )
        recomputed = float((flows * problem.costs).sum())
        if abs(recomputed - self.cost) > _TOL * max(1.0, abs(recomputed)):
            raise FlowError(
                f"stored cost {self.cost} does not match flows ({recomputed})"
            )
