"""Successive-shortest-paths min-cost flow with node potentials.

This is the library's default exact solver. It handles real-valued supplies,
capacities and costs (costs must be non-negative, which holds for every
ground distance in this library; a Bellman–Ford bootstrap covers negative
costs for completeness). Each augmentation saturates at least one arc or
node, and for transportation-shaped instances the number of augmentations is
bounded by ``n_suppliers + n_consumers``, which is what makes it fast on the
reduced problems produced by the SND pipeline (Theorem 4).

Two Dijkstra kernels drive the augmentations:

* ``"vector"`` — heap-free: the residual adjacency is kept as one CSR
  structure whose weight buffer is rewritten (reduced costs, unusable arcs
  masked to ``inf``) between augmentations. Shortest paths come from
  :func:`scipy.sparse.csgraph.dijkstra` when scipy is importable, and from
  a pure-numpy masked-``argmin`` round loop otherwise. With scipy this is
  the fast path on every measured instance shape (the per-node
  Python/heap overhead dominates the original loop).
* ``"heap"`` — the original indexed-binary-heap loop. It remains the
  scipy-less choice, where the ``O(n²)`` argmin fallback loses to a
  targeted heap search.

``kernel="auto"`` (the default) picks between them; see
:func:`select_mcf_kernel`. All kernels are exact and agree to numerical
tolerance — property-tested in ``tests/flow/test_solver_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleFlowError, ValidationError
from repro.flow.plan import TransportPlan
from repro.flow.problem import FlowSolution, MinCostFlowProblem, TransportationProblem
from repro.heaps.binary_heap import IndexedBinaryHeap

__all__ = ["select_mcf_kernel", "solve_mcf_ssp", "solve_transportation_ssp"]

_EPS = 1e-12

try:  # scipy is the expected backend; the argmin rounds cover its absence
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover - exercised via kernel="argmin"
    _csr_matrix = None
    _sp_dijkstra = None


def select_mcf_kernel(n_nodes: int, n_arcs: int) -> str:
    """The ``kernel="auto"`` policy.

    With scipy present the vector kernel wins on every measured shape —
    3-9x over the heap from the ~50-node reduced instances of the SND
    pipeline up to n=2000 sparse MCFs (see benchmarks/README.md) — so it
    is always selected. Without scipy the vector kernel degrades to the
    O(n²)-per-Dijkstra masked-argmin rounds, which did not beat the heap
    on any measured instance, so ``"heap"`` is kept. The shape arguments
    are accepted for future tuning of that scipy-less boundary.
    """
    del n_nodes, n_arcs  # measured winner currently depends only on scipy
    if _sp_dijkstra is not None:
        return "vector"
    return "heap"


def solve_mcf_ssp(problem: MinCostFlowProblem, *, kernel: str = "auto") -> FlowSolution:
    """Solve a balanced min-cost-flow problem exactly.

    Parameters
    ----------
    kernel:
        Dijkstra kernel: ``"auto"`` (default; see :func:`select_mcf_kernel`),
        ``"vector"`` (heap-free CSR kernel, scipy-backed when available),
        ``"argmin"`` (force the pure-numpy masked-argmin rounds of the
        vector kernel), or ``"heap"`` (indexed binary heap).

    Raises :class:`InfeasibleFlowError` when the required flow cannot be
    routed (disconnected demand).
    """
    if kernel not in ("auto", "vector", "argmin", "heap"):
        raise ValidationError(
            f"kernel must be 'auto', 'vector', 'argmin', or 'heap', got {kernel!r}"
        )
    problem.validate_balance()
    tails, heads, caps, costs = problem.arrays()
    n = problem.n_nodes
    m = len(tails)

    # Internal super source / sink realise the node imbalances as arcs.
    source = n
    sink = n + 1
    n_total = n + 2

    sup_nodes = np.flatnonzero(problem.supply > _EPS)
    dem_nodes = np.flatnonzero(problem.supply < -_EPS)
    total_required = float(problem.supply[sup_nodes].sum())

    all_tails = np.concatenate(
        [tails, np.full(len(sup_nodes), source), dem_nodes]
    ).astype(np.int64)
    all_heads = np.concatenate(
        [heads, sup_nodes, np.full(len(dem_nodes), sink)]
    ).astype(np.int64)
    all_caps = np.concatenate(
        [caps, problem.supply[sup_nodes], -problem.supply[dem_nodes]]
    ).astype(np.float64)
    all_costs = np.concatenate(
        [costs, np.zeros(len(sup_nodes)), np.zeros(len(dem_nodes))]
    ).astype(np.float64)
    m_total = len(all_tails)

    # Residual arcs: arc 2e forward, 2e+1 backward.
    arc_head = np.empty(2 * m_total, dtype=np.int64)
    arc_cost = np.empty(2 * m_total, dtype=np.float64)
    arc_res = np.empty(2 * m_total, dtype=np.float64)
    arc_head[0::2] = all_heads
    arc_head[1::2] = all_tails
    arc_cost[0::2] = all_costs
    arc_cost[1::2] = -all_costs
    arc_res[0::2] = all_caps
    arc_res[1::2] = 0.0

    # CSR adjacency over residual arcs (by tail).
    arc_tail = np.empty(2 * m_total, dtype=np.int64)
    arc_tail[0::2] = all_tails
    arc_tail[1::2] = all_heads
    order = np.argsort(arc_tail, kind="stable")
    adj_arcs = order
    adj_ptr = np.zeros(n_total + 1, dtype=np.int64)
    np.add.at(adj_ptr, arc_tail + 1, 1)
    np.cumsum(adj_ptr, out=adj_ptr)

    potential = np.zeros(n_total, dtype=np.float64)
    if m_total and float(all_costs.min()) < 0.0:
        potential = _bellman_ford_potentials(
            n_total, source, arc_tail, arc_head, arc_cost, arc_res
        )

    if kernel == "auto":
        kernel = select_mcf_kernel(n_total, m_total)
    if kernel in ("vector", "argmin"):
        iterations = _augment_vector(
            n_total,
            source,
            sink,
            arc_tail,
            arc_head,
            arc_cost,
            arc_res,
            adj_arcs,
            adj_ptr,
            potential,
            total_required,
            use_scipy=(kernel == "vector" and _sp_dijkstra is not None),
        )
    else:
        iterations = _augment_heap(
            n_total,
            source,
            sink,
            arc_tail,
            arc_head,
            arc_cost,
            arc_res,
            adj_arcs,
            adj_ptr,
            potential,
            total_required,
        )

    # Per-original-arc flow = residual of the backward arc.
    flows = arc_res[1 : 2 * m : 2].copy() if m else np.empty(0)
    cost = float((flows * costs).sum()) if m else 0.0
    return FlowSolution(flows=flows, cost=cost, iterations=iterations)


# --------------------------------------------------------------------- #
# Heap kernel (reference path)
# --------------------------------------------------------------------- #


def _augment_heap(
    n_total: int,
    source: int,
    sink: int,
    arc_tail: np.ndarray,
    arc_head: np.ndarray,
    arc_cost: np.ndarray,
    arc_res: np.ndarray,
    adj_arcs: np.ndarray,
    adj_ptr: np.ndarray,
    potential: np.ndarray,
    total_required: float,
) -> int:
    """Successive shortest paths with a per-augmentation heap Dijkstra.

    Mutates ``arc_res`` (residuals after the optimal flow) and ``potential``
    in place; returns the number of augmentations.
    """
    flow_sent = 0.0
    iterations = 0
    dist = np.empty(n_total, dtype=np.float64)
    pred_arc = np.empty(n_total, dtype=np.int64)

    while flow_sent < total_required - _EPS * max(1.0, total_required):
        # Dijkstra on reduced costs from the super source.
        dist.fill(np.inf)
        pred_arc.fill(-1)
        dist[source] = 0.0
        heap = IndexedBinaryHeap(n_total)
        heap.push(source, 0.0)
        settled = np.zeros(n_total, dtype=bool)
        while len(heap):
            u, du = heap.pop()
            if settled[u]:
                continue
            settled[u] = True
            if u == sink:
                break
            for idx in range(adj_ptr[u], adj_ptr[u + 1]):
                a = adj_arcs[idx]
                if arc_res[a] <= _EPS:
                    continue
                v = arc_head[a]
                if settled[v]:
                    continue
                reduced = arc_cost[a] + potential[u] - potential[v]
                # Reduced costs are >= 0 up to float dust; clamp the dust.
                if reduced < 0.0:
                    reduced = 0.0
                alt = du + reduced
                if alt < dist[v] - _EPS:
                    dist[v] = alt
                    pred_arc[v] = a
                    heap.push(int(v), alt)

        if not np.isfinite(dist[sink]):
            raise InfeasibleFlowError(
                f"cannot route required flow: {total_required - flow_sent} "
                f"units remain with the sink unreachable"
            )

        # Update potentials. With early termination, settled nodes have exact
        # distances and unsettled/unreached ones are capped at dist[sink],
        # which preserves non-negative reduced costs (standard SSP technique).
        potential += np.minimum(dist, dist[sink])

        # Find bottleneck along the source->sink path.
        bottleneck = np.inf
        v = sink
        while v != source:
            a = pred_arc[v]
            bottleneck = min(bottleneck, arc_res[a])
            v = int(arc_tail[a])
        # Augment.
        v = sink
        while v != source:
            a = pred_arc[v]
            arc_res[a] -= bottleneck
            arc_res[a ^ 1] += bottleneck
            v = int(arc_tail[a])
        flow_sent += bottleneck
        iterations += 1
    return iterations


# --------------------------------------------------------------------- #
# Vector kernel (heap-free)
# --------------------------------------------------------------------- #


def _augment_vector(
    n_total: int,
    source: int,
    sink: int,
    arc_tail: np.ndarray,
    arc_head: np.ndarray,
    arc_cost: np.ndarray,
    arc_res: np.ndarray,
    adj_arcs: np.ndarray,
    adj_ptr: np.ndarray,
    potential: np.ndarray,
    total_required: float,
    *,
    use_scipy: bool,
) -> int:
    """Heap-free successive shortest paths over the CSR residual adjacency.

    The CSR weight buffer is rebuilt in a handful of vectorised operations
    between augmentations: reduced costs (clamped at zero against float
    dust), with saturated arcs masked to ``inf``. Shortest paths then come
    from scipy's C Dijkstra, or from :func:`_dijkstra_argmin_rounds` when
    scipy is unavailable. Mutates ``arc_res`` and ``potential`` in place;
    returns the number of augmentations.
    """
    # Sorted-by-tail views of the residual arc attributes. ``adj_arcs`` maps
    # CSR slot -> residual arc id for translating paths back to arcs.
    csr_head = arc_head[adj_arcs]
    csr_cost = arc_cost[adj_arcs]
    csr_tail_pot_idx = arc_tail[adj_arcs]
    weights = np.empty(len(adj_arcs), dtype=np.float64)
    matrix = None
    if use_scipy:
        matrix = _csr_matrix(
            (weights, csr_head.astype(np.int32), adj_ptr.astype(np.int32)),
            shape=(n_total, n_total),
            copy=False,
        )

    flow_sent = 0.0
    iterations = 0
    while flow_sent < total_required - _EPS * max(1.0, total_required):
        # Rebuild reduced-cost weights: cost + pot[tail] - pot[head],
        # clamped at zero (float dust), saturated arcs masked out.
        np.subtract(potential[csr_tail_pot_idx], potential[csr_head], out=weights)
        weights += csr_cost
        np.maximum(weights, 0.0, out=weights)
        weights[arc_res[adj_arcs] <= _EPS] = np.inf

        if matrix is not None:
            matrix.data = weights  # rebind: csr_matrix(copy=False) may copy
            dist, pred_node = _sp_dijkstra(
                matrix, directed=True, indices=source, return_predecessors=True
            )
        else:
            dist, pred_node = _dijkstra_argmin_rounds(
                n_total, source, sink, weights, csr_head, adj_ptr
            )

        d_sink = dist[sink]
        if not np.isfinite(d_sink):
            raise InfeasibleFlowError(
                f"cannot route required flow: {total_required - flow_sent} "
                f"units remain with the sink unreachable"
            )
        potential += np.minimum(dist, d_sink)

        # Translate the predecessor-node path into residual arcs, preferring
        # the minimum-weight usable arc for each (u, v) hop (parallel arcs).
        path_arcs: list[int] = []
        bottleneck = np.inf
        v = sink
        while v != source:
            u = int(pred_node[v])
            lo, hi = adj_ptr[u], adj_ptr[u + 1]
            best = -1
            best_w = np.inf
            for slot in range(lo, hi):
                if csr_head[slot] == v and weights[slot] < best_w:
                    best_w = weights[slot]
                    best = slot
            a = int(adj_arcs[best])
            path_arcs.append(a)
            if arc_res[a] < bottleneck:
                bottleneck = arc_res[a]
            v = u
        for a in path_arcs:
            arc_res[a] -= bottleneck
            arc_res[a ^ 1] += bottleneck
        flow_sent += bottleneck
        iterations += 1
    return iterations


def _dijkstra_argmin_rounds(
    n_total: int,
    source: int,
    sink: int,
    weights: np.ndarray,
    csr_head: np.ndarray,
    adj_ptr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Heap-free Dijkstra: one masked-``argmin`` round per settled node.

    ``weights`` are the CSR-ordered reduced costs with unusable arcs already
    masked to ``inf``. Returns ``(dist, pred_node)`` like scipy's dijkstra
    (early-terminated once the sink settles; remaining entries keep their
    tentative distances, which the SSP potential update caps at
    ``dist[sink]``).
    """
    dist = np.full(n_total, np.inf)
    work = np.full(n_total, np.inf)  # settled entries masked to inf
    pred_node = np.full(n_total, -1, dtype=np.int64)
    dist[source] = 0.0
    work[source] = 0.0
    while True:
        u = int(np.argmin(work))
        du = work[u]
        if not np.isfinite(du):
            break
        work[u] = np.inf
        if u == sink:
            break
        lo, hi = adj_ptr[u], adj_ptr[u + 1]
        if lo == hi:
            continue
        heads = csr_head[lo:hi]
        alt = weights[lo:hi] + du
        # Settled nodes cannot improve (alt >= du >= their final distance),
        # so comparing against the tentative distances is sufficient.
        better = alt < dist[heads]
        if better.any():
            upd = heads[better]
            vals = alt[better]
            # Parallel arcs to one head: keep the per-head minimum.
            np.minimum.at(dist, upd, vals)
            np.minimum.at(work, upd, vals)
            pred_node[upd[vals <= dist[upd]]] = u
    return dist, pred_node


def _bellman_ford_potentials(
    n_total: int,
    source: int,
    arc_tail: np.ndarray,
    arc_head: np.ndarray,
    arc_cost: np.ndarray,
    arc_res: np.ndarray,
) -> np.ndarray:
    """Initial potentials when some arc costs are negative."""
    dist = np.full(n_total, 0.0)  # all nodes as roots: handles disconnection
    for _ in range(n_total):
        changed = False
        active = arc_res > _EPS
        for a in np.flatnonzero(active):
            u, v = arc_tail[a], arc_head[a]
            alt = dist[u] + arc_cost[a]
            if alt < dist[v] - _EPS:
                dist[v] = alt
                changed = True
        if not changed:
            break
    return dist


def solve_transportation_ssp(
    problem: TransportationProblem, *, kernel: str = "auto"
) -> TransportPlan:
    """Solve a (possibly unbalanced) dense transportation problem via SSP."""
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    n, m = balanced.n_suppliers, balanced.n_consumers

    mcf = MinCostFlowProblem(n + m)
    inf_cap = balanced.total_supply + 1.0
    sup_ids = np.flatnonzero(balanced.supplies > _EPS)
    con_ids = np.flatnonzero(balanced.demands > _EPS)
    for i in sup_ids:
        mcf.set_supply(int(i), balanced.supplies[i])
    for j in con_ids:
        mcf.set_supply(n + int(j), -balanced.demands[j])
    # Dense supplier x consumer arc grid, built in bulk.
    grid_i = np.repeat(sup_ids, con_ids.size)
    grid_j = np.tile(con_ids, sup_ids.size)
    mcf.add_edges(
        grid_i,
        n + grid_j,
        np.full(grid_i.size, inf_cap),
        balanced.costs[grid_i, grid_j],
    )

    solution = solve_mcf_ssp(mcf, kernel=kernel)
    flows = np.zeros((n, m))
    flows[grid_i, grid_j] = solution.flows
    # Strip dummy row/column added for balancing.
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    cost = float((flows * problem.costs).sum())
    return TransportPlan(flows=flows, cost=cost)
