"""Successive-shortest-paths min-cost flow with node potentials.

This is the library's default exact solver. It handles real-valued supplies,
capacities and costs (costs must be non-negative, which holds for every
ground distance in this library; a Bellman–Ford bootstrap covers negative
costs for completeness). Each augmentation saturates at least one arc or
node, and for transportation-shaped instances the number of augmentations is
bounded by ``n_suppliers + n_consumers``, which is what makes it fast on the
reduced problems produced by the SND pipeline (Theorem 4).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleFlowError
from repro.flow.plan import TransportPlan
from repro.flow.problem import FlowSolution, MinCostFlowProblem, TransportationProblem
from repro.heaps.binary_heap import IndexedBinaryHeap

__all__ = ["solve_mcf_ssp", "solve_transportation_ssp"]

_EPS = 1e-12


def solve_mcf_ssp(problem: MinCostFlowProblem) -> FlowSolution:
    """Solve a balanced min-cost-flow problem exactly.

    Raises :class:`InfeasibleFlowError` when the required flow cannot be
    routed (disconnected demand).
    """
    problem.validate_balance()
    tails, heads, caps, costs = problem.arrays()
    n = problem.n_nodes
    m = len(tails)

    # Internal super source / sink realise the node imbalances as arcs.
    source = n
    sink = n + 1
    n_total = n + 2

    sup_nodes = np.flatnonzero(problem.supply > _EPS)
    dem_nodes = np.flatnonzero(problem.supply < -_EPS)
    total_required = float(problem.supply[sup_nodes].sum())

    all_tails = np.concatenate(
        [tails, np.full(len(sup_nodes), source), dem_nodes]
    ).astype(np.int64)
    all_heads = np.concatenate(
        [heads, sup_nodes, np.full(len(dem_nodes), sink)]
    ).astype(np.int64)
    all_caps = np.concatenate(
        [caps, problem.supply[sup_nodes], -problem.supply[dem_nodes]]
    ).astype(np.float64)
    all_costs = np.concatenate(
        [costs, np.zeros(len(sup_nodes)), np.zeros(len(dem_nodes))]
    ).astype(np.float64)
    m_total = len(all_tails)

    # Residual arcs: arc 2e forward, 2e+1 backward.
    arc_head = np.empty(2 * m_total, dtype=np.int64)
    arc_cost = np.empty(2 * m_total, dtype=np.float64)
    arc_res = np.empty(2 * m_total, dtype=np.float64)
    arc_head[0::2] = all_heads
    arc_head[1::2] = all_tails
    arc_cost[0::2] = all_costs
    arc_cost[1::2] = -all_costs
    arc_res[0::2] = all_caps
    arc_res[1::2] = 0.0

    # CSR adjacency over residual arcs (by tail).
    arc_tail = np.empty(2 * m_total, dtype=np.int64)
    arc_tail[0::2] = all_tails
    arc_tail[1::2] = all_heads
    order = np.argsort(arc_tail, kind="stable")
    adj_arcs = order
    adj_ptr = np.zeros(n_total + 1, dtype=np.int64)
    np.add.at(adj_ptr, arc_tail + 1, 1)
    np.cumsum(adj_ptr, out=adj_ptr)

    potential = np.zeros(n_total, dtype=np.float64)
    if m_total and float(all_costs.min()) < 0.0:
        potential = _bellman_ford_potentials(
            n_total, source, arc_tail, arc_head, arc_cost, arc_res
        )

    flow_sent = 0.0
    iterations = 0
    dist = np.empty(n_total, dtype=np.float64)
    pred_arc = np.empty(n_total, dtype=np.int64)

    while flow_sent < total_required - _EPS * max(1.0, total_required):
        # Dijkstra on reduced costs from the super source.
        dist.fill(np.inf)
        pred_arc.fill(-1)
        dist[source] = 0.0
        heap = IndexedBinaryHeap(n_total)
        heap.push(source, 0.0)
        settled = np.zeros(n_total, dtype=bool)
        while len(heap):
            u, du = heap.pop()
            if settled[u]:
                continue
            settled[u] = True
            if u == sink:
                break
            for idx in range(adj_ptr[u], adj_ptr[u + 1]):
                a = adj_arcs[idx]
                if arc_res[a] <= _EPS:
                    continue
                v = arc_head[a]
                if settled[v]:
                    continue
                reduced = arc_cost[a] + potential[u] - potential[v]
                # Reduced costs are >= 0 up to float dust; clamp the dust.
                if reduced < 0.0:
                    reduced = 0.0
                alt = du + reduced
                if alt < dist[v] - _EPS:
                    dist[v] = alt
                    pred_arc[v] = a
                    heap.push(int(v), alt)

        if not np.isfinite(dist[sink]):
            raise InfeasibleFlowError(
                f"cannot route required flow: {total_required - flow_sent} "
                f"units remain with the sink unreachable"
            )

        # Update potentials. With early termination, settled nodes have exact
        # distances and unsettled/unreached ones are capped at dist[sink],
        # which preserves non-negative reduced costs (standard SSP technique).
        potential += np.minimum(dist, dist[sink])

        # Find bottleneck along the source->sink path.
        bottleneck = np.inf
        v = sink
        while v != source:
            a = pred_arc[v]
            bottleneck = min(bottleneck, arc_res[a])
            v = int(arc_tail[a])
        # Augment.
        v = sink
        while v != source:
            a = pred_arc[v]
            arc_res[a] -= bottleneck
            arc_res[a ^ 1] += bottleneck
            v = int(arc_tail[a])
        flow_sent += bottleneck
        iterations += 1

    # Per-original-arc flow = residual of the backward arc.
    flows = arc_res[1 : 2 * m : 2].copy() if m else np.empty(0)
    cost = float((flows * costs).sum()) if m else 0.0
    return FlowSolution(flows=flows, cost=cost, iterations=iterations)


def _bellman_ford_potentials(
    n_total: int,
    source: int,
    arc_tail: np.ndarray,
    arc_head: np.ndarray,
    arc_cost: np.ndarray,
    arc_res: np.ndarray,
) -> np.ndarray:
    """Initial potentials when some arc costs are negative."""
    dist = np.full(n_total, 0.0)  # all nodes as roots: handles disconnection
    for _ in range(n_total):
        changed = False
        active = arc_res > _EPS
        for a in np.flatnonzero(active):
            u, v = arc_tail[a], arc_head[a]
            alt = dist[u] + arc_cost[a]
            if alt < dist[v] - _EPS:
                dist[v] = alt
                changed = True
        if not changed:
            break
    return dist


def solve_transportation_ssp(problem: TransportationProblem) -> TransportPlan:
    """Solve a (possibly unbalanced) dense transportation problem via SSP."""
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    n, m = balanced.n_suppliers, balanced.n_consumers

    mcf = MinCostFlowProblem(n + m)
    inf_cap = balanced.total_supply + 1.0
    for i in range(n):
        if balanced.supplies[i] > _EPS:
            mcf.set_supply(i, balanced.supplies[i])
    for j in range(m):
        if balanced.demands[j] > _EPS:
            mcf.set_supply(n + j, -balanced.demands[j])
    edge_index: list[tuple[int, int]] = []
    for i in range(n):
        if balanced.supplies[i] <= _EPS:
            continue
        for j in range(m):
            if balanced.demands[j] <= _EPS:
                continue
            mcf.add_edge(i, n + j, inf_cap, balanced.costs[i, j])
            edge_index.append((i, j))

    solution = solve_mcf_ssp(mcf)
    flows = np.zeros((n, m))
    for eid, (i, j) in enumerate(edge_index):
        flows[i, j] = solution.flows[eid]

    # Strip dummy row/column added for balancing.
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    cost = float((flows * problem.costs).sum())
    return TransportPlan(flows=flows, cost=cost)
