"""Problem models for transportation and min-cost flow.

:class:`TransportationProblem` is the dense bipartite form used by the EMD
family (suppliers x consumers with a full cost matrix).
:class:`MinCostFlowProblem` is the sparse general form used by the fast SND
pipeline (hub-expanded bank routing, Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FlowError, ValidationError
from repro.utils.validation import check_finite, check_nonnegative, check_vector

__all__ = ["TransportationProblem", "MinCostFlowProblem"]

#: Mass below this threshold is treated as zero when cleaning inputs.
MASS_EPS = 1e-12


@dataclass(frozen=True)
class TransportationProblem:
    """Optimal transport of ``supplies`` to ``demands`` under dense ``costs``.

    The problem may be *unbalanced* (total supply != total demand); solvers
    then move ``min(total_supply, total_demand)`` units, matching the
    original EMD formulation (Rubner et al., Eq. 1 of the paper):

    .. math::
       \\min \\sum f_{ij} D_{ij}, \\quad
       \\sum f_{ij} = \\min(\\sum P_i, \\sum Q_j), \\quad
       f_{ij} \\ge 0, \\; \\sum_j f_{ij} \\le P_i, \\; \\sum_i f_{ij} \\le Q_j.
    """

    supplies: np.ndarray
    demands: np.ndarray
    costs: np.ndarray

    def __post_init__(self) -> None:
        supplies = check_vector(self.supplies, "supplies")
        demands = check_vector(self.demands, "demands")
        costs = np.asarray(self.costs, dtype=np.float64)
        if costs.shape != (supplies.shape[0], demands.shape[0]):
            raise ValidationError(
                f"costs must have shape ({supplies.shape[0]}, {demands.shape[0]}), "
                f"got {costs.shape}"
            )
        check_nonnegative(supplies, "supplies")
        check_nonnegative(demands, "demands")
        check_nonnegative(costs, "costs")
        check_finite(supplies, "supplies")
        check_finite(demands, "demands")
        check_finite(costs, "costs")
        object.__setattr__(self, "supplies", supplies)
        object.__setattr__(self, "demands", demands)
        object.__setattr__(self, "costs", costs)

    @property
    def n_suppliers(self) -> int:
        return self.supplies.shape[0]

    @property
    def n_consumers(self) -> int:
        return self.demands.shape[0]

    @property
    def total_supply(self) -> float:
        return float(self.supplies.sum())

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())

    @property
    def is_balanced(self) -> bool:
        return abs(self.total_supply - self.total_demand) <= MASS_EPS * max(
            1.0, self.total_supply, self.total_demand
        )

    @property
    def moved_mass(self) -> float:
        """Mass an optimal plan must move: ``min(total_supply, total_demand)``."""
        return min(self.total_supply, self.total_demand)

    def balanced_form(self) -> tuple["TransportationProblem", bool, bool]:
        """Return an equivalent balanced problem.

        A dummy consumer (resp. supplier) with zero cost absorbs the surplus,
        which realises the EMD inequality constraints exactly. Returns
        ``(problem, has_dummy_consumer, has_dummy_supplier)``.
        """
        surplus = self.total_supply - self.total_demand
        if abs(surplus) <= MASS_EPS * max(1.0, self.total_supply, self.total_demand):
            return self, False, False
        if surplus > 0:
            demands = np.append(self.demands, surplus)
            costs = np.hstack([self.costs, np.zeros((self.n_suppliers, 1))])
            return TransportationProblem(self.supplies, demands, costs), True, False
        supplies = np.append(self.supplies, -surplus)
        costs = np.vstack([self.costs, np.zeros((1, self.n_consumers))])
        return TransportationProblem(supplies, self.demands, costs), False, True


class MinCostFlowProblem:
    """Sparse min-cost flow: directed arcs with capacities and costs, and a
    per-node supply vector ``b`` (positive = source, negative = sink).

    Arcs are appended via :meth:`add_edge`; the structure is frozen by the
    first solver call (arrays are built lazily and cached).
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise ValidationError(f"n_nodes must be non-negative, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._tails: list[int] = []
        self._heads: list[int] = []
        self._caps: list[float] = []
        self._costs: list[float] = []
        self.supply = np.zeros(self.n_nodes, dtype=np.float64)
        self._frozen: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int, capacity: float, cost: float) -> int:
        """Append arc ``u -> v``; returns its edge id."""
        if self._frozen is not None:
            raise FlowError("problem already frozen by a solver; build a new one")
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValidationError(f"arc endpoints ({u}, {v}) out of range")
        if capacity < 0:
            raise ValidationError(f"capacity must be non-negative, got {capacity}")
        self._tails.append(int(u))
        self._heads.append(int(v))
        self._caps.append(float(capacity))
        self._costs.append(float(cost))
        return len(self._tails) - 1

    def add_edges(self, tails, heads, capacities, costs) -> int:
        """Append a batch of arcs at once (vectorised ``add_edge``).

        All four arguments are broadcast-compatible 1-D sequences of equal
        length. Returns the edge id of the first appended arc; the batch
        occupies contiguous ids from there. Validation matches
        :meth:`add_edge` but runs once over the whole batch.
        """
        if self._frozen is not None:
            raise FlowError("problem already frozen by a solver; build a new one")
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        capacities = np.asarray(capacities, dtype=np.float64)
        costs = np.asarray(costs, dtype=np.float64)
        if not (tails.shape == heads.shape == capacities.shape == costs.shape):
            raise ValidationError(
                f"edge batch arrays must share a shape, got {tails.shape}, "
                f"{heads.shape}, {capacities.shape}, {costs.shape}"
            )
        first_id = len(self._tails)
        if tails.size == 0:
            return first_id
        lo = min(int(tails.min()), int(heads.min()))
        hi = max(int(tails.max()), int(heads.max()))
        if lo < 0 or hi >= self.n_nodes:
            raise ValidationError(f"arc endpoints out of range [{lo}, {hi}]")
        if float(capacities.min()) < 0:
            raise ValidationError(
                f"capacities must be non-negative, min={capacities.min()}"
            )
        self._tails.extend(tails.tolist())
        self._heads.extend(heads.tolist())
        self._caps.extend(capacities.tolist())
        self._costs.extend(costs.tolist())
        return first_id

    def set_supply(self, node: int, b: float) -> None:
        """Set the imbalance of *node* (positive supplies, negative demands)."""
        if not 0 <= node < self.n_nodes:
            raise ValidationError(f"node {node} out of range")
        self.supply[node] = float(b)

    def add_supply(self, node: int, b: float) -> None:
        """Accumulate imbalance onto *node*."""
        if not 0 <= node < self.n_nodes:
            raise ValidationError(f"node {node} out of range")
        self.supply[node] += float(b)

    @property
    def n_edges(self) -> int:
        return len(self._tails)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Freeze and return ``(tails, heads, capacities, costs)`` arrays."""
        if self._frozen is None:
            self._frozen = (
                np.asarray(self._tails, dtype=np.int64),
                np.asarray(self._heads, dtype=np.int64),
                np.asarray(self._caps, dtype=np.float64),
                np.asarray(self._costs, dtype=np.float64),
            )
        return self._frozen

    def validate_balance(self) -> None:
        """Raise unless supplies sum to (numerically) zero."""
        total = float(self.supply.sum())
        scale = max(1.0, float(np.abs(self.supply).sum()))
        if abs(total) > 1e-9 * scale:
            raise FlowError(f"node supplies must sum to zero, got {total}")


@dataclass
class FlowSolution:
    """Solver output: per-arc flow, total cost, and solver diagnostics."""

    flows: np.ndarray
    cost: float
    iterations: int = 0
    info: dict = field(default_factory=dict)
