"""Dense transportation simplex (MODI / u-v method).

The classic special-purpose solver Rubner et al. used for the original EMD.
Included both as an independent exact solver for cross-validation and as the
"transportation simplex" baseline the paper mentions in §5 (super-cubic in
n, hence unusable at network scale — which is the point of Theorem 4).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import FlowError
from repro.flow.basis import TransportBasis, repair_basis
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem

__all__ = ["solve_transportation_simplex"]

_TOL = 1e-9


def solve_transportation_simplex(
    problem: TransportationProblem,
    *,
    max_iterations: int | None = None,
    return_basis: bool = False,
) -> TransportPlan | tuple[TransportPlan, TransportBasis]:
    """Solve a (possibly unbalanced) transportation problem with MODI.

    The problem is balanced with a zero-cost dummy node first; the initial
    basis comes from the northwest-corner rule; pivoting uses Dantzig's rule
    with a Bland fallback after an iteration budget, which guards against
    degenerate cycling. With ``return_basis=True`` the final spanning-tree
    basis (restricted to non-dummy cells) is returned alongside the plan —
    the warm-start currency of the network-simplex backend
    (:mod:`repro.flow.network_simplex`), with which this solver shares its
    basis repair/validation helpers (:mod:`repro.flow.basis`).
    """
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    supplies = balanced.supplies
    demands = balanced.demands
    costs = balanced.costs
    n, m = balanced.n_suppliers, balanced.n_consumers

    if n == 0 or m == 0 or balanced.total_supply <= _TOL:
        flows = np.zeros((problem.n_suppliers, problem.n_consumers))
        plan = TransportPlan(flows=flows, cost=0.0)
        if return_basis:
            empty = np.empty(0, dtype=np.int64)
            return plan, TransportBasis(rows=empty, cols=empty)
        return plan

    flows, basis = _northwest_corner(supplies, demands)
    if max_iterations is None:
        max_iterations = 50 * (n + m) * max(n, m)

    bland_mode = False
    for iteration in range(max_iterations):
        u, v = _compute_duals(costs, basis, n, m)
        reduced = costs - u[:, None] - v[None, :]
        reduced[tuple(zip(*basis))] = 0.0 if basis else 0.0

        entering = _select_entering(reduced, basis, bland=bland_mode)
        if entering is None:
            break
        cycle = _find_cycle(basis, entering, n, m)
        # Odd positions of the cycle (1st, 3rd, ...) are "minus" cells.
        minus_cells = cycle[1::2]
        theta = min(flows[i, j] for i, j in minus_cells)
        leaving = min(
            (cell for cell in minus_cells if flows[cell] <= theta + _TOL),
            key=lambda c: (flows[c], c),
        )
        for k, (i, j) in enumerate(cycle):
            if k % 2 == 0:
                flows[i, j] += theta
            else:
                flows[i, j] -= theta
        flows[leaving] = 0.0
        basis.remove(leaving)
        basis.add(entering)
        if iteration > max_iterations // 2:
            bland_mode = True
    else:
        raise FlowError("transportation simplex failed to converge")

    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    flows = np.maximum(flows, 0.0)  # clamp float dust from pivoting
    cost = float((flows * problem.costs).sum())
    plan = TransportPlan(flows=flows, cost=cost)
    if return_basis:
        n_orig, m_orig = problem.n_suppliers, problem.n_consumers
        cells = sorted((i, j) for i, j in basis if i < n_orig and j < m_orig)
        rows = np.asarray([i for i, _ in cells], dtype=np.int64)
        cols = np.asarray([j for _, j in cells], dtype=np.int64)
        return plan, TransportBasis(rows=rows, cols=cols)
    return plan


def _northwest_corner(
    supplies: np.ndarray, demands: np.ndarray
) -> tuple[np.ndarray, set[tuple[int, int]]]:
    """Initial basic feasible solution with exactly n + m - 1 basic cells."""
    n, m = len(supplies), len(demands)
    flows = np.zeros((n, m))
    basis: set[tuple[int, int]] = set()
    remaining_supply = supplies.astype(np.float64).copy()
    remaining_demand = demands.astype(np.float64).copy()
    i = j = 0
    while i < n and j < m:
        moved = min(remaining_supply[i], remaining_demand[j])
        flows[i, j] = moved
        basis.add((i, j))
        remaining_supply[i] -= moved
        remaining_demand[j] -= moved
        # Advance along the dimension that was exhausted; when both are
        # exhausted simultaneously, advance only one (keeps the basis a tree
        # with a degenerate zero cell).
        if remaining_supply[i] <= _TOL and i < n - 1:
            i += 1
        elif remaining_demand[j] <= _TOL and j < m - 1:
            j += 1
        elif remaining_supply[i] <= _TOL and remaining_demand[j] <= _TOL:
            break
        elif remaining_supply[i] <= _TOL:
            i += 1
        else:
            j += 1
    # Pad degenerate bases up to the spanning-tree size (shared helper with
    # the network-simplex backend).
    repair_basis(basis, n, m)
    return flows, basis


def _compute_duals(
    costs: np.ndarray, basis: set[tuple[int, int]], n: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``u_i + v_j = c_ij`` over the basis tree (u_0 anchored at 0)."""
    u = np.full(n, np.nan)
    v = np.full(m, np.nan)
    by_supplier: list[list[int]] = [[] for _ in range(n)]
    by_consumer: list[list[int]] = [[] for _ in range(m)]
    for (i, j) in basis:
        by_supplier[i].append(j)
        by_consumer[j].append(i)

    u[0] = 0.0
    queue: deque[tuple[str, int]] = deque([("s", 0)])
    while queue:
        kind, idx = queue.popleft()
        if kind == "s":
            for j in by_supplier[idx]:
                if np.isnan(v[j]):
                    v[j] = costs[idx, j] - u[idx]
                    queue.append(("c", j))
        else:
            for i in by_consumer[idx]:
                if np.isnan(u[i]):
                    u[i] = costs[i, idx] - v[idx]
                    queue.append(("s", i))
    # A valid basis tree reaches every node; guard against corruption.
    if np.isnan(u).any() or np.isnan(v).any():
        raise FlowError("basis does not span all suppliers/consumers")
    return u, v


def _select_entering(
    reduced: np.ndarray, basis: set[tuple[int, int]], *, bland: bool
) -> tuple[int, int] | None:
    """Most-negative (Dantzig) or first-negative (Bland) non-basic cell."""
    if bland:
        rows, cols = np.nonzero(reduced < -_TOL)
        for i, j in zip(rows, cols):
            if (int(i), int(j)) not in basis:
                return int(i), int(j)
        return None
    flat = int(np.argmin(reduced))
    i, j = divmod(flat, reduced.shape[1])
    if reduced[i, j] >= -_TOL:
        return None
    return i, j


def _find_cycle(
    basis: set[tuple[int, int]], entering: tuple[int, int], n: int, m: int
) -> list[tuple[int, int]]:
    """Unique alternating cycle created by adding *entering* to the basis.

    Returns the cycle as a cell list starting with *entering*; even positions
    receive +theta, odd positions -theta.
    """
    i0, j0 = entering
    by_supplier: list[list[int]] = [[] for _ in range(n)]
    by_consumer: list[list[int]] = [[] for _ in range(m)]
    for (i, j) in basis:
        by_supplier[i].append(j)
        by_consumer[j].append(i)

    # BFS from consumer j0 back to supplier i0 over basic cells, alternating
    # consumer -> supplier -> consumer ... steps.
    parent: dict[tuple[str, int], tuple[str, int] | None] = {("c", j0): None}
    queue: deque[tuple[str, int]] = deque([("c", j0)])
    found = False
    while queue and not found:
        kind, idx = queue.popleft()
        if kind == "c":
            for i in by_consumer[idx]:
                node = ("s", i)
                if node not in parent:
                    parent[node] = (kind, idx)
                    if i == i0:
                        found = True
                        break
                    queue.append(node)
        else:
            for j in by_supplier[idx]:
                node = ("c", j)
                if node not in parent:
                    parent[node] = (kind, idx)
                    queue.append(node)
    if not found:
        raise FlowError("entering cell creates no cycle; basis is not a tree")

    # Reconstruct node path supplier i0 -> ... -> consumer j0, then pair up
    # consecutive nodes into cells, prepending the entering cell.
    path_nodes: list[tuple[str, int]] = []
    node: tuple[str, int] | None = ("s", i0)
    while node is not None:
        path_nodes.append(node)
        node = parent[node]
    cycle = [entering]
    for a, b in zip(path_nodes, path_nodes[1:]):
        if a[0] == "s":
            cycle.append((a[1], b[1]))
        else:
            cycle.append((b[1], a[1]))
    return cycle
