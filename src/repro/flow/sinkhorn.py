"""Entropic-regularised optimal transport (Sinkhorn–Knopp).

An *approximate* transportation solver included for completeness: §7 cites
the line of work on EMD approximations (Tang et al., Li et al., McGregor &
Stubbs) that the paper rejects for network-state comparison because they
simplify the ground distance. Sinkhorn keeps the full ground distance and
instead smooths the objective; as the regularisation ε → 0 its cost
approaches the exact optimum from above. Useful as a fast upper bound, as
an independent sanity check on the exact solvers, and — via
:mod:`repro.flow.sinkhorn_hybrid` — as a *screening* pass that identifies
the sparse support on which an exact solver recovers near-optimal cost.

The returned plan always satisfies the marginals **exactly** (to float
precision): after the iterations stop — at *tolerance* or at the
*max_iter* budget — the transport kernel is projected back onto the
feasible polytope (Altschuler et al.'s rounding: scale rows down, scale
columns down, close the residual with a rank-1 correction). Degenerate
instances (single supplier/consumer, all-equal or all-zero costs,
zero-mass bins surviving the balancing step) therefore return feasible
plans whose cost is a genuine upper bound on the exact optimum, not just
an approximately-feasible kernel.

Balanced problems only (pre-balance with
:meth:`TransportationProblem.balanced_form`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem

__all__ = ["round_to_marginals", "sinkhorn_iterate", "solve_transportation_sinkhorn"]


def _logsumexp(m: np.ndarray, axis: int) -> np.ndarray:
    peak = m.max(axis=axis, keepdims=True)
    return (peak + np.log(np.exp(m - peak).sum(axis=axis, keepdims=True))).squeeze(axis)


def sinkhorn_iterate(
    log_a: np.ndarray,
    log_b: np.ndarray,
    log_k: np.ndarray,
    *,
    max_iter: int,
    tolerance: float,
    log_u: np.ndarray | None = None,
    log_v: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Log-domain Sinkhorn iterations on a prepared kernel.

    *log_a*, *log_b* are the log-marginals (masses normalised to sum 1,
    strictly positive), *log_k* is ``-D / reg``. *log_u* / *log_v* warm
    start the scalings — the lever behind the hybrid solver's
    epsilon-scaling schedule, where the potentials of one regularisation
    stage seed the next. Returns ``(log_u, log_v, iterations)``; the
    iteration loop stops once the row-marginal violation of the implied
    plan drops below *tolerance* (checked every 10 rounds and on the last
    round, so a tight ``max_iter`` budget cannot skip the final check).
    """
    a_s = np.exp(log_a)
    if log_u is None:
        log_u = np.zeros(log_a.shape[0])
    if log_v is None:
        log_v = np.zeros(log_b.shape[0])
    iterations = 0
    for iteration in range(max_iter):
        log_u = log_a - _logsumexp(log_k + log_v[None, :], axis=1)
        log_v = log_b - _logsumexp(log_k + log_u[:, None], axis=0)
        iterations = iteration + 1
        if iteration % 10 == 0 or iteration == max_iter - 1:
            plan_rows = np.exp(log_u[:, None] + log_k + log_v[None, :]).sum(axis=1)
            if np.abs(plan_rows - a_s).max() < tolerance:
                break
    return log_u, log_v, iterations


def round_to_marginals(
    plan: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Project a non-negative *plan* onto the exact marginals ``(a, b)``.

    Altschuler–Niles-Weed–Rigollet rounding (NeurIPS 2017, Alg. 2): scale
    each row down to its supply, each column down to its demand, then close
    the remaining (now non-negative) marginal residuals with the rank-1
    plan ``err_a ⊗ err_b / Σ err_a``. The result is non-negative and
    satisfies both marginals exactly (to float precision), so its cost is a
    true upper bound on the exact optimum — the property the regression
    tests for degenerate instances pin down.
    """
    plan = np.asarray(plan, dtype=np.float64)
    row = plan.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale_r = np.where(row > 0, np.minimum(1.0, a / np.where(row > 0, row, 1.0)), 0.0)
    plan = plan * scale_r[:, None]
    col = plan.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale_c = np.where(col > 0, np.minimum(1.0, b / np.where(col > 0, col, 1.0)), 0.0)
    plan = plan * scale_c[None, :]
    err_a = np.maximum(a - plan.sum(axis=1), 0.0)
    err_b = np.maximum(b - plan.sum(axis=0), 0.0)
    missing = err_a.sum()
    if missing > 0 and err_b.sum() > 0:
        plan = plan + np.outer(err_a, err_b) / err_b.sum()
    return plan


def solve_transportation_sinkhorn(
    problem: TransportationProblem,
    *,
    epsilon: float = 0.05,
    max_iter: int = 5_000,
    tolerance: float = 1e-9,
) -> TransportPlan:
    """Approximate solve via Sinkhorn iterations in log-domain.

    Parameters
    ----------
    epsilon:
        Entropic regularisation strength *relative to the maximum cost*
        (scale-free): the kernel is ``exp(-D / (epsilon * max(D)))``.
        Smaller = closer to exact but slower to converge.
    max_iter, tolerance:
        Iteration budget and marginal-violation stopping threshold.

    Notes
    -----
    The returned plan satisfies the marginals exactly (the converged
    kernel is rounded onto the feasible polytope, see
    :func:`round_to_marginals`), so its cost is always an upper bound on
    the exact optimum (typically within a few percent at ``epsilon=0.05``).
    *tolerance* controls how early the iterations may stop, not the
    feasibility of the result.
    """
    if epsilon <= 0:
        raise FlowError(f"epsilon must be positive, got {epsilon}")
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    a = balanced.supplies
    b = balanced.demands
    costs = balanced.costs

    total = float(a.sum())
    if total <= 0:
        return TransportPlan(flows=np.zeros(problem.costs.shape), cost=0.0)

    # Work on the support only (Lemma 1): empty rows/cols break Sinkhorn.
    rows = np.flatnonzero(a > 0)
    cols = np.flatnonzero(b > 0)
    a_s = a[rows] / total
    b_s = b[cols] / total
    d_s = costs[np.ix_(rows, cols)]

    scale = float(d_s.max()) if d_s.size and d_s.max() > 0 else 1.0
    reg = epsilon * scale
    log_k = -d_s / reg
    log_u, log_v, _ = sinkhorn_iterate(
        np.log(a_s), np.log(b_s), log_k, max_iter=max_iter, tolerance=tolerance
    )

    plan_s = np.exp(log_u[:, None] + log_k + log_v[None, :])
    plan_s = round_to_marginals(plan_s, a_s, b_s) * total
    flows = np.zeros_like(balanced.costs)
    flows[np.ix_(rows, cols)] = plan_s
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    cost = float((flows * problem.costs).sum())
    return TransportPlan(flows=flows, cost=cost)
