"""Entropic-regularised optimal transport (Sinkhorn–Knopp).

An *approximate* transportation solver included for completeness: §7 cites
the line of work on EMD approximations (Tang et al., Li et al., McGregor &
Stubbs) that the paper rejects for network-state comparison because they
simplify the ground distance. Sinkhorn keeps the full ground distance and
instead smooths the objective; as the regularisation ε → 0 its cost
approaches the exact optimum from above. Useful as a fast upper bound and
as an independent sanity check on the exact solvers.

Balanced problems only (pre-balance with
:meth:`TransportationProblem.balanced_form`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem

__all__ = ["solve_transportation_sinkhorn"]


def solve_transportation_sinkhorn(
    problem: TransportationProblem,
    *,
    epsilon: float = 0.05,
    max_iter: int = 5_000,
    tolerance: float = 1e-9,
) -> TransportPlan:
    """Approximate solve via Sinkhorn iterations in log-domain.

    Parameters
    ----------
    epsilon:
        Entropic regularisation strength *relative to the maximum cost*
        (scale-free): the kernel is ``exp(-D / (epsilon * max(D)))``.
        Smaller = closer to exact but slower to converge.
    max_iter, tolerance:
        Iteration budget and marginal-violation stopping threshold.

    Notes
    -----
    The returned plan satisfies the marginals only up to *tolerance*; its
    cost is an upper bound on the exact optimum (typically within a few
    percent at ``epsilon=0.05``).
    """
    if epsilon <= 0:
        raise FlowError(f"epsilon must be positive, got {epsilon}")
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    a = balanced.supplies
    b = balanced.demands
    costs = balanced.costs

    total = float(a.sum())
    if total <= 0:
        return TransportPlan(flows=np.zeros(problem.costs.shape), cost=0.0)

    # Work on the support only (Lemma 1): empty rows/cols break Sinkhorn.
    rows = np.flatnonzero(a > 0)
    cols = np.flatnonzero(b > 0)
    a_s = a[rows] / total
    b_s = b[cols] / total
    d_s = costs[np.ix_(rows, cols)]

    scale = float(d_s.max()) if d_s.size and d_s.max() > 0 else 1.0
    reg = epsilon * scale
    log_k = -d_s / reg
    log_u = np.zeros(rows.size)
    log_v = np.zeros(cols.size)
    log_a = np.log(a_s)
    log_b = np.log(b_s)

    def logsumexp(m, axis):
        peak = m.max(axis=axis, keepdims=True)
        return (peak + np.log(np.exp(m - peak).sum(axis=axis, keepdims=True))).squeeze(axis)

    for iteration in range(max_iter):
        log_u = log_a - logsumexp(log_k + log_v[None, :], axis=1)
        log_v = log_b - logsumexp(log_k + log_u[:, None], axis=0)
        if iteration % 10 == 0:
            plan_rows = np.exp(log_u[:, None] + log_k + log_v[None, :]).sum(axis=1)
            if np.abs(plan_rows - a_s).max() < tolerance:
                break

    plan_s = np.exp(log_u[:, None] + log_k + log_v[None, :]) * total
    flows = np.zeros_like(balanced.costs)
    flows[np.ix_(rows, cols)] = plan_s
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    cost = float((flows * problem.costs).sum())
    return TransportPlan(flows=flows, cost=cost)
