"""Goldberg–Tarjan cost-scaling push-relabel min-cost flow.

This fills the role CS2 (Goldberg's C implementation) plays in the paper's
experiments (§6.5). Costs must be integers (Assumption 2 guarantees this for
SND instances); capacities and supplies must be integers too — callers with
real-valued bank capacities rationalise them first (see
:func:`repro.snd.fast`'s mass scaling) or use the SSP solver.

Like the paper's own released implementation, we use plain FIFO push-relabel
within each refine phase and do *not* implement the two-edge push rule of
Ahuja et al. (the paper notes the same deviation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleFlowError, ValidationError
from repro.flow.problem import FlowSolution, MinCostFlowProblem

__all__ = ["solve_mcf_cost_scaling"]

_SCALE_FACTOR = 4  # alpha: epsilon shrink per refine phase


def solve_mcf_cost_scaling(problem: MinCostFlowProblem) -> FlowSolution:
    """Solve a balanced integer min-cost-flow problem exactly.

    Raises
    ------
    ValidationError
        If any cost, capacity, or supply is not integral.
    InfeasibleFlowError
        If the supplies cannot be routed.
    """
    problem.validate_balance()
    tails, heads, caps, costs = problem.arrays()
    supply = problem.supply

    if not np.allclose(costs, np.round(costs)):
        raise ValidationError("cost-scaling requires integer arc costs")
    if not np.allclose(caps, np.round(caps)) or not np.allclose(
        supply, np.round(supply)
    ):
        raise ValidationError("cost-scaling requires integer capacities/supplies")

    n = problem.n_nodes
    m = len(tails)
    if m == 0:
        if np.any(np.abs(supply) > 0.5):
            raise InfeasibleFlowError("non-zero supplies with no arcs")
        return FlowSolution(flows=np.empty(0), cost=0.0)

    # Scale costs by (n + 1): epsilon < 1 then certifies optimality.
    cost_mult = n + 1
    arc_head = np.empty(2 * m, dtype=np.int64)
    arc_cost = np.empty(2 * m, dtype=np.int64)
    arc_res = np.empty(2 * m, dtype=np.int64)
    arc_tail = np.empty(2 * m, dtype=np.int64)
    arc_head[0::2] = heads
    arc_head[1::2] = tails
    arc_tail[0::2] = tails
    arc_tail[1::2] = heads
    arc_cost[0::2] = np.round(costs).astype(np.int64) * cost_mult
    arc_cost[1::2] = -arc_cost[0::2]
    arc_res[0::2] = np.round(caps).astype(np.int64)
    arc_res[1::2] = 0

    order = np.argsort(arc_tail, kind="stable")
    adj_arcs = order
    adj_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(adj_ptr, arc_tail + 1, 1)
    np.cumsum(adj_ptr, out=adj_ptr)

    potential = np.zeros(n, dtype=np.int64)
    excess = np.round(supply).astype(np.int64).copy()

    # A node's excess can only be drained if it has outgoing residual arcs;
    # a quick feasibility sanity check (full infeasibility surfaces as a
    # potential bound violation inside refine).
    max_abs_cost = int(np.abs(arc_cost).max()) if m else 0
    epsilon = max(1, max_abs_cost)
    # Lower bound on potentials; crossing it means demand is unreachable.
    potential_floor = -(max_abs_cost + epsilon) * (n + 1) * (n + 1)

    from collections import deque

    total_pushes = 0
    while epsilon >= 1:
        # --- refine(epsilon) ---
        # Saturate all arcs with negative reduced cost.
        reduced = arc_cost + potential[arc_tail] - potential[arc_head]
        negative = np.flatnonzero((reduced < 0) & (arc_res > 0))
        for a in negative:
            delta = arc_res[a]
            u, v = arc_tail[a], arc_head[a]
            arc_res[a] = 0
            arc_res[a ^ 1] += delta
            excess[u] -= delta
            excess[v] += delta

        active = deque(int(v) for v in np.flatnonzero(excess > 0))
        in_queue = np.zeros(n, dtype=bool)
        for v in active:
            in_queue[v] = True

        while active:
            u = active.popleft()
            in_queue[u] = False
            while excess[u] > 0:
                pushed = False
                best_relabel = None
                for idx in range(adj_ptr[u], adj_ptr[u + 1]):
                    a = adj_arcs[idx]
                    if arc_res[a] <= 0:
                        continue
                    v = arc_head[a]
                    rc = arc_cost[a] + potential[u] - potential[v]
                    if rc < 0:  # admissible
                        delta = min(excess[u], arc_res[a])
                        arc_res[a] -= delta
                        arc_res[a ^ 1] += delta
                        excess[u] -= delta
                        excess[v] += delta
                        total_pushes += 1
                        if excess[v] > 0 and not in_queue[v]:
                            active.append(int(v))
                            in_queue[v] = True
                        pushed = True
                        if excess[u] == 0:
                            break
                    else:
                        if best_relabel is None or rc < best_relabel:
                            best_relabel = rc
                if excess[u] == 0:
                    break
                if not pushed:
                    if best_relabel is None:
                        raise InfeasibleFlowError(
                            f"node {u} holds excess {excess[u]} with no residual arcs"
                        )
                    # Relabel: make the cheapest outgoing arc admissible.
                    potential[u] -= best_relabel + epsilon
                    if potential[u] < potential_floor:
                        raise InfeasibleFlowError(
                            "potentials diverged; instance is infeasible"
                        )
        if epsilon == 1:
            break
        epsilon = max(1, epsilon // _SCALE_FACTOR)

    flows = arc_res[1::2].astype(np.float64)
    cost = float((flows * costs).sum())
    return FlowSolution(flows=flows, cost=cost, iterations=total_pushes)
