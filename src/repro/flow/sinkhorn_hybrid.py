"""Sinkhorn-screened sparse exact transportation solves (``"sinkhorn-hybrid"``).

The large-instance branch of the solver stack. Every exact solver in the
library works on the *dense* reduced cost matrix, so instance size
(``n_suppliers · n_consumers`` cells) is the binding constraint on graph
scale. The paper's §7 rejects EMD approximations that simplify the ground
distance; entropic screening keeps the full ground distance and instead
uses a cheap regularised solve to decide *which cells can matter*:

1. **Screen** — log-domain Sinkhorn (:func:`repro.flow.sinkhorn.sinkhorn_iterate`)
   with *epsilon-scaling*: a geometric schedule of decreasing ε values,
   each stage warm-started from the previous stage's potentials (scaled
   into the new regularisation), so the final tight-ε stage converges in
   a handful of iterations.
2. **Support** — the entropic transport kernel concentrates on the cells
   an optimal plan uses; keep the top-``k`` cells per row and per column
   (union).
3. **Repair** — the screened support is made *guaranteed feasible* by
   union with the northwest-corner chain (a classic basic feasible
   solution touching at most ``n + m - 1`` cells), so the restricted
   problem always admits a plan regardless of how aggressively the screen
   pruned.
4. **Exact solve on the support** — the restricted problem is solved
   *exactly* with the library's own backends: the sparse SSP min-cost-flow
   kernel over support arcs only, or the HiGHS LP on a sparse
   column-restricted constraint matrix (``exact_backend="auto"`` picks LP
   when scipy is importable). Arc count drops from ``n·m`` to
   ``O(k·(n+m))``.

The result is a **feasible plan whose cost upper-bounds the exact
optimum** (it is the exact optimum over a restricted arc set). A certified
*relative error bound* comes for free: the screening potentials are
repaired into a feasible dual (``g_j = min_i (D_ij - f_i)``), whose
objective lower-bounds the optimum, so

.. math::
   \\frac{C_{hybrid} - OPT}{OPT} \\le
   \\frac{C_{hybrid} - LB_{dual}}{LB_{dual}} =: \\texttt{screen\\_error\\_bound}

is reported per solve (and aggregated by :data:`HYBRID_METRICS`, which
:meth:`repro.snd.engine.SNDEngine.stats` embeds). The tolerance-tiered
property harness in ``tests/flow/test_solver_equivalence.py`` asserts the
certificate, plan feasibility, the upper-bound property, and that the
error tiers are monotone in ε and ``k``.

Instances at or below :data:`SMALL_EXACT_CELLS` cells skip the screen and
solve exactly — screening has nothing to prune there, which also makes the
hybrid safe as the ``method="auto"`` large-instance branch: selection only
routes here above the measured threshold
(:data:`repro.flow.AUTO_HYBRID_CELLS`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import FlowError, ValidationError
from repro.flow.basis import TransportBasis
from repro.flow.network_simplex import solve_support_network_simplex
from repro.flow.plan import TransportPlan
from repro.flow.problem import MinCostFlowProblem, TransportationProblem
from repro.flow.sinkhorn import sinkhorn_iterate
from repro.flow.ssp import solve_mcf_ssp

__all__ = [
    "HYBRID_METRICS",
    "HybridMetrics",
    "HybridSolveInfo",
    "SMALL_EXACT_CELLS",
    "epsilon_schedule",
    "last_hybrid_info",
    "resolve_support_k",
    "screen_support",
    "solve_transportation_sinkhorn_hybrid",
]

_EPS = 1e-12

#: Instances at or below this many dense cells are solved exactly without
#: screening: the screen cannot win there (measured — see
#: benchmarks/README.md), and delegating keeps the hybrid bit-exact on the
#: small reduced problems that dominate low-``n∆`` SND sweeps.
SMALL_EXACT_CELLS = 4096

_EXACT_BACKENDS = ("auto", "ssp", "lp", "network-simplex")


# --------------------------------------------------------------------- #
# Diagnostics
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class HybridSolveInfo:
    """Per-solve diagnostics of the hybrid pipeline."""

    n_cells: int = 0
    support_cells: int = 0
    support_density: float = 1.0
    screen_error_bound: float = 0.0
    epsilon: float = 0.0
    support_k: int = 0
    sinkhorn_iterations: int = 0
    exact_backend: str = ""
    cost: float = 0.0
    lower_bound: float = 0.0
    screened: bool = False


class HybridMetrics:
    """Thread-safe running aggregate of hybrid solves.

    Embedded in :meth:`repro.snd.engine.SNDEngine.stats` as the
    ``"hybrid"`` block. Counters are process-local: the serial and thread
    executors are fully covered; process-pool workers aggregate inside the
    worker (their parents see only distance values).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.solves = 0
            self.screened_solves = 0
            self.total_cells = 0
            self.support_cells = 0
            self.max_screen_error_bound = 0.0
            self.last_support_density = 1.0
            self.last_screen_error_bound = 0.0

    def record(self, info: HybridSolveInfo) -> None:
        with self._lock:
            self.solves += 1
            if info.screened:
                self.screened_solves += 1
                self.total_cells += info.n_cells
                self.support_cells += info.support_cells
                self.last_support_density = info.support_density
                self.last_screen_error_bound = info.screen_error_bound
                if np.isfinite(info.screen_error_bound):
                    self.max_screen_error_bound = max(
                        self.max_screen_error_bound, info.screen_error_bound
                    )

    def snapshot(self) -> dict:
        with self._lock:
            density = (
                self.support_cells / self.total_cells if self.total_cells else 1.0
            )
            return {
                "solves": self.solves,
                "screened_solves": self.screened_solves,
                "support_density": density,
                "last_support_density": self.last_support_density,
                "last_screen_error_bound": self.last_screen_error_bound,
                "max_screen_error_bound": self.max_screen_error_bound,
            }


#: Module-level aggregate every hybrid solve records into.
HYBRID_METRICS = HybridMetrics()

_LAST = threading.local()


def last_hybrid_info() -> HybridSolveInfo | None:
    """The :class:`HybridSolveInfo` of this thread's most recent hybrid
    solve (``None`` before the first). The SND fast pipeline reads it to
    fill ``FastTermStats.support_density`` / ``screen_error_bound``."""
    return getattr(_LAST, "info", None)


def _record(info: HybridSolveInfo) -> None:
    _LAST.info = info
    HYBRID_METRICS.record(info)


# --------------------------------------------------------------------- #
# Screening building blocks
# --------------------------------------------------------------------- #


def epsilon_schedule(epsilon: float, *, start: float = 1.0, factor: float = 0.25) -> list[float]:
    """Geometric ε-scaling schedule from *start* down to exactly *epsilon*.

    Each stage's potentials warm-start the next, so the expensive tight-ε
    stage starts near its fixed point (the standard epsilon-scaling
    speedup for Sinkhorn).
    """
    if epsilon <= 0:
        raise FlowError(f"epsilon must be positive, got {epsilon}")
    if not 0 < factor < 1:
        raise ValidationError(f"factor must be in (0, 1), got {factor}")
    schedule: list[float] = []
    e = float(start)
    while e > epsilon * (1.0 + 1e-12):
        schedule.append(e)
        e *= factor
    schedule.append(float(epsilon))
    return schedule


def resolve_support_k(support_k, n: int, m: int) -> int:
    """Normalise the ``support_k`` knob to a per-row/column keep count.

    ``"auto"`` scales logarithmically with the instance — enough to cover
    the optimal basis plus screening noise while keeping support density
    ``O(k/n)``; explicit values must be positive integers.
    """
    if isinstance(support_k, str):
        if support_k == "auto":
            return max(5, int(np.ceil(2.0 * np.log2(max(n, m) + 1))))
        raise ValidationError(
            f"support_k must be a positive integer or 'auto', got {support_k!r}"
        )
    if isinstance(support_k, bool) or not isinstance(support_k, (int, np.integer)):
        raise ValidationError(
            f"support_k must be a positive integer or 'auto', got {support_k!r}"
        )
    if support_k < 1:
        raise ValidationError(f"support_k must be >= 1, got {support_k}")
    return int(support_k)


def screen_support(log_plan: np.ndarray, k: int) -> np.ndarray:
    """Boolean support mask: top-*k* cells per row ∪ top-*k* per column.

    *log_plan* is the log of the entropic transport kernel
    (``log_u + log_K + log_v``); ranking is monotone in the plan itself.
    """
    n, m = log_plan.shape
    mask = np.zeros((n, m), dtype=bool)
    if k >= m:
        mask[:] = True
    else:
        cols = np.argpartition(log_plan, m - k, axis=1)[:, m - k :]
        np.put_along_axis(mask, cols, True, axis=1)
    if k >= n:
        mask[:] = True
    else:
        rows = np.argpartition(log_plan, n - k, axis=0)[n - k :, :]
        np.put_along_axis(mask, rows, True, axis=0)
    return mask


def _northwest_corner_cells(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cells touched by the northwest-corner rule on marginals ``(a, b)``.

    The NW chain is a basic feasible solution of the balanced problem that
    uses at most ``n + m - 1`` cells; union-ing it into any support mask
    makes the restricted problem feasible *by construction* (the
    connectivity-repair step of the screen).
    """
    n, m = a.shape[0], b.shape[0]
    rows: list[int] = []
    cols: list[int] = []
    i = j = 0
    rem_a = float(a[0]) if n else 0.0
    rem_b = float(b[0]) if m else 0.0
    while i < n and j < m:
        rows.append(i)
        cols.append(j)
        moved = min(rem_a, rem_b)
        rem_a -= moved
        rem_b -= moved
        if rem_a <= _EPS and i + 1 < n:
            i += 1
            rem_a = float(a[i])
        elif rem_b <= _EPS and j + 1 < m:
            j += 1
            rem_b = float(b[j])
        elif rem_a <= _EPS and rem_b <= _EPS:
            break
        elif rem_a <= _EPS or rem_b <= _EPS:
            # One side exhausted its bins; the other's residual is zero
            # too on balanced inputs (up to float), so stop.
            break
    return np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)


def _dual_lower_bound(
    d: np.ndarray, a: np.ndarray, b: np.ndarray, f: np.ndarray
) -> float:
    """A feasible-dual objective: a certified lower bound on the optimum.

    Given any row potentials *f*, the column potentials
    ``g_j = min_i (D_ij - f_i)`` make ``(f, g)`` feasible for the dual of
    the balanced problem (``f_i + g_j <= D_ij`` everywhere), so
    ``a·f + b·g <= OPT``. Two further coordinate-ascent sweeps (re-tighten
    ``f`` against ``g``, then ``g`` against ``f``) only increase the
    objective while keeping feasibility — they strip most of the entropic
    smearing off the screening potentials. Tight as ε → 0.
    """
    g = (d - f[:, None]).min(axis=0)
    f = (d - g[None, :]).min(axis=1)
    g = (d - f[:, None]).min(axis=0)
    return float(a @ f + b @ g)


# --------------------------------------------------------------------- #
# Exact solves restricted to a sparse support
# --------------------------------------------------------------------- #


def _solve_support_ssp(
    a: np.ndarray, b: np.ndarray, d: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Exact restricted solve as a sparse bipartite min-cost flow."""
    n, m = a.shape[0], b.shape[0]
    mcf = MinCostFlowProblem(n + m)
    mcf.supply[:n] = a
    mcf.supply[n:] = -b
    cap = float(a.sum()) + 1.0
    mcf.add_edges(rows, n + cols, np.full(rows.size, cap), d[rows, cols])
    solution = solve_mcf_ssp(mcf)
    plan = np.zeros((n, m))
    np.add.at(plan, (rows, cols), solution.flows)
    return plan


def _solve_support_lp(
    a: np.ndarray, b: np.ndarray, d: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Exact restricted solve as a column-sparse HiGHS LP.

    Variables are the support cells only; equality marginals (the
    balanced form), so the constraint matrix has exactly two non-zeros per
    variable.
    """
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix

    n, m = a.shape[0], b.shape[0]
    nnz = rows.size
    var = np.arange(nnz)
    a_eq = csr_matrix(
        (
            np.ones(2 * nnz),
            (np.concatenate([rows, n + cols]), np.concatenate([var, var])),
        ),
        shape=(n + m, nnz),
    )
    b_eq = np.concatenate([a, b])
    result = linprog(
        d[rows, cols], A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs"
    )
    if not result.success:
        raise FlowError(f"restricted LP solve failed: {result.message}")
    plan = np.zeros((n, m))
    np.add.at(plan, (rows, cols), np.maximum(result.x, 0.0))
    return plan


def _solve_support_ns(
    a: np.ndarray,
    b: np.ndarray,
    d: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    warm_cells: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Exact restricted solve on the warm-startable network simplex.

    The screened support *is* a sparse min-cost flow, which makes the
    hybrid tier the first consumer of the basis-carrying backend: the
    warm cells (intersected with the support — the restricted problem is
    identical to a cold solve, only the starting tree differs) seed the
    spanning tree, and the optimal basis cells come back for the caller's
    basis store.
    """
    return solve_support_network_simplex(
        a, b, d, rows, cols, warm_cells=warm_cells, return_cells=True
    )


def _resolve_backend(exact_backend: str) -> str:
    if exact_backend not in _EXACT_BACKENDS:
        raise ValidationError(
            f"exact_backend must be one of {_EXACT_BACKENDS}, got {exact_backend!r}"
        )
    if exact_backend != "auto":
        return exact_backend
    try:
        import scipy.optimize  # noqa: F401

        return "lp"
    except ImportError:  # pragma: no cover - scipy-less hosts
        return "ssp"


# --------------------------------------------------------------------- #
# The solver
# --------------------------------------------------------------------- #


def solve_transportation_sinkhorn_hybrid(
    problem: TransportationProblem,
    *,
    epsilon: float = 0.02,
    support_k="auto",
    exact_backend: str = "auto",
    max_iter: int = 1_000,
    tolerance: float = 1e-5,
    scaling_factor: float = 0.25,
    warm_basis: TransportBasis | None = None,
    return_basis: bool = False,
) -> TransportPlan | tuple[TransportPlan, TransportBasis]:
    """Sinkhorn-screened sparse exact solve.

    Parameters
    ----------
    epsilon:
        Final entropic regularisation of the screening pass, relative to
        the maximum cost (scale-free, as in
        :func:`~repro.flow.sinkhorn.solve_transportation_sinkhorn`).
        Smaller ε concentrates the kernel harder on the optimal support →
        tighter error at slightly more screening work.
    support_k:
        Cells kept per row and per column (union), or ``"auto"``
        (logarithmic in the instance size). Larger ``k`` → denser support
        → tighter error, slower exact solve.
    exact_backend:
        Exact solver for the restricted problem: ``"ssp"`` (sparse
        min-cost flow over support arcs), ``"lp"`` (sparse HiGHS),
        ``"network-simplex"`` (warm-startable sparse simplex — the only
        backend that consumes *warm_basis* / produces *return_basis*), or
        ``"auto"`` (LP when scipy is importable).
    max_iter, tolerance:
        Screening iteration budget (split across the ε-scaling stages)
        and marginal-violation stop threshold. Screening accuracy only
        affects *which* cells are kept — the restricted solve is exact
        regardless.
    scaling_factor:
        Geometric decay of the ε-scaling schedule (see
        :func:`epsilon_schedule`).

    Returns a feasible :class:`~repro.flow.plan.TransportPlan` whose cost
    is the exact optimum of the support-restricted problem — an upper
    bound on the true optimum, certified by ``screen_error_bound`` (see
    :func:`last_hybrid_info` / :data:`HYBRID_METRICS`).

    *warm_basis* (original cell space) seeds the restricted solve's
    spanning tree when the backend is ``"network-simplex"``; warm cells
    are intersected with the screened support, so the solved problem —
    and hence the plan and bound — is identical to a cold solve. With
    ``return_basis=True`` the optimal basis comes back for caching.
    """
    if epsilon <= 0:
        raise FlowError(f"epsilon must be positive, got {epsilon}")
    backend = _resolve_backend(exact_backend)
    if return_basis and backend != "network-simplex":
        raise ValidationError(
            "return_basis requires exact_backend='network-simplex', "
            f"got {exact_backend!r}"
        )

    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    a_full = balanced.supplies
    b_full = balanced.demands
    costs = balanced.costs

    total = float(a_full.sum())
    if total <= 0:
        _record(HybridSolveInfo(exact_backend=backend))
        plan = TransportPlan(flows=np.zeros(problem.costs.shape), cost=0.0)
        if return_basis:
            empty = np.empty(0, dtype=np.int64)
            return plan, TransportBasis(rows=empty, cols=empty)
        return plan

    # Lemma 1: restrict to positive-mass bins (empty bins break Sinkhorn
    # and cannot carry flow anyway).
    rows_ids = np.flatnonzero(a_full > 0)
    cols_ids = np.flatnonzero(b_full > 0)
    a_s = a_full[rows_ids] / total
    b_s = b_full[cols_ids] / total
    d_s = costs[np.ix_(rows_ids, cols_ids)]
    n, m = a_s.shape[0], b_s.shape[0]
    n_cells = n * m

    k = resolve_support_k(support_k, n, m)

    # Warm basis cells arrive in the original cell space; re-anchor them
    # onto the positive-mass restriction (cells that fall outside it, or
    # outside the screened support below, are simply ignored).
    warm_local = None
    if backend == "network-simplex" and warm_basis is not None and len(warm_basis):
        inv_r = np.full(costs.shape[0], -1, dtype=np.int64)
        inv_r[rows_ids] = np.arange(n)
        inv_c = np.full(costs.shape[1], -1, dtype=np.int64)
        inv_c[cols_ids] = np.arange(m)
        br, bc = warm_basis.rows, warm_basis.cols
        ok = (br >= 0) & (br < costs.shape[0]) & (bc >= 0) & (bc < costs.shape[1])
        lr, lc = inv_r[br[ok]], inv_c[bc[ok]]
        ok = (lr >= 0) & (lc >= 0)
        if ok.any():
            warm_local = (lr[ok], lc[ok])

    ns_cells = None
    if n_cells <= SMALL_EXACT_CELLS or (k >= n and k >= m):
        # Nothing to prune: solve exactly on the full support.
        rr, cc = np.nonzero(np.ones((n, m), dtype=bool))
        if backend == "network-simplex":
            plan_s, ns_cells = _solve_support_ns(
                a_s, b_s, d_s, rr, cc, warm_cells=warm_local
            )
        else:
            solve = _solve_support_lp if backend == "lp" else _solve_support_ssp
            plan_s = solve(a_s, b_s, d_s, rr, cc)
        info = HybridSolveInfo(
            n_cells=n_cells,
            support_cells=n_cells,
            support_density=1.0,
            screen_error_bound=0.0,
            epsilon=float(epsilon),
            support_k=k,
            exact_backend=backend,
            screened=False,
        )
    else:
        # ---- screen: epsilon-scaling with warm-started potentials ---- #
        scale = float(d_s.max()) if d_s.max() > 0 else 1.0
        log_a = np.log(a_s)
        log_b = np.log(b_s)
        schedule = epsilon_schedule(epsilon, factor=scaling_factor)
        stage_iter = max(20, max_iter // len(schedule))
        log_u = log_v = None
        f = g = None  # potentials in cost units — the warm-start carrier
        iterations = 0
        log_k_mat = None
        reg = scale
        for eps_t in schedule:
            reg = eps_t * scale
            log_k_mat = -d_s / reg
            if f is not None:
                log_u, log_v = f / reg, g / reg
            log_u, log_v, it = sinkhorn_iterate(
                log_a, log_b, log_k_mat,
                max_iter=stage_iter, tolerance=tolerance,
                log_u=log_u, log_v=log_v,
            )
            f, g = log_u * reg, log_v * reg
            iterations += it

        # ---- support: top-k union + NW-corner feasibility repair ----- #
        log_plan = log_u[:, None] + log_k_mat + log_v[None, :]
        mask = screen_support(log_plan, k)
        nw_rows, nw_cols = _northwest_corner_cells(a_s, b_s)
        mask[nw_rows, nw_cols] = True
        if dummy_consumer and cols_ids[-1] == costs.shape[1] - 1:
            mask[:, -1] = True  # surplus may park anywhere at zero cost
        if dummy_supplier and rows_ids[-1] == costs.shape[0] - 1:
            mask[-1, :] = True
        rr, cc = np.nonzero(mask)

        # ---- exact solve restricted to the support ------------------- #
        if backend == "network-simplex":
            plan_s, ns_cells = _solve_support_ns(
                a_s, b_s, d_s, rr, cc, warm_cells=warm_local
            )
        else:
            solve = _solve_support_lp if backend == "lp" else _solve_support_ssp
            plan_s = solve(a_s, b_s, d_s, rr, cc)

        # ---- certified error bound via the repaired dual ------------- #
        cost_norm = float((plan_s * d_s).sum())
        # Center the row potentials (dual objectives are shift-invariant).
        f_centered = f - f.mean()
        lb_norm = _dual_lower_bound(d_s, a_s, b_s, f_centered)
        gap = max(0.0, cost_norm - lb_norm)
        if cost_norm <= _EPS:
            bound = 0.0
        elif lb_norm > _EPS:
            bound = gap / lb_norm
        else:
            bound = float("inf")  # dual too loose to certify (huge ε)
        info = HybridSolveInfo(
            n_cells=n_cells,
            support_cells=int(rr.size),
            support_density=float(rr.size) / n_cells,
            screen_error_bound=float(bound),
            epsilon=float(epsilon),
            support_k=k,
            sinkhorn_iterations=iterations,
            exact_backend=backend,
            lower_bound=lb_norm * total,
            screened=True,
        )

    plan_s = plan_s * total
    flows = np.zeros_like(costs)
    flows[np.ix_(rows_ids, cols_ids)] = plan_s
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    cost = float((flows * problem.costs).sum())
    _record(replace(info, cost=cost))
    plan = TransportPlan(flows=flows, cost=cost)
    if return_basis:
        if ns_cells is not None:
            gr = rows_ids[ns_cells[0]]
            gc = cols_ids[ns_cells[1]]
            keep = (gr < problem.n_suppliers) & (gc < problem.n_consumers)
            out_basis = TransportBasis(rows=gr[keep], cols=gc[keep])
        else:
            empty = np.empty(0, dtype=np.int64)
            out_basis = TransportBasis(rows=empty, cols=empty)
        return plan, out_basis
    return plan
