"""Sparse network simplex with warm-startable spanning-tree bases.

The paper dismisses the dense transportation simplex as super-cubic (§5,
the point of Theorem 4) — but the repo's real workloads solve long chains
of *nearly identical* instances: sliding-window sweeps, corpus appends and
streaming ``watch`` differ in a handful of coordinates per step, so the
previous optimal spanning tree is a near-feasible start for the next
solve. This module supplies the solver tier that exploits that:

* a primal network simplex over the bipartite transportation graph
  (suppliers ``0..n-1``, consumers ``n..n+m-1``, plus an artificial root),
  with the spanning-tree basis held in flat ``parent`` / ``pred_arc`` /
  ``depth`` arrays, a *block-pivoting* entering-arc search (vectorised
  reduced costs over sqrt-sized arc blocks with a roving start pointer),
  and Cunningham's *strongly feasible basis* leaving-arc rule for
  anti-cycling (degenerate arcs always point toward the root; the leaving
  arc is the last blocking arc in cycle orientation from the join);
* warm starts: :func:`solve_transportation_network_simplex` accepts a
  prior :class:`~repro.flow.basis.TransportBasis` and returns the optimal
  one, so consecutive solves of nearby instances pay only for the
  *difference* between their optimal trees. A warm basis is only a hint —
  it is de-cycled, re-flowed by leaf elimination against the new
  marginals, and any node it cannot feasibly cover falls back to a big-M
  artificial arc — so *any* cell set is safe to pass and the result is
  always the exact optimum (bit-identical to a cold solve on integral
  instances, see docs/solvers.md for the contract);
* :func:`solve_support_network_simplex` — the sparse entry point the
  sinkhorn-hybrid tier calls for its restricted exact solve (the screened
  support *is* a sparse min-cost flow);
* process-local :data:`SIMPLEX_METRICS` (pivots per solve, cold vs warm)
  and a thread-local :func:`last_network_simplex_info`, mirroring the
  hybrid tier's diagnostics, so the temporal-locality win is measured
  rather than assumed (``engine.stats()["network_simplex"]``,
  BENCH_engine.json).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import FlowError
from repro.flow.basis import TransportBasis
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem

__all__ = [
    "NetworkSimplexInfo",
    "NetworkSimplexMetrics",
    "SIMPLEX_METRICS",
    "last_network_simplex_info",
    "solve_support_network_simplex",
    "solve_transportation_network_simplex",
]

_TOL = 1e-9
# Artificial arcs carry flow only on infeasible supports; tolerate the float
# dust a long pivot chain can leave on one before calling the instance
# infeasible.
_FEAS_TOL = 1e-7
# A full-wrap "optimal" verdict under big-M-contaminated potentials is only
# trusted after recomputing potentials exactly from the tree; bound how many
# times that refinement can re-open the solve.
_MAX_REFINEMENTS = 64


# --------------------------------------------------------------------------- #
# Diagnostics (mirrors the sinkhorn-hybrid tier's HybridMetrics surface)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class NetworkSimplexInfo:
    """Diagnostics for one network-simplex solve."""

    n_suppliers: int
    n_consumers: int
    n_arcs: int
    pivots: int
    warm: bool
    warm_arcs_given: int
    warm_arcs_used: int
    cost: float


class NetworkSimplexMetrics:
    """Process-local aggregate counters over network-simplex solves.

    The quantity of interest is *pivots per solve, cold vs warm* — the
    direct measurement of how much of the previous optimal tree survived
    into the next instance. Thread-safe; ``reset()`` between benchmark
    phases.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.solves = 0
            self.cold_solves = 0
            self.warm_solves = 0
            self.cold_pivots = 0
            self.warm_pivots = 0
            self.warm_arcs_used = 0
            self.last_pivots = 0

    def record(self, info: NetworkSimplexInfo) -> None:
        with self._lock:
            self.solves += 1
            self.last_pivots = info.pivots
            if info.warm:
                self.warm_solves += 1
                self.warm_pivots += info.pivots
                self.warm_arcs_used += info.warm_arcs_used
            else:
                self.cold_solves += 1
                self.cold_pivots += info.pivots

    def snapshot(self) -> dict:
        with self._lock:
            cold_pps = self.cold_pivots / self.cold_solves if self.cold_solves else 0.0
            warm_pps = self.warm_pivots / self.warm_solves if self.warm_solves else 0.0
            return {
                "solves": self.solves,
                "cold_solves": self.cold_solves,
                "warm_solves": self.warm_solves,
                "cold_pivots": self.cold_pivots,
                "warm_pivots": self.warm_pivots,
                "cold_pivots_per_solve": cold_pps,
                "warm_pivots_per_solve": warm_pps,
                "warm_arcs_used": self.warm_arcs_used,
                "last_pivots": self.last_pivots,
            }


SIMPLEX_METRICS = NetworkSimplexMetrics()

_LAST = threading.local()


def last_network_simplex_info() -> NetworkSimplexInfo | None:
    """Diagnostics of the most recent solve on this thread, if any."""
    return getattr(_LAST, "info", None)


def _record(info: NetworkSimplexInfo) -> None:
    _LAST.info = info
    SIMPLEX_METRICS.record(info)


# --------------------------------------------------------------------------- #
# Core solver
# --------------------------------------------------------------------------- #


class _TreeSimplex:
    """Primal network simplex on a bipartite transportation graph.

    Nodes: suppliers ``0..n-1``, consumers ``n..n+m-1``, root ``n+m``.
    Real arcs run supplier -> consumer with the given costs; every non-root
    node additionally owns one big-M artificial arc to/from the root, used
    only where the (warm or empty) starting forest leaves it uncovered.
    """

    def __init__(
        self,
        n: int,
        m: int,
        tails: np.ndarray,
        heads: np.ndarray,
        costs: np.ndarray,
        supplies: np.ndarray,
        demands: np.ndarray,
        *,
        block_size: int | None = None,
        max_iterations: int | None = None,
    ) -> None:
        self.n = int(n)
        self.m = int(m)
        self.root = self.n + self.m
        self.N = self.n + self.m + 1
        self.n_real = int(tails.shape[0])
        self.n_arcs = self.n_real + self.N - 1  # + one artificial per non-root

        cost_scale = float(np.max(np.abs(costs))) if self.n_real else 1.0
        self.big_m = 1.0 + self.N * max(1.0, cost_scale)

        self.tails = np.empty(self.n_arcs, dtype=np.int64)
        self.heads = np.empty(self.n_arcs, dtype=np.int64)
        self.costs = np.empty(self.n_arcs, dtype=np.float64)
        self.tails[: self.n_real] = tails
        self.heads[: self.n_real] = heads
        self.costs[: self.n_real] = costs
        # Artificial orientations are fixed per-node at tree build time.
        self.costs[self.n_real :] = self.big_m

        self.supplies = np.asarray(supplies, dtype=np.float64)
        self.demands = np.asarray(demands, dtype=np.float64)

        self.block = (
            int(block_size)
            if block_size is not None
            else max(64, int(round(np.sqrt(max(self.n_real, 1)))))
        )
        self.max_iterations = (
            int(max_iterations)
            if max_iterations is not None
            else 50 * self.n_arcs + 1000
        )

        self.flow = np.zeros(self.n_arcs, dtype=np.float64)
        self.in_tree = np.zeros(self.n_arcs, dtype=bool)
        self.parent = np.full(self.N, -1, dtype=np.int64)
        self.pred_arc = np.full(self.N, -1, dtype=np.int64)
        self.pred_dir = np.zeros(self.N, dtype=np.int64)
        self.depth = np.zeros(self.N, dtype=np.int64)
        self.pi = np.zeros(self.N, dtype=np.float64)
        self.children: list[set[int]] = [set() for _ in range(self.N)]

        self._next_arc = 0
        self.pivots = 0
        self.warm_arcs_used = 0

    # -- starting tree ----------------------------------------------------- #

    def build_tree(self, warm_arc_ids: np.ndarray | None) -> None:
        """Build a strongly feasible starting tree from a warm-arc hint.

        The warm arcs (possibly empty — the cold start) are de-cycled into
        a forest, then *leaf elimination* propagates the new marginals
        through it: a leaf's pending arc is kept only if the flow it must
        carry is strictly positive, otherwise it is dropped. Every node the
        surviving forest does not anchor falls back to its artificial root
        arc, oriented by residual sign so degenerate arcs point toward the
        root — which is exactly Cunningham's strong-feasibility invariant,
        making the cold start (empty hint → pure artificial star) and every
        warm start cycle-safe from the first pivot.
        """
        n, m, root, N = self.n, self.m, self.root, self.N
        residual = np.concatenate([self.supplies, -self.demands, [0.0]])

        kept_adj: list[list[int]] = [[] for _ in range(N)]
        degree = np.zeros(N, dtype=np.int64)
        if warm_arc_ids is not None and len(warm_arc_ids):
            # De-cycle the hint: keep arcs that connect new components only.
            uf = np.arange(N, dtype=np.int64)

            def find(x: int) -> int:
                while uf[x] != x:
                    uf[x] = uf[uf[x]]
                    x = int(uf[x])
                return x

            for aid in warm_arc_ids:
                aid = int(aid)
                u, v = int(self.tails[aid]), int(self.heads[aid])
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                uf[ru] = rv
                kept_adj[u].append(aid)
                kept_adj[v].append(aid)
                degree[u] += 1
                degree[v] += 1

        arc_dropped = np.zeros(self.n_arcs, dtype=bool)
        up_real = np.full(N, -1, dtype=np.int64)
        done = np.zeros(N, dtype=bool)
        queue = [v for v in range(N - 1) if degree[v] == 1]
        while queue:
            v = queue.pop()
            if done[v] or degree[v] != 1:
                continue
            arc = -1
            for aid in kept_adj[v]:
                if not arc_dropped[aid] and not self.in_tree[aid]:
                    arc = aid
                    break
            if arc < 0:
                continue
            u = int(self.heads[arc]) if int(self.tails[arc]) == v else int(self.tails[arc])
            # Flow the arc must carry to zero out v's residual (arc points
            # supplier -> consumer; v on the tail side pushes, head side pulls).
            needed = residual[v] if int(self.tails[arc]) == v else -residual[v]
            if needed > _TOL:
                self.in_tree[arc] = True
                self.flow[arc] = needed
                up_real[v] = arc
                residual[u] += residual[v]
                residual[v] = 0.0
                self.warm_arcs_used += 1
            else:
                arc_dropped[arc] = True
            done[v] = True
            degree[v] -= 1
            degree[u] -= 1
            if degree[u] == 1 and not done[u]:
                queue.append(u)

        # Artificial anchors for every node the surviving forest missed.
        for v in range(N - 1):
            if up_real[v] >= 0:
                continue
            aid = self.n_real + v
            rv = residual[v]
            if rv >= 0.0:
                self.tails[aid] = v  # degenerate arcs point toward the root
                self.heads[aid] = root
            else:
                self.tails[aid] = root
                self.heads[aid] = v
            self.flow[aid] = abs(rv)
            self.in_tree[aid] = True

        self._rebuild_indices()

    def _rebuild_indices(self) -> None:
        """Recompute parent/pred/depth/pi/children from ``in_tree`` arcs."""
        N, root = self.N, self.root
        adj: list[list[int]] = [[] for _ in range(N)]
        for aid in np.nonzero(self.in_tree)[0]:
            aid = int(aid)
            adj[int(self.tails[aid])].append(aid)
            adj[int(self.heads[aid])].append(aid)

        self.parent[:] = -1
        self.pred_arc[:] = -1
        self.pred_dir[:] = 0
        self.depth[:] = 0
        self.pi[:] = 0.0
        self.children = [set() for _ in range(N)]

        visited = np.zeros(N, dtype=bool)
        visited[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for aid in adj[u]:
                v = int(self.heads[aid]) if int(self.tails[aid]) == u else int(self.tails[aid])
                if visited[v]:
                    continue
                visited[v] = True
                self.parent[v] = u
                self.pred_arc[v] = aid
                self.pred_dir[v] = 1 if int(self.tails[aid]) == v else -1
                self.depth[v] = self.depth[u] + 1
                if self.pred_dir[v] == 1:
                    self.pi[v] = self.costs[aid] + self.pi[u]
                else:
                    self.pi[v] = self.pi[u] - self.costs[aid]
                self.children[u].add(v)
                stack.append(v)
        if not visited.all():
            raise FlowError("network simplex basis does not span all nodes")

    def _recompute_potentials(self) -> None:
        """Exact potentials from the current tree (kills big-M float drift)."""
        stack = [self.root]
        self.pi[self.root] = 0.0
        while stack:
            u = stack.pop()
            for v in self.children[u]:
                aid = int(self.pred_arc[v])
                if self.pred_dir[v] == 1:
                    self.pi[v] = self.costs[aid] + self.pi[u]
                else:
                    self.pi[v] = self.pi[u] - self.costs[aid]
                stack.append(v)

    # -- pricing ----------------------------------------------------------- #

    def _scan_blocks(self) -> int:
        """Block search over *real* arcs: best entering arc within the first
        block (from the roving pointer) that contains one."""
        n_real = self.n_real
        if n_real == 0:
            return -1
        start = self._next_arc
        scanned = 0
        while scanned < n_real:
            end = min(start + self.block, n_real)
            sl = slice(start, end)
            rc = self.costs[sl] - self.pi[self.tails[sl]] + self.pi[self.heads[sl]]
            rc[self.in_tree[sl]] = 0.0
            k = int(np.argmin(rc))
            if rc[k] < -_TOL:
                self._next_arc = (start + k + 1) % n_real
                return start + k
            scanned += end - start
            start = 0 if end >= n_real else end
        return -1

    def _scan_full(self) -> int:
        """One vectorised scan of every real arc (termination verification)."""
        if self.n_real == 0:
            return -1
        sl = slice(0, self.n_real)
        rc = self.costs[sl] - self.pi[self.tails[sl]] + self.pi[self.heads[sl]]
        rc[self.in_tree[sl]] = 0.0
        k = int(np.argmin(rc))
        if rc[k] < -_TOL:
            self._next_arc = (k + 1) % self.n_real
            return k
        return -1

    # -- pivoting ---------------------------------------------------------- #

    def _pivot(self, entering: int) -> None:
        u = int(self.tails[entering])
        v = int(self.heads[entering])
        depth, parent, pred_arc, pred_dir, flow = (
            self.depth,
            self.parent,
            self.pred_arc,
            self.pred_dir,
            self.flow,
        )

        # Ratio test along the cycle (entering arc oriented u -> v; the tree
        # path closes it v -> join -> u). Cunningham's rule: leaving arc is
        # the *last* blocking arc in cycle orientation from the join — strict
        # '<' on the u-side keeps the candidate closest to u, '<=' on the
        # v-side keeps the candidate closest to the join, and v-side wins
        # side ties.
        theta_u = np.inf
        leave_u = -1
        node_u = -1
        theta_v = np.inf
        leave_v = -1
        node_v = -1
        x, y = u, v
        while x != y:
            if depth[x] >= depth[y]:
                arc = int(pred_arc[x])
                if pred_dir[x] == 1:  # arc x->parent opposes cycle: decreases
                    if flow[arc] < theta_u:
                        theta_u = flow[arc]
                        leave_u = arc
                        node_u = x
                x = int(parent[x])
            else:
                arc = int(pred_arc[y])
                if pred_dir[y] == -1:  # arc parent->y opposes cycle: decreases
                    if flow[arc] <= theta_v:
                        theta_v = flow[arc]
                        leave_v = arc
                        node_v = y
                y = int(parent[y])

        theta = min(theta_u, theta_v)
        if not np.isfinite(theta):
            raise FlowError("network simplex cycle is unbounded")

        # Apply the flow change around the cycle.
        if theta > 0.0:
            x, y = u, v
            while x != y:
                if depth[x] >= depth[y]:
                    flow[int(pred_arc[x])] += -theta if pred_dir[x] == 1 else theta
                    x = int(parent[x])
                else:
                    flow[int(pred_arc[y])] += theta if pred_dir[y] == 1 else -theta
                    y = int(parent[y])
            flow[entering] += theta

        if theta_v <= theta_u:
            leaving, w_out, e_in_node, other = leave_v, node_v, v, u
        else:
            leaving, w_out, e_in_node, other = leave_u, node_u, u, v
        flow[leaving] = 0.0

        self._replace_arc(entering, leaving, w_out, e_in_node, other)
        self.pivots += 1

    def _replace_arc(
        self, entering: int, leaving: int, w_out: int, e_in_node: int, other: int
    ) -> None:
        """Re-root the subtree cut off by *leaving* onto the entering arc."""
        parent, pred_arc, pred_dir, children = (
            self.parent,
            self.pred_arc,
            self.pred_dir,
            self.children,
        )

        # Collect the detached component before restructuring it.
        component = []
        stack = [w_out]
        while stack:
            x = stack.pop()
            component.append(x)
            stack.extend(children[x])

        children[int(parent[w_out])].discard(w_out)

        # Reverse the path e_in_node -> ... -> w_out.
        path = [e_in_node]
        while path[-1] != w_out:
            path.append(int(parent[path[-1]]))
        arcs_up = [int(pred_arc[x]) for x in path[:-1]]
        for i in range(len(path) - 1, 0, -1):
            child_new, parent_new = path[i], path[i - 1]
            arc = arcs_up[i - 1]
            parent[child_new] = parent_new
            pred_arc[child_new] = arc
            pred_dir[child_new] = 1 if int(self.tails[arc]) == child_new else -1
            children[child_new].discard(parent_new)
            children[parent_new].add(child_new)

        parent[e_in_node] = other
        pred_arc[e_in_node] = entering
        pred_dir[e_in_node] = 1 if int(self.tails[entering]) == e_in_node else -1
        children[other].add(e_in_node)

        self.in_tree[leaving] = False
        self.in_tree[entering] = True

        # Potentials shift by one constant across the moved component.
        if pred_dir[e_in_node] == 1:
            new_pi = self.costs[entering] + self.pi[other]
        else:
            new_pi = self.pi[other] - self.costs[entering]
        delta = new_pi - self.pi[e_in_node]
        if delta != 0.0:
            for x in component:
                self.pi[x] += delta

        # Depths below the new attachment point.
        self.depth[e_in_node] = self.depth[other] + 1
        stack = [e_in_node]
        while stack:
            x = stack.pop()
            for c in children[x]:
                self.depth[c] = self.depth[x] + 1
                stack.append(c)

    # -- driver ------------------------------------------------------------ #

    def run(self) -> None:
        refinements = 0
        while True:
            entering = self._scan_blocks()
            if entering < 0:
                # Big-M artificial costs contaminate incrementally-maintained
                # potentials with ~1e-7 cancellation noise; re-derive them
                # exactly from the tree before trusting "no entering arc".
                self._recompute_potentials()
                entering = self._scan_full()
                if entering < 0:
                    break
                refinements += 1
                if refinements > _MAX_REFINEMENTS:
                    raise FlowError(
                        "network simplex failed to converge (potential refinement)"
                    )
            self._pivot(entering)
            if self.pivots > self.max_iterations:
                raise FlowError("network simplex exceeded its pivot budget")

        # At optimality the artificial arcs must be flowless, otherwise the
        # real-arc graph cannot route the marginals (sparse supports only;
        # dense instances are always feasible).
        art = self.flow[self.n_real :]
        if art.size and float(art.max(initial=0.0)) > _FEAS_TOL * max(
            1.0, float(self.supplies.sum())
        ):
            raise FlowError("transportation instance is infeasible on this support")

    def tree_real_arcs(self) -> np.ndarray:
        return np.nonzero(self.in_tree[: self.n_real])[0]


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #


def _solve_arcs(
    n: int,
    m: int,
    tails: np.ndarray,
    heads: np.ndarray,
    costs: np.ndarray,
    supplies: np.ndarray,
    demands: np.ndarray,
    warm_arc_ids: np.ndarray | None,
    *,
    block_size: int | None = None,
    max_iterations: int | None = None,
) -> _TreeSimplex:
    solver = _TreeSimplex(
        n,
        m,
        tails,
        heads,
        costs,
        supplies,
        demands,
        block_size=block_size,
        max_iterations=max_iterations,
    )
    solver.build_tree(warm_arc_ids)
    solver.run()
    return solver


def solve_transportation_network_simplex(
    problem: TransportationProblem,
    *,
    basis: TransportBasis | None = None,
    return_basis: bool = False,
    block_size: int | None = None,
    max_iterations: int | None = None,
) -> TransportPlan | tuple[TransportPlan, TransportBasis]:
    """Solve a (possibly unbalanced) transportation problem, warm-startable.

    *basis* is a hint in the **original** (pre-dummy) cell space — normally
    the basis returned by a previous solve of a nearby instance. Cells that
    fall outside the instance are ignored; whatever remains is repaired
    into a feasible strongly feasible tree, so the hint never changes the
    result, only the number of pivots needed to reach it. With
    ``return_basis=True`` the optimal spanning-tree basis (restricted to
    non-dummy cells) is returned alongside the plan.
    """
    balanced, dummy_consumer, dummy_supplier = problem.balanced_form()
    supplies = balanced.supplies
    demands = balanced.demands
    n, m = balanced.n_suppliers, balanced.n_consumers
    n_orig, m_orig = problem.n_suppliers, problem.n_consumers

    if n == 0 or m == 0 or balanced.total_supply <= _TOL:
        plan = TransportPlan(flows=np.zeros((n_orig, m_orig)), cost=0.0)
        empty = TransportBasis(
            rows=np.empty(0, dtype=np.int64), cols=np.empty(0, dtype=np.int64)
        )
        _record(
            NetworkSimplexInfo(
                n_suppliers=n_orig,
                n_consumers=m_orig,
                n_arcs=0,
                pivots=0,
                warm=basis is not None,
                warm_arcs_given=0 if basis is None else len(basis),
                warm_arcs_used=0,
                cost=0.0,
            )
        )
        return (plan, empty) if return_basis else plan

    tails = np.repeat(np.arange(n, dtype=np.int64), m)
    heads = n + np.tile(np.arange(m, dtype=np.int64), n)
    costs = np.ascontiguousarray(balanced.costs, dtype=np.float64).ravel()

    warm_arc_ids = None
    if basis is not None and len(basis):
        keep = (basis.rows >= 0) & (basis.rows < n) & (basis.cols >= 0) & (basis.cols < m)
        warm_arc_ids = (basis.rows[keep] * m + basis.cols[keep]).astype(np.int64)

    solver = _solve_arcs(
        n,
        m,
        tails,
        heads,
        costs,
        supplies,
        demands,
        warm_arc_ids,
        block_size=block_size,
        max_iterations=max_iterations,
    )

    flows = solver.flow[: n * m].reshape(n, m)
    if dummy_consumer:
        flows = flows[:, :-1]
    if dummy_supplier:
        flows = flows[:-1, :]
    flows = np.maximum(flows, 0.0)  # clamp float dust from pivoting
    cost = float((flows * problem.costs).sum())
    plan = TransportPlan(flows=flows.copy(), cost=cost)

    tree_arcs = solver.tree_real_arcs()
    rows = tree_arcs // m
    cols = tree_arcs % m
    keep = (rows < n_orig) & (cols < m_orig)  # drop dummy-node cells
    out_basis = TransportBasis(rows=rows[keep], cols=cols[keep])

    _record(
        NetworkSimplexInfo(
            n_suppliers=n_orig,
            n_consumers=m_orig,
            n_arcs=solver.n_arcs,
            pivots=solver.pivots,
            warm=warm_arc_ids is not None and len(warm_arc_ids) > 0,
            warm_arcs_given=0 if basis is None else len(basis),
            warm_arcs_used=solver.warm_arcs_used,
            cost=cost,
        )
    )
    return (plan, out_basis) if return_basis else plan


def solve_support_network_simplex(
    a: np.ndarray,
    b: np.ndarray,
    d: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    *,
    warm_cells: tuple[np.ndarray, np.ndarray] | None = None,
    return_cells: bool = False,
) -> np.ndarray | tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Exact balanced solve restricted to the arcs ``(rows[k], cols[k])``.

    The sparse entry point for the sinkhorn-hybrid tier: its screened
    support is exactly a sparse min-cost flow, so this is the natural first
    consumer of the warm-startable backend. *warm_cells* is an optional
    ``(rows, cols)`` hint; cells outside the support are ignored. Returns
    the dense plan (and the optimal basis cells when *return_cells*).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = a.shape[0], b.shape[0]
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)

    tails = rows
    heads = n + cols
    costs = np.ascontiguousarray(d[rows, cols], dtype=np.float64)

    warm_arc_ids = None
    if warm_cells is not None:
        wr = np.asarray(warm_cells[0], dtype=np.int64)
        wc = np.asarray(warm_cells[1], dtype=np.int64)
        if wr.size:
            arc_of = {
                (int(r), int(c)): k for k, (r, c) in enumerate(zip(rows, cols))
            }
            ids = [
                arc_of[(int(r), int(c))]
                for r, c in zip(wr, wc)
                if (int(r), int(c)) in arc_of
            ]
            if ids:
                warm_arc_ids = np.asarray(ids, dtype=np.int64)

    solver = _solve_arcs(n, m, tails, heads, costs, a, b, warm_arc_ids)

    plan = np.zeros((n, m), dtype=np.float64)
    plan[rows, cols] = np.maximum(solver.flow[: solver.n_real], 0.0)
    cost = float((plan[rows, cols] * costs).sum())
    _record(
        NetworkSimplexInfo(
            n_suppliers=n,
            n_consumers=m,
            n_arcs=solver.n_arcs,
            pivots=solver.pivots,
            warm=warm_arc_ids is not None and len(warm_arc_ids) > 0,
            warm_arcs_given=0 if warm_cells is None else int(np.asarray(warm_cells[0]).size),
            warm_arcs_used=solver.warm_arcs_used,
            cost=cost,
        )
    )
    if return_cells:
        tree_arcs = solver.tree_real_arcs()
        return plan, (rows[tree_arcs].copy(), cols[tree_arcs].copy())
    return plan


def _warm_info_replace(**kwargs) -> None:  # pragma: no cover - debug helper
    info = last_network_simplex_info()
    if info is not None:
        _LAST.info = replace(info, **kwargs)
