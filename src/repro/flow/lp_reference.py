"""Transportation problem via a general-purpose LP solver (scipy HiGHS).

This plays the role CPLEX plays in the paper's Fig. 11: an exact,
general-purpose solve of the *unreduced* transportation problem, against
which the linear-time reduced method of Theorem 4 is compared.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError
from repro.flow.plan import TransportPlan
from repro.flow.problem import TransportationProblem

__all__ = ["solve_transportation_lp"]


def solve_transportation_lp(problem: TransportationProblem) -> TransportPlan:
    """Solve with :func:`scipy.optimize.linprog` (HiGHS backend).

    Variables are the ``n*m`` flows; constraints are
    ``row sums <= supplies``, ``col sums <= demands``, and
    ``total flow == min(total supply, total demand)`` — the exact original
    EMD constraint set.
    """
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix, vstack

    n, m = problem.n_suppliers, problem.n_consumers
    if n == 0 or m == 0 or problem.moved_mass <= 0.0:
        return TransportPlan(flows=np.zeros((n, m)), cost=0.0)

    c = problem.costs.reshape(-1)

    # Row-sum constraints: A_rows @ f <= supplies.
    row_idx = np.repeat(np.arange(n), m)
    col_idx = np.arange(n * m)
    a_rows = csr_matrix((np.ones(n * m), (row_idx, col_idx)), shape=(n, n * m))
    # Column-sum constraints: A_cols @ f <= demands.
    crow_idx = np.tile(np.arange(m), n)
    a_cols = csr_matrix((np.ones(n * m), (crow_idx, col_idx)), shape=(m, n * m))

    a_ub = vstack([a_rows, a_cols], format="csr")
    b_ub = np.concatenate([problem.supplies, problem.demands])
    a_eq = csr_matrix(np.ones((1, n * m)))
    b_eq = np.array([problem.moved_mass])

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise FlowError(f"LP solver failed: {result.message}")
    flows = np.maximum(result.x.reshape(n, m), 0.0)
    cost = float((flows * problem.costs).sum())
    return TransportPlan(flows=flows, cost=cost)
