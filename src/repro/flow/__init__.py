"""Min-cost flow and transportation solvers.

The EMD family reduces to transportation problems; the fast SND pipeline
reduces to a sparse min-cost-flow instance. Four interchangeable exact
solvers are provided:

* :func:`solve_mcf_ssp` — successive shortest paths with potentials
  (default; exact for real-valued supplies/costs; heap-free vectorised
  Dijkstra kernel for dense reduced problems, heap kernel for sparse ones);
* :func:`solve_mcf_cost_scaling` — Goldberg–Tarjan cost-scaling
  push-relabel (integer costs; the paper's CS2 role);
* :func:`solve_transportation_simplex` — dense MODI transportation simplex;
* :func:`solve_transportation_lp` — :func:`scipy.optimize.linprog` reference
  (the paper's CPLEX role in Fig. 11).

All agree to numerical tolerance; cross-solver agreement is property-tested
in ``tests/flow/test_solver_equivalence.py``. ``method="auto"`` picks the
fastest exact solver for an instance's size (:func:`select_transport_method`);
the thresholds are documented with measurements in ``benchmarks/README.md``.
"""

from repro.exceptions import ValidationError
from repro.flow.cost_scaling import solve_mcf_cost_scaling
from repro.flow.lp_reference import solve_transportation_lp
from repro.flow.problem import MinCostFlowProblem, TransportationProblem
from repro.flow.sinkhorn import solve_transportation_sinkhorn
from repro.flow.ssp import select_mcf_kernel, solve_mcf_ssp, solve_transportation_ssp
from repro.flow.transport_simplex import solve_transportation_simplex

__all__ = [
    "TransportationProblem",
    "MinCostFlowProblem",
    "select_mcf_kernel",
    "select_transport_method",
    "solve_mcf_ssp",
    "solve_transportation_ssp",
    "solve_mcf_cost_scaling",
    "solve_transportation_simplex",
    "solve_transportation_lp",
    "solve_transportation_sinkhorn",
    "solve_transportation",
]

#: ``method="auto"`` thresholds on the dense cell count ``n_sup * n_con``
#: (measured on random integer-cost instances; see benchmarks/README.md).
#: Below ``AUTO_SIMPLEX_CELLS`` the MODI simplex's tiny constant wins; up to
#: ``AUTO_SSP_CELLS`` the vectorised SSP kernel is fastest; above that the
#: HiGHS LP's C pivoting amortises its ~2 ms setup. Cost-scaling is exact
#: but dominated by the vectorised SSP on every measured region, so the
#: auto policy never selects it.
AUTO_SIMPLEX_CELLS = 64
AUTO_SSP_CELLS = 2048

_TRANSPORT_SOLVERS = {
    "ssp": solve_transportation_ssp,
    "simplex": solve_transportation_simplex,
    "lp": solve_transportation_lp,
}


def select_transport_method(n_suppliers: int, n_consumers: int) -> str:
    """The ``method="auto"`` policy for dense transportation instances.

    Returns ``"simplex"`` for tiny instances (``cells <= 64``), ``"ssp"``
    for small-to-medium ones (``cells <= 2048``), and ``"lp"`` beyond —
    the crossovers measured in ``benchmarks/README.md``. All three are
    exact, so the choice only affects speed.
    """
    cells = max(0, int(n_suppliers)) * max(0, int(n_consumers))
    if cells <= AUTO_SIMPLEX_CELLS:
        return "simplex"
    if cells <= AUTO_SSP_CELLS:
        return "ssp"
    return "lp"


def solve_transportation(problem: TransportationProblem, *, method: str = "ssp"):
    """Solve a (possibly unbalanced) transportation problem.

    ``method`` is one of ``"ssp"`` (default), ``"simplex"``, ``"lp"``, or
    ``"auto"`` (size-based selection, :func:`select_transport_method`).
    Returns a :class:`~repro.flow.plan.TransportPlan`.
    """
    if method == "auto":
        method = select_transport_method(problem.n_suppliers, problem.n_consumers)
    try:
        solver = _TRANSPORT_SOLVERS[method]
    except KeyError:
        raise ValidationError(
            f"unknown method {method!r}; expected 'auto' or one of "
            f"{sorted(_TRANSPORT_SOLVERS)}"
        ) from None
    return solver(problem)
