"""Min-cost flow and transportation solvers.

The EMD family reduces to transportation problems; the fast SND pipeline
reduces to a sparse min-cost-flow instance. Four interchangeable exact
solvers are provided:

* :func:`solve_mcf_ssp` — successive shortest paths with potentials
  (default; exact for real-valued supplies/costs; heap-free vectorised
  Dijkstra kernel for dense reduced problems, heap kernel for sparse ones);
* :func:`solve_mcf_cost_scaling` — Goldberg–Tarjan cost-scaling
  push-relabel (integer costs; the paper's CS2 role);
* :func:`solve_transportation_simplex` — dense MODI transportation simplex;
* :func:`solve_transportation_network_simplex` — sparse network simplex
  with a warm-startable spanning-tree basis (block pivoting, strongly
  feasible anti-cycling); the solver tier that exploits temporal locality
  across nearly identical instances (sliding windows, corpus appends);
* :func:`solve_transportation_lp` — :func:`scipy.optimize.linprog` reference
  (the paper's CPLEX role in Fig. 11).

All exact solvers agree to numerical tolerance; cross-solver agreement is
property-tested in ``tests/flow/test_solver_equivalence.py``. One
*approximation tier* sits alongside them:
:func:`solve_transportation_sinkhorn_hybrid` (``"sinkhorn-hybrid"``) — a
Sinkhorn screen identifies a sparse support, then an exact solver runs on
that support; its relative error is certified per solve and
property-tested under tolerance tiers. ``method="auto"`` picks the fastest
exact solver for an instance's size (:func:`select_transport_method`) and
routes to the hybrid above :data:`AUTO_HYBRID_CELLS` cells, where exact
dense solves stop being viable; the thresholds are documented with
measurements in ``benchmarks/README.md`` and ``docs/solvers.md``.
"""

from repro.exceptions import ValidationError
from repro.flow.basis import TransportBasis
from repro.flow.cost_scaling import solve_mcf_cost_scaling
from repro.flow.lp_reference import solve_transportation_lp
from repro.flow.network_simplex import solve_transportation_network_simplex
from repro.flow.problem import MinCostFlowProblem, TransportationProblem
from repro.flow.sinkhorn import solve_transportation_sinkhorn
from repro.flow.sinkhorn_hybrid import solve_transportation_sinkhorn_hybrid
from repro.flow.ssp import select_mcf_kernel, solve_mcf_ssp, solve_transportation_ssp
from repro.flow.transport_simplex import solve_transportation_simplex

__all__ = [
    "TransportationProblem",
    "MinCostFlowProblem",
    "TransportBasis",
    "select_mcf_kernel",
    "select_transport_method",
    "solve_mcf_ssp",
    "solve_transportation_ssp",
    "solve_mcf_cost_scaling",
    "solve_transportation_simplex",
    "solve_transportation_network_simplex",
    "solve_transportation_lp",
    "solve_transportation_sinkhorn",
    "solve_transportation_sinkhorn_hybrid",
    "solve_transportation",
]

#: ``method="auto"`` thresholds on the dense cell count ``n_sup * n_con``
#: (measured on random integer-cost instances; see benchmarks/README.md).
#: Below ``AUTO_SIMPLEX_CELLS`` the MODI simplex's tiny constant wins; up to
#: ``AUTO_SSP_CELLS`` the vectorised SSP kernel is fastest; above that the
#: HiGHS LP's C pivoting amortises its ~2 ms setup. Cost-scaling is exact
#: but dominated by the vectorised SSP on every measured region, so the
#: auto policy never selects it.
AUTO_SIMPLEX_CELLS = 64
AUTO_SSP_CELLS = 2048

#: Above this cell count ``method="auto"`` switches from the exact dense
#: solvers to the ``"sinkhorn-hybrid"`` approximation tier: the screened
#: sparse exact solve beats the best exact dense solver by >= 5x at <= 1%
#: certified relative error from roughly this size upward (measured on
#: powerlaw-graph reduced instances — see benchmarks/README.md and
#: BENCH_sinkhorn_hybrid.json). Overridable per call via the
#: ``hybrid_cells`` parameter of :func:`select_transport_method`
#: (``None`` disables the branch and keeps ``auto`` fully exact).
AUTO_HYBRID_CELLS = 160_000

_TRANSPORT_SOLVERS = {
    "ssp": solve_transportation_ssp,
    "simplex": solve_transportation_simplex,
    "network-simplex": solve_transportation_network_simplex,
    "lp": solve_transportation_lp,
    "sinkhorn-hybrid": solve_transportation_sinkhorn_hybrid,
}


def select_transport_method(
    n_suppliers: int,
    n_consumers: int,
    *,
    hybrid_cells: int | None = AUTO_HYBRID_CELLS,
    warm_basis: bool = False,
) -> str:
    """The ``method="auto"`` policy for dense transportation instances.

    Returns ``"simplex"`` for tiny instances (``cells <= 64``), ``"ssp"``
    for small-to-medium ones (``cells <= 2048``), ``"lp"`` beyond, and
    ``"sinkhorn-hybrid"`` for large instances (``cells > hybrid_cells``) —
    the crossovers measured in ``benchmarks/README.md``. The first three
    are exact, so their choice only affects speed; the hybrid tier is
    approximate (certified relative error, see
    :mod:`repro.flow.sinkhorn_hybrid`) and is the only branch that trades
    accuracy for scale. Pass ``hybrid_cells=None`` to keep the selection
    fully exact, or another cell count to move the approximation
    threshold.

    With ``warm_basis=True`` the caller declares that a previous optimal
    basis is available for this instance (temporal-locality workloads:
    sliding windows, corpus appends). Warm hints only pay off inside the
    basis-carrying backend, so every exact region above the tiny-instance
    floor then routes to ``"network-simplex"``; instances past
    ``hybrid_cells`` still escalate to the hybrid tier (whose restricted
    exact solve consumes the basis itself).
    """
    cells = max(0, int(n_suppliers)) * max(0, int(n_consumers))
    if cells <= AUTO_SIMPLEX_CELLS:
        return "simplex"
    if hybrid_cells is not None and cells > int(hybrid_cells):
        return "sinkhorn-hybrid"
    if warm_basis:
        return "network-simplex"
    if cells <= AUTO_SSP_CELLS:
        return "ssp"
    return "lp"


def solve_transportation(problem: TransportationProblem, *, method: str = "ssp"):
    """Solve a (possibly unbalanced) transportation problem.

    ``method`` is one of ``"ssp"`` (default), ``"simplex"``,
    ``"network-simplex"`` (warm-startable sparse simplex — pass bases via
    :func:`solve_transportation_network_simplex` directly), ``"lp"``,
    ``"sinkhorn-hybrid"`` (approximate: Sinkhorn-screened sparse exact
    solve with a certified error bound), or ``"auto"`` (size-based
    selection, :func:`select_transport_method` — exact below
    :data:`AUTO_HYBRID_CELLS` cells, hybrid above).
    Returns a :class:`~repro.flow.plan.TransportPlan`.
    """
    if method == "auto":
        method = select_transport_method(problem.n_suppliers, problem.n_consumers)
    try:
        solver = _TRANSPORT_SOLVERS[method]
    except KeyError:
        raise ValidationError(
            f"unknown method {method!r}; expected 'auto' or one of "
            f"{sorted(_TRANSPORT_SOLVERS)}"
        ) from None
    return solver(problem)
