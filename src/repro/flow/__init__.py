"""Min-cost flow and transportation solvers.

The EMD family reduces to transportation problems; the fast SND pipeline
reduces to a sparse min-cost-flow instance. Four interchangeable exact
solvers are provided:

* :func:`solve_mcf_ssp` — successive shortest paths with potentials
  (default; exact for real-valued supplies/costs);
* :func:`solve_mcf_cost_scaling` — Goldberg–Tarjan cost-scaling
  push-relabel (integer costs; the paper's CS2 role);
* :func:`solve_transportation_simplex` — dense MODI transportation simplex;
* :func:`solve_transportation_lp` — :func:`scipy.optimize.linprog` reference
  (the paper's CPLEX role in Fig. 11).

All agree to numerical tolerance; cross-solver agreement is property-tested.
"""

from repro.flow.cost_scaling import solve_mcf_cost_scaling
from repro.flow.lp_reference import solve_transportation_lp
from repro.flow.problem import MinCostFlowProblem, TransportationProblem
from repro.flow.sinkhorn import solve_transportation_sinkhorn
from repro.flow.ssp import solve_mcf_ssp, solve_transportation_ssp
from repro.flow.transport_simplex import solve_transportation_simplex

__all__ = [
    "TransportationProblem",
    "MinCostFlowProblem",
    "solve_mcf_ssp",
    "solve_transportation_ssp",
    "solve_mcf_cost_scaling",
    "solve_transportation_simplex",
    "solve_transportation_lp",
    "solve_transportation_sinkhorn",
    "solve_transportation",
]

_TRANSPORT_SOLVERS = {
    "ssp": solve_transportation_ssp,
    "simplex": solve_transportation_simplex,
    "lp": solve_transportation_lp,
}


def solve_transportation(problem: TransportationProblem, *, method: str = "ssp"):
    """Solve a (possibly unbalanced) transportation problem.

    ``method`` is one of ``"ssp"`` (default), ``"simplex"``, ``"lp"``.
    Returns a :class:`~repro.flow.plan.TransportPlan`.
    """
    try:
        solver = _TRANSPORT_SOLVERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(_TRANSPORT_SOLVERS)}"
        ) from None
    return solver(problem)
